"""Accelerator configuration.

Collects the knobs Section V of the paper sweeps and their published
defaults: convergence threshold ``1e-5`` in fp32, 4096×4096 chunking,
``SamplingRate = 32``, ``rOpt = 8`` MSID stages, MSID ``tolerance = 0.15``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

import numpy as np

from repro.errors import ConfigurationError

DEFAULT_SOLVER_FALLBACK_ORDER: tuple[str, ...] = ("bicgstab", "cg", "jacobi")
"""Solver Modifier preference when the selected solver fails: most general
method first."""


@dataclass(frozen=True)
class AcamarConfig:
    """Parameters of the Acamar accelerator (paper Section V defaults).

    Attributes
    ----------
    tolerance:
        Relative-residual convergence threshold (Section V-B: ``1e-5``).
    dtype:
        Floating-point precision of the compute fabric (paper: 32-bit).
    chunk_size:
        Rows per processing chunk (paper: 4096).
    sampling_rate:
        Number of row sets per chunk for the Row Length Trace (paper: 32).
    r_opt:
        MSID chain stages (paper: 8; 0 disables the optimization).
    msid_tolerance:
        MSID normalized-difference tolerance (paper experiments: 0.15).
    max_unroll:
        Largest unroll factor the Dynamic SpMV kernel region can hold.
    setup_iterations:
        Divergence-check grace period at the reference 4096 problem size
        (paper: 200); scaled with problem size by the monitor.
    max_iterations:
        Iteration cap per solver attempt.
    unroll_rounding:
        How Eq. 7 averages quantize to unroll factors ('nearest', the
        paper's behaviour; 'ceil' favours latency; 'floor' favours
        utilization) — an ablation knob.
    solver_options:
        Extra constructor arguments per solver name (e.g.
        ``{"gmres": {"restart": 1024}}``), used when the fallback order
        includes extension solvers.
    solver_fallback_order:
        Solver Modifier preference once the structure-selected solver
        fails.
    """

    tolerance: float = 1e-5
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float32))
    chunk_size: int = 4096
    sampling_rate: int = 32
    r_opt: int = 8
    msid_tolerance: float = 0.15
    max_unroll: int = 64
    setup_iterations: int = 200
    max_iterations: int = 4000
    solver_fallback_order: tuple[str, ...] = DEFAULT_SOLVER_FALLBACK_ORDER
    unroll_rounding: str = "nearest"
    solver_options: Mapping[str, Mapping[str, Any]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.tolerance <= 0:
            raise ConfigurationError(f"tolerance must be > 0, got {self.tolerance}")
        if self.chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.sampling_rate < 1:
            raise ConfigurationError(
                f"sampling_rate must be >= 1, got {self.sampling_rate}"
            )
        if self.r_opt < 0:
            raise ConfigurationError(f"r_opt must be >= 0, got {self.r_opt}")
        if self.msid_tolerance < 0:
            raise ConfigurationError(
                f"msid_tolerance must be >= 0, got {self.msid_tolerance}"
            )
        if self.max_unroll < 1:
            raise ConfigurationError(f"max_unroll must be >= 1, got {self.max_unroll}")
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.unroll_rounding not in ("nearest", "ceil", "floor"):
            raise ConfigurationError(
                f"unroll_rounding must be 'nearest', 'ceil' or 'floor', "
                f"got {self.unroll_rounding!r}"
            )
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    def with_overrides(self, **kwargs) -> "AcamarConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        """JSON-serializable view (dtype as its name, tuples as lists)."""
        return {
            "tolerance": self.tolerance,
            "dtype": self.dtype.name,
            "chunk_size": self.chunk_size,
            "sampling_rate": self.sampling_rate,
            "r_opt": self.r_opt,
            "msid_tolerance": self.msid_tolerance,
            "max_unroll": self.max_unroll,
            "setup_iterations": self.setup_iterations,
            "max_iterations": self.max_iterations,
            "solver_fallback_order": list(self.solver_fallback_order),
            "unroll_rounding": self.unroll_rounding,
            "solver_options": {
                name: dict(options)
                for name, options in self.solver_options.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AcamarConfig":
        """Rebuild a config from :meth:`to_dict` output (or a JSON file).

        Unknown keys raise, so a typo in a config file fails loudly
        instead of silently running paper defaults.
        """
        known = {
            "tolerance", "dtype", "chunk_size", "sampling_rate", "r_opt",
            "msid_tolerance", "max_unroll", "setup_iterations",
            "max_iterations", "solver_fallback_order", "unroll_rounding",
            "solver_options",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown config keys: {sorted(unknown)}"
            )
        kwargs: dict[str, Any] = dict(payload)
        if "dtype" in kwargs:
            kwargs["dtype"] = np.dtype(kwargs["dtype"])
        if "solver_fallback_order" in kwargs:
            kwargs["solver_fallback_order"] = tuple(
                kwargs["solver_fallback_order"]
            )
        return cls(**kwargs)
