"""Baseline designs the paper compares against.

- :class:`~repro.baselines.static_design.StaticDesign` — the static FPGA
  accelerator: one fixed solver, one fixed SpMV unroll factor
  (``SpMV_URB``), the same optimized dense units as Acamar, and no
  reconfiguration of any kind.
- The GPU baseline lives in :mod:`repro.gpu`.
"""

from repro.baselines.static_design import StaticDesign, run_solver_portfolio

__all__ = ["StaticDesign", "run_solver_portfolio"]
