"""The static-design baseline of Section V-E.

The paper's primary comparison point is a design that "incorporates the
same optimized static units as Acamar, as well as a static configuration of
the SpMV unit": one solver fixed at synthesis time, one fixed unroll factor
``SpMV_URB``, no runtime adaptation.  Crucially, the baseline is evaluated
*optimistically* — for each dataset the paper assumes the static design was
built with a solver that happens to converge (Section VI-A notes a real
static deployment may simply diverge, with unbounded execution time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import AcamarConfig
from repro.errors import ConfigurationError
from repro.fpga.cost_model import LatencyReport, PerformanceModel
from repro.solvers import make_solver
from repro.solvers.base import SolveResult
from repro.solvers.monitor import scaled_setup_iterations
from repro.sparse.csr import CSRMatrix


@dataclass
class StaticDesign:
    """A fixed-solver, fixed-unroll accelerator.

    Parameters
    ----------
    solver:
        Registry name of the synthesized solver.
    spmv_urb:
        The static SpMV unit's unroll factor (the ``SpMV_URB`` sweep
        parameter of Figures 6/7/9/10).
    config:
        Numerical parameters shared with Acamar (tolerance, precision,
        iteration caps) so comparisons isolate the architecture.
    """

    solver: str
    spmv_urb: int
    config: AcamarConfig | None = None

    def __post_init__(self) -> None:
        if self.spmv_urb < 1:
            raise ConfigurationError(f"spmv_urb must be >= 1, got {self.spmv_urb}")
        if self.config is None:
            self.config = AcamarConfig()

    def solve(
        self,
        matrix: CSRMatrix,
        b: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        """Run the fixed solver once — no fallback on divergence."""
        solver = make_solver(
            self.solver,
            tolerance=self.config.tolerance,
            max_iterations=self.config.max_iterations,
            setup_iterations=scaled_setup_iterations(
                matrix.shape[0], self.config.setup_iterations
            ),
            dtype=self.config.dtype,
        )
        return solver.solve(matrix, b, x0)

    def latency(
        self,
        matrix: CSRMatrix,
        result: SolveResult,
        model: PerformanceModel | None = None,
    ) -> LatencyReport:
        """Cost a solve on the static fabric (no reconfiguration events)."""
        model = model if model is not None else PerformanceModel()
        return model.solver_latency(matrix, result, urb=self.spmv_urb)


def run_solver_portfolio(
    matrix: CSRMatrix,
    b: np.ndarray,
    config: AcamarConfig | None = None,
    solvers: tuple[str, ...] = ("jacobi", "cg", "bicgstab"),
) -> dict[str, SolveResult]:
    """Run each solver independently on one system (Table II's first
    three columns).

    Returns a dict ``solver name -> SolveResult``; a result with
    ``converged == False`` is a ✗ entry.
    """
    config = config if config is not None else AcamarConfig()
    results: dict[str, SolveResult] = {}
    for name in solvers:
        results[name] = StaticDesign(name, spmv_urb=8, config=config).solve(matrix, b)
    return results
