"""repro — a reproduction of *Acamar* (MICRO 2024) as a simulation library.

Acamar is a dynamically reconfigurable FPGA accelerator for iterative
sparse linear solvers.  This package rebuilds the whole system in Python
at cycle-model fidelity:

- :mod:`repro.sparse` — CSR/CSC/COO substrate with from-scratch SpMV,
- :mod:`repro.solvers` — Jacobi, CG, BiCG-STAB (+ Gauss-Seidel, SOR,
  GMRES) with hardware-style convergence/divergence monitoring,
- :mod:`repro.core` — the accelerator itself: Matrix Structure unit,
  Fine-Grained Reconfiguration with the MSID chain, Solver Modifier, and
  the :class:`~repro.core.accelerator.Acamar` orchestration,
- :mod:`repro.fpga` / :mod:`repro.gpu` — cycle-level cost models of the
  Alveo-u55c fabric and the GTX 1650 Super baseline,
- :mod:`repro.baselines` — the static fixed-solver / fixed-unroll design,
- :mod:`repro.datasets` — Table II stand-ins and PDE / graph /
  optimization workloads,
- :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import Acamar
    from repro.datasets import poisson_2d

    problem = poisson_2d(64)
    result = Acamar().solve(problem.matrix, problem.b)
    print(result.solver_sequence, result.converged)
"""

from repro.campaign import CampaignReport, run_campaign
from repro.config import AcamarConfig
from repro.core import Acamar, AcamarResult
from repro.datasets import Problem
from repro.errors import (
    ConfigurationError,
    DatasetError,
    ReproError,
    ShapeMismatchError,
    SolverBreakdownError,
    SolverError,
    SparseFormatError,
    UnknownNameError,
    ValidationError,
)
from repro.solvers import SolveResult, SolveStatus
from repro.sparse import CSRMatrix

__version__ = "1.0.0"

__all__ = [
    "Acamar",
    "AcamarConfig",
    "AcamarResult",
    "CampaignReport",
    "CSRMatrix",
    "ConfigurationError",
    "DatasetError",
    "Problem",
    "ReproError",
    "ShapeMismatchError",
    "SolveResult",
    "SolveStatus",
    "SolverBreakdownError",
    "SolverError",
    "SparseFormatError",
    "UnknownNameError",
    "ValidationError",
    "__version__",
    "run_campaign",
]
