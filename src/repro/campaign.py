"""Campaign runner: Acamar over a whole collection of systems.

A deployment evaluates the accelerator against *its* workload population,
not single matrices.  :func:`run_campaign` takes any mix of problem
sources — Table II keys, ``.mtx``/``.mtx.gz`` paths, or in-memory
:class:`~repro.datasets.problem.Problem` objects — solves each with
Acamar, costs it on the FPGA model, and aggregates a
:class:`CampaignReport` (convergence rate, solver mix, latency and
utilization statistics).  The CSV export plugs into the same downstream
tooling as the experiment exports.

Scaling and observability:

- ``workers=N`` shards the population across a process pool via
  :mod:`repro.parallel` — cost-balanced chunks, deterministic per-problem
  seeds (``seed + position``), ordered reassembly, and per-problem fault
  isolation, so results are entry-for-entry identical to the serial path;
- a solve that raises (or a lost worker process, after bounded retries)
  yields a **failure-annotated** :class:`CampaignEntry` instead of
  aborting the campaign,
- every run collects :mod:`repro.telemetry` spans/counters from the
  decision loops and cost model; the aggregate rides on
  :attr:`CampaignReport.telemetry` and serializes with
  :meth:`CampaignReport.write_telemetry`.
"""

from __future__ import annotations

import csv
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence, Union

import numpy as np

from repro import telemetry as tm
from repro.config import AcamarConfig
from repro.core import Acamar, BatchContext
from repro.datasets import load_problem, manufacture_problem
from repro.datasets.problem import Problem
from repro.datasets.suite import dataset_keys
from repro.errors import DatasetError, ValidationError
from repro.fpga import PerformanceModel, mean_underutilization
from repro.metrics import achieved_throughput_fraction
from repro.telemetry import TELEMETRY_SCHEMA_VERSION, Telemetry

ProblemSource = Union[str, Path, Problem]

_MTX_SUFFIXES = (".mtx", ".mtx.gz")


@dataclass(frozen=True)
class CampaignEntry:
    """Outcome of one campaign solve.

    ``failure`` is ``None`` for a completed solve (converged or not) and
    an ``"ExceptionType: message"`` string when the solve raised or its
    worker process was lost — in which case the numerical fields are
    zeroed and ``converged`` is False.
    """

    name: str
    n: int
    nnz: int
    converged: bool
    solver_sequence: tuple[str, ...]
    iterations: int
    compute_ms: float
    reconfig_ms: float
    underutilization: float
    throughput: float
    failure: str | None = None

    @property
    def failed(self) -> bool:
        return self.failure is not None


def failure_entry(name: str, error: str) -> CampaignEntry:
    """A zeroed entry recording why ``name`` produced no result."""
    return CampaignEntry(
        name=name,
        n=0,
        nnz=0,
        converged=False,
        solver_sequence=(),
        iterations=0,
        compute_ms=0.0,
        reconfig_ms=0.0,
        underutilization=0.0,
        throughput=0.0,
        failure=error,
    )


@dataclass
class CampaignReport:
    """Aggregate over all campaign entries."""

    entries: list[CampaignEntry]
    telemetry: dict[str, Any] | None = None

    @property
    def convergence_rate(self) -> float:
        if not self.entries:
            return 0.0
        return sum(e.converged for e in self.entries) / len(self.entries)

    @property
    def failures(self) -> list[CampaignEntry]:
        return [e for e in self.entries if e.failed]

    @property
    def solver_mix(self) -> dict[str, int]:
        """How often each solver produced the final (converging) result."""
        mix: dict[str, int] = {}
        for entry in self.entries:
            if not entry.solver_sequence:
                continue
            final = entry.solver_sequence[-1]
            mix[final] = mix.get(final, 0) + 1
        return mix

    @property
    def mean_underutilization(self) -> float:
        if not self.entries:
            return 0.0
        return float(np.mean([e.underutilization for e in self.entries]))

    @property
    def mean_throughput(self) -> float:
        if not self.entries:
            return 0.0
        return float(np.mean([e.throughput for e in self.entries]))

    @property
    def total_compute_ms(self) -> float:
        return sum(e.compute_ms for e in self.entries)

    def to_csv(self, path: str | Path) -> Path:
        path = Path(path)
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow([
                "name", "n", "nnz", "converged", "solver_sequence",
                "iterations", "compute_ms", "reconfig_ms",
                "underutilization", "throughput", "failure",
            ])
            for e in self.entries:
                writer.writerow([
                    e.name, e.n, e.nnz, e.converged,
                    "->".join(e.solver_sequence), e.iterations,
                    f"{e.compute_ms:.6f}", f"{e.reconfig_ms:.6f}",
                    f"{e.underutilization:.6f}", f"{e.throughput:.6f}",
                    e.failure or "",
                ])
        return path

    def write_telemetry(self, path: str | Path) -> Path:
        """Serialize the telemetry aggregate (see docs/operations.md)."""
        import json

        if self.telemetry is None:
            raise ValidationError("this report carries no telemetry aggregate")
        path = Path(path)
        path.write_text(json.dumps(self.telemetry, indent=2) + "\n")
        return path

    def summary_lines(self) -> list[str]:
        lines = [
            f"systems solved        : {len(self.entries)}",
            f"convergence rate      : {self.convergence_rate:.0%}",
            f"solver mix            : {self.solver_mix}",
            f"mean underutilization : {self.mean_underutilization:.1%}",
            f"mean throughput       : {self.mean_throughput:.1%}",
            f"total compute         : {self.total_compute_ms:.3f} ms",
        ]
        if self.failures:
            lines.append(
                f"failures              : {len(self.failures)} "
                f"({', '.join(e.name for e in self.failures)})"
            )
        return lines


def problem_name_from_path(text: str | Path) -> str:
    """Problem name for a Matrix Market path, stripping ``.mtx[.gz]``."""
    name = Path(text).name
    for suffix in (".mtx.gz", ".mtx"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return Path(text).stem


def validate_source(source: ProblemSource) -> None:
    """Raise :class:`DatasetError` if ``source`` cannot be resolved.

    Cheap (no matrix is built or read), so the campaign can reject a bad
    population up front — before any worker process is spawned.
    """
    if isinstance(source, Problem):
        return
    text = str(source)
    if text.endswith(_MTX_SUFFIXES):
        if not os.path.exists(text):
            raise DatasetError(
                f"cannot resolve problem source {source!r}: "
                "Matrix Market file does not exist"
            )
        return
    if text not in dataset_keys():
        raise DatasetError(
            f"cannot resolve problem source {source!r}: expected a Table II "
            "key, a .mtx path, or a Problem instance"
        )


def resolve_source(source: ProblemSource, seed: int) -> Problem:
    """Materialize a problem source into a :class:`Problem`."""
    if isinstance(source, Problem):
        return source
    validate_source(source)
    text = str(source)
    if text.endswith(_MTX_SUFFIXES):
        from repro.sparse.io import read_matrix_market

        matrix = read_matrix_market(text)
        return manufacture_problem(
            problem_name_from_path(text), matrix, seed=seed
        )
    return load_problem(text)


# Kept for callers/tests that used the historical private name.
_resolve = resolve_source


def _source_fingerprint(
    source: ProblemSource, seed: int, cache: dict[str, str]
) -> str:
    """Structure fingerprint of a source's matrix, resolving at most once
    per distinct source string (in-memory problems hash directly)."""
    if isinstance(source, Problem):
        return source.matrix.structure_fingerprint()
    text = str(source)
    if text not in cache:
        cache[text] = resolve_source(
            source, seed
        ).matrix.structure_fingerprint()
    return cache[text]


def build_entry(
    problem: Problem,
    config: AcamarConfig,
    acamar: Acamar | None = None,
    model: PerformanceModel | None = None,
    batch_context: BatchContext | None = None,
) -> CampaignEntry:
    """Solve one problem and cost it on the FPGA model.

    ``batch_context`` carries pre-computed host analysis (and the
    lockstep first attempt) when this problem is part of a
    fingerprint-sharing batch; the entry comes out identical either way
    because the injected results are bit-identical.
    """
    acamar = acamar if acamar is not None else Acamar(config)
    model = model if model is not None else PerformanceModel()
    with tm.span("campaign.solve"):
        result = acamar.solve(
            problem.matrix, problem.b, batch_context=batch_context
        )
    with tm.span("campaign.cost_model"):
        latency = model.acamar_latency(problem.matrix, result)
        lengths = problem.matrix.row_lengths()
        underutilization = mean_underutilization(
            lengths, result.plan.unroll_for_rows
        )
        throughput = achieved_throughput_fraction(
            latency.final.spmv_report,
            latency.final.loop_sweeps,
            model.device,
        )
    return CampaignEntry(
        name=problem.name,
        n=problem.n,
        nnz=problem.nnz,
        converged=result.converged,
        solver_sequence=result.solver_sequence,
        iterations=result.final.iterations,
        compute_ms=latency.compute_seconds * 1e3,
        reconfig_ms=sum(a.reconfig_seconds for a in latency.attempts) * 1e3,
        underutilization=underutilization,
        throughput=throughput,
    )


def _shared_batch_contexts(
    config: AcamarConfig, problems: list[Problem]
) -> list[BatchContext]:
    """Host analysis once, first attempt in lockstep, for a whole group.

    All problems must share one operator (same values, verified by the
    caller): the Matrix Structure verdict and unroll plan are computed
    once, the selected solver's first attempt runs for every member in
    lockstep, and each member gets a :class:`BatchContext` carrying its
    own bit-identical first result.
    """
    from repro.solvers.batched import solve_batched

    acamar = Acamar(config)
    matrix = problems[0].matrix
    with tm.span("matrix_structure.select"):
        selection = acamar.matrix_structure.select_solver(matrix)
    plan = acamar.fine_grained.plan(matrix)
    solver_dtype = np.dtype(config.dtype)
    if matrix.data.dtype != solver_dtype:
        compute_matrix = matrix.astype(solver_dtype)
    else:
        compute_matrix = matrix
    solver = acamar._make_solver(selection.solver, matrix.shape[0])
    firsts = solve_batched(
        solver,
        [compute_matrix] * len(problems),
        [problem.b for problem in problems],
    )
    return [
        BatchContext(selection=selection, plan=plan, first_attempt=first)
        for first in firsts
    ]


def solve_group(items: "Sequence[Any]", config: AcamarConfig) -> list:
    """Solve one fingerprint group of work items, batching when possible.

    The group's matrices are expected to share a structure fingerprint
    (the scheduler grouped them); this function additionally verifies
    they share *values* — the symmetry check and solver selection read
    values, so only a genuinely shared operator may share its analysis.
    Groups that fail verification (or have fewer than two members) take
    the sequential per-item path and are counted on
    ``batch.fallback_sequential``.  Either way every item yields the
    same :class:`~repro.parallel.engine.ItemResult` the unbatched worker
    would produce, so campaign CSVs are byte-identical with batching on
    or off.
    """
    from repro.parallel.cost import source_label
    from repro.parallel.engine import ItemResult

    results: dict[int, ItemResult] = {}
    resolved: list[tuple[Any, Problem, Telemetry]] = []
    for item in items:
        collector = Telemetry()
        with collector.activate():
            try:
                with tm.span("campaign.resolve"):
                    problem = resolve_source(item.source, item.seed)
            except Exception as exc:  # noqa: BLE001 — fault isolation
                tm.count("campaign.failures")
                results[item.index] = ItemResult(
                    index=item.index,
                    entry=None,
                    error=f"{type(exc).__name__}: {exc}",
                    label=source_label(item.source),
                    telemetry=collector.as_dict(),
                )
                continue
        resolved.append((item, problem, collector))

    contexts: list[BatchContext | None] = [None] * len(resolved)
    if len(resolved) >= 2:
        base = resolved[0][1].matrix
        shareable = all(
            base.structurally_equal(problem.matrix)
            and np.array_equal(base.data, problem.matrix.data)
            for _, problem, _ in resolved[1:]
        )
        # Shared work is charged to the group's first member: the whole
        # point of batching is that the remaining members pay nothing.
        lead_collector = resolved[0][2]
        with lead_collector.activate():
            if shareable:
                contexts = list(
                    _shared_batch_contexts(
                        config, [problem for _, problem, _ in resolved]
                    )
                )
            else:
                tm.count("batch.groups")
                tm.count("batch.items", len(resolved))
                tm.count("batch.fallback_sequential", len(resolved))

    for (item, problem, collector), context in zip(resolved, contexts):
        with collector.activate():
            try:
                entry = build_entry(problem, config, batch_context=context)
                results[item.index] = ItemResult(
                    index=item.index,
                    entry=entry,
                    error=None,
                    label=entry.name,
                    telemetry=collector.as_dict(),
                )
            except Exception as exc:  # noqa: BLE001 — fault isolation
                tm.count("campaign.failures")
                results[item.index] = ItemResult(
                    index=item.index,
                    entry=None,
                    error=f"{type(exc).__name__}: {exc}",
                    label=source_label(item.source),
                    telemetry=collector.as_dict(),
                )
    return [results[index] for index in sorted(results)]


def _campaign_telemetry(
    collector: Telemetry,
    entries: list[CampaignEntry],
    workers: int,
    wall_seconds: float,
    engine: dict[str, int] | None = None,
) -> dict[str, Any]:
    """Assemble the documented campaign telemetry schema."""
    base = collector.as_dict()
    counters = base["counters"]
    solver_attempts = {
        name.split(".", 1)[1]: value
        for name, value in counters.items()
        if name.startswith("solver_attempts.")
    }
    failures = sum(1 for e in entries if e.failed)
    document: dict[str, Any] = {
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "campaign": {
            "workers": workers,
            "wall_seconds": round(wall_seconds, 6),
            "problems": len(entries),
            "converged": sum(1 for e in entries if e.converged),
            "failures": failures,
        },
        "solver_attempts": solver_attempts,
        "reconfigurations": {
            "spmv_events": counters.get("spmv_reconfig_events", 0),
            "solver_swaps": counters.get("solver_swaps", 0),
            "msid_events_removed": counters.get("msid_events_removed", 0),
        },
        "stages": base["spans"],
        "counters": counters,
    }
    if engine:
        document["campaign"].update(engine)
    return document


def run_campaign(
    sources: Iterable[ProblemSource],
    config: AcamarConfig | None = None,
    seed: int = 1,
    workers: int | None = None,
    chunk_size: int | None = None,
    max_pool_restarts: int = 2,
    executor_factory: Callable[[int], Any] | None = None,
    batch: bool = False,
) -> CampaignReport:
    """Solve every source with Acamar and aggregate the results.

    ``workers=None`` (or ``<= 1``) runs serially in-process; ``workers=N``
    shards across ``N`` worker processes.  Both paths use the same
    per-problem seed derivation and entry construction, so the parallel
    report is entry-for-entry identical to the serial one.  Unresolvable
    sources raise :class:`DatasetError` immediately; solve-time faults
    become failure-annotated entries.

    ``batch=True`` groups the population by matrix structure fingerprint
    before sharding: fingerprint-sharing items land on one worker, which
    runs their host analysis once and their first solver attempt in
    lockstep (:func:`solve_group`).  The batched solver drivers are
    bit-identical to sequential solves, so the report — and its CSV —
    is byte-identical with batching on or off.
    """
    from repro.parallel.cost import estimate_cost
    from repro.parallel.engine import (
        WorkItem,
        run_sharded,
        solve_items,
        solve_items_batched,
    )

    config = config if config is not None else AcamarConfig()
    source_list = list(sources)
    for source in source_list:
        validate_source(source)
    groups: list[str | None] = [None] * len(source_list)
    if batch:
        fingerprint_cache: dict[str, str] = {}
        for index, source in enumerate(source_list):
            try:
                groups[index] = _source_fingerprint(
                    source, seed + index, fingerprint_cache
                )
            except Exception:  # noqa: BLE001 — worker records the failure
                groups[index] = None
    items = [
        WorkItem(
            index=index,
            source=source,
            seed=seed + index,
            cost=estimate_cost(source),
            group=groups[index],
        )
        for index, source in enumerate(source_list)
    ]
    work_fn = solve_items_batched if batch else solve_items

    collector = Telemetry()
    start = time.perf_counter()
    entries: list[CampaignEntry] = []
    engine_stats: dict[str, int] | None = None

    if workers is not None and workers > 1 and len(items) > 1:
        outcome = run_sharded(
            items,
            config,
            workers=workers,
            chunk_size=chunk_size,
            max_pool_restarts=max_pool_restarts,
            executor_factory=executor_factory,
            work_fn=work_fn,
        )
        collector.merge(outcome.telemetry)
        for result in outcome.results:
            if result.entry is not None:
                entries.append(result.entry)
            else:
                entries.append(failure_entry(result.label, result.error))
        engine_stats = {
            "chunks": outcome.chunks,
            "pool_restarts": outcome.pool_restarts,
            "in_process_items": outcome.in_process_items,
            "abandoned_items": outcome.abandoned_items,
        }
        effective_workers = workers
    else:
        for result in work_fn(items, config):
            collector.merge(result.telemetry)
            if result.entry is not None:
                entries.append(result.entry)
            else:
                entries.append(failure_entry(result.label, result.error))
        effective_workers = 1

    wall_seconds = time.perf_counter() - start
    report = CampaignReport(entries=entries)
    report.telemetry = _campaign_telemetry(
        collector, entries, effective_workers, wall_seconds, engine_stats
    )
    return report
