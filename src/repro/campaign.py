"""Campaign runner: Acamar over a whole collection of systems.

A deployment evaluates the accelerator against *its* workload population,
not single matrices.  :func:`run_campaign` takes any mix of problem
sources — Table II keys, ``.mtx`` paths, or in-memory
:class:`~repro.datasets.problem.Problem` objects — solves each with
Acamar, costs it on the FPGA model, and aggregates a
:class:`CampaignReport` (convergence rate, solver mix, latency and
utilization statistics).  The CSV export plugs into the same downstream
tooling as the experiment exports.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Union

import numpy as np

from repro.config import AcamarConfig
from repro.core import Acamar
from repro.datasets import load_problem, manufacture_problem
from repro.datasets.problem import Problem
from repro.datasets.suite import dataset_keys
from repro.errors import DatasetError
from repro.fpga import PerformanceModel, mean_underutilization
from repro.metrics import achieved_throughput_fraction

ProblemSource = Union[str, Path, Problem]


@dataclass(frozen=True)
class CampaignEntry:
    """Outcome of one campaign solve."""

    name: str
    n: int
    nnz: int
    converged: bool
    solver_sequence: tuple[str, ...]
    iterations: int
    compute_ms: float
    reconfig_ms: float
    underutilization: float
    throughput: float


@dataclass
class CampaignReport:
    """Aggregate over all campaign entries."""

    entries: list[CampaignEntry]

    @property
    def convergence_rate(self) -> float:
        if not self.entries:
            return 0.0
        return sum(e.converged for e in self.entries) / len(self.entries)

    @property
    def solver_mix(self) -> dict[str, int]:
        """How often each solver produced the final (converging) result."""
        mix: dict[str, int] = {}
        for entry in self.entries:
            final = entry.solver_sequence[-1]
            mix[final] = mix.get(final, 0) + 1
        return mix

    @property
    def mean_underutilization(self) -> float:
        if not self.entries:
            return 0.0
        return float(np.mean([e.underutilization for e in self.entries]))

    @property
    def mean_throughput(self) -> float:
        if not self.entries:
            return 0.0
        return float(np.mean([e.throughput for e in self.entries]))

    @property
    def total_compute_ms(self) -> float:
        return sum(e.compute_ms for e in self.entries)

    def to_csv(self, path: str | Path) -> Path:
        path = Path(path)
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow([
                "name", "n", "nnz", "converged", "solver_sequence",
                "iterations", "compute_ms", "reconfig_ms",
                "underutilization", "throughput",
            ])
            for e in self.entries:
                writer.writerow([
                    e.name, e.n, e.nnz, e.converged,
                    "->".join(e.solver_sequence), e.iterations,
                    f"{e.compute_ms:.6f}", f"{e.reconfig_ms:.6f}",
                    f"{e.underutilization:.6f}", f"{e.throughput:.6f}",
                ])
        return path

    def summary_lines(self) -> list[str]:
        return [
            f"systems solved        : {len(self.entries)}",
            f"convergence rate      : {self.convergence_rate:.0%}",
            f"solver mix            : {self.solver_mix}",
            f"mean underutilization : {self.mean_underutilization:.1%}",
            f"mean throughput       : {self.mean_throughput:.1%}",
            f"total compute         : {self.total_compute_ms:.3f} ms",
        ]


def _resolve(source: ProblemSource, seed: int) -> Problem:
    if isinstance(source, Problem):
        return source
    text = str(source)
    if text.endswith(".mtx") or text.endswith(".mtx.gz"):
        from repro.sparse.io import read_matrix_market

        matrix = read_matrix_market(text)
        return manufacture_problem(Path(text).stem, matrix, seed=seed)
    if text in dataset_keys():
        return load_problem(text)
    raise DatasetError(
        f"cannot resolve problem source {source!r}: expected a Table II "
        "key, a .mtx path, or a Problem instance"
    )


def run_campaign(
    sources: Iterable[ProblemSource],
    config: AcamarConfig | None = None,
    seed: int = 1,
) -> CampaignReport:
    """Solve every source with Acamar and aggregate the results."""
    config = config if config is not None else AcamarConfig()
    acamar = Acamar(config)
    model = PerformanceModel()
    entries: list[CampaignEntry] = []
    for source in sources:
        problem = _resolve(source, seed)
        result = acamar.solve(problem.matrix, problem.b)
        latency = model.acamar_latency(problem.matrix, result)
        lengths = problem.matrix.row_lengths()
        entries.append(
            CampaignEntry(
                name=problem.name,
                n=problem.n,
                nnz=problem.nnz,
                converged=result.converged,
                solver_sequence=result.solver_sequence,
                iterations=result.final.iterations,
                compute_ms=latency.compute_seconds * 1e3,
                reconfig_ms=sum(
                    a.reconfig_seconds for a in latency.attempts
                ) * 1e3,
                underutilization=mean_underutilization(
                    lengths, result.plan.unroll_for_rows
                ),
                throughput=achieved_throughput_fraction(
                    latency.final.spmv_report,
                    latency.final.loop_sweeps,
                    model.device,
                ),
            )
        )
    return CampaignReport(entries=entries)
