"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-datasets``
    Print the Table II stand-in registry.
``solve``
    Run Acamar (or a single fixed solver) on a dataset or generated
    problem and print the decision trace plus modeled performance.
``campaign``
    Solve a whole workload population (keys and/or ``.mtx`` paths),
    optionally sharded across ``--workers`` processes, with CSV and
    telemetry-JSON export.
``serve``
    Run the online serving simulator over a request log (``--requests``
    JSONL) or freshly generated synthetic traffic.
``loadtest``
    Deterministic synthetic load test: generate traffic for a seed and
    serve it, emitting latency percentiles, queue/shed statistics and
    cache hit rate (byte-identical report for a fixed seed).
``lint``
    Run the whole-program invariant linter (``repro.analysis``): the
    file-scoped determinism, layering, numeric-safety,
    exception-policy, telemetry-naming and virtual-clock rules
    (REP001–REP006) plus the cross-module telemetry-liveness,
    worker-boundary, exit-contract and determinism-escape rules
    (REP007–REP010), with an incremental cache, ``--workers`` fan-out,
    ``--diff`` changed-files mode, SARIF output and baseline
    suppression.
``chaos``
    Run the deterministic fault-injection harness (``repro.faults``)
    against the pool / serve / solver recovery surfaces and audit the
    recovery invariants; violations render lint-style.
``experiment``
    Regenerate one paper table/figure (``table2``, ``fig6``, …) over all
    datasets or a subset.
``experiments``
    Regenerate everything, in the paper's order.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro import Acamar, AcamarConfig
from repro.baselines import StaticDesign
from repro.datasets import dataset_keys, dataset_spec, load_problem, poisson_2d
from repro.experiments import ALL_EXPERIMENTS
from repro.fpga import PerformanceModel


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Acamar (MICRO 2024) reproduction — simulation CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-datasets", help="print the Table II stand-in registry")

    solve = sub.add_parser("solve", help="solve one problem with Acamar")
    source = solve.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", help="Table II key, e.g. 2C")
    source.add_argument(
        "--poisson", type=int, metavar="N", help="2-D Poisson on an NxN grid"
    )
    solve.add_argument(
        "--solver",
        help="bypass the Matrix Structure unit and run this fixed solver",
    )
    solve.add_argument("--sampling-rate", type=int, default=32)
    solve.add_argument("--r-opt", type=int, default=8)
    solve.add_argument("--msid-tolerance", type=float, default=0.15)
    solve.add_argument("--max-iterations", type=int, default=4000)
    solve.add_argument(
        "--counters", action="store_true",
        help="print the hardware-counter snapshot after the solve",
    )
    solve.add_argument(
        "--config", metavar="FILE",
        help="JSON file of AcamarConfig fields (overridden by flags)",
    )

    campaign = sub.add_parser(
        "campaign", help="solve a workload population, optionally in parallel"
    )
    campaign.add_argument(
        "sources", nargs="*",
        help="Table II keys and/or .mtx/.mtx.gz paths",
    )
    campaign.add_argument(
        "--all", action="store_true", dest="all_datasets",
        help="run the full Table II suite (may be combined with sources)",
    )
    campaign.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard across N worker processes (default: serial)",
    )
    campaign.add_argument(
        "--chunk-size", type=int, default=None, metavar="K",
        help="cap scheduling chunks at K problems each",
    )
    campaign.add_argument("--seed", type=int, default=1)
    campaign.add_argument(
        "--batch", action="store_true",
        help="group fingerprint-sharing problems and solve them in "
        "lockstep (bit-identical results, amortized host analysis)",
    )
    campaign.add_argument(
        "--substrate", metavar="NAME", default=None,
        help="kernel substrate for SpMV inner stages (default: numpy; "
        "'numba' needs the optional compiled backend)",
    )
    campaign.add_argument(
        "--telemetry", metavar="FILE",
        help="write the telemetry aggregate as JSON (docs/operations.md)",
    )
    campaign.add_argument(
        "--csv", metavar="FILE", help="write the per-problem table as CSV"
    )

    def add_serving_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--duration", type=float, default=5.0, metavar="S",
            help="simulated traffic duration in seconds",
        )
        p.add_argument(
            "--rate", type=float, default=120.0, metavar="RPS",
            help="mean request arrival rate",
        )
        p.add_argument(
            "--mix", default="repeat-heavy",
            choices=("uniform", "repeat-heavy", "bursty"),
            help="traffic mix over the Table II registry",
        )
        p.add_argument(
            "--deadline-ms", type=float, default=100.0,
            help="relative deadline of interactive requests",
        )
        p.add_argument("--queue-capacity", type=int, default=64)
        p.add_argument("--max-batch", type=int, default=8)
        p.add_argument("--batch-window-ms", type=float, default=1.0)
        p.add_argument(
            "--devices", type=int, default=1,
            help="FPGAs in the serving fleet",
        )
        p.add_argument(
            "--slots-per-device", type=int, default=4,
            help="co-resident solver instances per device",
        )
        p.add_argument(
            "--gpu-tenants", type=int, default=0, metavar="N",
            help="MPS GPU tenant partitions alongside the FPGA slots "
            "(0 = pure-FPGA fleet; cluster mode: tenants per fleet)",
        )
        p.add_argument(
            "--cpu-assist", action="store_true",
            help="offload cold-path structural analysis to a host CPU "
            "core (adds a PCIe round trip, frees device time)",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="disable the fingerprint-keyed plan cache",
        )
        p.add_argument("--cache-capacity", type=int, default=256)
        p.add_argument(
            "--workers", type=int, default=1, metavar="N",
            help="worker processes for cold-solve profiling",
        )
        p.add_argument(
            "--out", metavar="FILE",
            help="write the full JSON report (deterministic for a seed)",
        )
        p.add_argument(
            "--responses", metavar="FILE",
            help="write the response log as JSONL",
        )
        p.add_argument(
            "--telemetry", metavar="FILE",
            help="write wall-clock telemetry (spans are NOT deterministic)",
        )

    serve = sub.add_parser(
        "serve", help="run the serving simulator over a request stream"
    )
    serve.add_argument(
        "--requests", metavar="FILE",
        help="JSONL request log to replay (default: generate synthetic)",
    )
    serve.add_argument(
        "--save-requests", metavar="FILE",
        help="write the generated request log as JSONL",
    )
    add_serving_flags(serve)

    loadtest = sub.add_parser(
        "loadtest", help="deterministic synthetic load test"
    )
    add_serving_flags(loadtest)

    cluster = loadtest.add_argument_group(
        "cluster mode",
        "multi-fleet simulator (repro.serve.cluster); ignores the "
        "single-fleet --queue-capacity/--max-batch/--batch-window-ms/"
        "--devices/--slots-per-device/--no-cache flags",
    )
    cluster.add_argument(
        "--cluster", action="store_true",
        help="serve through the fingerprint-routed fleet cluster",
    )
    cluster.add_argument(
        "--fleets", type=int, default=2, metavar="N",
        help="initial fleet count",
    )
    cluster.add_argument("--min-fleets", type=int, default=1, metavar="N")
    cluster.add_argument("--max-fleets", type=int, default=8, metavar="N")
    cluster.add_argument(
        "--slots-per-fleet", type=int, default=4, metavar="N",
        help="co-resident solver instances per fleet",
    )
    cluster.add_argument(
        "--cluster-queue-capacity", type=int, default=4096, metavar="N",
        help="per-fleet admission queue bound",
    )
    cluster.add_argument(
        "--cluster-max-batch", type=int, default=64, metavar="N",
    )
    cluster.add_argument(
        "--batch-fill-ms", type=float, default=40.0, metavar="MS",
        help="micro-batch fill window on the cluster tier",
    )
    cluster.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="epoch length = autoscaler evaluation interval",
    )
    cluster.add_argument(
        "--remote-fetch-ms", type=float, default=0.25, metavar="MS",
        help="modeled cost of a remote plan-cache hit",
    )
    cluster.add_argument(
        "--vnodes", type=int, default=64, metavar="N",
        help="virtual nodes per fleet on the consistent-hash ring",
    )
    cluster.add_argument(
        "--no-affinity", action="store_true",
        help="round-robin routing instead of fingerprint affinity",
    )
    cluster.add_argument(
        "--no-autoscale", action="store_true",
        help="hold the fleet count static at --fleets",
    )
    cluster.add_argument(
        "--max-gpu-tenants", type=int, default=None, metavar="N",
        help="cluster-wide cap on GPU tenant partitions; the "
        "autoscaler clamps new fleets' tenancy to stay under it "
        "(default: uncapped)",
    )

    lint = sub.add_parser(
        "lint", help="machine-check the repo's invariants (REP001–REP010)"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--format", default="text",
        choices=("text", "json", "github", "sarif"),
        help="finding renderer (github emits PR annotations, sarif a "
        "SARIF 2.1.0 log for code-scanning upload)",
    )
    lint.add_argument(
        "--baseline", metavar="FILE",
        help="baseline file of grandfathered findings "
        "(default: the committed repro/analysis/baseline.json)",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    lint.add_argument(
        "--prune-baseline", action="store_true",
        help="rewrite the baseline file dropping entries that no longer "
        "fire, then report as usual",
    )
    lint.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule subset, e.g. REP001,REP008",
    )
    lint.add_argument(
        "--diff", metavar="REF",
        help="only report file-scoped findings for files changed since "
        "REF (cross-module REP007–REP010 findings always report)",
    )
    lint.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="fan cold-file parsing out over N pool workers (default 1)",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the incremental lint cache",
    )
    lint.add_argument(
        "--cache", metavar="FILE",
        help="incremental cache location (default: .repro-lint-cache.json "
        "in the working directory)",
    )
    lint.add_argument(
        "--out", metavar="FILE",
        help="also write the rendered report to FILE",
    )

    chaos = sub.add_parser(
        "chaos",
        help="inject deterministic faults and audit recovery invariants",
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="seed of the fault schedule (same seed → byte-identical "
        "report)",
    )
    chaos.add_argument(
        "--profile", default="all",
        choices=("pool", "serve", "solver", "cluster", "placement", "all"),
        help="which recovery surface to attack (default: all of them)",
    )
    chaos.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="report renderer",
    )
    chaos.add_argument(
        "--out", metavar="FILE",
        help="also write the JSON report to FILE",
    )

    dse = sub.add_parser(
        "dse",
        help="explore fleet design space and answer capacity queries",
    )
    dse.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="workload seed (same seed → byte-identical report)",
    )
    dse.add_argument(
        "--space", metavar="FILE",
        help="design-space JSON (default: the built-in demo space)",
    )
    dse.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the sweep (never changes the report)",
    )
    dse.add_argument(
        "--slo-ms", type=float, default=None, metavar="MS",
        help="capacity query: p99 SLO in milliseconds",
    )
    dse.add_argument(
        "--rate", type=float, default=None, metavar="RPS",
        help="capacity query: target arrival rate",
    )
    dse.add_argument(
        "--max-shed", type=float, default=None, metavar="FRAC",
        help="capacity query: tolerable shed fraction",
    )
    dse.add_argument(
        "--format", default="text", choices=("text", "json", "csv"),
        help="report renderer",
    )
    dse.add_argument(
        "--out", metavar="FILE",
        help="also write the JSON report to FILE",
    )
    dse.add_argument(
        "--csv", metavar="FILE",
        help="also write the per-point CSV to FILE",
    )
    dse.add_argument(
        "--telemetry", metavar="FILE",
        help="write wall-clock telemetry (spans are NOT deterministic)",
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument(
        "name", choices=sorted(ALL_EXPERIMENTS), help="experiment id"
    )
    experiment.add_argument(
        "--keys",
        help="comma-separated dataset subset (default: all 25)",
    )
    experiment.add_argument(
        "--chart", metavar="COLUMN",
        help="also render the named numeric column as ASCII bars",
    )

    sub.add_parser("experiments", help="regenerate every table and figure")
    sub.add_parser(
        "summary", help="run everything and print the paper-claim checklist"
    )
    export = sub.add_parser(
        "export", help="write every experiment table as CSV + JSON"
    )
    export.add_argument("directory", help="output directory")
    export.add_argument("--keys", help="comma-separated dataset subset")
    return parser


def _cmd_list_datasets() -> int:
    print(f"{'key':4s} {'dataset':20s} {'paper dim':10s} {'n':>5s} structure")
    for key in dataset_keys():
        spec = dataset_spec(key)
        print(
            f"{spec.key:4s} {spec.name:20s} {spec.paper_dim:10s} "
            f"{spec.n:>5d} {spec.structure}"
        )
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    """Solve one problem.

    Exit-code contract (pinned in ``tests/test_cli.py``): 0 when the
    final attempt converges, 1 when it does not (fixed solver or the
    Acamar fallback chain alike), 2 for an unresolvable source.
    """
    if args.config:
        import json

        with open(args.config) as fh:
            config = AcamarConfig.from_dict(json.load(fh))
        config = config.with_overrides(
            sampling_rate=args.sampling_rate,
            r_opt=args.r_opt,
            msid_tolerance=args.msid_tolerance,
            max_iterations=args.max_iterations,
        )
    else:
        config = AcamarConfig(
            sampling_rate=args.sampling_rate,
            r_opt=args.r_opt,
            msid_tolerance=args.msid_tolerance,
            max_iterations=args.max_iterations,
        )
    from repro.errors import DatasetError

    try:
        if args.dataset:
            problem = load_problem(args.dataset)
        else:
            problem = poisson_2d(args.poisson)
    except DatasetError as exc:
        print(f"solve: {exc}", file=sys.stderr)
        return 2
    print(f"problem: {problem.name}  n={problem.n}  nnz={problem.nnz}")

    model = PerformanceModel()
    if args.solver:
        design = StaticDesign(args.solver, spmv_urb=8, config=config)
        result = design.solve(problem.matrix, problem.b)
        latency = design.latency(problem.matrix, result, model)
        print(f"fixed solver {args.solver!r}: {result.status.value} "
              f"after {result.iterations} iterations "
              f"(residual {result.final_residual:.2e})")
        print(f"modeled compute latency: {latency.compute_seconds * 1e3:.3f} ms")
        return 0 if result.converged else 1

    acamar = Acamar(config)
    result = acamar.solve(problem.matrix, problem.b)
    print(f"matrix structure: {result.selection.reason}")
    print(f"solver sequence: {' -> '.join(result.solver_sequence)}")
    print(f"outcome: {result.final.status.value} after "
          f"{result.final.iterations} iterations "
          f"(residual {result.final.final_residual:.2e})")
    plan = result.plan
    print(f"plan: {len(plan.sets)} sets, {plan.reconfiguration_count} "
          f"reconfigurations/sweep (MSID removed {plan.msid.events_removed})")
    latency = model.acamar_latency(problem.matrix, result)
    print(f"modeled compute latency: {latency.compute_seconds * 1e3:.3f} ms "
          f"(+{latency.final.reconfig_seconds * 1e3:.3f} ms reconfiguration)")
    if args.counters:
        from repro.fpga.counters import collect_counters

        print("\nperformance counters:")
        for line in collect_counters(problem.matrix, result, model).to_lines():
            print(f"  {line}")
    return 0 if result.converged else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import run_campaign

    sources: list[str] = list(args.sources)
    if args.all_datasets:
        sources = list(dataset_keys()) + sources
    if not sources:
        print(
            "campaign: no sources given (pass keys/.mtx paths or --all)",
            file=sys.stderr,
        )
        return 2
    from repro.errors import DatasetError, ReproError

    if args.substrate is not None:
        from repro.sparse.substrate import SUBSTRATE_ENV, set_substrate

        try:
            set_substrate(args.substrate)
        except ReproError as exc:
            print(f"campaign: {exc}", file=sys.stderr)
            return 2
        # Worker processes pick the substrate up from the environment.
        os.environ[SUBSTRATE_ENV] = args.substrate
    try:
        report = run_campaign(
            sources,
            seed=args.seed,
            workers=args.workers,
            chunk_size=args.chunk_size,
            batch=args.batch,
        )
    except DatasetError as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2
    for line in report.summary_lines():
        print(line)
    for entry in report.failures:
        print(f"FAILED {entry.name}: {entry.failure}")
    if args.csv:
        print(f"wrote CSV to {report.to_csv(args.csv)}")
    if args.telemetry:
        print(f"wrote telemetry to {report.write_telemetry(args.telemetry)}")
    converged = sum(1 for e in report.entries if e.converged)
    return 0 if report.entries and converged == len(report.entries) else 1


def _cmd_cluster(args: argparse.Namespace) -> int:
    """``repro loadtest --cluster``: the multi-fleet simulator."""
    from repro.errors import ConfigurationError
    from repro.serve import (
        ClusterConfig,
        ClusterLoadSpec,
        run_cluster_loadtest,
    )

    try:
        spec = ClusterLoadSpec(
            seed=args.seed,
            duration_s=args.duration,
            rate_rps=args.rate,
            mix=args.mix,
            deadline_ms=args.deadline_ms,
        )
        config = ClusterConfig(
            initial_fleets=args.fleets,
            min_fleets=args.min_fleets,
            max_fleets=args.max_fleets,
            slots_per_fleet=args.slots_per_fleet,
            gpu_tenants_per_fleet=args.gpu_tenants,
            cpu_assist=args.cpu_assist,
            max_gpu_tenants=args.max_gpu_tenants,
            max_batch=args.cluster_max_batch,
            batch_fill_ms=args.batch_fill_ms,
            queue_capacity=args.cluster_queue_capacity,
            cache_capacity=args.cache_capacity,
            remote_fetch_ms=args.remote_fetch_ms,
            interval_s=args.interval,
            vnodes=args.vnodes,
            affinity_routing=not args.no_affinity,
            autoscale=not args.no_autoscale,
            workers=args.workers,
        )
    except ConfigurationError as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"loadtest: {message}", file=sys.stderr)
        return 2
    report = run_cluster_loadtest(spec, config)
    print(
        f"loadtest --cluster: served {report.generated} requests over "
        f"{len(report.fleets)} fleet(s)"
    )
    for line in report.summary_lines():
        print(line)
    if report.unaccounted:
        print(
            f"loadtest: {report.unaccounted} request(s) landed in no "
            "accounting bucket — invariant violated",
            file=sys.stderr,
        )
        return 1
    if args.out:
        print(f"wrote report to {report.write_json(args.out)}")
    if args.telemetry:
        print(f"wrote telemetry to "
              f"{report.telemetry.write_json(args.telemetry)}")
    return 0


def _cmd_serving(args: argparse.Namespace, command: str) -> int:
    """Shared implementation of ``serve`` and ``loadtest``."""
    if command == "loadtest" and getattr(args, "cluster", False):
        return _cmd_cluster(args)
    from repro.fpga import FleetSpec
    from repro.serve import (
        LoadSpec,
        ServiceConfig,
        generate_requests,
        read_request_log,
        run_service,
        write_request_log,
    )

    service_config = ServiceConfig(
        queue_capacity=args.queue_capacity,
        max_batch=args.max_batch,
        batch_window_ms=args.batch_window_ms,
        cache_enabled=not args.no_cache,
        cache_capacity=args.cache_capacity,
        fleet=FleetSpec(
            devices=args.devices,
            slots_per_device=args.slots_per_device,
            gpu_tenants=args.gpu_tenants,
            cpu_assist=args.cpu_assist,
        ),
        workers=args.workers,
    )
    requests_path = getattr(args, "requests", None)
    if requests_path:
        requests = read_request_log(requests_path)
        meta = {"request_log": str(requests_path)}
    else:
        spec = LoadSpec(
            seed=args.seed,
            duration_s=args.duration,
            rate_rps=args.rate,
            mix=args.mix,
            deadline_ms=args.deadline_ms,
        )
        requests = generate_requests(spec)
        meta = {
            "seed": spec.seed,
            "duration_s": spec.duration_s,
            "rate_rps": spec.rate_rps,
            "mix": spec.mix,
        }
        if getattr(args, "save_requests", None):
            print(
                f"wrote request log to "
                f"{write_request_log(requests, args.save_requests)}"
            )
    report = run_service(requests, service_config, meta=meta)
    print(f"{command}: served {len(requests)} requests "
          f"({'no cache' if args.no_cache else 'fingerprint cache on'})")
    for line in report.summary_lines():
        print(line)
    if report.unaccounted:
        print(
            f"{command}: {report.unaccounted} request(s) received no "
            "response — accounting invariant violated",
            file=sys.stderr,
        )
        return 1
    if args.out:
        print(f"wrote report to {report.write_json(args.out)}")
    if args.responses:
        print(f"wrote response log to "
              f"{report.write_response_log(args.responses)}")
    if args.telemetry:
        print(f"wrote telemetry to "
              f"{report.telemetry.write_json(args.telemetry)}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the whole-program invariant linter.

    Exit-code contract (pinned in ``tests/analysis/test_lint_cli.py``,
    matching the ``repro solve`` style): 0 when the tree is clean (or a
    baseline was written), 1 when findings remain, 2 for a usage error
    (bad path, bad baseline, unknown rule, bad diff ref).
    """
    from pathlib import Path

    import repro
    from repro.analysis import (
        DEFAULT_BASELINE,
        apply_baseline,
        changed_files,
        format_findings,
        load_baseline,
        prune_baseline,
        run_project_lint,
        write_baseline,
    )
    from repro.errors import ConfigurationError, UnknownNameError

    paths = [Path(p) for p in args.paths]
    if not paths:
        paths = [Path(repro.__file__).parent]
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    baseline_path = Path(args.baseline) if args.baseline else DEFAULT_BASELINE
    try:
        if args.write_baseline and args.prune_baseline:
            raise ConfigurationError(
                "--write-baseline and --prune-baseline are mutually "
                "exclusive"
            )
        changed = None
        if args.diff:
            changed = changed_files(Path.cwd(), args.diff)
        report = run_project_lint(
            paths,
            rules=rules,
            workers=max(1, args.workers),
            cache_path=Path(args.cache) if args.cache else None,
            use_cache=not args.no_cache,
            changed_only=changed,
        )
        if args.write_baseline:
            print(f"wrote baseline to {write_baseline(report, baseline_path)}")
            return 0
        if args.prune_baseline:
            kept, dropped = prune_baseline(
                report, load_baseline(baseline_path), baseline_path
            )
            print(
                f"pruned baseline {baseline_path}: kept {kept} "
                f"entr(y/ies), dropped {dropped} stale",
                file=sys.stderr,
            )
        if baseline_path.exists() or args.baseline:
            report = apply_baseline(report, load_baseline(baseline_path))
    except (ConfigurationError, UnknownNameError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"lint: {message}", file=sys.stderr)
        return 2
    rendered = format_findings(report, args.format)
    if args.out:
        Path(args.out).write_text(rendered + "\n", encoding="utf-8")
        print(f"wrote lint report to {args.out}", file=sys.stderr)
    print(rendered)
    return 0 if report.clean else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the fault-injection harness.

    Same exit-code contract as ``repro lint`` (pinned in
    ``tests/faults/test_chaos_cli.py``): 0 when every recovery
    invariant held, 1 when violations were found, 2 for a usage error.
    """
    from pathlib import Path

    from repro.errors import ConfigurationError, UnknownNameError
    from repro.faults import CHAOS_PROFILES, run_chaos

    profiles = (
        CHAOS_PROFILES if args.profile == "all" else (args.profile,)
    )
    try:
        report = run_chaos(args.chaos_seed, profiles)
    except (ConfigurationError, UnknownNameError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"chaos: {message}", file=sys.stderr)
        return 2
    if args.out:
        Path(args.out).write_text(report.to_json())
    if args.format == "json":
        print(report.to_json(), end="")
    else:
        print(report.render_text())
    return 0 if report.clean else 1


def _cmd_dse(args: argparse.Namespace) -> int:
    """Explore the fleet design space and answer the capacity query.

    Exit-code contract (pinned in ``tests/dse/test_dse_cli.py``): 0
    when a feasible cheapest configuration exists, 1 when the query has
    no feasible answer, 2 for a usage error (bad space file, bad query
    bounds, unknown sources).
    """
    from pathlib import Path

    from repro.dse import CapacityQuery, load_space, run_dse
    from repro.errors import ConfigurationError, UnknownNameError
    from repro.telemetry import Telemetry

    collector = Telemetry()
    try:
        space = load_space(args.space) if args.space else None
        query_overrides = {
            key: value
            for key, value in (
                ("slo_p99_ms", args.slo_ms),
                ("rate_rps", args.rate),
                ("max_shed_rate", args.max_shed),
            )
            if value is not None
        }
        query = CapacityQuery(**query_overrides)
        report = run_dse(
            space=space,
            seed=args.seed,
            workers=args.workers,
            query=query,
            collector=collector,
        )
    except (ConfigurationError, UnknownNameError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"dse: {message}", file=sys.stderr)
        return 2
    if args.out:
        print(f"wrote report to {report.write_json(args.out)}",
              file=sys.stderr)
    if args.csv:
        print(f"wrote CSV to {report.write_csv(args.csv)}",
              file=sys.stderr)
    if args.telemetry:
        print(f"wrote telemetry to "
              f"{collector.write_json(Path(args.telemetry))}",
              file=sys.stderr)
    if args.format == "json":
        print(report.to_json(), end="")
    elif args.format == "csv":
        print(report.to_csv(), end="")
    else:
        print(report.render_text(), end="")
    return 0 if report.capacity["cheapest"] is not None else 1


def _parse_keys(raw: str | None) -> tuple[str, ...] | None:
    if raw is None:
        return None
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def _cmd_experiment(args: argparse.Namespace) -> int:
    module = ALL_EXPERIMENTS[args.name]
    keys = _parse_keys(args.keys)
    table = module.run(keys) if args.name != "table1" else module.run()
    print(table.to_text())
    if args.chart:
        print()
        print(table.render_series(table.headers[0], args.chart))
    return 0


def _cmd_experiments() -> int:
    for name, module in ALL_EXPERIMENTS.items():
        print(module.run().to_text())
        print()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list-datasets":
        return _cmd_list_datasets()
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command in ("serve", "loadtest"):
        return _cmd_serving(args, args.command)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "dse":
        return _cmd_dse(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "experiments":
        return _cmd_experiments()
    if args.command == "summary":
        from repro.experiments.summary import run as run_summary

        table = run_summary()
        print(table.to_text())
        return 0 if all(table.column("holds")) else 1
    if args.command == "export":
        from repro.experiments.export import export_all

        files = export_all(args.directory, _parse_keys(args.keys))
        print(f"wrote {len(files)} files to {args.directory}")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
