"""Worker-pool execution engine for campaign workloads.

Shards a population of problem sources across a
:class:`~concurrent.futures.ProcessPoolExecutor`:

- **cost-aware chunking** — items are greedily packed (longest-processing-
  time-first) into chunks balanced by estimated cost, a proxy for the
  solve's NNZ-driven work, so one heavy matrix does not serialize the
  tail of the campaign,
- **deterministic seeds** — each item carries the seed the campaign
  derived from its position, so parallel runs reproduce the serial run
  entry for entry,
- **ordered reassembly** — workers return results tagged with the item's
  original index; callers always see campaign order,
- **fault isolation** — a solve that raises inside a worker yields a
  structured error record for that item only; a *lost worker process*
  (``BrokenProcessPool``) triggers a bounded number of pool restarts with
  singleton resubmission, after which every still-in-flight suspect is
  recorded as a structured ``WorkerLost`` failure (results completed by
  surviving chunks are kept); only when the pool could never be started
  at all is the remainder finished in-process,
- **per-worker telemetry** — every item is solved under its own
  :class:`~repro.telemetry.Telemetry` collector whose dict form rides
  back with the result for the campaign to merge.

The heavy imports (datasets, solvers) happen lazily inside the worker
function so the module itself stays cheap to import in the parent.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.config import AcamarConfig
from repro.errors import ConfigurationError
from repro.parallel.cost import estimate_cost, source_label
from repro.telemetry import Telemetry

__all__ = [
    "DEFAULT_OVERSUBSCRIPTION",
    "MAX_ITEM_ATTEMPTS",
    "ItemResult",
    "ParallelOutcome",
    "WorkItem",
    "default_worker_count",
    "estimate_cost",  # re-exported from repro.parallel.cost
    "run_sharded",
    "shard_by_cost",
    "solve_items",
    "solve_items_batched",
    "source_label",  # re-exported from repro.parallel.cost
]

DEFAULT_OVERSUBSCRIPTION = 4
"""Chunks per worker in the first scheduling epoch.

More chunks than workers lets the pool rebalance dynamically when cost
estimates are off; fewer, larger chunks amortize task overhead.  Four is
a conventional middle ground.
"""

MAX_ITEM_ATTEMPTS = 2
"""Pool-loss retries per item before it is recorded as a failure."""


@dataclass(frozen=True)
class WorkItem:
    """One schedulable campaign solve.

    ``group`` is an optional batching key (the campaign uses the matrix
    structure fingerprint): items sharing a group are kept in one chunk
    by :func:`shard_by_cost` so the worker can solve them in lockstep.
    ``None`` (the default) means the item schedules independently.
    """

    index: int
    source: Any  # str | Path | Problem — kept loose to avoid heavy imports
    seed: int
    cost: float
    group: str | None = None


@dataclass(frozen=True)
class ItemResult:
    """What a worker reports back for one item."""

    index: int
    entry: Any | None  # CampaignEntry on success
    error: str | None
    label: str
    telemetry: dict[str, Any]


@dataclass
class ParallelOutcome:
    """Ordered results plus engine-level statistics."""

    results: list[ItemResult]
    telemetry: Telemetry
    workers: int
    pool_restarts: int = 0
    in_process_items: int = 0
    abandoned_items: int = 0
    chunks: int = 0


WORKER_COUNT_ENV = "REPRO_WORKERS"
"""Environment variable that pins the default pool size."""


def default_worker_count() -> int:
    """Worker-pool size when the caller does not pass one.

    Defaults to the host CPU count; a ``REPRO_WORKERS`` environment
    variable overrides it so serve/campaign deployments can pin pool
    size without code changes.  The override must be a positive integer.
    """
    raw = os.environ.get(WORKER_COUNT_ENV)
    if raw is not None:
        try:
            workers = int(raw.strip())
        except ValueError:
            workers = -1
        if workers < 1:
            raise ConfigurationError(
                f"{WORKER_COUNT_ENV} must be a positive integer, got {raw!r}"
            )
        return workers
    return max(1, os.cpu_count() or 1)


def shard_by_cost(
    items: Sequence[WorkItem], n_chunks: int
) -> list[list[WorkItem]]:
    """Pack items into ``n_chunks`` cost-balanced chunks (LPT greedy).

    Items are assigned heaviest-first to the currently lightest chunk,
    then each chunk is restored to campaign (index) order.  Empty chunks
    are dropped, so the result has at most ``n_chunks`` entries.

    Items sharing a non-``None`` ``group`` are scheduled as one
    indivisible unit (summed cost), so a fingerprint-sharing batch is
    never split across workers.  Ungrouped items behave exactly as
    before.
    """
    units: list[list[WorkItem]] = []
    by_group: dict[str, list[WorkItem]] = {}
    for item in items:
        if item.group is None:
            units.append([item])
        elif item.group in by_group:
            by_group[item.group].append(item)
        else:
            unit = [item]
            by_group[item.group] = unit
            units.append(unit)
    n_chunks = max(1, min(int(n_chunks), len(units)))
    chunks: list[list[WorkItem]] = [[] for _ in range(n_chunks)]
    loads = [0.0] * n_chunks
    for unit in sorted(
        units,
        key=lambda u: (-sum(it.cost for it in u), min(it.index for it in u)),
    ):
        target = loads.index(min(loads))
        chunks[target].extend(unit)
        loads[target] += sum(it.cost for it in unit)
    packed = [sorted(chunk, key=lambda it: it.index) for chunk in chunks]
    return [chunk for chunk in packed if chunk]


def solve_items(
    items: Sequence[WorkItem], config: AcamarConfig
) -> list[ItemResult]:
    """Worker entry point: solve a chunk of items, isolating each fault.

    Runs in the pool's worker processes (and doubles as the in-process
    fallback path).  Every item gets its own telemetry collector; any
    exception is converted to a structured error record so one diverging
    or crashing solve cannot take down its chunk-mates.
    """
    from repro import telemetry as tm
    from repro.campaign import build_entry, resolve_source

    results: list[ItemResult] = []
    for item in items:
        collector = Telemetry()
        with collector.activate():
            try:
                with tm.span("campaign.resolve"):
                    problem = resolve_source(item.source, item.seed)
                entry = build_entry(problem, config)
                results.append(
                    ItemResult(
                        index=item.index,
                        entry=entry,
                        error=None,
                        label=entry.name,
                        telemetry=collector.as_dict(),
                    )
                )
            except Exception as exc:  # noqa: BLE001 — fault isolation
                tm.count("campaign.failures")
                results.append(
                    ItemResult(
                        index=item.index,
                        entry=None,
                        error=f"{type(exc).__name__}: {exc}",
                        label=source_label(item.source),
                        telemetry=collector.as_dict(),
                    )
                )
    return results


def solve_items_batched(
    items: Sequence[WorkItem], config: AcamarConfig
) -> list[ItemResult]:
    """Worker entry point for fingerprint-batched campaigns.

    Partitions the chunk by :attr:`WorkItem.group` (preserving first-seen
    order) and hands each group to the campaign's lockstep group solver;
    ungrouped items run as singleton groups.  Results come back in
    campaign (index) order, exactly like :func:`solve_items` — the
    batched path is a scheduling optimization, never a semantic one.
    """
    from repro.campaign import solve_group

    order: list[list[WorkItem]] = []
    by_group: dict[str, list[WorkItem]] = {}
    for item in items:
        if item.group is None:
            order.append([item])
        elif item.group in by_group:
            by_group[item.group].append(item)
        else:
            members = [item]
            by_group[item.group] = members
            order.append(members)
    results: list[ItemResult] = []
    for members in order:
        results.extend(solve_group(members, config))
    return sorted(results, key=lambda r: r.index)


def _lost_worker_result(item: WorkItem, attempts: int) -> ItemResult:
    # A lost worker is a campaign failure exactly like an in-process
    # solve fault, so its result telemetry carries the same
    # ``campaign.failures`` increment the fault-isolation path in
    # :func:`solve_items` records — aggregate failure counts agree no
    # matter which path recorded an item.
    telemetry = Telemetry()
    telemetry.count("campaign.failures")
    telemetry.count("campaign.workers_lost")
    return ItemResult(
        index=item.index,
        entry=None,
        error=(
            "WorkerLost: worker process died while this item was in "
            f"flight ({attempts} attempts)"
        ),
        label=source_label(item.source),
        telemetry=telemetry.as_dict(),
    )


def run_sharded(
    items: Sequence[WorkItem],
    config: AcamarConfig,
    workers: int,
    chunk_size: int | None = None,
    max_pool_restarts: int = 2,
    executor_factory: Callable[[int], Any] | None = None,
    work_fn: Callable[..., list[ItemResult]] = solve_items,
) -> ParallelOutcome:
    """Solve ``items`` on a worker pool; always returns a full outcome.

    ``executor_factory`` exists for tests (inject a deterministic fake);
    production use leaves it ``None`` for ``ProcessPoolExecutor``.
    ``chunk_size`` caps items per chunk; by default chunk count is
    ``workers * DEFAULT_OVERSUBSCRIPTION``.  ``work_fn`` is the worker
    entry point (``(items, config) -> list[ItemResult]``); it defaults to
    the campaign's :func:`solve_items` and must be a picklable top-level
    function — the serving profiler passes its own
    (:func:`repro.serve.profile.profile_items`) to reuse the pool,
    restart, and reassembly machinery for a different unit of work.
    """
    telemetry = Telemetry()
    outcome = ParallelOutcome(results=[], telemetry=telemetry, workers=workers)
    if not items:
        return outcome
    if executor_factory is None:
        def executor_factory(n: int) -> ProcessPoolExecutor:
            return ProcessPoolExecutor(max_workers=n)

    pending: dict[int, WorkItem] = {item.index: item for item in items}
    attempts: dict[int, int] = {item.index: 0 for item in items}
    collected: dict[int, ItemResult] = {}
    epoch = 0
    pool_ever_broke = False

    while pending and outcome.pool_restarts <= max_pool_restarts:
        if epoch == 0:
            if chunk_size is not None:
                n_chunks = -(-len(pending) // max(1, int(chunk_size)))
            else:
                n_chunks = workers * DEFAULT_OVERSUBSCRIPTION
            chunks = shard_by_cost(list(pending.values()), n_chunks)
        else:
            # Singleton resubmission localizes blame for the pool loss.
            chunks = [[item] for item in pending.values()]
        outcome.chunks += len(chunks)
        epoch += 1
        broke = False
        try:
            executor = executor_factory(workers)
        except OSError:
            break  # cannot start workers at all → in-process fallback
        try:
            futures = {
                executor.submit(work_fn, tuple(chunk), config): chunk
                for chunk in chunks
            }
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    try:
                        batch = future.result()
                    except BrokenProcessPool:
                        broke = True
                        continue
                    for result in batch:
                        collected[result.index] = result
                        pending.pop(result.index, None)
                        telemetry.merge(result.telemetry)
                if broke:
                    break
        finally:
            executor.shutdown(wait=not broke, cancel_futures=True)
        if broke:
            pool_ever_broke = True
            outcome.pool_restarts += 1
            for index in pending:
                attempts[index] += 1
            exhausted = [
                index
                for index, item in pending.items()
                if attempts[index] >= MAX_ITEM_ATTEMPTS
            ]
            for index in exhausted:
                item = pending.pop(index)
                result = _lost_worker_result(item, attempts[index])
                collected[index] = result
                outcome.abandoned_items += 1
                telemetry.merge(result.telemetry)
        else:
            break

    if pending and pool_ever_broke:
        # Restart budget exhausted while these items were in flight:
        # every one of them is a crash suspect (it shared its last pool
        # with a breakage), so retrying it in this process would risk
        # the parent.  Record each as a structured WorkerLost result;
        # results already completed by surviving chunks stay collected.
        for index in sorted(pending):
            item = pending.pop(index)
            result = _lost_worker_result(item, attempts[index])
            collected[index] = result
            outcome.abandoned_items += 1
            telemetry.merge(result.telemetry)
    elif pending:
        # The pool never started at all (OSError before any submission):
        # the items are innocent, so finish them in this process.
        leftovers = sorted(pending.values(), key=lambda it: it.index)
        outcome.in_process_items += len(leftovers)
        for result in work_fn(leftovers, config):
            collected[result.index] = result
            telemetry.merge(result.telemetry)

    outcome.results = [collected[index] for index in sorted(collected)]
    return outcome
