"""Cost estimation and labeling of problem sources.

These helpers are shared by the worker-pool engine (chunk balancing),
the campaign runner, and the serving admission controller
(:mod:`repro.serve.admission`).  They live apart from
:mod:`repro.parallel.engine` so consumers that only need a cost hint —
such as an admission decision on a queued solve request — do not import
the pool machinery (executors, futures, retry bookkeeping).

``estimate_cost`` is deliberately heuristic: relative error against the
true NNZ only skews load balance or an admission hint, never
correctness.
"""

from __future__ import annotations

import os
from typing import Any


def estimate_cost(source: Any) -> float:
    """Estimated solve cost of a source, in NNZ-like units.

    In-memory problems report their exact NNZ.  Matrix Market paths are
    costed by file size (proportional to NNZ — one text line per entry).
    Table II keys fall back to the registry's dimension ``n``; relative
    error against true NNZ only skews chunk balance, never correctness.
    """
    from repro.datasets.problem import Problem

    if isinstance(source, Problem):
        return float(source.nnz)
    text = str(source)
    if text.endswith((".mtx", ".mtx.gz")):
        try:
            return float(os.path.getsize(text))
        except OSError:
            return 1.0
    from repro.datasets.suite import dataset_keys, dataset_spec

    if text in dataset_keys():
        return float(dataset_spec(text).n)
    return 1.0


def source_label(source: Any) -> str:
    """Human-readable name for a source (used in failure records)."""
    from repro.campaign import problem_name_from_path
    from repro.datasets.problem import Problem

    if isinstance(source, Problem):
        return source.name
    text = str(source)
    if text.endswith((".mtx", ".mtx.gz")):
        return problem_name_from_path(text)
    return text
