"""Parallel campaign execution: worker-pool sharding with fault isolation.

The campaign runner (:mod:`repro.campaign`) solves a whole workload
population; this package spreads that population across a process pool —
the software analogue of the paper's point that end-to-end throughput
comes from overlapping *independent* solves across compute units.
"""

from repro.parallel.cost import estimate_cost, source_label
from repro.parallel.engine import (
    ItemResult,
    ParallelOutcome,
    WorkItem,
    default_worker_count,
    run_sharded,
    shard_by_cost,
)

__all__ = [
    "ItemResult",
    "ParallelOutcome",
    "WorkItem",
    "default_worker_count",
    "estimate_cost",
    "run_sharded",
    "shard_by_cost",
    "source_label",
]
