"""Optional numba-JIT kernel substrate (exact-parity compiled mirror).

Importing this module requires the ``numba`` package; the registry in
:mod:`repro.sparse.substrate` guards the import and reports a clean
configuration error when it is missing, so the backend stays strictly
optional and off by default.

Parity contract
---------------
Every kernel here replaces an *elementwise* numpy stage and must produce
bit-identical results.  Two rules keep that true:

- ``fastmath`` stays **off** (the numba default): IEEE-754 then fixes
  each elementwise result regardless of the execution engine,
- multiply and add are written as **separate statements through an
  explicit temporary**, so LLVM cannot legally contract them into a
  fused multiply-add (contraction requires fast-math license).

Segment reductions (``np.add.reduceat``) are deliberately *not*
reimplemented — numpy's pairing order is unspecified, so the shared
kernels in :mod:`repro.sparse.csr` keep running them for every
substrate.  The ``batched-parity`` CI leg installs numba and holds this
backend to byte-identical campaign CSV output.
"""

from __future__ import annotations

import numpy as np
from numba import njit


@njit(cache=True)
def _csr_products_1d(data, x, indices, out):  # pragma: no cover - jitted
    for j in range(indices.shape[0]):
        out[j] = data[j] * x[indices[j]]


@njit(cache=True)
def _csr_products_shared(data, x_block, indices, out):  # pragma: no cover
    for k in range(x_block.shape[0]):
        for j in range(indices.shape[0]):
            out[k, j] = data[j] * x_block[k, indices[j]]


@njit(cache=True)
def _csr_products_stacked(data, x_block, indices, out):  # pragma: no cover
    for k in range(x_block.shape[0]):
        for j in range(indices.shape[0]):
            out[k, j] = data[k, j] * x_block[k, indices[j]]


@njit(cache=True)
def _dia_update(result, x, offset, lo, hi, weights):  # pragma: no cover
    for i in range(hi - lo):
        t = weights[i] * x[lo + offset + i]
        result[lo + i] = result[lo + i] + t


@njit(cache=True)
def _dia_update_shared(result, x_block, offset, lo, hi, weights):
    # pragma: no cover - jitted
    for k in range(x_block.shape[0]):
        for i in range(hi - lo):
            t = weights[i] * x_block[k, lo + offset + i]
            result[k, lo + i] = result[k, lo + i] + t


@njit(cache=True)
def _dia_update_stacked(result, x_block, offset, lo, hi, weights):
    # pragma: no cover - jitted
    for k in range(x_block.shape[0]):
        for i in range(hi - lo):
            t = weights[k, i] * x_block[k, lo + offset + i]
            result[k, lo + i] = result[k, lo + i] + t


class NumbaSubstrate:
    """JIT-compiled elementwise kernels with exact numpy parity."""

    name = "numba"

    def csr_products(
        self,
        data: np.ndarray,
        x: np.ndarray,
        indices: np.ndarray,
        out: np.ndarray,
    ) -> None:
        _csr_products_1d(data, x, indices, out)

    def csr_products_batch(
        self,
        data: np.ndarray,
        x_block: np.ndarray,
        indices: np.ndarray,
        out: np.ndarray,
    ) -> None:
        if data.ndim == 1:
            _csr_products_shared(data, x_block, indices, out)
        else:
            _csr_products_stacked(data, x_block, indices, out)

    def dia_update(
        self,
        result: np.ndarray,
        x: np.ndarray,
        offset: int,
        lo: int,
        hi: int,
        weights: np.ndarray,
        scratch: np.ndarray,
    ) -> None:
        _dia_update(result, x, offset, lo, hi, weights)

    def dia_update_batch(
        self,
        result: np.ndarray,
        x_block: np.ndarray,
        offset: int,
        lo: int,
        hi: int,
        weights: np.ndarray,
        scratch: np.ndarray,
    ) -> None:
        if weights.ndim == 1:
            _dia_update_shared(result, x_block, offset, lo, hi, weights)
        else:
            _dia_update_stacked(result, x_block, offset, lo, hi, weights)
