"""Lockstep application of K same-pattern CSR matrices.

A fingerprint-sharing batch is K problems whose matrices store the same
coordinates but (possibly) different values.  The batched solver driver
needs ``y_k = A_k @ x_k`` for all K in one kernel invocation, which is
exactly the multi-RHS SpMV with the value stream widened to a stacked
``(K, nnz)`` block:

- **csr plan** — one shared index gather feeds all K rows; per-entry
  products land in a ``(K, nnz)`` workspace and ``np.add.reduceat``
  reduces each row over the same segments as the single-vector kernel,
- **dia plan** — the per-diagonal weight vectors are stacked to
  ``(K, hi-lo)`` blocks once at construction and applied as row-wise
  multiply-accumulate sweeps.

Row ``k`` of every product is bit-identical to
``matrices[k].matvec(x_block[k])``: each stage is either elementwise per
row or a per-row segmented reduction over identical segments, so the
per-problem accumulation order never changes.  That property is what
lets the batched drivers in :mod:`repro.solvers.batched` promise results
bit-identical to K sequential solves.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse.csr import CSRMatrix
from repro.sparse.substrate import active_substrate


class BatchedCSROperator:
    """K same-pattern CSR matrices applied in lockstep.

    The sparsity pattern (and therefore the kernel plan) comes from the
    first matrix; every other matrix must store exactly the same
    coordinates.  The operator owns a stacked copy of the value streams,
    so callers may compact it (:meth:`take`) without touching the source
    matrices.
    """

    def __init__(self, matrices: Sequence[CSRMatrix]) -> None:
        if not matrices:
            raise SparseFormatError(
                "BatchedCSROperator needs at least one matrix"
            )
        pattern = matrices[0]
        for m in matrices[1:]:
            if not pattern.structurally_equal(m):
                raise SparseFormatError(
                    "all matrices in a batch must share one sparsity "
                    "pattern (structure fingerprints differ)"
                )
        self.pattern = pattern
        self.shape = pattern.shape
        self.nnz = pattern.nnz
        self.k = len(matrices)
        self.data = np.stack([m.data for m in matrices]) if self.nnz else (
            np.zeros((self.k, 0), dtype=pattern.data.dtype)
        )
        self._dia_weights: tuple[np.ndarray, ...] | None = None
        self._scratch: dict = {}

    @classmethod
    def _from_stacked(
        cls, pattern: CSRMatrix, data: np.ndarray
    ) -> "BatchedCSROperator":
        self = object.__new__(cls)
        self.pattern = pattern
        self.shape = pattern.shape
        self.nnz = pattern.nnz
        self.k = int(data.shape[0])
        self.data = data
        self._dia_weights = None
        self._scratch = {}
        return self

    def take(self, keep: np.ndarray) -> "BatchedCSROperator":
        """Compacted operator holding only the ``keep`` problem rows."""
        sub = BatchedCSROperator._from_stacked(self.pattern, self.data[keep])
        if self._dia_weights is not None:
            sub._dia_weights = tuple(w[keep] for w in self._dia_weights)
        return sub

    def _stacked_dia_weights(self, terms: tuple) -> tuple[np.ndarray, ...]:
        """Per-term ``(K, hi-lo)`` weight blocks, built once.

        Reproduces the scatter :meth:`CSRMatrix._build_spmv_plan` uses
        for its per-diagonal weights, applied to every value stream at
        once — row ``k`` of each block equals the weights matrix ``k``'s
        own plan would carry.
        """
        if self._dia_weights is None:
            pattern = self.pattern
            offsets = pattern.indices - pattern.row_ids()
            row_ids = pattern.row_ids()
            stacked = []
            for offset, lo, hi, _weights in terms:
                mask = offsets == offset
                block = np.zeros((self.k, hi - lo), dtype=self.data.dtype)
                block[:, row_ids[mask] - lo] = self.data[:, mask]
                stacked.append(block)
            self._dia_weights = tuple(stacked)
        return self._dia_weights

    def _workspace(self, tag: str, cols: int, dtype: np.dtype) -> np.ndarray:
        key = (tag, np.dtype(dtype))
        buf = self._scratch.get(key)
        size = self.k * cols
        if buf is None or buf.size < size:
            buf = np.empty(size, dtype=dtype)
            self._scratch[key] = buf
        return buf[:size].reshape(self.k, cols)

    def matvec(self, x_block: np.ndarray) -> np.ndarray:
        """``result[k] = matrices[k] @ x_block[k]``, bit-identical per row."""
        x_block = np.asarray(x_block)
        n_rows, n_cols = self.shape
        if x_block.shape != (self.k, n_cols):
            raise ShapeMismatchError(
                f"batched matvec expects a ({self.k}, {n_cols}) block, "
                f"got {x_block.shape}"
            )
        out_dtype = np.result_type(self.data, x_block)
        plan = self.pattern._spmv_plan()
        substrate = active_substrate()
        if plan[0] == "empty":
            return np.zeros((self.k, n_rows), dtype=out_dtype)
        if plan[0] == "dia":
            result = np.zeros((self.k, n_rows), dtype=out_dtype)
            scratch = self._workspace("dia", n_rows, out_dtype)
            weights = self._stacked_dia_weights(plan[1])
            for (offset, lo, hi, _), block in zip(plan[1], weights):
                substrate.dia_update_batch(
                    result, x_block, offset, lo, hi, block, scratch
                )
            return result
        _, starts, nonempty = plan
        products = self._workspace("products", self.nnz, out_dtype)
        substrate.csr_products_batch(
            self.data, x_block, self.pattern.indices, products
        )
        if nonempty is None:
            return np.add.reduceat(products, starts, axis=1)
        result = np.zeros((self.k, n_rows), dtype=out_dtype)
        result[:, nonempty] = np.add.reduceat(products, starts, axis=1)
        return result
