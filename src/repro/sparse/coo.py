"""Coordinate (triplet) sparse format.

COO is the natural *build* format: generators and dataset synthesizers emit
``(row, col, value)`` triplets and convert once to CSR for compute.  The
class stores three parallel numpy arrays and knows how to canonicalize
itself (sort by row then column, merge duplicates, drop explicit zeros).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeMismatchError, SparseFormatError


@dataclass(frozen=True)
class COOMatrix:
    """Sparse matrix in coordinate format.

    Parameters
    ----------
    shape:
        ``(n_rows, n_cols)``.
    rows, cols:
        Integer arrays of equal length with the coordinates of each stored
        entry.
    data:
        Floating-point array of stored values, same length as the
        coordinate arrays.

    The constructor validates bounds and lengths; use :meth:`canonical` to
    obtain a duplicate-free, sorted copy.
    """

    shape: tuple[int, int]
    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        n_rows, n_cols = self.shape
        if n_rows < 0 or n_cols < 0:
            raise SparseFormatError(f"negative shape {self.shape}")
        rows = np.asarray(self.rows, dtype=np.int64)
        cols = np.asarray(self.cols, dtype=np.int64)
        data = np.asarray(self.data)
        if not (len(rows) == len(cols) == len(data)):
            raise SparseFormatError(
                "rows, cols and data must have equal length, got "
                f"{len(rows)}, {len(cols)}, {len(data)}"
            )
        if len(rows) and (rows.min() < 0 or rows.max() >= n_rows):
            raise SparseFormatError("row index out of bounds")
        if len(cols) and (cols.min() < 0 or cols.max() >= n_cols):
            raise SparseFormatError("column index out of bounds")
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "data", data)

    @property
    def nnz(self) -> int:
        """Number of stored entries (before canonicalization)."""
        return len(self.data)

    def canonical(self) -> "COOMatrix":
        """Return a sorted, duplicate-summed, zero-free copy."""
        if self.nnz == 0:
            return self
        order = np.lexsort((self.cols, self.rows))
        rows, cols, data = self.rows[order], self.cols[order], self.data[order]
        # Merge duplicate coordinates by summation.
        new_group = np.empty(len(rows), dtype=bool)
        new_group[0] = True
        new_group[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        group_ids = np.cumsum(new_group) - 1
        n_groups = group_ids[-1] + 1
        summed = np.zeros(n_groups, dtype=data.dtype)
        np.add.at(summed, group_ids, data)
        keep_rows = rows[new_group]
        keep_cols = cols[new_group]
        nonzero = summed != 0
        return COOMatrix(
            self.shape, keep_rows[nonzero], keep_cols[nonzero], summed[nonzero]
        )

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (for tests and small examples)."""
        dense = np.zeros(self.shape, dtype=np.result_type(self.data, np.float32))
        np.add.at(dense, (self.rows, self.cols), self.data)
        return dense

    def to_csr(self) -> "CSRMatrix":
        """Convert to CSR, canonicalizing first."""
        from repro.sparse.csr import CSRMatrix

        canon = self.canonical()
        n_rows, _ = self.shape
        counts = np.bincount(canon.rows, minlength=n_rows)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRMatrix(self.shape, indptr, canon.cols.copy(), canon.data.copy())

    @staticmethod
    def from_dense(dense: np.ndarray) -> "COOMatrix":
        """Build a COO matrix from the non-zero entries of a dense array."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ShapeMismatchError(f"expected a 2-D array, got ndim={dense.ndim}")
        rows, cols = np.nonzero(dense)
        return COOMatrix(dense.shape, rows, cols, dense[rows, cols])
