"""From-scratch sparse-matrix substrate.

The paper's accelerator consumes matrices in Compressed Sparse Row (CSR)
format and internally converts to Compressed Sparse Column (CSC) to test
symmetry.  This package implements those containers and the operations the
solvers and cost models need, without depending on ``scipy.sparse``:

- :class:`~repro.sparse.coo.COOMatrix` — triplet build format,
- :class:`~repro.sparse.csr.CSRMatrix` — the primary compute format with a
  vectorized SpMV,
- :class:`~repro.sparse.csc.CSCMatrix` — column format used by the Matrix
  Structure unit's symmetry check,
- :mod:`~repro.sparse.properties` — structural-property analysis (strict
  diagonal dominance, symmetry, definiteness probes, spectral radius),
- :mod:`~repro.sparse.stats` — row-length statistics feeding the
  Fine-Grained Reconfiguration unit.
"""

from repro.sparse.batched import BatchedCSROperator
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix, structure_fingerprint
from repro.sparse.ell import ELLMatrix, padded_slots_for_unroll
from repro.sparse.io import read_matrix_market, write_matrix_market
from repro.sparse.properties import (
    MatrixProperties,
    analyze_properties,
    is_strictly_diagonally_dominant,
    is_symmetric,
    jacobi_iteration_spectral_radius,
    positive_definite_probe,
)
from repro.sparse.reorder import (
    bandwidth,
    permute_symmetric,
    permute_vector,
    rcm_permutation,
    rcm_reorder,
    unpermute_vector,
)
from repro.sparse.sliced_ell import ELLSlice, SlicedELLMatrix
from repro.sparse.stats import RowLengthStats, row_length_stats, row_lengths
from repro.sparse.substrate import (
    available_substrates,
    set_substrate,
    use_substrate,
)

__all__ = [
    "BatchedCSROperator",
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "ELLMatrix",
    "ELLSlice",
    "SlicedELLMatrix",
    "bandwidth",
    "MatrixProperties",
    "RowLengthStats",
    "analyze_properties",
    "available_substrates",
    "is_strictly_diagonally_dominant",
    "is_symmetric",
    "jacobi_iteration_spectral_radius",
    "padded_slots_for_unroll",
    "positive_definite_probe",
    "permute_symmetric",
    "permute_vector",
    "rcm_permutation",
    "rcm_reorder",
    "read_matrix_market",
    "row_lengths",
    "row_length_stats",
    "set_substrate",
    "structure_fingerprint",
    "unpermute_vector",
    "use_substrate",
    "write_matrix_market",
]
