"""Pluggable kernel substrate for the CSR compute kernels.

The SpMV kernels in :mod:`repro.sparse.csr` decompose into two stage
families:

- **elementwise stages** — the gather-multiply that forms per-entry
  products and the per-diagonal multiply-accumulate sweeps of the banded
  fast path,
- **segment reductions** — ``np.add.reduceat`` over row segments.

A *substrate* supplies the elementwise stages; the segment reductions
always run through ``np.add.reduceat`` regardless of substrate, because
its accumulation order is an implementation detail of numpy that a
reimplementation cannot be trusted to reproduce bit-for-bit.  Keeping
reductions shared is what lets an alternative substrate promise **exact
parity**: every stage it replaces is elementwise, where IEEE-754 fixes
the result independent of the execution engine (provided no fused
multiply-add contraction is introduced — the numba backend compiles with
``fastmath=False`` and explicit temporaries for exactly that reason).

Substrates are selected process-wide:

- ``numpy`` (default) — the reference kernels, identical to the seed,
- ``numba`` — optional JIT backend (:mod:`repro.sparse.numba_backend`),
  import-guarded: selecting it without the ``numba`` package installed
  raises a clean :class:`~repro.errors.ConfigurationError`,
- the ``REPRO_SUBSTRATE`` environment variable picks the startup default
  (worker processes inherit it, so a campaign pool runs every worker on
  the same substrate).

The campaign-CSV parity harness (``tests/solvers/test_batched_parity.py``
and the ``batched-parity`` CI job) holds every registered substrate to
byte-identical campaign output.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

from repro.errors import ConfigurationError, UnknownNameError

SUBSTRATE_ENV = "REPRO_SUBSTRATE"
"""Environment variable naming the startup substrate (default numpy)."""


class NumpySubstrate:
    """Reference elementwise kernels — the exact seed operations."""

    name = "numpy"

    # -- CSR gather-multiply ------------------------------------------

    def csr_products(
        self,
        data: np.ndarray,
        x: np.ndarray,
        indices: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """``out[j] = data[j] * x[indices[j]]``."""
        np.multiply(data, x[indices], out=out)

    def csr_products_batch(
        self,
        data: np.ndarray,
        x_block: np.ndarray,
        indices: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """``out[k, j] = data[(k,) j] * x_block[k, indices[j]]``.

        ``data`` is either one shared value stream ``(nnz,)`` (multi-RHS
        against a single matrix) or a stacked ``(K, nnz)`` block (K
        same-pattern matrices).  The gather lands directly in ``out`` and
        the multiply runs in place, so no per-call temporary is allocated.
        """
        np.take(x_block, indices, axis=1, out=out)
        np.multiply(data, out, out=out)

    # -- banded (dia) multiply-accumulate sweeps ----------------------

    def dia_update(
        self,
        result: np.ndarray,
        x: np.ndarray,
        offset: int,
        lo: int,
        hi: int,
        weights: np.ndarray,
        scratch: np.ndarray,
    ) -> None:
        """``result[lo:hi] += weights * x[lo+offset:hi+offset]``."""
        seg = scratch[: hi - lo]
        np.multiply(weights, x[lo + offset : hi + offset], out=seg)
        np.add(result[lo:hi], seg, out=result[lo:hi])

    def dia_update_batch(
        self,
        result: np.ndarray,
        x_block: np.ndarray,
        offset: int,
        lo: int,
        hi: int,
        weights: np.ndarray,
        scratch: np.ndarray,
    ) -> None:
        """Row-wise diagonal sweep over a stacked ``(K, n)`` block.

        ``weights`` is ``(hi-lo,)`` (shared matrix) or ``(K, hi-lo)``
        (stacked matrices); broadcasting applies it per row either way.
        """
        seg = scratch[:, : hi - lo]
        np.multiply(weights, x_block[:, lo + offset : hi + offset], out=seg)
        np.add(result[:, lo:hi], seg, out=result[:, lo:hi])


_REGISTRY: dict[str, Callable[[], object]] = {}
_active: object | None = None


def register_substrate(name: str, factory: Callable[[], object]) -> None:
    """Register a substrate factory under ``name``.

    The factory runs lazily on first selection, which is what makes an
    optional-dependency backend registerable unconditionally: the import
    error (if any) surfaces only when someone actually selects it.
    """
    _REGISTRY[name] = factory


def available_substrates() -> tuple[str, ...]:
    """Registered substrate names (installable or not), sorted."""
    return tuple(sorted(_REGISTRY))


def _instantiate(name: str) -> object:
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_substrates())
        raise UnknownNameError(
            f"unknown kernel substrate {name!r}; known substrates: {known}"
        ) from None
    return factory()


def active_substrate() -> object:
    """The substrate the CSR kernels currently route through."""
    global _active
    if _active is None:
        _active = _instantiate(os.environ.get(SUBSTRATE_ENV, "numpy"))
    return _active


def set_substrate(name: str) -> str:
    """Select the process-wide substrate; returns the previous name."""
    global _active
    previous = active_substrate().name  # type: ignore[attr-defined]
    _active = _instantiate(name)
    return previous


@contextmanager
def use_substrate(name: str) -> Iterator[object]:
    """Temporarily select ``name`` (tests and parity harnesses)."""
    previous = set_substrate(name)
    try:
        yield active_substrate()
    finally:
        set_substrate(previous)


def _numba_factory() -> object:
    try:
        from repro.sparse.numba_backend import NumbaSubstrate
    except ImportError as exc:
        raise ConfigurationError(
            "the 'numba' kernel substrate requires the optional numba "
            "package, which is not installed; install numba or select "
            "the default 'numpy' substrate"
        ) from exc
    return NumbaSubstrate()


register_substrate("numpy", NumpySubstrate)
register_substrate("numba", _numba_factory)
