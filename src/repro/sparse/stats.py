"""Row-length statistics feeding the Fine-Grained Reconfiguration unit.

The Row Length Trace unit partitions the rows of ``A`` into ``SamplingRate``
sets (Eq. 8/9) and computes the average NNZ/row of each set, which becomes
the set's optimal unroll factor (Eq. 7).  This module provides that
partitioning plus general row-length summary statistics used by the cost
models and the dataset generators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sparse.csr import CSRMatrix


def row_lengths(matrix: CSRMatrix) -> np.ndarray:
    """NNZ per row of ``matrix``."""
    return matrix.row_lengths()


@dataclass(frozen=True)
class RowLengthStats:
    """Summary statistics of a matrix's NNZ/row distribution."""

    n_rows: int
    nnz: int
    mean: float
    std: float
    minimum: int
    maximum: int
    cv: float
    """Coefficient of variation (std / mean) — the irregularity that drives
    resource underutilization in a fixed-unroll SpMV unit."""


def row_length_stats(matrix: CSRMatrix) -> RowLengthStats:
    """Compute :class:`RowLengthStats` for ``matrix``."""
    lengths = matrix.row_lengths().astype(np.float64)
    mean = float(lengths.mean()) if len(lengths) else 0.0
    std = float(lengths.std()) if len(lengths) else 0.0
    return RowLengthStats(
        n_rows=matrix.n_rows,
        nnz=matrix.nnz,
        mean=mean,
        std=std,
        minimum=int(lengths.min()) if len(lengths) else 0,
        maximum=int(lengths.max()) if len(lengths) else 0,
        cv=std / mean if mean else 0.0,
    )


def partition_row_sets(n_rows: int, sampling_rate: int) -> list[tuple[int, int]]:
    """Split ``n_rows`` into ``sampling_rate`` contiguous row sets.

    Mirrors Eq. 9: ``set_size = n_rows / sampling_rate``.  When the division
    is not exact the first sets absorb the remainder, so every row belongs
    to exactly one set and set sizes differ by at most one.  If there are
    fewer rows than sets, each row forms its own set.
    """
    if sampling_rate < 1:
        raise ConfigurationError(f"sampling_rate must be >= 1, got {sampling_rate}")
    if n_rows <= 0:
        return []
    n_sets = min(sampling_rate, n_rows)
    base, remainder = divmod(n_rows, n_sets)
    bounds: list[tuple[int, int]] = []
    start = 0
    for set_index in range(n_sets):
        size = base + (1 if set_index < remainder else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def set_average_row_lengths(
    matrix: CSRMatrix, sampling_rate: int
) -> np.ndarray:
    """Average NNZ/row for each row set (Eq. 7's numerator / set size).

    Returns a float array of length ``min(sampling_rate, n_rows)``.
    """
    lengths = matrix.row_lengths().astype(np.float64)
    bounds = partition_row_sets(matrix.n_rows, sampling_rate)
    return np.array([lengths[lo:hi].mean() for lo, hi in bounds])
