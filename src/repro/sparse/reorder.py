"""Matrix reordering (Reverse Cuthill-McKee).

Acamar's Resource Decision loop exploits *spatial locality* in the
NNZ/row profile: the Row Length Trace averages per contiguous row set,
so matrices whose similar rows are scattered get mediocre plans.  RCM —
the classic bandwidth-reducing permutation — clusters connected (and
hence similar) rows together, which tightens per-set row-length variance
and reduces both Eq. 5 waste and reconfiguration events.  The ablation
benchmark quantifies this; this module provides the permutation machinery
from scratch (BFS with degree-sorted tie-breaking, per connected
component, reversed).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ConfigurationError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def _symmetrized_adjacency(matrix: CSRMatrix) -> CSRMatrix:
    """Structural adjacency of ``A + A.T`` with the diagonal removed."""
    transpose = matrix.transpose()
    rows = np.concatenate([matrix.row_ids(), transpose.row_ids()])
    cols = np.concatenate([matrix.indices, transpose.indices])
    keep = rows != cols
    pattern = COOMatrix(
        (matrix.n_rows, matrix.n_rows),
        rows[keep],
        cols[keep],
        np.ones(int(keep.sum())),
    ).canonical()
    return pattern.to_csr()


def rcm_permutation(matrix: CSRMatrix) -> np.ndarray:
    """Reverse Cuthill-McKee ordering of a square sparse matrix.

    Returns ``perm`` such that row/column ``perm[i]`` of the original
    matrix becomes row/column ``i`` of the reordered one.  Each connected
    component is BFS-traversed from a minimum-degree seed with neighbors
    visited in increasing-degree order; the final order is reversed.
    """
    if matrix.shape[0] != matrix.shape[1]:
        raise ConfigurationError(
            f"RCM needs a square matrix, got {matrix.shape}"
        )
    n = matrix.shape[0]
    if n == 0:
        return np.array([], dtype=np.int64)
    adjacency = _symmetrized_adjacency(matrix)
    degrees = adjacency.row_lengths()
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    # Process components seeded by globally increasing degree.
    seeds = np.argsort(degrees, kind="stable")
    for seed in seeds:
        if visited[seed]:
            continue
        visited[seed] = True
        queue: deque[int] = deque([int(seed)])
        while queue:
            node = queue.popleft()
            order.append(node)
            lo, hi = adjacency.indptr[node], adjacency.indptr[node + 1]
            neighbors = adjacency.indices[lo:hi]
            fresh = neighbors[~visited[neighbors]]
            if len(fresh):
                fresh = fresh[np.argsort(degrees[fresh], kind="stable")]
                visited[fresh] = True
                queue.extend(int(v) for v in fresh)
    return np.asarray(order[::-1], dtype=np.int64)


def permute_symmetric(matrix: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """Apply a symmetric permutation: ``B = P A P.T``.

    ``B[i, j] = A[perm[i], perm[j]]`` — the similarity transform that
    preserves every spectral/structural property the solvers care about.
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = matrix.shape[0]
    if sorted(perm.tolist()) != list(range(n)):
        raise ConfigurationError("perm must be a permutation of 0..n-1")
    inverse = np.empty(n, dtype=np.int64)
    inverse[perm] = np.arange(n)
    row_of = matrix.row_ids()
    return COOMatrix(
        matrix.shape,
        inverse[row_of],
        inverse[matrix.indices],
        matrix.data.copy(),
    ).canonical().to_csr()


def bandwidth(matrix: CSRMatrix) -> int:
    """Maximum |row - column| over stored entries (0 for diagonal/empty)."""
    if matrix.nnz == 0:
        return 0
    row_of = matrix.row_ids()
    return int(np.abs(row_of - matrix.indices).max())


def rcm_reorder(matrix: CSRMatrix) -> tuple[CSRMatrix, np.ndarray]:
    """Convenience: compute the RCM permutation and apply it.

    Returns ``(reordered_matrix, perm)``; solve the reordered system with
    ``b[perm]`` and map the solution back with ``x_original = x[inverse]``
    (see :func:`permute_vector` / :func:`unpermute_vector`).
    """
    perm = rcm_permutation(matrix)
    return permute_symmetric(matrix, perm), perm


def permute_vector(vector: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Reorder a vector to match a permuted system (``b -> P b``)."""
    return np.asarray(vector)[perm]


def unpermute_vector(vector: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Map a permuted system's solution back to original numbering."""
    perm = np.asarray(perm, dtype=np.int64)
    out = np.empty_like(np.asarray(vector))
    out[perm] = np.asarray(vector)
    return out
