"""ELLPACK (ELL) sparse format — the shape of padded SpMV execution.

ELL stores a sparse matrix as two dense ``n_rows × width`` arrays (values
and column indices), padding every row to the widest one.  It matters to
this reproduction because a *fixed-unroll* SpMV unit behaves exactly like
an ELL execution padded to unroll-factor multiples: the padding elements
are the idle MACs Eq. 5 charges.  The conversion utilities here make that
correspondence explicit and let tests cross-check the cost model's
provisioned-MAC accounting against literal padded storage.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse.csr import CSRMatrix

PAD_COLUMN = -1
"""Column index marking a padding slot."""


class ELLMatrix:
    """Sparse matrix in ELLPACK layout.

    Parameters
    ----------
    shape:
        ``(n_rows, n_cols)``.
    columns:
        ``n_rows × width`` int array; entries equal to :data:`PAD_COLUMN`
        are padding.
    values:
        ``n_rows × width`` float array; padding slots must hold zero.
    """

    __slots__ = ("shape", "columns", "values")

    def __init__(
        self, shape: tuple[int, int], columns: np.ndarray, values: np.ndarray
    ) -> None:
        columns = np.asarray(columns, dtype=np.int64)
        values = np.asarray(values)
        if columns.ndim != 2 or values.shape != columns.shape:
            raise SparseFormatError(
                "columns and values must be equal-shape 2-D arrays, got "
                f"{columns.shape} and {values.shape}"
            )
        if columns.shape[0] != shape[0]:
            raise SparseFormatError(
                f"row count mismatch: shape says {shape[0]}, arrays have "
                f"{columns.shape[0]}"
            )
        real = columns != PAD_COLUMN
        if real.any() and (
            columns[real].min() < 0 or columns[real].max() >= shape[1]
        ):
            raise SparseFormatError("column index out of bounds")
        if np.any(values[~real] != 0):
            raise SparseFormatError("padding slots must hold zero values")
        self.shape = (int(shape[0]), int(shape[1]))
        self.columns = columns
        self.values = values

    @property
    def width(self) -> int:
        """Padded row width (the ELL K parameter)."""
        return self.columns.shape[1]

    @property
    def nnz(self) -> int:
        """Stored non-padding entries."""
        return int(np.count_nonzero(self.columns != PAD_COLUMN))

    @property
    def padded_size(self) -> int:
        """Total slots including padding — what a width-wide unit streams."""
        return self.columns.size

    @property
    def padding_fraction(self) -> float:
        """Idle-slot fraction: the storage-level analogue of Eq. 5."""
        if self.padded_size == 0:
            return 0.0
        return 1.0 - self.nnz / self.padded_size

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Dense-regular SpMV over the padded layout."""
        x = np.asarray(x)
        if x.shape != (self.shape[1],):
            raise ShapeMismatchError(
                f"matvec expects a vector of length {self.shape[1]}, got "
                f"{x.shape}"
            )
        gathered = np.where(
            self.columns == PAD_COLUMN, 0.0, x[np.maximum(self.columns, 0)]
        )
        return (self.values * gathered).sum(axis=1)

    def to_csr(self) -> CSRMatrix:
        """Convert back to CSR (drops padding)."""
        from repro.sparse.coo import COOMatrix

        real = self.columns != PAD_COLUMN
        rows = np.nonzero(real)[0]
        return COOMatrix(
            self.shape, rows, self.columns[real], self.values[real]
        ).to_csr()

    @staticmethod
    def from_csr(matrix: CSRMatrix, width: int | None = None) -> "ELLMatrix":
        """Convert CSR to ELL, padding rows to ``width``.

        ``width`` defaults to the longest row; a smaller explicit width
        raises, because ELL cannot drop entries.
        """
        lengths = matrix.row_lengths()
        needed = int(lengths.max()) if len(lengths) else 0
        if width is None:
            width = needed
        if width < needed:
            raise SparseFormatError(
                f"width {width} cannot hold the longest row ({needed})"
            )
        n_rows = matrix.n_rows
        columns = np.full((n_rows, width), PAD_COLUMN, dtype=np.int64)
        values = np.zeros((n_rows, width), dtype=matrix.data.dtype)
        for row in range(n_rows):
            lo, hi = matrix.indptr[row], matrix.indptr[row + 1]
            count = hi - lo
            columns[row, :count] = matrix.indices[lo:hi]
            values[row, :count] = matrix.data[lo:hi]
        return ELLMatrix(matrix.shape, columns, values)


def padded_slots_for_unroll(row_lengths: np.ndarray, unroll: int) -> int:
    """Slots a fixed-unroll unit streams: rows padded to unroll multiples.

    This equals the cost model's provisioned MAC-cycles for a static
    design and the storage of a *blocked* ELL with block width ``unroll``,
    making the ELL ↔ Eq. 5 correspondence checkable.
    """
    lengths = np.asarray(row_lengths, dtype=np.int64)
    chunks = np.maximum(1, -(-lengths // unroll))
    return int((chunks * unroll).sum())
