"""Greedy graph coloring of a matrix's adjacency structure.

Gauss-Seidel's data dependence is row-ordered — useless on wide-SIMD or
spatial hardware.  Multicolor orderings break the dependence: rows of the
same color share no off-diagonal coupling, so a whole color class updates
in one vectorized (or one-fabric-pass) step.  For the 5-point Laplacian
the greedy algorithm recovers the classic red-black 2-coloring; general
sparse matrices get a small number of colors proportional to the maximum
degree.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.sparse.csr import CSRMatrix


def greedy_coloring(matrix: CSRMatrix) -> np.ndarray:
    """Color rows so no two structurally-coupled rows share a color.

    Coupling is symmetrized (``A`` or ``A.T`` having an entry couples the
    rows).  Returns an int array of colors, numbered from 0; the greedy
    first-fit order guarantees at most ``max_degree + 1`` colors.
    """
    if matrix.shape[0] != matrix.shape[1]:
        raise ConfigurationError(
            f"coloring needs a square matrix, got {matrix.shape}"
        )
    n = matrix.shape[0]
    if n == 0:
        return np.array([], dtype=np.int64)
    transpose = matrix.transpose()
    colors = np.full(n, -1, dtype=np.int64)
    for node in range(n):
        lo, hi = matrix.indptr[node], matrix.indptr[node + 1]
        tlo, thi = transpose.indptr[node], transpose.indptr[node + 1]
        neighbors = np.concatenate(
            [matrix.indices[lo:hi], transpose.indices[tlo:thi]]
        )
        neighbors = neighbors[neighbors != node]
        used = set(colors[neighbors[colors[neighbors] >= 0]].tolist())
        color = 0
        while color in used:
            color += 1
        colors[node] = color
    return colors


def color_classes(colors: np.ndarray) -> list[np.ndarray]:
    """Row indices per color, ordered by color number."""
    colors = np.asarray(colors)
    if len(colors) == 0:
        return []
    return [
        np.flatnonzero(colors == c) for c in range(int(colors.max()) + 1)
    ]


def verify_coloring(matrix: CSRMatrix, colors: np.ndarray) -> bool:
    """True when no stored off-diagonal entry couples same-colored rows."""
    colors = np.asarray(colors)
    row_of = matrix.row_ids()
    off = row_of != matrix.indices
    return bool(
        np.all(colors[row_of[off]] != colors[matrix.indices[off]])
    )
