"""Sliced-ELL format — the storage realization of Acamar's plan.

Sliced ELLPACK (SELL) partitions rows into contiguous slices and pads
each slice only to *its own* widest row, instead of the matrix-wide width
plain ELL uses.  Acamar's Resource Decision loop is exactly a SELL
scheme in time rather than space: each row set's unroll factor plays the
slice width, and Eq. 5's per-set waste is the slice's padding.  Building
the SELL matrix *from a reconfiguration plan* therefore materializes the
accelerator's execution schedule as a data structure — which is how the
correspondence is tested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ell import PAD_COLUMN


@dataclass(frozen=True)
class ELLSlice:
    """One padded slice: rows ``start:stop`` at width ``width``."""

    start_row: int
    stop_row: int
    width: int
    columns: np.ndarray  # (rows, width)
    values: np.ndarray

    @property
    def n_rows(self) -> int:
        return self.stop_row - self.start_row

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.columns != PAD_COLUMN))

    @property
    def padded_size(self) -> int:
        return self.columns.size


class SlicedELLMatrix:
    """Sparse matrix stored as width-heterogeneous padded slices."""

    def __init__(self, shape: tuple[int, int], slices: list[ELLSlice]) -> None:
        if slices:
            if slices[0].start_row != 0 or slices[-1].stop_row != shape[0]:
                raise SparseFormatError("slices must cover all rows")
            for a, b in zip(slices, slices[1:]):
                if a.stop_row != b.start_row:
                    raise SparseFormatError(
                        f"slice gap between rows {a.stop_row} and {b.start_row}"
                    )
        elif shape[0] != 0:
            raise SparseFormatError("non-empty matrix needs slices")
        self.shape = (int(shape[0]), int(shape[1]))
        self.slices = list(slices)

    @property
    def nnz(self) -> int:
        return sum(s.nnz for s in self.slices)

    @property
    def padded_size(self) -> int:
        """Total storage slots — what a slice-width execution streams."""
        return sum(s.padded_size for s in self.slices)

    @property
    def padding_fraction(self) -> float:
        total = self.padded_size
        if total == 0:
            return 0.0
        return 1.0 - self.nnz / total

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.shape != (self.shape[1],):
            raise ShapeMismatchError(
                f"matvec expects length {self.shape[1]}, got {x.shape}"
            )
        out = np.zeros(self.shape[0], dtype=np.result_type(x, np.float64))
        for s in self.slices:
            gathered = np.where(
                s.columns == PAD_COLUMN, 0.0, x[np.maximum(s.columns, 0)]
            )
            out[s.start_row : s.stop_row] = (s.values * gathered).sum(axis=1)
        return out

    def to_csr(self) -> CSRMatrix:
        from repro.sparse.coo import COOMatrix

        rows_acc, cols_acc, vals_acc = [], [], []
        for s in self.slices:
            real = s.columns != PAD_COLUMN
            local_rows = np.nonzero(real)[0] + s.start_row
            rows_acc.append(local_rows)
            cols_acc.append(s.columns[real])
            vals_acc.append(s.values[real])
        if not rows_acc:
            return CSRMatrix(self.shape, np.zeros(self.shape[0] + 1, np.int64), [], [])
        return COOMatrix(
            self.shape,
            np.concatenate(rows_acc),
            np.concatenate(cols_acc),
            np.concatenate(vals_acc),
        ).to_csr()

    @staticmethod
    def _build_slice(
        matrix: CSRMatrix, start: int, stop: int, width: int
    ) -> ELLSlice:
        rows = stop - start
        columns = np.full((rows, width), PAD_COLUMN, dtype=np.int64)
        values = np.zeros((rows, width), dtype=matrix.data.dtype)
        for local, row in enumerate(range(start, stop)):
            lo, hi = matrix.indptr[row], matrix.indptr[row + 1]
            count = hi - lo
            if count > width:
                raise SparseFormatError(
                    f"row {row} has {count} entries; slice width is {width}"
                )
            columns[local, :count] = matrix.indices[lo:hi]
            values[local, :count] = matrix.data[lo:hi]
        return ELLSlice(start, stop, width, columns, values)

    @staticmethod
    def from_csr(matrix: CSRMatrix, slice_rows: int = 32) -> "SlicedELLMatrix":
        """Standard SELL-C: fixed-height slices, per-slice natural width."""
        if slice_rows < 1:
            raise SparseFormatError(f"slice_rows must be >= 1, got {slice_rows}")
        lengths = matrix.row_lengths()
        slices = []
        start = 0
        while start < matrix.n_rows:
            stop = min(start + slice_rows, matrix.n_rows)
            width = int(max(1, lengths[start:stop].max()))
            slices.append(SlicedELLMatrix._build_slice(matrix, start, stop, width))
            start = stop
        return SlicedELLMatrix(matrix.shape, slices)

    @staticmethod
    def from_plan(matrix: CSRMatrix, plan) -> "SlicedELLMatrix":
        """Materialize an Acamar reconfiguration plan as storage.

        Each row set becomes a slice whose width is the set's unroll
        factor rounded up to cover its longest row (rows longer than the
        unroll stream in multiple chunks on hardware; in storage terms
        the slice width is ``unroll * ceil(longest/unroll)``).
        """
        lengths = matrix.row_lengths()
        slices = []
        for row_set in plan.sets:
            longest = int(
                max(1, lengths[row_set.start_row : row_set.stop_row].max())
            )
            chunks = max(1, -(-longest // row_set.unroll))
            width = row_set.unroll * chunks
            slices.append(
                SlicedELLMatrix._build_slice(
                    matrix, row_set.start_row, row_set.stop_row, width
                )
            )
        return SlicedELLMatrix(matrix.shape, slices)
