"""Compressed Sparse Column matrix.

The Matrix Structure unit verifies symmetry by converting the CSR input to
CSC and comparing the two encodings: for a symmetric matrix, the CSC arrays
of ``A`` are identical to the CSR arrays (columns of ``A`` are rows of
``A.T = A``).  This module provides the CSC container and that comparison.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SparseFormatError


class CSCMatrix:
    """Sparse matrix in CSC format.

    Stores ``indptr`` of column offsets, ``indices`` of row positions, and
    ``data``.  Only the operations the Matrix Structure unit and tests need
    are implemented; CSR remains the compute format.
    """

    __slots__ = ("shape", "indptr", "indices", "data")

    def __init__(
        self,
        shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        n_rows, n_cols = shape
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data)
        if indptr.shape != (n_cols + 1,):
            raise SparseFormatError(
                f"indptr must have length n_cols+1={n_cols + 1}, got {len(indptr)}"
            )
        if len(indptr) and indptr[0] != 0:
            raise SparseFormatError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if indptr[-1] != len(indices) or len(indices) != len(data):
            raise SparseFormatError("indptr[-1]/indices/data length mismatch")
        if len(indices) and (indices.min() < 0 or indices.max() >= n_rows):
            raise SparseFormatError("row index out of bounds")
        self.shape = (int(n_rows), int(n_cols))
        self.indptr = indptr
        self.indices = indices
        self.data = data

    @property
    def nnz(self) -> int:
        return len(self.data)

    def column_lengths(self) -> np.ndarray:
        """NNZ per column."""
        return np.diff(self.indptr)

    def to_csr(self) -> "CSRMatrix":
        """Convert back to CSR."""
        from repro.sparse.csr import CSRMatrix

        # CSC of A has the same arrays as CSR of A.T; transposing recovers A.
        n_rows, n_cols = self.shape
        as_csr_of_t = CSRMatrix((n_cols, n_rows), self.indptr, self.indices, self.data)
        return as_csr_of_t.transpose()

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.data.dtype)
        col_of = np.repeat(np.arange(self.shape[1]), self.column_lengths())
        dense[self.indices, col_of] = self.data
        return dense

    def matches_csr(self, csr: "CSRMatrix", rtol: float = 1e-6) -> bool:
        """The paper's symmetry test: does this CSC encoding equal ``csr``?

        For a symmetric matrix the CSC arrays of ``A`` coincide with its CSR
        arrays, so an array-wise comparison decides symmetry without random
        access into the compressed streams.
        """
        return (
            self.shape == csr.shape
            and np.array_equal(self.indptr, csr.indptr)
            and np.array_equal(self.indices, csr.indices)
            and np.allclose(self.data, csr.data, rtol=rtol, atol=rtol)
        )
