"""Compressed Sparse Row matrix — the accelerator's native input format.

The paper's hardware streams the coefficient matrix in CSR: an ``indptr``
array of row offsets, a column-index stream, and a value stream.  This class
mirrors that layout and provides the operations the rest of the library is
built on: a vectorized SpMV, row slicing for the 4096-row chunking, diagonal
extraction for Jacobi, and transposition (which doubles as CSR→CSC
conversion in the Matrix Structure unit).

Immutability contract
---------------------
``CSRMatrix`` instances are immutable by construction: no method mutates
``indptr``/``indices``/``data`` after ``__init__``, and callers must not
either.  That contract is what makes the internal structure cache sound —
derived views (row ids, row lengths, the diagonal, the transposed matrix,
the off-diagonal split, the SpMV kernel plan) are computed lazily on first
use and reused for the lifetime of the matrix.  Cached vector views are
returned as read-only arrays; copy before writing.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ShapeMismatchError, SparseFormatError
from repro.sparse.substrate import active_substrate

_DIA_MAX_DIAGONALS = 24
"""Upper bound on distinct diagonals for the banded SpMV fast path."""

_DIA_MIN_FILL = 0.5
"""Minimum occupied fraction of the banded footprint for the fast path."""


class CSRMatrix:
    """Sparse matrix in CSR format.

    Parameters
    ----------
    shape:
        ``(n_rows, n_cols)``.
    indptr:
        ``n_rows + 1`` row offsets into ``indices``/``data``; must start at
        0, end at ``nnz`` and be non-decreasing.
    indices:
        Column index of each stored value.  Within each row the indices must
        be strictly increasing (canonical CSR); the constructor verifies
        this because the symmetry check and Jacobi splitting rely on it.
    data:
        Stored values, same length as ``indices``.
    """

    __slots__ = ("shape", "indptr", "indices", "data", "_cache")

    def __init__(
        self,
        shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        n_rows, n_cols = shape
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data)
        if indptr.shape != (n_rows + 1,):
            raise SparseFormatError(
                f"indptr must have length n_rows+1={n_rows + 1}, got {len(indptr)}"
            )
        if len(indptr) and indptr[0] != 0:
            raise SparseFormatError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if indptr[-1] != len(indices) or len(indices) != len(data):
            raise SparseFormatError(
                "indptr[-1], len(indices) and len(data) must agree, got "
                f"{indptr[-1]}, {len(indices)}, {len(data)}"
            )
        if len(indices) and (indices.min() < 0 or indices.max() >= n_cols):
            raise SparseFormatError("column index out of bounds")
        self._check_sorted_rows(indptr, indices)
        self.shape = (int(n_rows), int(n_cols))
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self._cache: dict = {}

    @classmethod
    def _from_canonical_parts(
        cls,
        shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> "CSRMatrix":
        """Build a matrix from arrays already known to be canonical CSR.

        Skips the O(nnz) constructor validation; only for internal callers
        whose outputs are canonical by construction (transpose, slicing,
        casts, diagonal removal).  ``indptr``/``indices`` must be int64.
        """
        self = object.__new__(cls)
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self._cache = {}
        return self

    @staticmethod
    def _check_sorted_rows(indptr: np.ndarray, indices: np.ndarray) -> None:
        """Verify column indices are strictly increasing within each row."""
        if len(indices) < 2:
            return
        increasing = indices[1:] > indices[:-1]
        # Positions where a new row starts are allowed to decrease.
        row_starts = np.zeros(len(indices), dtype=bool)
        starts = indptr[1:-1]
        row_starts[starts[starts < len(indices)]] = True
        bad = ~increasing & ~row_starts[1:]
        if np.any(bad):
            raise SparseFormatError(
                "column indices must be strictly increasing within each row "
                "(duplicates or unsorted entries found)"
            )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return len(self.data)

    @property
    def density(self) -> float:
        """Fraction of entries that are stored (``nnz / (rows * cols)``)."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def row_lengths(self) -> np.ndarray:
        """NNZ per row — the quantity the Row Length Trace unit streams.

        Cached; the returned array is read-only.
        """
        lengths = self._cache.get("row_lengths")
        if lengths is None:
            lengths = np.diff(self.indptr)
            lengths.flags.writeable = False
            self._cache["row_lengths"] = lengths
        return lengths

    def row_ids(self) -> np.ndarray:
        """Row index of each stored entry (the COO row stream).

        Cached; the returned array is read-only.
        """
        ids = self._cache.get("row_ids")
        if ids is None:
            ids = np.repeat(np.arange(self.n_rows), self.row_lengths())
            ids.flags.writeable = False
            self._cache["row_ids"] = ids
        return ids

    def _workspace(self, tag: str, size: int, dtype: np.dtype) -> np.ndarray:
        """Reusable scratch buffer keyed by role and dtype.

        Kernel-internal only: contents are clobbered by the next kernel
        call on this matrix, so nothing user-visible may alias it.
        """
        key = ("ws", tag, np.dtype(dtype))
        buf = self._cache.get(key)
        if buf is None or len(buf) < size:
            buf = np.empty(size, dtype=dtype)
            self._cache[key] = buf
        return buf[:size]

    def structure_fingerprint(self) -> str:
        """Hex SHA-256 of the sparsity pattern (shape, indptr, indices).

        Values are deliberately excluded: matrices with equal structure
        and different data share the analysis verdict, the SpMV kernel
        plan and the unroll schedule, all of which depend only on the
        pattern.  This is the key the serving plan cache and the batched
        campaign grouper both use.  Cached alongside the other lazy
        structure views (the pattern is immutable, so the hash is too).
        """
        digest = self._cache.get("structure_fingerprint")
        if digest is None:
            hasher = hashlib.sha256()
            hasher.update(f"{self.shape[0]}x{self.shape[1]};".encode())
            hasher.update(
                np.ascontiguousarray(self.indptr, dtype="<i8").tobytes()
            )
            hasher.update(
                np.ascontiguousarray(self.indices, dtype="<i8").tobytes()
            )
            digest = hasher.hexdigest()
            self._cache["structure_fingerprint"] = digest
        return digest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"dtype={self.data.dtype})"
        )

    # ------------------------------------------------------------------
    # Compute kernels
    # ------------------------------------------------------------------

    def _spmv_plan(self) -> tuple:
        """Kernel plan for :meth:`matvec`, built once per matrix.

        ``("empty",)`` — no stored entries, the product is all zeros.

        ``("dia", terms)`` — banded fast path: the matrix has few distinct
        diagonals and they are densely occupied (regular stencils such as
        the 5-point Poisson operator).  Each term is
        ``(offset, lo, hi, weights)`` and the product is accumulated as
        contiguous multiply-add sweeps in ascending-offset order, which
        matches the per-row left-to-right accumulation order.

        ``("csr", starts, nonempty)`` — general gather + segmented
        reduction.  ``nonempty`` is ``None`` when every row has at least
        one entry (the common case), letting the kernel skip the masked
        scatter of results.
        """
        plan = self._cache.get("spmv_plan")
        if plan is None:
            plan = self._build_spmv_plan()
            self._cache["spmv_plan"] = plan
        return plan

    def _build_spmv_plan(self) -> tuple:
        if self.nnz == 0:
            return ("empty",)
        n_rows, n_cols = self.shape
        offsets = self.indices - self.row_ids()
        distinct = np.unique(offsets)
        if len(distinct) <= _DIA_MAX_DIAGONALS:
            bounds = [
                (max(0, -int(d)), min(n_rows, n_cols - int(d)))
                for d in distinct
            ]
            footprint = sum(hi - lo for lo, hi in bounds)
            if footprint and self.nnz >= _DIA_MIN_FILL * footprint:
                terms = []
                row_ids = self.row_ids()
                for d, (lo, hi) in zip(distinct, bounds):
                    mask = offsets == d
                    weights = np.zeros(hi - lo, dtype=self.data.dtype)
                    weights[row_ids[mask] - lo] = self.data[mask]
                    weights.flags.writeable = False
                    terms.append((int(d), lo, hi, weights))
                return ("dia", tuple(terms))
        nonempty = self.indptr[:-1] != self.indptr[1:]
        if nonempty.all():
            return ("csr", self.indptr[:-1], None)
        nonempty.flags.writeable = False
        starts = self.indptr[:-1][nonempty]
        return ("csr", starts, nonempty)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix–vector product ``A @ x``.

        Implemented with gather + segmented reduction
        (:func:`numpy.add.reduceat`), which mirrors the accelerator's
        gather-multiply-reduce pipeline without scipy; densely banded
        matrices instead take a per-diagonal multiply-add fast path.
        """
        x = np.asarray(x)
        if x.shape != (self.n_cols,):
            raise ShapeMismatchError(
                f"matvec expects a vector of length {self.n_cols}, got {x.shape}"
            )
        out_dtype = np.result_type(self.data, x)
        plan = self._spmv_plan()
        substrate = active_substrate()
        if plan[0] == "empty":
            return np.zeros(self.n_rows, dtype=out_dtype)
        if plan[0] == "dia":
            result = np.zeros(self.n_rows, dtype=out_dtype)
            scratch = self._workspace("dia", self.n_rows, out_dtype)
            for offset, lo, hi, weights in plan[1]:
                substrate.dia_update(
                    result, x, offset, lo, hi, weights, scratch
                )
            return result
        _, starts, nonempty = plan
        products = self._workspace("products", self.nnz, out_dtype)
        substrate.csr_products(self.data, x, self.indices, products)
        if nonempty is None:
            return np.add.reduceat(products, starts)
        result = np.zeros(self.n_rows, dtype=out_dtype)
        result[nonempty] = np.add.reduceat(products, starts)
        return result

    def _workspace_2d(
        self, tag: str, rows: int, cols: int, dtype: np.dtype
    ) -> np.ndarray:
        """2-D view of a reusable scratch buffer (batched kernels).

        Tags are disjoint from the single-vector kernels' tags, so an
        interleaved sequence of batched and single ``matvec`` calls on
        the same matrix never clobbers the other path's scratch.
        """
        return self._workspace(tag, rows * cols, dtype).reshape(rows, cols)

    def matvec_batch(self, x_block: np.ndarray) -> np.ndarray:
        """Batched SpMV: ``A @ x_k`` for K stacked RHS columns at once.

        ``x_block`` has shape ``(K, n_cols)`` (row ``k`` is the k-th
        vector); the result has shape ``(K, n_rows)``.  One index
        gather serves all K columns, the per-entry products land in a
        2-D stacked workspace, and the segmented reduction runs once
        per column via ``np.add.reduceat(..., axis=1)``; the banded
        fast path generalizes the same way with row-wise diagonal
        sweeps.  Row ``k`` of the result is **bit-identical** to
        ``self.matvec(x_block[k])`` — every stage is either elementwise
        per row or a per-row ``reduceat`` over the same segments, so
        the accumulation order per problem is unchanged.
        """
        x_block = np.asarray(x_block)
        if x_block.ndim != 2 or x_block.shape[1] != self.n_cols:
            raise ShapeMismatchError(
                "matvec_batch expects a (K, "
                f"{self.n_cols}) block, got {x_block.shape}"
            )
        k = x_block.shape[0]
        out_dtype = np.result_type(self.data, x_block)
        plan = self._spmv_plan()
        substrate = active_substrate()
        if plan[0] == "empty" or k == 0:
            return np.zeros((k, self.n_rows), dtype=out_dtype)
        if plan[0] == "dia":
            result = np.zeros((k, self.n_rows), dtype=out_dtype)
            scratch = self._workspace_2d("dia_batch", k, self.n_rows, out_dtype)
            for offset, lo, hi, weights in plan[1]:
                substrate.dia_update_batch(
                    result, x_block, offset, lo, hi, weights, scratch
                )
            return result
        _, starts, nonempty = plan
        products = self._workspace_2d("products_batch", k, self.nnz, out_dtype)
        substrate.csr_products_batch(self.data, x_block, self.indices, products)
        if nonempty is None:
            return np.add.reduceat(products, starts, axis=1)
        result = np.zeros((k, self.n_rows), dtype=out_dtype)
        result[:, nonempty] = np.add.reduceat(products, starts, axis=1)
        return result

    def rmatvec_batch(self, x_block: np.ndarray) -> np.ndarray:
        """Batched transposed product ``A.T @ x_k`` for K stacked columns.

        Same cached-transpose delegation as :meth:`rmatvec`; row ``k``
        is bit-identical to ``self.rmatvec(x_block[k])``.
        """
        x_block = np.asarray(x_block)
        if x_block.ndim != 2 or x_block.shape[1] != self.n_rows:
            raise ShapeMismatchError(
                "rmatvec_batch expects a (K, "
                f"{self.n_rows}) block, got {x_block.shape}"
            )
        return self.transpose().matvec_batch(x_block)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Transposed product ``A.T @ x`` via the cached transpose.

        Delegating to ``A.T.matvec`` turns the per-call ``np.add.at``
        scatter into a one-time transposition (argsort) plus the same
        gather + ``reduceat`` kernel as :meth:`matvec`, which is what
        makes BiCG's shadow recurrence affordable.
        """
        x = np.asarray(x)
        if x.shape != (self.n_rows,):
            raise ShapeMismatchError(
                f"rmatvec expects a vector of length {self.n_rows}, got {x.shape}"
            )
        return self.transpose().matvec(x)

    # ------------------------------------------------------------------
    # Structure manipulation
    # ------------------------------------------------------------------

    def diagonal(self) -> np.ndarray:
        """Main diagonal as a dense vector (zeros where unstored).

        Cached; the returned array is read-only.
        """
        diag = self._cache.get("diagonal")
        if diag is None:
            n = min(self.shape)
            diag = np.zeros(n, dtype=self.data.dtype)
            on_diag = (self.row_ids() == self.indices) & (self.indices < n)
            diag[self.indices[on_diag]] = self.data[on_diag]
            diag.flags.writeable = False
            self._cache["diagonal"] = diag
        return diag

    def without_diagonal(self) -> "CSRMatrix":
        """Copy with the main diagonal removed (the ``L + U`` of Jacobi).

        Cached: repeated calls return the same matrix object.
        """
        off = self._cache.get("without_diagonal")
        if off is None:
            row_of = self.row_ids()
            keep = row_of != self.indices
            new_counts = np.bincount(row_of[keep], minlength=self.n_rows)
            indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
            np.cumsum(new_counts, out=indptr[1:])
            off = CSRMatrix._from_canonical_parts(
                self.shape, indptr, self.indices[keep], self.data[keep]
            )
            self._cache["without_diagonal"] = off
        return off

    def transpose(self) -> "CSRMatrix":
        """Return ``A.T`` as a CSR matrix.

        This is the same data shuffle as converting to CSC and re-reading the
        arrays as CSR, which is exactly how the paper's Matrix Structure unit
        produces the CSC view for its symmetry comparison.

        Cached: repeated calls return the same matrix object, and the
        transpose links back so ``A.T.T is A``.
        """
        t = self._cache.get("transpose")
        if t is None:
            n_rows, n_cols = self.shape
            counts = np.bincount(self.indices, minlength=n_cols)
            indptr = np.zeros(n_cols + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            # Stable sort by column produces rows in increasing order per
            # column.
            order = np.argsort(self.indices, kind="stable")
            t = CSRMatrix._from_canonical_parts(
                (n_cols, n_rows), indptr, self.row_ids()[order],
                self.data[order],
            )
            t._cache["transpose"] = self
            self._cache["transpose"] = t
        return t

    def row_slice(self, start: int, stop: int) -> "CSRMatrix":
        """Rows ``start:stop`` as a new CSR matrix (used for 4096-row chunks).

        The slice owns copies of its arrays and starts with a fresh, empty
        structure cache — nothing is shared with this matrix's cache.
        """
        start = max(0, min(start, self.n_rows))
        stop = max(start, min(stop, self.n_rows))
        lo, hi = self.indptr[start], self.indptr[stop]
        indptr = self.indptr[start : stop + 1] - lo
        return CSRMatrix._from_canonical_parts(
            (stop - start, self.n_cols),
            indptr,
            self.indices[lo:hi].copy(),
            self.data[lo:hi].copy(),
        )

    def astype(self, dtype: np.dtype | type) -> "CSRMatrix":
        """Copy with values cast to ``dtype`` (e.g. ``np.float32``)."""
        return type(self)._from_canonical_parts(
            self.shape, self.indptr.copy(), self.indices.copy(),
            self.data.astype(dtype),
        )

    def with_data(self, data: np.ndarray) -> "CSRMatrix":
        """Same sparsity pattern, new stored values.

        The structure arrays are shared (they are immutable); only the
        value stream is replaced.  Used by Jacobi to build
        ``T = D^-1 (L + U)`` without revalidating the pattern.
        """
        data = np.asarray(data)
        if data.shape != self.data.shape:
            raise SparseFormatError(
                f"with_data expects {self.data.shape[0]} values, "
                f"got {data.shape}"
            )
        return CSRMatrix._from_canonical_parts(
            self.shape, self.indptr, self.indices, data
        )

    # ------------------------------------------------------------------
    # Conversions and comparisons
    # ------------------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.data.dtype)
        dense[self.row_ids(), self.indices] = self.data
        return dense

    def to_coo(self) -> "COOMatrix":
        from repro.sparse.coo import COOMatrix

        return COOMatrix(
            self.shape, self.row_ids().copy(), self.indices.copy(),
            self.data.copy(),
        )

    def to_csc(self) -> "CSCMatrix":
        """Convert to CSC — the Matrix Structure unit's comparison format."""
        from repro.sparse.csc import CSCMatrix

        t = self.transpose()
        return CSCMatrix(self.shape, t.indptr, t.indices, t.data)

    def structurally_equal(self, other: "CSRMatrix") -> bool:
        """True when both matrices store exactly the same coordinates."""
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def allclose(self, other: "CSRMatrix", rtol: float = 1e-6) -> bool:
        """Structural equality plus value closeness."""
        return self.structurally_equal(other) and np.allclose(
            self.data, other.data, rtol=rtol, atol=rtol
        )

    @staticmethod
    def from_dense(dense: np.ndarray) -> "CSRMatrix":
        from repro.sparse.coo import COOMatrix

        return COOMatrix.from_dense(dense).to_csr()

    @staticmethod
    def identity(n: int, dtype: np.dtype | type = np.float64) -> "CSRMatrix":
        """The ``n``-by-``n`` identity matrix."""
        indptr = np.arange(n + 1, dtype=np.int64)
        indices = np.arange(n, dtype=np.int64)
        return CSRMatrix((n, n), indptr, indices, np.ones(n, dtype=dtype))


def structure_fingerprint(matrix: CSRMatrix) -> str:
    """Hex SHA-256 of the CSR sparsity pattern (shape, indptr, indices).

    Functional form of :meth:`CSRMatrix.structure_fingerprint`, kept for
    callers that key caches on matrices they do not own (the serving
    plan cache re-exports it from :mod:`repro.serve`).
    """
    return matrix.structure_fingerprint()
