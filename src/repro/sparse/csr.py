"""Compressed Sparse Row matrix — the accelerator's native input format.

The paper's hardware streams the coefficient matrix in CSR: an ``indptr``
array of row offsets, a column-index stream, and a value stream.  This class
mirrors that layout and provides the operations the rest of the library is
built on: a vectorized SpMV, row slicing for the 4096-row chunking, diagonal
extraction for Jacobi, and transposition (which doubles as CSR→CSC
conversion in the Matrix Structure unit).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeMismatchError, SparseFormatError


class CSRMatrix:
    """Sparse matrix in CSR format.

    Parameters
    ----------
    shape:
        ``(n_rows, n_cols)``.
    indptr:
        ``n_rows + 1`` row offsets into ``indices``/``data``; must start at
        0, end at ``nnz`` and be non-decreasing.
    indices:
        Column index of each stored value.  Within each row the indices must
        be strictly increasing (canonical CSR); the constructor verifies
        this because the symmetry check and Jacobi splitting rely on it.
    data:
        Stored values, same length as ``indices``.
    """

    __slots__ = ("shape", "indptr", "indices", "data")

    def __init__(
        self,
        shape: tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
    ) -> None:
        n_rows, n_cols = shape
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data)
        if indptr.shape != (n_rows + 1,):
            raise SparseFormatError(
                f"indptr must have length n_rows+1={n_rows + 1}, got {len(indptr)}"
            )
        if len(indptr) and indptr[0] != 0:
            raise SparseFormatError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if indptr[-1] != len(indices) or len(indices) != len(data):
            raise SparseFormatError(
                "indptr[-1], len(indices) and len(data) must agree, got "
                f"{indptr[-1]}, {len(indices)}, {len(data)}"
            )
        if len(indices) and (indices.min() < 0 or indices.max() >= n_cols):
            raise SparseFormatError("column index out of bounds")
        self._check_sorted_rows(indptr, indices)
        self.shape = (int(n_rows), int(n_cols))
        self.indptr = indptr
        self.indices = indices
        self.data = data

    @staticmethod
    def _check_sorted_rows(indptr: np.ndarray, indices: np.ndarray) -> None:
        """Verify column indices are strictly increasing within each row."""
        if len(indices) < 2:
            return
        increasing = indices[1:] > indices[:-1]
        # Positions where a new row starts are allowed to decrease.
        row_starts = np.zeros(len(indices), dtype=bool)
        starts = indptr[1:-1]
        row_starts[starts[starts < len(indices)]] = True
        bad = ~increasing & ~row_starts[1:]
        if np.any(bad):
            raise SparseFormatError(
                "column indices must be strictly increasing within each row "
                "(duplicates or unsorted entries found)"
            )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return len(self.data)

    @property
    def density(self) -> float:
        """Fraction of entries that are stored (``nnz / (rows * cols)``)."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def row_lengths(self) -> np.ndarray:
        """NNZ per row — the quantity the Row Length Trace unit streams."""
        return np.diff(self.indptr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"dtype={self.data.dtype})"
        )

    # ------------------------------------------------------------------
    # Compute kernels
    # ------------------------------------------------------------------

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix–vector product ``A @ x``.

        Implemented with gather + segmented reduction
        (:func:`numpy.add.reduceat`), which mirrors the accelerator's
        gather-multiply-reduce pipeline without scipy.
        """
        x = np.asarray(x)
        if x.shape != (self.n_cols,):
            raise ShapeMismatchError(
                f"matvec expects a vector of length {self.n_cols}, got {x.shape}"
            )
        out_dtype = np.result_type(self.data, x)
        products = self.data * x[self.indices]
        result = np.zeros(self.n_rows, dtype=out_dtype)
        nonempty = self.indptr[:-1] != self.indptr[1:]
        if np.any(nonempty):
            starts = self.indptr[:-1][nonempty]
            result[nonempty] = np.add.reduceat(products, starts)
        return result

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Transposed product ``A.T @ x`` without materializing ``A.T``."""
        x = np.asarray(x)
        if x.shape != (self.n_rows,):
            raise ShapeMismatchError(
                f"rmatvec expects a vector of length {self.n_rows}, got {x.shape}"
            )
        out_dtype = np.result_type(self.data, x)
        row_of = np.repeat(np.arange(self.n_rows), self.row_lengths())
        result = np.zeros(self.n_cols, dtype=out_dtype)
        np.add.at(result, self.indices, self.data * x[row_of])
        return result

    # ------------------------------------------------------------------
    # Structure manipulation
    # ------------------------------------------------------------------

    def diagonal(self) -> np.ndarray:
        """Main diagonal as a dense vector (zeros where unstored)."""
        n = min(self.shape)
        diag = np.zeros(n, dtype=self.data.dtype)
        row_of = np.repeat(np.arange(self.n_rows), self.row_lengths())
        on_diag = (row_of == self.indices) & (self.indices < n)
        diag[self.indices[on_diag]] = self.data[on_diag]
        return diag

    def without_diagonal(self) -> "CSRMatrix":
        """Copy with the main diagonal removed (the ``L + U`` of Jacobi)."""
        row_of = np.repeat(np.arange(self.n_rows), self.row_lengths())
        keep = row_of != self.indices
        new_counts = np.bincount(row_of[keep], minlength=self.n_rows)
        indptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        np.cumsum(new_counts, out=indptr[1:])
        return CSRMatrix(self.shape, indptr, self.indices[keep], self.data[keep])

    def transpose(self) -> "CSRMatrix":
        """Return ``A.T`` as a new CSR matrix.

        This is the same data shuffle as converting to CSC and re-reading the
        arrays as CSR, which is exactly how the paper's Matrix Structure unit
        produces the CSC view for its symmetry comparison.
        """
        n_rows, n_cols = self.shape
        counts = np.bincount(self.indices, minlength=n_cols)
        indptr = np.zeros(n_cols + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        row_of = np.repeat(np.arange(n_rows), self.row_lengths())
        # Stable sort by column produces rows in increasing order per column.
        order = np.argsort(self.indices, kind="stable")
        return CSRMatrix(
            (n_cols, n_rows), indptr, row_of[order], self.data[order]
        )

    def row_slice(self, start: int, stop: int) -> "CSRMatrix":
        """Rows ``start:stop`` as a new CSR matrix (used for 4096-row chunks)."""
        start = max(0, min(start, self.n_rows))
        stop = max(start, min(stop, self.n_rows))
        lo, hi = self.indptr[start], self.indptr[stop]
        indptr = (self.indptr[start : stop + 1] - lo).copy()
        return CSRMatrix(
            (stop - start, self.n_cols),
            indptr,
            self.indices[lo:hi].copy(),
            self.data[lo:hi].copy(),
        )

    def astype(self, dtype: np.dtype | type) -> "CSRMatrix":
        """Copy with values cast to ``dtype`` (e.g. ``np.float32``)."""
        return CSRMatrix(
            self.shape, self.indptr.copy(), self.indices.copy(),
            self.data.astype(dtype),
        )

    # ------------------------------------------------------------------
    # Conversions and comparisons
    # ------------------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.data.dtype)
        row_of = np.repeat(np.arange(self.n_rows), self.row_lengths())
        dense[row_of, self.indices] = self.data
        return dense

    def to_coo(self) -> "COOMatrix":
        from repro.sparse.coo import COOMatrix

        row_of = np.repeat(np.arange(self.n_rows), self.row_lengths())
        return COOMatrix(self.shape, row_of, self.indices.copy(), self.data.copy())

    def to_csc(self) -> "CSCMatrix":
        """Convert to CSC — the Matrix Structure unit's comparison format."""
        from repro.sparse.csc import CSCMatrix

        t = self.transpose()
        return CSCMatrix(self.shape, t.indptr, t.indices, t.data)

    def structurally_equal(self, other: "CSRMatrix") -> bool:
        """True when both matrices store exactly the same coordinates."""
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def allclose(self, other: "CSRMatrix", rtol: float = 1e-6) -> bool:
        """Structural equality plus value closeness."""
        return self.structurally_equal(other) and np.allclose(
            self.data, other.data, rtol=rtol, atol=rtol
        )

    @staticmethod
    def from_dense(dense: np.ndarray) -> "CSRMatrix":
        from repro.sparse.coo import COOMatrix

        return COOMatrix.from_dense(dense).to_csr()

    @staticmethod
    def identity(n: int, dtype: np.dtype | type = np.float64) -> "CSRMatrix":
        """The ``n``-by-``n`` identity matrix."""
        indptr = np.arange(n + 1, dtype=np.int64)
        indices = np.arange(n, dtype=np.int64)
        return CSRMatrix((n, n), indptr, indices, np.ones(n, dtype=dtype))
