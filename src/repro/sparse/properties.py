"""Structural-property analysis of sparse coefficient matrices.

Section III-B of the paper ties each solver's convergence guarantee to a
structural property of ``A``:

- Jacobi requires strict diagonal dominance (Eq. 1),
- CG requires symmetry and positive definiteness (Eq. 2–3),
- BiCG-STAB targets non-symmetric systems (Eq. 4).

The hardware's Matrix Structure unit checks only diagonal dominance and
symmetry (eigenvalue computation being too expensive); this module provides
those two checks in the same CSR/CSC fashion, plus optional heavier probes
(definiteness sampling, Jacobi iteration-matrix spectral radius) used by
tests and dataset engineering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix


def is_strictly_diagonally_dominant(matrix: CSRMatrix) -> bool:
    """Check Eq. 1: for every row, ``sum_{j != i} |A_ij| < |A_ii|``.

    Rows with a zero (unstored) diagonal fail the test, as do empty rows.
    """
    if matrix.shape[0] != matrix.shape[1]:
        return False
    diag = np.abs(matrix.diagonal())
    off_sums = _off_diagonal_abs_sums(matrix)
    return bool(np.all(off_sums < diag.astype(np.float64)))


def _off_diagonal_abs_sums(matrix: CSRMatrix) -> np.ndarray:
    """Per-row ``sum_{j != i} |A_ij|`` via a weighted bincount.

    ``np.bincount`` accumulates weights sequentially in array order, so
    this is bit-identical to the former ``np.add.at`` scatter while being
    a single C pass; ``row_ids`` comes from the matrix's structure cache.
    """
    row_of = matrix.row_ids()
    off_diag = row_of != matrix.indices
    off_vals = np.abs(matrix.data[off_diag].astype(np.float64))
    return np.bincount(
        row_of[off_diag], weights=off_vals, minlength=matrix.n_rows
    )


def diagonal_dominance_margin(matrix: CSRMatrix) -> np.ndarray:
    """Per-row margin ``|A_ii| - sum_{j != i} |A_ij|`` (positive = dominant)."""
    diag = np.abs(matrix.diagonal()).astype(np.float64)
    return diag - _off_diagonal_abs_sums(matrix)


def gershgorin_upper_bound(matrix: CSRMatrix) -> float:
    """``max_i (|A_ii| + sum_{j != i} |A_ij|)`` — the rightmost Gershgorin
    disc edge.  For a symmetric matrix this bounds ``lambda_max`` from
    above (for any matrix it bounds the spectral radius), so it is a safe
    cap where an iterative estimate may undershoot."""
    diag = np.abs(matrix.diagonal()).astype(np.float64)
    return float((diag + _off_diagonal_abs_sums(matrix)).max())


def is_symmetric(matrix: CSRMatrix, rtol: float = 1e-6) -> bool:
    """Check Eq. 2 the way the Matrix Structure unit does: CSR vs CSC.

    The CSC encoding of ``A`` equals the CSR encoding of ``A.T``; comparing
    it array-wise against the CSR input decides ``A == A.T``.
    """
    if matrix.shape[0] != matrix.shape[1]:
        return False
    return matrix.to_csc().matches_csr(matrix, rtol=rtol)


def positive_definite_probe(
    matrix: CSRMatrix, n_probes: int = 16, seed: int = 0
) -> bool:
    """Randomized necessary test for positive definiteness.

    Draws ``n_probes`` random vectors and checks ``x.T A x > 0`` for each.
    A failure proves the matrix is not positive definite; all-pass is strong
    evidence of definiteness for the synthetic matrices used here.  The
    paper's hardware skips this check entirely (it trusts symmetry); the
    probe exists for dataset validation and the Table I criteria module.
    """
    if matrix.shape[0] != matrix.shape[1]:
        return False
    rng = np.random.default_rng(seed)
    n = matrix.shape[0]
    for _ in range(n_probes):
        x = rng.standard_normal(n)
        if float(x @ matrix.matvec(x)) <= 0.0:
            return False
    return True


def estimate_spectral_radius(
    matvec, n: int, n_iters: int = 200, seed: int = 0, tol: float = 1e-8
) -> float:
    """Power iteration on an arbitrary ``matvec`` callable.

    Returns an estimate of the dominant |eigenvalue|.  Used to predict
    Jacobi convergence (``rho(D^-1 (L+U)) < 1``) when engineering datasets.
    """
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    x /= np.linalg.norm(x)
    radius = 0.0
    for _ in range(n_iters):
        y = matvec(x)
        norm = float(np.linalg.norm(y))
        if norm == 0.0 or not np.isfinite(norm):
            return norm
        y /= norm
        if abs(norm - radius) <= tol * max(radius, 1.0):
            return norm
        radius = norm
        x = y
    return radius


def jacobi_iteration_spectral_radius(
    matrix: CSRMatrix, n_iters: int = 200, seed: int = 0
) -> float:
    """Spectral radius of the Jacobi iteration matrix ``T = D^-1 (L + U)``.

    Jacobi converges for every starting guess iff this is below 1.  Strict
    diagonal dominance is the cheap sufficient condition the hardware
    checks; this estimate is the ground truth used in tests.
    """
    diag = matrix.diagonal().astype(np.float64)
    if np.any(diag == 0.0):
        return np.inf
    off = matrix.without_diagonal()

    def t_matvec(x: np.ndarray) -> np.ndarray:
        return off.matvec(x) / diag

    return estimate_spectral_radius(t_matvec, matrix.shape[0], n_iters, seed)


@dataclass(frozen=True)
class MatrixProperties:
    """Summary of the structural properties the accelerator reasons about."""

    n_rows: int
    n_cols: int
    nnz: int
    density: float
    strictly_diagonally_dominant: bool
    symmetric: bool

    @property
    def square(self) -> bool:
        return self.n_rows == self.n_cols


def analyze_properties(matrix: CSRMatrix, rtol: float = 1e-6) -> MatrixProperties:
    """Run the Matrix Structure unit's cheap checks and package the result."""
    return MatrixProperties(
        n_rows=matrix.shape[0],
        n_cols=matrix.shape[1],
        nnz=matrix.nnz,
        density=matrix.density,
        strictly_diagonally_dominant=is_strictly_diagonally_dominant(matrix),
        symmetric=is_symmetric(matrix, rtol=rtol),
    )
