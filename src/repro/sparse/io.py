"""Matrix Market (``.mtx``) reader/writer.

SuiteSparse distributes its collection in Matrix Market exchange format;
this module lets a user with network access run the *actual* Table II
matrices through the accelerator instead of the synthetic stand-ins.
Supports the coordinate format with ``real``/``integer``/``pattern``
fields and ``general``/``symmetric``/``skew-symmetric`` storage (the
variants the SuiteSparse collection uses for the paper's datasets).
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import IO, Iterable

import numpy as np

from repro.errors import SparseFormatError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

_SUPPORTED_FIELDS = ("real", "integer", "pattern")
_SUPPORTED_SYMMETRIES = ("general", "symmetric", "skew-symmetric")


def _open_text(path: str | Path) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"))
    return open(path, "r")


def _parse_header(line: str) -> tuple[str, str]:
    """Validate the banner and return ``(field, symmetry)``."""
    parts = line.strip().lower().split()
    if len(parts) != 5 or parts[0] != "%%matrixmarket":
        raise SparseFormatError(f"not a MatrixMarket banner: {line!r}")
    _, obj, fmt, field, symmetry = parts
    if obj != "matrix" or fmt != "coordinate":
        raise SparseFormatError(
            f"only 'matrix coordinate' files are supported, got {obj} {fmt}"
        )
    if field not in _SUPPORTED_FIELDS:
        raise SparseFormatError(
            f"unsupported field {field!r}; supported: {_SUPPORTED_FIELDS}"
        )
    if symmetry not in _SUPPORTED_SYMMETRIES:
        raise SparseFormatError(
            f"unsupported symmetry {symmetry!r}; supported: "
            f"{_SUPPORTED_SYMMETRIES}"
        )
    return field, symmetry


def read_matrix_market(source: str | Path | IO[str]) -> CSRMatrix:
    """Read a Matrix Market coordinate file into CSR.

    ``source`` may be a path (optionally ``.gz``-compressed) or an open
    text stream.  Symmetric / skew-symmetric storage is expanded to the
    full matrix (diagonal entries are not mirrored; a skew file's
    diagonal must be absent or zero per the standard).
    """
    stream: IO[str]
    close = False
    if isinstance(source, (str, Path)):
        stream = _open_text(source)
        close = True
    else:
        stream = source
    try:
        banner = stream.readline()
        field, symmetry = _parse_header(banner)
        size_line = None
        for line in stream:
            if line.startswith("%") or not line.strip():
                continue
            size_line = line
            break
        if size_line is None:
            raise SparseFormatError("missing size line")
        try:
            n_rows, n_cols, nnz = (int(tok) for tok in size_line.split())
        except ValueError:
            raise SparseFormatError(f"bad size line: {size_line!r}") from None

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        count = 0
        for line in stream:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            if count >= nnz:
                raise SparseFormatError("more entries than the size line declares")
            parts = line.split()
            if field == "pattern":
                if len(parts) != 2:
                    raise SparseFormatError(f"bad pattern entry: {line!r}")
                value = 1.0
            else:
                if len(parts) != 3:
                    raise SparseFormatError(f"bad entry: {line!r}")
                value = float(parts[2])
            rows[count] = int(parts[0]) - 1  # 1-based in the file
            cols[count] = int(parts[1]) - 1
            vals[count] = value
            count += 1
        if count != nnz:
            raise SparseFormatError(
                f"size line declares {nnz} entries, file has {count}"
            )
        if symmetry in ("symmetric", "skew-symmetric"):
            off = rows != cols
            mirror_sign = -1.0 if symmetry == "skew-symmetric" else 1.0
            mirrored_rows = cols[off]
            mirrored_cols = rows[off]
            mirrored_vals = mirror_sign * vals[off]
            rows = np.concatenate([rows, mirrored_rows])
            cols = np.concatenate([cols, mirrored_cols])
            vals = np.concatenate([vals, mirrored_vals])
        return COOMatrix((n_rows, n_cols), rows, cols, vals).canonical().to_csr()
    finally:
        if close:
            stream.close()


def write_matrix_market(
    matrix: CSRMatrix,
    destination: str | Path | IO[str],
    comments: Iterable[str] = (),
) -> None:
    """Write a CSR matrix as a general real coordinate Matrix Market file."""
    stream: IO[str]
    close = False
    if isinstance(destination, (str, Path)):
        stream = open(destination, "w")
        close = True
    else:
        stream = destination
    try:
        stream.write("%%MatrixMarket matrix coordinate real general\n")
        for comment in comments:
            stream.write(f"% {comment}\n")
        stream.write(f"{matrix.shape[0]} {matrix.shape[1]} {matrix.nnz}\n")
        row_of = matrix.row_ids()
        for r, c, v in zip(row_of, matrix.indices, matrix.data):
            stream.write(f"{r + 1} {c + 1} {float(v)!r}\n")
    finally:
        if close:
            stream.close()
