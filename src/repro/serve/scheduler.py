"""Micro-batched dispatch onto the solver fleet.

The scheduler converts the admission queue into **micro-batches** of
compatible requests and places them on fleet slots
(:class:`repro.fpga.multitenancy.FleetSpec`), charging simulated device
time so tenancy limits genuinely bound concurrency.

Compatibility follows the fabric, not the client: requests whose
matrices share a structure fingerprint — or, once their analysis is
cached, a reconfiguration-plan *signature* — can run back-to-back on one
Reconfigurable Solver instance with no reconfiguration between them.
Batching therefore amortizes exactly the costs Acamar's decision loops
amortize: the structure analysis is charged once per cold batch, the
ICAP configuration load once per placement on a slot whose resident
configuration differs (plan-signature **affinity** routes batches to
slots already configured for them), and every member after the first
pays only its final-attempt device compute.

Dispatch policy per scheduling tick: groups are considered in
(priority, arrival) order and dispatch when a slot is free **and** the
group is ripe — full, interactive-headed, or older than the batch
window.  Everything is deterministic: ties break on request id and slot
index.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry as tm
from repro.errors import ConfigurationError
from repro.fpga.multitenancy import FleetSpec
from repro.placement import FPGA, GPU, PlacementDecision, decide_placement
from repro.serve.admission import QueuedRequest
from repro.serve.api import Outcome, Priority, SolveResponse
from repro.serve.cache import PlanCache
from repro.serve.profile import (
    BATCH_MEMBER_DISPATCH_SECONDS,
    DISPATCH_OVERHEAD_SECONDS,
    SolveProfile,
)


@dataclass(frozen=True)
class DeviceFaultEvent:
    """One modeled transient device fault on the virtual clock.

    At virtual time ``at_s`` the slot goes dark for ``outage_s`` seconds
    (SEU scrub, ICAP region recovery, a wedged kernel being reset): it
    accepts no new batches until the outage ends, and its resident
    configuration is wiped, so the next batch placed there pays a full
    configuration load.  Work already charged to the slot is not
    revoked — the model treats in-flight batches as completing before
    the region is recovered, which keeps the accounting invariant
    ("every request gets exactly one response") intact by construction.

    ``device_class`` scopes the fault: ``slot`` indexes into that
    class's slot pool only, so a fault aimed at a GPU tenant can never
    evict a resident FPGA plan (and vice versa).  A fault naming a
    class the fleet does not host is consumed without effect.
    """

    at_s: float
    slot: int
    outage_s: float
    device_class: str = FPGA


@dataclass
class FleetSlot:
    """One dispatch slot's state on the virtual clock.

    A slot is either an FPGA Reconfigurable Solver instance or a GPU
    tenant (``device_class``); both track residency the same way — the
    plan signature whose structure/configuration they currently hold.
    """

    index: int
    busy_until_s: float = 0.0
    resident_signature: str | None = None
    busy_seconds: float = 0.0
    config_loads: int = 0
    batches: int = 0
    outages: int = 0
    device_class: str = FPGA

    def free_at(self, now: float) -> bool:
        return self.busy_until_s <= now


@dataclass
class BatchRecord:
    """Accounting for one dispatched micro-batch."""

    batch_id: int
    size: int
    instance: int
    start_s: float
    end_s: float
    cold: bool
    config_load: bool
    device_class: str = FPGA


@dataclass
class MicroBatchScheduler:
    """Forms and places micro-batches; owns the fleet slot state.

    ``profiles`` maps source text to its :class:`SolveProfile` (or an
    error string when profiling failed); the service resolves it before
    the simulation loop.  ``cache`` is ``None`` when serving runs
    cache-less (``--no-cache``) — batching still amortizes within a
    batch, but every batch re-runs the analysis.
    """

    fleet: FleetSpec
    profiles: dict[str, "SolveProfile | str"]
    cache: PlanCache | None = None
    max_batch: int = 8
    batch_window_s: float = 2e-3
    solver_swap_s: float = 0.0
    device_faults: tuple[DeviceFaultEvent, ...] = ()
    slots: list[FleetSlot] = field(default_factory=list)
    batches: list[BatchRecord] = field(default_factory=list)
    _faults_applied: int = 0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.batch_window_s < 0:
            raise ConfigurationError(
                f"batch window must be >= 0, got {self.batch_window_s}"
            )
        self.device_faults = tuple(
            sorted(
                self.device_faults,
                key=lambda e: (e.at_s, e.device_class, e.slot),
            )
        )
        for event in self.device_faults:
            if event.outage_s < 0:
                raise ConfigurationError(
                    f"device-fault outage must be >= 0 s, got {event.outage_s}"
                )
        if not self.slots:
            self.slots = [
                FleetSlot(index=i) for i in range(self.fleet.total_slots)
            ] + [
                FleetSlot(
                    index=self.fleet.total_slots + j, device_class=GPU
                )
                for j in range(self.fleet.gpu_tenants)
            ]
        if not self.solver_swap_s:
            from repro.fpga import PerformanceModel

            self.solver_swap_s = PerformanceModel(
                self.fleet.device
            ).reconfig.solver_swap_seconds()
        self._placements: dict[str, PlacementDecision] = {}

    # -- placement decisions ------------------------------------------

    def placement_for(self, source: str) -> PlacementDecision | None:
        """Memoized per-source placement (``None`` for failed profiles).

        Decisions are pure functions of the profile and the fleet's
        tenancy mix, so memoization is a pure speedup — every run,
        machine and worker count computes the identical placement.
        """
        if source in self._placements:
            return self._placements[source]
        profile = self.profiles[source]
        if isinstance(profile, str):
            return None
        decision = decide_placement(
            profile,
            fpga_slots=self.fleet.total_slots,
            gpu_tenants=self.fleet.gpu_tenants,
            max_batch=self.max_batch,
        )
        self._placements[source] = decision
        return decision

    @property
    def _default_class(self) -> str:
        """Device class for batches with no profile (failed analyses)."""
        return FPGA if self.fleet.total_slots > 0 else GPU

    # -- batch formation ----------------------------------------------

    def group_key(self, queued: QueuedRequest) -> tuple[str, str, str]:
        """Compatibility key: plan signature when cached, else fingerprint.

        A fingerprint's plan signature is only *known* to the service
        once its analysis ran and is cached, so signature-level merging
        (batching different structures that share a schedule) engages
        for warm traffic only.  Failed profiles group by source so one
        poisoned source cannot contaminate a healthy batch.

        The third element is the placement's device class: requests
        bound for different backends never share a micro-batch, so the
        batch's charge model is unambiguous.
        """
        profile = self.profiles[queued.request.source]
        if isinstance(profile, str):
            return ("error", queued.request.source, self._default_class)
        placed = self.placement_for(queued.request.source)
        device_class = placed.device_class if placed else self._default_class
        if self.cache is not None and self.cache.peek(profile.fingerprint):
            return ("plan", profile.plan_signature, device_class)
        return ("fp", profile.fingerprint, device_class)

    def _form_groups(
        self, queue: list[QueuedRequest]
    ) -> list[tuple[tuple[str, str, str], list[QueuedRequest]]]:
        """Partition the (priority-sorted) queue into compatible groups,
        preserving the order of each group's head."""
        groups: dict[tuple[str, str, str], list[QueuedRequest]] = {}
        order: list[tuple[str, str, str]] = []
        for queued in queue:
            key = self.group_key(queued)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(queued)
        return [(key, groups[key]) for key in order]

    def _ripe(self, members: list[QueuedRequest], now: float) -> bool:
        if len(members) >= self.max_batch:
            return True
        if members[0].request.priority is Priority.INTERACTIVE:
            return True
        eldest = min(q.admitted_s for q in members)
        return now - eldest >= self.batch_window_s

    # -- modeled device faults ----------------------------------------

    def apply_device_faults(self, now: float) -> None:
        """Apply every scheduled fault whose time has come (idempotent).

        Called at the top of each dispatch tick; events are consumed in
        ``(at_s, device_class, slot)`` order, so a fixed fault schedule
        perturbs the simulation identically on every run.

        Each event resolves its slot ordinal *within its device class's
        pool*: a GPU-tenant fault can only darken (and evict the
        residency of) a GPU slot, never a co-scheduled FPGA instance.
        An event naming a class this fleet does not host is consumed
        without effect or counter.
        """
        while self._faults_applied < len(self.device_faults):
            event = self.device_faults[self._faults_applied]
            if event.at_s > now:
                break
            self._faults_applied += 1
            pool = [
                slot
                for slot in self.slots
                if slot.device_class == event.device_class
            ]
            if not pool:
                continue
            slot = pool[event.slot % len(pool)]
            slot.busy_until_s = max(
                slot.busy_until_s, event.at_s + event.outage_s
            )
            slot.resident_signature = None
            slot.outages += 1
            tm.count("serve.device_faults")

    # -- placement ----------------------------------------------------

    def _pick_slot(
        self, now: float, signature: str | None, device_class: str
    ) -> FleetSlot | None:
        free = [
            slot
            for slot in self.slots
            if slot.device_class == device_class and slot.free_at(now)
        ]
        if not free:
            return None
        if signature is not None:
            for slot in free:  # affinity: already-configured slot first
                if slot.resident_signature == signature:
                    return slot
        return min(free, key=lambda slot: slot.index)

    def has_free_slot(self, now: float) -> bool:
        return any(slot.free_at(now) for slot in self.slots)

    def _serve_batch(
        self,
        slot: FleetSlot,
        members: list[QueuedRequest],
        profile: SolveProfile,
        now: float,
        batch_id: int,
    ) -> list[SolveResponse]:
        signature = profile.plan_signature
        # Residency matching needs the cache: without it the service
        # never learns a structure's plan signature ahead of dispatch, so
        # it cannot prove the slot's resident configuration matches and
        # must reload the region for every batch.  On an FPGA slot a
        # residency miss is an ICAP configuration load; on a GPU tenant
        # it is the PCIe structure upload.
        config_load = (
            self.cache is None or slot.resident_signature != signature
        )
        on_gpu = slot.device_class == GPU
        swap_charge = profile.gpu_transfer_s if on_gpu else self.solver_swap_s
        cursor = now + (swap_charge if config_load else 0.0)
        if config_load:
            slot.config_loads += 1
            if on_gpu:
                tm.count("gpu.transfers")
            else:
                tm.count("serve.config_loads")
        entry = self.cache.get(profile.fingerprint) if self.cache else None
        batch_warm = entry is not None
        if self.cache is not None and not batch_warm:
            self.cache.put(profile.cache_entry())
        if not batch_warm and self.fleet.cpu_assist:
            tm.count("placement.cpu_assist_offloads")
        responses: list[SolveResponse] = []
        for position, queued in enumerate(members):
            # The first member of a cold batch pays the full analysis and
            # fallback chain; later members share it (micro-batch
            # amortization) but still count as cache misses — only a
            # warm batch's members were truly served from the cache.
            cold_member = not batch_warm and position == 0
            # Only the batch head pays full dispatch; members on the same
            # configured slot reuse its descriptor and lookup.
            dispatch = (
                DISPATCH_OVERHEAD_SECONDS
                if position == 0
                else BATCH_MEMBER_DISPATCH_SECONDS
            )
            service = dispatch + profile.member_service_s(
                slot.device_class, cold_member, self.fleet.cpu_assist
            )
            start = cursor
            cursor += service
            responses.append(
                SolveResponse(
                    request_id=queued.request.request_id,
                    source=queued.request.source,
                    outcome=Outcome.COMPLETED,
                    priority=queued.request.priority,
                    arrival_s=queued.request.arrival_s,
                    finish_s=cursor,
                    queue_s=start - queued.request.arrival_s,
                    service_s=service,
                    cache_hit=batch_warm,
                    batch_id=batch_id,
                    instance=slot.index,
                    converged=profile.converged,
                    solver_sequence=profile.solver_sequence,
                    iterations=profile.iterations,
                )
            )
            tm.count("serve.cache_hits" if batch_warm else "serve.cache_misses")
        slot.resident_signature = signature
        slot.busy_seconds += cursor - now
        slot.busy_until_s = cursor
        slot.batches += 1
        self.batches.append(
            BatchRecord(
                batch_id=batch_id,
                size=len(members),
                instance=slot.index,
                start_s=now,
                end_s=cursor,
                cold=not batch_warm,
                config_load=config_load,
                device_class=slot.device_class,
            )
        )
        tm.count("serve.batches")
        # Per-class batch counters only exist once placement is active
        # (a mixed fleet); pure-FPGA fleets keep their pre-placement
        # counter schema byte-for-byte.
        if self.fleet.gpu_tenants > 0:
            if on_gpu:
                tm.count("placement.gpu_batches")
            else:
                tm.count("placement.fpga_batches")
        return responses

    def _fail_batch(
        self,
        slot: FleetSlot,
        members: list[QueuedRequest],
        error: str,
        now: float,
        batch_id: int,
    ) -> list[SolveResponse]:
        """Charge the failed analysis and report the error per request."""
        cursor = now
        responses = []
        for queued in members:
            service = DISPATCH_OVERHEAD_SECONDS
            start = cursor
            cursor += service
            responses.append(
                SolveResponse(
                    request_id=queued.request.request_id,
                    source=queued.request.source,
                    outcome=Outcome.FAILED,
                    priority=queued.request.priority,
                    arrival_s=queued.request.arrival_s,
                    finish_s=cursor,
                    queue_s=start - queued.request.arrival_s,
                    service_s=service,
                    batch_id=batch_id,
                    instance=slot.index,
                    detail=error,
                )
            )
            tm.count("serve.failed")
        slot.busy_seconds += cursor - now
        slot.busy_until_s = cursor
        slot.batches += 1
        self.batches.append(
            BatchRecord(
                batch_id=batch_id,
                size=len(members),
                instance=slot.index,
                start_s=now,
                end_s=cursor,
                cold=True,
                config_load=False,
                device_class=slot.device_class,
            )
        )
        return responses

    def dispatch(
        self, queue: list[QueuedRequest], now: float, next_batch_id: int
    ) -> tuple[list[SolveResponse], list[QueuedRequest], int]:
        """Place every ripe group a free slot can take at ``now``.

        Returns (responses, remaining queue, next batch id).  The queue
        comes in admission (priority) order and leaves the same way.
        """
        self.apply_device_faults(now)
        remaining = list(queue)
        responses: list[SolveResponse] = []
        while remaining and self.has_free_slot(now):
            dispatched = False
            for key, members in self._form_groups(remaining):
                if not self._ripe(members, now):
                    continue
                take = members[: self.max_batch]
                profile = self.profiles[take[0].request.source]
                signature = (
                    profile.plan_signature
                    if self.cache is not None
                    and not isinstance(profile, str)
                    else None
                )
                # The group's device class rode in on its key; a class
                # with no free slot must not block groups placed on the
                # other class, so exhaustion skips the group rather
                # than ending the tick.
                slot = self._pick_slot(now, signature, key[2])
                if slot is None:
                    continue
                if isinstance(profile, str):
                    responses.extend(
                        self._fail_batch(slot, take, profile, now, next_batch_id)
                    )
                else:
                    responses.extend(
                        self._serve_batch(slot, take, profile, now, next_batch_id)
                    )
                next_batch_id += 1
                taken = {q.request.request_id for q in take}
                remaining = [
                    q for q in remaining if q.request.request_id not in taken
                ]
                dispatched = True
                break
            if not dispatched:
                break
        return responses, remaining, next_batch_id
