"""Cold-solve profiling: one real Acamar solve per unique structure.

The serving simulator charges *modeled* device time, so each distinct
problem source needs a ground-truth profile: which solver sequence the
decision loops pick, how many iterations the final attempt runs, and the
cost model's per-attempt compute latency.  :func:`profile_items` is a
worker entry point with the same ``(items, config) -> list[ItemResult]``
shape as the campaign's ``solve_items``, so the service can dispatch
profiling through :func:`repro.parallel.engine.run_sharded` (pool
restarts, fault isolation and ordered reassembly included) when warming
many unique sources, or call it directly in-process for lazy misses.

Host-side analysis latency is modeled with explicit constants below:
the Matrix Structure unit reads every stored entry (dominance sums plus
the CSR-vs-CSC comparison), so its cost scales with NNZ; the Fine-
Grained Reconfiguration unit walks row sets, so its cost scales with row
count.  These charges are what a fingerprint-cache hit skips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro import telemetry as tm
from repro.config import AcamarConfig
from repro.parallel import ItemResult, WorkItem, source_label
from repro.placement import (
    CPU_ASSIST_ROUNDTRIP_SECONDS,
    estimate_gpu_service,
    structural_class_of,
)
from repro.serve.cache import CacheEntry, plan_signature, structure_fingerprint
from repro.telemetry import Telemetry

ANALYSIS_SECONDS_PER_NNZ = 25e-9
"""Host time per stored entry for the structure checks (Eq. 1 sums plus
the CSR/CSC symmetry comparison)."""

PLANNING_SECONDS_PER_ROW = 10e-9
"""Host time per matrix row for the Row Length Trace, MSID chain and
unroll quantization."""

DISPATCH_OVERHEAD_SECONDS = 5e-6
"""Fixed per-request dispatch cost (queue pop, fingerprint lookup,
descriptor DMA) charged on every served request, hit or miss."""

BATCH_MEMBER_DISPATCH_SECONDS = 1e-6
"""Dispatch cost of the second and later members of a fingerprint
micro-batch.  The batch's first member pays the full
:data:`DISPATCH_OVERHEAD_SECONDS` (descriptor setup, fingerprint lookup);
members riding the same configured slot reuse the descriptor and the
lookup and pay only the queue pop — the serving-tier analogue of the
batched solver backend's amortized host analysis."""


@dataclass(frozen=True)
class SolveProfile:
    """Deterministic serving profile of one problem source.

    The GPU fields price the same solve on a cuSPARSE SpMV tenant (see
    :mod:`repro.placement.gpu_cost`): ``gpu_warm_service_s`` is the
    roofline-plus-launch cost of the final attempt's iterations,
    ``gpu_transfer_s`` the PCIe structure upload a residency miss pays
    instead of an ICAP configuration load.  ``structural_class`` is the
    Table-II row the source belongs to.  All are plain profile scalars
    so placement decisions stay byte-deterministic.
    """

    label: str
    fingerprint: str
    plan_signature: str
    n: int
    nnz: int
    converged: bool
    solver_sequence: tuple[str, ...]
    iterations: int
    attempt_compute_s: tuple[float, ...]
    solver_swap_s: float
    analysis_s: float
    structural_class: str = "general"
    gpu_warm_service_s: float = 0.0
    gpu_transfer_s: float = 0.0

    @property
    def final_compute_s(self) -> float:
        return self.attempt_compute_s[-1] if self.attempt_compute_s else 0.0

    @property
    def cold_service_s(self) -> float:
        """Device+host seconds for a cache-miss solve.

        Full analysis, every fallback attempt, and a solver-region swap
        per Solver Modifier firing.
        """
        swaps = max(0, len(self.attempt_compute_s) - 1)
        return (
            self.analysis_s
            + sum(self.attempt_compute_s)
            + swaps * self.solver_swap_s
        )

    @property
    def warm_service_s(self) -> float:
        """Device seconds when analysis and solver choice come from cache."""
        return self.final_compute_s

    @property
    def attempt_scale(self) -> float:
        """Fallback-chain inflation: total attempt seconds over final.

        Iteration-count driven and therefore device-independent; used to
        re-price the cold fallback chain on a GPU tenant without a
        second ground-truth solve.
        """
        if self.final_compute_s <= 0.0:
            return 1.0
        return sum(self.attempt_compute_s) / self.final_compute_s

    @property
    def gpu_cold_service_s(self) -> float:
        """GPU seconds for a cache-miss solve on a tenant.

        Host analysis is unchanged (it runs on the CPU either way); the
        fallback-attempt chain scales the warm GPU cost by the same
        attempt/final ratio the FPGA profile measured.
        """
        return self.analysis_s + self.attempt_scale * self.gpu_warm_service_s

    def member_service_s(
        self, device_class: str, cold: bool, cpu_assist: bool = False
    ) -> float:
        """Modeled service seconds of one batch member on ``device_class``.

        With ``cpu_assist`` the cold analysis runs concurrently on the
        host assist tier: the accelerator pays only the offload
        round-trip instead of the full structure analysis (the warm
        path never pays analysis, so assist changes nothing there).
        """
        if device_class == "gpu":
            service = (
                self.gpu_cold_service_s if cold else self.gpu_warm_service_s
            )
        else:
            service = self.cold_service_s if cold else self.warm_service_s
        if cold and cpu_assist:
            service = (
                service - self.analysis_s + CPU_ASSIST_ROUNDTRIP_SECONDS
            )
        return service

    def cache_entry(self) -> CacheEntry:
        return CacheEntry(
            fingerprint=self.fingerprint,
            plan_signature=self.plan_signature,
            solver_sequence=self.solver_sequence,
            converged=self.converged,
            iterations=self.iterations,
            attempt_compute_s=self.attempt_compute_s,
            analysis_s=self.analysis_s,
        )


def build_profile(problem: Any, config: AcamarConfig) -> SolveProfile:
    """Run the real decision loops + cost model for one problem."""
    from repro.core import Acamar
    from repro.fpga import PerformanceModel

    acamar = Acamar(config)
    model = PerformanceModel()
    with tm.span("serve.profile.solve"):
        result = acamar.solve(problem.matrix, problem.b)
    with tm.span("serve.profile.cost_model"):
        latency = model.acamar_latency(problem.matrix, result)
    matrix = problem.matrix
    gpu = estimate_gpu_service(
        matrix.row_lengths(), result.final.iterations
    )
    return SolveProfile(
        label=problem.name,
        fingerprint=structure_fingerprint(matrix),
        plan_signature=plan_signature(result.plan),
        n=int(matrix.n_rows),
        nnz=int(matrix.nnz),
        converged=result.converged,
        solver_sequence=result.solver_sequence,
        iterations=result.final.iterations,
        attempt_compute_s=tuple(
            a.compute_seconds for a in latency.attempts
        ),
        solver_swap_s=model.reconfig.solver_swap_seconds(),
        analysis_s=(
            ANALYSIS_SECONDS_PER_NNZ * matrix.nnz
            + PLANNING_SECONDS_PER_ROW * matrix.n_rows
        ),
        structural_class=structural_class_of(result.solver_sequence),
        gpu_warm_service_s=gpu.warm_service_s,
        gpu_transfer_s=gpu.transfer_s,
    )


def profile_items(
    items: Sequence[WorkItem], config: AcamarConfig
) -> list[ItemResult]:
    """Worker entry point: profile a chunk of sources, isolating faults.

    Mirrors the campaign's ``solve_items`` contract so it can ride
    ``run_sharded`` unchanged: each item gets its own telemetry
    collector and any exception becomes a structured error record.
    """
    from repro.campaign import resolve_source

    results: list[ItemResult] = []
    for item in items:
        collector = Telemetry()
        with collector.activate():
            try:
                with tm.span("serve.profile.resolve"):
                    problem = resolve_source(item.source, item.seed)
                profile = build_profile(problem, config)
                results.append(
                    ItemResult(
                        index=item.index,
                        entry=profile,
                        error=None,
                        label=profile.label,
                        telemetry=collector.as_dict(),
                    )
                )
            except Exception as exc:  # noqa: BLE001 — fault isolation
                tm.count("serve.profile_failures")
                results.append(
                    ItemResult(
                        index=item.index,
                        entry=None,
                        error=f"{type(exc).__name__}: {exc}",
                        label=source_label(item.source),
                        telemetry=collector.as_dict(),
                    )
                )
    return results
