"""Shared latency-summary statistics for serving reports.

Both the single-fleet :class:`~repro.serve.service.ServingReport` and the
cluster :class:`~repro.serve.cluster.service.ClusterReport` publish the
same percentile-summary shape for latency populations.  Keeping the
computation here means the two reports cannot drift apart: a dashboard
keyed on ``{count, mean, p50, p90, p99, max}`` reads either one.

Values are rounded to 6 decimals (microsecond precision on
millisecond-scale numbers) so the JSON forms stay byte-stable across
runs and machines.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.telemetry import percentile


def latency_summary_ms(values: Sequence[float]) -> dict[str, Any]:
    """Percentile summary of a latency population (milliseconds).

    An empty population reports ``count: 0`` with null statistics — an
    idle fleet's p50/p99 must be distinguishable from a fleet that
    genuinely served in zero milliseconds (the old 0.0 sentinel made
    zero-completion configurations look infinitely fast to capacity
    planning and frontier extraction).
    """
    data = [float(v) for v in values]
    if not data:
        return {
            "count": 0,
            "mean": None,
            "p50": None,
            "p90": None,
            "p99": None,
            "max": None,
        }
    return {
        "count": len(data),
        "mean": round(sum(data) / len(data), 6),
        "p50": round(percentile(data, 50.0), 6),
        "p90": round(percentile(data, 90.0), 6),
        "p99": round(percentile(data, 99.0), 6),
        "max": round(max(data), 6),
    }


def format_latency_ms(value: Any) -> str:
    """Render one summary statistic for human-facing summary lines.

    Null statistics (empty populations) render as ``n/a`` so idle-fleet
    summaries read as "no data" instead of "0.000 ms".
    """
    if value is None:
        return "n/a"
    return f"{float(value):.3f}"


def latency_summary_ms_array(
    values: "np.ndarray", *, consume: bool = False
) -> dict[str, Any]:
    """Same summary shape for an array population (cluster scale).

    ``numpy.percentile``'s default linear-interpolation method matches
    :func:`repro.telemetry.percentile`, so the two paths agree; the
    array path exists because materializing tens of millions of
    latencies as a Python list would dominate the cluster run.

    With ``consume=True`` the input array is partitioned in place (its
    element *order* is destroyed, the multiset of values is preserved)
    instead of copied — callers holding a population-sized array they
    no longer need in order pass this to skip a full-size allocation.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return latency_summary_ms([])
    p50, p90, p99 = np.percentile(
        arr, [50.0, 90.0, 99.0], overwrite_input=consume
    )
    return {
        "count": int(arr.size),
        "mean": round(float(arr.mean()), 6),
        "p50": round(float(p50), 6),
        "p90": round(float(p90), 6),
        "p99": round(float(p99), 6),
        "max": round(float(arr.max()), 6),
    }
