"""Admission control: a bounded queue with explicit backpressure.

An online service must prefer *refusing* work over unbounded queue
growth: a shed response costs the client one retry, while an unbounded
queue costs every client compounding latency until the process dies.
The controller enforces:

- a **hard queue capacity** — when full, an incoming request is either
  refused (``queue_full``) or, if it outranks queued work, admitted by
  **preempting** the lowest-priority, youngest queued request (which
  then receives its own shed response: nothing is dropped silently),
- **deadline feasibility** — a request whose deadline already passed, or
  cannot possibly be met even on an idle fleet (service estimate alone
  exceeds the remaining budget), is shed at admission rather than
  occupying queue space it cannot use,
- queued requests whose deadline lapses before dispatch are **expired**
  by the scheduler sweep, again with an explicit response.

Cost hints come from :func:`repro.parallel.cost.estimate_cost` — the
same heuristic the campaign engine balances chunks with — so admission
needs no pool machinery imports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro import telemetry as tm
from repro.errors import ConfigurationError
from repro.parallel import estimate_cost
from repro.serve.api import SolveRequest


class AdmissionVerdict(enum.Enum):
    ADMITTED = "admitted"
    SHED_QUEUE_FULL = "queue_full"
    SHED_DEADLINE = "deadline_unmeetable"


def deadline_lapsed(deadline_s: float | None, now: float) -> bool:
    """Has this deadline already passed at ``now``?

    The boundary is **closed**: a deadline exactly equal to ``now`` has
    lapsed (there is no time left to do any work).  ``None`` means no
    deadline and never lapses.  This is the single source of truth for
    both admission-time rejection and the queued-request expiry sweep,
    so a request can never be admitted by one site and immediately
    expired by the other under a different reading of the same instant.
    """
    return deadline_s is not None and deadline_s <= now


def deadline_unmeetable(
    deadline_s: float | None, now: float, min_service_estimate_s: float
) -> bool:
    """Can this deadline not possibly be met, even on an idle fleet?

    True when the deadline has :func:`deadline_lapsed`, or when the
    remaining budget is strictly below the optimistic service floor.
    The floor boundary is **inclusive on the admissible side**: a
    deadline exactly equal to ``now + min_service_estimate_s`` is
    admissible — the optimistic estimate can just barely be met, and
    shedding it would refuse work the fleet might still finish.
    """
    if deadline_s is None:
        return False
    return deadline_lapsed(deadline_s, now) or (
        deadline_s - now < min_service_estimate_s
    )


@dataclass
class QueuedRequest:
    """A request waiting for dispatch, with its admission-time cost hint."""

    request: SolveRequest
    admitted_s: float
    cost: float

    @property
    def priority(self) -> int:
        return int(self.request.priority)


@dataclass
class AdmissionController:
    """Bounded priority queue with preemptive admission.

    ``min_service_estimate_s`` is the optimistic service floor used for
    the deadline-feasibility check (a deadline tighter than this can
    never be met, queue or no queue).
    """

    capacity: int = 64
    min_service_estimate_s: float = 0.0
    queue: list[QueuedRequest] = field(default_factory=list)
    shed_full: int = 0
    shed_deadline: int = 0
    preemptions: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(
                f"admission queue capacity must be >= 1, got {self.capacity}"
            )

    def depth(self) -> int:
        return len(self.queue)

    def _sort(self) -> None:
        # Priority class first, then FIFO within a class; request_id
        # breaks exact-arrival ties deterministically.
        self.queue.sort(
            key=lambda q: (
                q.priority,
                q.request.arrival_s,
                q.request.request_id,
            )
        )

    def offer(
        self, request: SolveRequest, now: float
    ) -> tuple[AdmissionVerdict, QueuedRequest | None]:
        """Decide one arrival.

        Returns the verdict plus the *victim* queued request when
        admission preempted one (the caller owes the victim a shed
        response).  On ``ADMITTED`` the request is in the queue.
        """
        if deadline_unmeetable(
            request.deadline_s, now, self.min_service_estimate_s
        ):
            self.shed_deadline += 1
            tm.count("serve.shed.deadline")
            return AdmissionVerdict.SHED_DEADLINE, None
        victim: QueuedRequest | None = None
        if len(self.queue) >= self.capacity:
            candidate = max(
                self.queue,
                key=lambda q: (
                    q.priority,
                    q.request.arrival_s,
                    q.request.request_id,
                ),
            )
            if candidate.priority <= int(request.priority):
                self.shed_full += 1
                tm.count("serve.shed.queue_full")
                return AdmissionVerdict.SHED_QUEUE_FULL, None
            self.queue.remove(candidate)
            victim = candidate
            self.preemptions += 1
            tm.count("serve.preemptions")
        self.queue.append(
            QueuedRequest(
                request=request,
                admitted_s=now,
                cost=estimate_cost(request.source),
            )
        )
        self._sort()
        tm.count("serve.admitted")
        return AdmissionVerdict.ADMITTED, victim

    def expire(self, now: float) -> list[QueuedRequest]:
        """Remove and return queued requests whose deadline has passed."""
        lapsed = [
            q for q in self.queue if deadline_lapsed(q.request.deadline_s, now)
        ]
        if lapsed:
            keep = {id(q) for q in lapsed}
            self.queue = [q for q in self.queue if id(q) not in keep]
            tm.count("serve.expired", len(lapsed))
        return lapsed
