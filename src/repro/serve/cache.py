"""Structure-fingerprint-keyed plan cache.

Acamar's per-matrix analysis — the Matrix Structure unit's property
checks and the Fine-Grained Reconfiguration unit's unroll planning — is
a pure function of the CSR *sparsity pattern*.  Serving traffic repeats
patterns heavily (the same discretized operator solved against many
right-hand sides), so the service keys a cache on a pattern hash:

``structure_fingerprint(matrix)``
    SHA-256 over the shape plus the canonical ``indptr``/``indices``
    arrays (as little-endian int64 bytes).  The hash itself lives on the
    sparse substrate (:func:`repro.sparse.structure_fingerprint`, cached
    on :class:`~repro.sparse.csr.CSRMatrix` alongside the other lazy
    structure views) because the batched campaign grouper keys on it
    from *below* the serving layer; this module re-exports it for
    serving callers.  Values are deliberately excluded: two matrices
    with equal structure and different data share the analysis verdict
    and the unroll plan, which depend only on row lengths and symmetry
    of the pattern.  Note the symmetry check the hardware performs
    compares *values* too; like the paper's own symmetric-proxy
    shortcut, a pattern-keyed hit accepts that a numerically asymmetric
    matrix with a symmetric pattern reuses the symmetric verdict and
    lets the Solver Modifier recover from any misprediction.

``plan_signature(plan)``
    SHA-256 over the per-set ``(start_row, stop_row, unroll)`` schedule.
    Two matrices with different fingerprints can still share a
    signature; the scheduler batches on it because equal signatures mean
    the fabric needs no reconfiguration between their sweeps.

The cache itself is a bounded LRU: serving fleets run for weeks, so an
unbounded dict keyed by hashes is a slow memory leak.  Eviction only
costs a re-analysis on the next miss, never correctness.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError
from repro.sparse.csr import structure_fingerprint

__all__ = [
    "CacheEntry",
    "CacheStats",
    "PlanCache",
    "plan_signature",
    "structure_fingerprint",  # re-exported from repro.sparse
]


def plan_signature(plan: Any) -> str:
    """Hex SHA-256 of a :class:`ReconfigurationPlan`'s unroll schedule."""
    digest = hashlib.sha256()
    for row_set in plan.sets:
        digest.update(
            f"{row_set.start_row}:{row_set.stop_row}:{row_set.unroll};".encode()
        )
    return digest.hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """What a fingerprint hit lets the service skip and reuse.

    The entry holds the *decisions* (solver choice and sequence, plan
    signature) plus the latency profile needed to charge device time —
    not the plan object itself, so entries stay small and picklable.
    """

    fingerprint: str
    plan_signature: str
    solver_sequence: tuple[str, ...]
    converged: bool
    iterations: int
    attempt_compute_s: tuple[float, ...]
    analysis_s: float

    @property
    def final_compute_s(self) -> float:
        """Device compute of the converging (final) attempt only."""
        return self.attempt_compute_s[-1] if self.attempt_compute_s else 0.0


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 9),
        }


@dataclass
class PlanCache:
    """Bounded LRU of :class:`CacheEntry` keyed by structure fingerprint."""

    capacity: int = 256
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {self.capacity}"
            )
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def peek(self, fingerprint: str) -> CacheEntry | None:
        """Look up without touching LRU order or hit/miss stats."""
        return self._entries.get(fingerprint)

    def get(self, fingerprint: str) -> CacheEntry | None:
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.stats.hits += 1
        return entry

    def put(self, entry: CacheEntry) -> None:
        if entry.fingerprint in self._entries:
            self._entries.move_to_end(entry.fingerprint)
            self._entries[entry.fingerprint] = entry
            return
        self._entries[entry.fingerprint] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
