"""Consistent-hash ring: fingerprint → fleet placement with bounded remap.

The router's job is *plan-cache affinity*: requests carrying the same
CSR structure fingerprint should keep landing on the same fleet so its
local :class:`~repro.serve.cache.PlanCache` stays warm.  A modulo over
the live fleet count would reshuffle nearly every fingerprint on any
membership change; a consistent-hash ring remaps only the arc a joining
(or leaving) fleet claims — in expectation ``K / N`` of ``K``
fingerprints when ``N`` fleets remain — so a drain or a join costs a
bounded cold-miss burst instead of a cluster-wide cache wipe.

Construction is the textbook scheme: each fleet contributes
``vnodes`` tokens (SHA-256 of ``"fleet:{id}:{replica}"``, first 8 bytes
as a big-endian integer) onto a ``2^64`` ring; a key hashes the same way
and is owned by the first token clockwise.  Everything is integer
arithmetic over sorted lists — no floats, no process-salted ``hash()``
— so placement is byte-stable across machines and Python versions.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ConfigurationError

DEFAULT_VNODES = 64
"""Tokens per fleet.  More virtual nodes smooth the arc-length spread
(load balance across fleets) at the cost of a longer sorted token list."""


def _token(text: str) -> int:
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys to integer fleet ids."""

    def __init__(self, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ConfigurationError(
                f"vnodes must be >= 1, got {vnodes}"
            )
        self.vnodes = vnodes
        self._tokens: list[int] = []
        self._owners: list[int] = []
        self._members: set[int] = set()

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, fleet_id: int) -> bool:
        return fleet_id in self._members

    @property
    def members(self) -> tuple[int, ...]:
        return tuple(sorted(self._members))

    def add(self, fleet_id: int) -> None:
        if fleet_id in self._members:
            return
        self._members.add(fleet_id)
        for replica in range(self.vnodes):
            token = _token(f"fleet:{fleet_id}:{replica}")
            at = bisect.bisect_left(self._tokens, token)
            # SHA-256 collisions across distinct vnode labels are not a
            # practical concern; insertion order still breaks any tie
            # deterministically because `at` is a pure function of state.
            self._tokens.insert(at, token)
            self._owners.insert(at, fleet_id)

    def remove(self, fleet_id: int) -> None:
        if fleet_id not in self._members:
            return
        self._members.discard(fleet_id)
        keep = [
            (token, owner)
            for token, owner in zip(self._tokens, self._owners)
            if owner != fleet_id
        ]
        self._tokens = [token for token, _ in keep]
        self._owners = [owner for _, owner in keep]

    def owner(self, key: str) -> int:
        """Fleet id owning ``key``; raises if the ring is empty."""
        if not self._tokens:
            raise ConfigurationError(
                "cannot route on an empty hash ring"
            )
        at = bisect.bisect_right(self._tokens, _token(key))
        if at == len(self._tokens):
            at = 0
        return self._owners[at]

    def placement(self, keys: list[str]) -> dict[str, int]:
        """Owner of every key — the router's per-membership route map."""
        return {key: self.owner(key) for key in keys}
