"""Tiered plan cache: local LRU per fleet over a cluster-wide directory.

Single-fleet serving has one :class:`~repro.serve.cache.PlanCache`; a
cluster splits it into an explicit cost ladder, charged in *modeled*
time against the virtual clock:

``local hit``
    The owning fleet's bounded LRU holds the entry.  Free — the warm
    path the router's fingerprint affinity is designed to keep hot.

``remote hit``
    Some other fleet published the entry to the cluster directory.  The
    batch pays one ``remote_fetch_s`` transfer (host-tier RPC + plan
    blob copy, the CPU–FPGA division of labor keeps this off-device)
    and the entry is installed into the local LRU so the next hit is
    free.

``miss``
    Nobody has analyzed this structure.  The first request in the batch
    pays the full cold solve (analysis + fallback attempts), then the
    entry is published to the directory and installed locally.

The directory is deliberately unbounded while local tiers are bounded
LRUs: it models a replicated metadata service whose entries are tiny
(hashes and a latency profile, no plan payload), while local tiers model
finite on-host plan storage.  Eviction from a local tier never loses
work — the directory still has the entry, so the penalty is one remote
fetch, not a re-analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.serve.cache import CacheEntry, PlanCache

LOCAL_HIT = "local"
REMOTE_HIT = "remote"
MISS = "miss"


@dataclass
class TierStats:
    """Hit-ladder counts, kept per fleet and aggregated cluster-wide."""

    local_hits: int = 0
    remote_hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.local_hits + self.remote_hits + self.misses

    @property
    def local_hit_rate(self) -> float:
        total = self.lookups
        return self.local_hits / total if total else 0.0

    def merge(self, other: "TierStats") -> None:
        self.local_hits += other.local_hits
        self.remote_hits += other.remote_hits
        self.misses += other.misses

    def as_dict(self) -> dict[str, Any]:
        return {
            "local_hits": self.local_hits,
            "remote_hits": self.remote_hits,
            "misses": self.misses,
            "local_hit_rate": round(self.local_hit_rate, 9),
        }


class TieredPlanCache:
    """Cluster directory plus per-fleet local LRUs with a cost ladder."""

    def __init__(
        self, local_capacity: int = 256, remote_fetch_s: float = 250e-6
    ) -> None:
        self.local_capacity = local_capacity
        self.remote_fetch_s = remote_fetch_s
        self.directory: dict[str, CacheEntry] = {}
        self.publishes = 0
        self.stats = TierStats()
        self._local: dict[int, PlanCache] = {}

    def attach_fleet(self, fleet_id: int) -> None:
        """Give ``fleet_id`` an empty local tier (idempotent)."""
        if fleet_id not in self._local:
            self._local[fleet_id] = PlanCache(capacity=self.local_capacity)

    def detach_fleet(self, fleet_id: int) -> None:
        """Drop a drained fleet's local tier; the directory keeps all
        published entries, so nothing re-pays analysis."""
        self._local.pop(fleet_id, None)

    def local_entries(self, fleet_id: int) -> int:
        cache = self._local.get(fleet_id)
        return len(cache) if cache is not None else 0

    def local_evictions(self) -> int:
        return sum(c.stats.evictions for c in self._local.values())

    def lookup(
        self, fleet_id: int, fingerprint: str
    ) -> tuple[str, CacheEntry | None, float]:
        """Resolve one fingerprint at ``fleet_id``.

        Returns ``(tier, entry, charge_s)`` where ``tier`` is one of
        :data:`LOCAL_HIT` / :data:`REMOTE_HIT` / :data:`MISS` and
        ``charge_s`` is the modeled time the ladder adds to the batch.
        Remote hits install the entry locally as a side effect.
        """
        local = self._local.get(fleet_id)
        if local is None:  # inline attach_fleet: this path is per-batch
            local = self._local[fleet_id] = PlanCache(
                capacity=self.local_capacity
            )
        entry = local.get(fingerprint)
        if entry is not None:
            self.stats.local_hits += 1
            return LOCAL_HIT, entry, 0.0
        entry = self.directory.get(fingerprint)
        if entry is not None:
            self.stats.remote_hits += 1
            local.put(entry)
            return REMOTE_HIT, entry, self.remote_fetch_s
        self.stats.misses += 1
        return MISS, None, 0.0

    def publish(self, fleet_id: int, entry: CacheEntry) -> None:
        """After a cold solve: directory insert + local install."""
        self.attach_fleet(fleet_id)
        if entry.fingerprint not in self.directory:
            self.directory[entry.fingerprint] = entry
            self.publishes += 1
        self._local[fleet_id].put(entry)

    def as_dict(self) -> dict[str, Any]:
        return {
            "directory_entries": len(self.directory),
            "publishes": self.publishes,
            "local_capacity": self.local_capacity,
            "local_evictions": self.local_evictions(),
            "remote_fetch_ms": round(self.remote_fetch_s * 1e3, 9),
            "lookups": self.stats.as_dict(),
        }
