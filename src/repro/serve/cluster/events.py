"""Heap-based timer wheel: the cluster simulator's event loop.

The single-fleet simulator (:mod:`repro.serve.service`) walks fixed
ticks, which is fine at hundreds of requests per second but hopeless at
cluster scale — a ``--duration 3600 --rate 10000`` trace is 36 million
arrivals, and a per-request (or per-tick) Python loop would take hours.
The cluster loop therefore inverts the design:

- **sparse events on a heap** — epoch boundaries, fleet faults,
  recoveries and forced scale actions are the only discrete events; the
  wheel pops them in virtual-time order, and
- **vectorized batches between events** — request arrivals live in
  numpy arrays (:class:`~repro.serve.cluster.trace.RequestTrace`) and
  are consumed per epoch via ``searchsorted`` slices, never touched
  one Python object at a time.

Determinism: ties on ``at_s`` break on a monotone sequence number
assigned at push time, so the pop order is a pure function of the push
order — no identity hashes, no insertion-into-dict races.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Iterator

EVENT_EPOCH = "epoch"
"""Periodic boundary: drain arrivals, dispatch, evaluate the autoscaler."""

EVENT_FLEET_FAULT = "fleet_fault"
"""A whole fleet goes dark (chaos injection)."""

EVENT_FLEET_RECOVER = "fleet_recover"
"""A faulted fleet comes back and may rejoin the ring."""

EVENT_FORCED_SCALE = "forced_scale"
"""Chaos-driven membership change (flapping join / forced drain)."""


@dataclass(frozen=True, order=True)
class TimerEvent:
    """One scheduled occurrence on the virtual clock.

    Ordering is ``(at_s, seq)``; ``kind``/``payload`` are excluded from
    comparisons so heap order never depends on payload contents.
    """

    at_s: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class TimerWheel:
    """Min-heap of :class:`TimerEvent` with deterministic tie-breaks."""

    def __init__(self) -> None:
        self._heap: list[TimerEvent] = []
        self._seq = 0
        self.pushed = 0
        self.popped = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, at_s: float, kind: str, payload: Any = None) -> None:
        event = TimerEvent(
            at_s=round(float(at_s), 9), seq=self._seq, kind=kind,
            payload=payload,
        )
        self._seq += 1
        self.pushed += 1
        heapq.heappush(self._heap, event)

    def peek_time(self) -> float | None:
        return self._heap[0].at_s if self._heap else None

    def pop(self) -> TimerEvent:
        self.popped += 1
        return heapq.heappop(self._heap)

    def pop_until(self, at_s: float) -> Iterator[TimerEvent]:
        """Pop every event with ``event.at_s <= at_s`` in order."""
        while self._heap and self._heap[0].at_s <= at_s:
            yield self.pop()
