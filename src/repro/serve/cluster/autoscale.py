"""Deterministic telemetry-driven autoscaler with hysteresis.

The paper's economics — reconfiguration pays off only while utilization
stays high — extend to fleet count: an idle fleet burns device-seconds
for nothing, an overloaded cluster sheds work.  The autoscaler closes
that loop *on the virtual clock*: once per epoch it reads an
:class:`IntervalSignals` snapshot (queue-depth p90 across fleets, shed
rate, busy fraction, local cache hit rate) and emits a
:class:`ScaleDecision`.

Every input is derived from simulated state, and the policy is a pure
function of the signal history — no wall clock, no randomness — so the
same telemetry trace always produces the identical decision sequence
(pinned by tests) and the whole cluster report stays byte-identical
per seed.

Hysteresis, not thresholds alone, is what keeps the policy sane under
bursty traffic: a scale-up needs ``up_intervals`` consecutive hot
epochs, a drain needs ``down_intervals`` consecutive cold ones, and any
action opens a ``cooldown_intervals`` window during which the scaler
holds regardless of signals.  Without the streaks, a single burst epoch
would add a fleet whose cold caches then *worsen* latency; without the
cooldown, add/drain pairs would flap at the burst period.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.errors import ConfigurationError


class ScaleAction(Enum):
    HOLD = "hold"
    ADD = "add"
    DRAIN = "drain"


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Thresholds and hysteresis windows (epoch-denominated)."""

    queue_high: float = 64.0
    """Scale-up pressure: cluster queue-depth p90 above this."""

    shed_rate_high: float = 0.01
    """Scale-up pressure: interval shed+expired fraction above this."""

    queue_low: float = 1.0
    """Scale-down candidate: queue-depth p90 at or below this."""

    busy_low: float = 0.35
    """Scale-down candidate: mean slot busy fraction at or below this."""

    up_intervals: int = 2
    """Consecutive hot epochs before an ADD fires."""

    down_intervals: int = 5
    """Consecutive cold epochs before a DRAIN fires."""

    cooldown_intervals: int = 3
    """Epochs after any action during which the scaler HOLDs."""

    def __post_init__(self) -> None:
        if self.up_intervals < 1 or self.down_intervals < 1:
            raise ConfigurationError(
                "hysteresis windows must be >= 1 interval, got "
                f"up={self.up_intervals} down={self.down_intervals}"
            )
        if self.cooldown_intervals < 0:
            raise ConfigurationError(
                f"cooldown must be >= 0, got {self.cooldown_intervals}"
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "queue_high": self.queue_high,
            "shed_rate_high": self.shed_rate_high,
            "queue_low": self.queue_low,
            "busy_low": self.busy_low,
            "up_intervals": self.up_intervals,
            "down_intervals": self.down_intervals,
            "cooldown_intervals": self.cooldown_intervals,
        }


@dataclass(frozen=True)
class IntervalSignals:
    """One epoch's telemetry snapshot, all from simulated state."""

    at_s: float
    queue_depth_p90: float
    shed_rate: float
    busy_fraction: float
    local_hit_rate: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "at_s": round(self.at_s, 9),
            "queue_depth_p90": round(self.queue_depth_p90, 9),
            "shed_rate": round(self.shed_rate, 9),
            "busy_fraction": round(self.busy_fraction, 9),
            "local_hit_rate": round(self.local_hit_rate, 9),
        }


@dataclass(frozen=True)
class ScaleDecision:
    at_s: float
    action: ScaleAction
    reason: str
    alive_fleets: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "at_s": round(self.at_s, 9),
            "action": self.action.value,
            "reason": self.reason,
            "alive_fleets": self.alive_fleets,
        }


class Autoscaler:
    """Streak/cooldown state machine over :class:`IntervalSignals`."""

    def __init__(self, policy: AutoscalerPolicy | None = None) -> None:
        self.policy = policy if policy is not None else AutoscalerPolicy()
        self.hot_streak = 0
        self.cold_streak = 0
        self.cooldown = 0
        self.decisions: list[ScaleDecision] = []

    def evaluate(
        self,
        signals: IntervalSignals,
        alive: int,
        min_fleets: int,
        max_fleets: int,
    ) -> ScaleDecision:
        policy = self.policy
        hot = (
            signals.queue_depth_p90 > policy.queue_high
            or signals.shed_rate > policy.shed_rate_high
        )
        cold = (
            signals.queue_depth_p90 <= policy.queue_low
            and signals.busy_fraction <= policy.busy_low
        )
        self.hot_streak = self.hot_streak + 1 if hot else 0
        self.cold_streak = self.cold_streak + 1 if cold else 0
        action = ScaleAction.HOLD
        reason = "within band"
        if self.cooldown > 0:
            self.cooldown -= 1
            reason = "cooldown"
        elif self.hot_streak >= policy.up_intervals:
            if alive < max_fleets:
                action = ScaleAction.ADD
                reason = (
                    "queue pressure"
                    if signals.queue_depth_p90 > policy.queue_high
                    else "shed pressure"
                )
            else:
                reason = "hot but at max_fleets"
        elif self.cold_streak >= policy.down_intervals:
            if alive > min_fleets:
                action = ScaleAction.DRAIN
                reason = "sustained idle"
            else:
                reason = "cold but at min_fleets"
        if action is not ScaleAction.HOLD:
            self.hot_streak = 0
            self.cold_streak = 0
            self.cooldown = policy.cooldown_intervals
        decision = ScaleDecision(
            at_s=signals.at_s,
            action=action,
            reason=reason,
            alive_fleets=alive,
        )
        self.decisions.append(decision)
        return decision
