"""Array-native request traces: cluster-scale load, zero Python objects.

A ``--duration 3600 --rate 10000`` run is ~36 million requests.  The
single-fleet generator's one-``SolveRequest``-per-arrival stream
(:mod:`repro.serve.loadgen`) would need tens of gigabytes and minutes
of allocation alone, so the cluster tier keeps the whole trace as a
struct-of-arrays :class:`RequestTrace`:

- ``arrival_s``  — float64, sorted, rounded to 9 decimals (the repo's
  virtual-timestamp precision),
- ``source_idx`` — int16 index into ``sources`` (the unique key list),
- ``priority``   — int8 :class:`~repro.serve.api.Priority` value,
- ``deadline_s`` — float64 absolute deadline, ``+inf`` meaning none.

Generation is fully vectorized and reuses the *same* statistical model
as the object generator — :func:`repro.serve.loadgen.source_weights`
for the dataset mix, ``PRIORITY_SHARES`` for the class split, Poisson
arrivals with square-wave bursts — so "repeat-heavy at 120 rps" means
the same workload at either tier.  Bursty arrivals use exact thinning:
draw a homogeneous Poisson process at the peak rate, then keep each
arrival with probability ``rate(t) / peak``.  One seeded PCG64
generator drives everything, so a seed fully determines the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.serve.api import PRIORITY_NAMES, Priority
from repro.serve.loadgen import PRIORITY_SHARES, TRAFFIC_MIXES, source_weights

NO_DEADLINE = np.inf
"""Sentinel in ``deadline_s`` for requests without a deadline."""

_GAP_BLOCK = 262_144
"""Exponential gaps are drawn in blocks of this size until the horizon
is covered — a handful of vectorized draws even at 36M arrivals."""


@dataclass(frozen=True)
class ClusterLoadSpec:
    """Parameters of one synthetic cluster traffic run."""

    seed: int = 0
    duration_s: float = 60.0
    rate_rps: float = 1000.0
    mix: str = "repeat-heavy"
    deadline_ms: float = 100.0
    burst_factor: float = 4.0
    burst_s: float = 0.25
    burst_period_s: float = 1.0
    sources: tuple[str, ...] = ()  # empty → the Table II registry

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration must be > 0 s, got {self.duration_s}"
            )
        if self.rate_rps <= 0:
            raise ConfigurationError(
                f"rate must be > 0 rps, got {self.rate_rps}"
            )
        if self.mix not in TRAFFIC_MIXES:
            raise ConfigurationError(
                f"unknown traffic mix {self.mix!r}; "
                f"expected one of {TRAFFIC_MIXES}"
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "duration_s": self.duration_s,
            "rate_rps": self.rate_rps,
            "mix": self.mix,
            "deadline_ms": self.deadline_ms,
        }


@dataclass
class RequestTrace:
    """Struct-of-arrays request log; row ``i`` is request id ``i``."""

    sources: tuple[str, ...]
    arrival_s: np.ndarray
    source_idx: np.ndarray
    priority: np.ndarray
    deadline_s: np.ndarray
    meta: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.arrival_s.shape[0])

    def priority_counts(self) -> dict[str, int]:
        counts = np.bincount(self.priority, minlength=len(Priority))
        return {
            PRIORITY_NAMES[p]: int(counts[p.value]) for p in Priority
        }

    def source_counts(self) -> dict[str, int]:
        counts = np.bincount(self.source_idx, minlength=len(self.sources))
        return {
            key: int(counts[i]) for i, key in enumerate(self.sources)
        }


def _arrivals(spec: ClusterLoadSpec, rng: np.random.Generator) -> np.ndarray:
    """Sorted arrival timestamps over ``[0, duration_s)``."""
    bursty = spec.mix == "bursty"
    peak = spec.rate_rps * (spec.burst_factor if bursty else 1.0)
    chunks: list[np.ndarray] = []
    t = 0.0
    while t < spec.duration_s:
        gaps = rng.exponential(1.0 / peak, size=_GAP_BLOCK)
        times = t + np.cumsum(gaps)
        t = float(times[-1])
        chunks.append(times)
    arrivals = np.concatenate(chunks)
    arrivals = arrivals[arrivals < spec.duration_s]
    if bursty:
        # Exact thinning of the peak-rate process: accept with
        # probability rate(t)/peak.  In-burst phases accept everything;
        # off-burst phases accept 1/burst_factor.
        phase = arrivals % spec.burst_period_s
        accept_p = np.where(
            phase < spec.burst_s, 1.0, 1.0 / spec.burst_factor
        )
        arrivals = arrivals[rng.random(arrivals.shape[0]) < accept_p]
    return np.round(arrivals, 9)


def generate_trace(spec: ClusterLoadSpec) -> RequestTrace:
    """Produce the full arrival-ordered trace for ``spec``."""
    if spec.sources:
        keys: tuple[str, ...] = tuple(spec.sources)
    else:
        from repro.datasets.suite import dataset_keys

        keys = dataset_keys()
    rng = np.random.default_rng(spec.seed)
    arrivals = _arrivals(spec, rng)
    n = arrivals.shape[0]
    weights = source_weights(spec.mix, len(keys))
    source_idx = rng.choice(
        len(keys), size=n, p=weights
    ).astype(np.int16)
    priority_values = np.array(
        [p.value for p, _ in PRIORITY_SHARES], dtype=np.int8
    )
    priority_weights = np.array([w for _, w in PRIORITY_SHARES])
    priority = priority_values[
        rng.choice(len(priority_values), size=n, p=priority_weights)
    ]
    deadline = np.full(n, NO_DEADLINE)
    interactive = priority == Priority.INTERACTIVE.value
    deadline[interactive] = np.round(
        arrivals[interactive] + spec.deadline_ms * 1e-3, 9
    )
    return RequestTrace(
        sources=keys,
        arrival_s=arrivals,
        source_idx=source_idx,
        priority=priority,
        deadline_s=deadline,
        meta=spec.as_dict(),
    )
