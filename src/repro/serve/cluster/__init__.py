"""Multi-fleet serving: fingerprint router, tiered cache, autoscaler.

The cluster tier generalizes single-fleet serving
(:mod:`repro.serve.service`) to a dynamically sized set of fleets:

- :mod:`repro.serve.cluster.ring` — consistent-hash placement by CSR
  structure fingerprint (plan-cache affinity with bounded remap),
- :mod:`repro.serve.cluster.cache` — per-fleet local LRUs over a
  cluster directory, with an explicit local/remote/miss cost ladder,
- :mod:`repro.serve.cluster.autoscale` — deterministic scale decisions
  with hysteresis from per-epoch telemetry signals,
- :mod:`repro.serve.cluster.trace` — array-native request traces
  (millions of arrivals without per-request Python objects),
- :mod:`repro.serve.cluster.events` — the heap-based timer wheel,
- :mod:`repro.serve.cluster.service` — the simulator and its report.

See ``docs/serving.md`` (architecture) and ``docs/operations.md``
(autoscaler runbook).
"""

from repro.serve.cluster.autoscale import (
    Autoscaler,
    AutoscalerPolicy,
    IntervalSignals,
    ScaleAction,
    ScaleDecision,
)
from repro.serve.cluster.cache import TieredPlanCache, TierStats
from repro.serve.cluster.events import TimerEvent, TimerWheel
from repro.serve.cluster.ring import HashRing
from repro.serve.cluster.service import (
    ClusterConfig,
    ClusterReport,
    FleetFaultEvent,
    ForcedScaleEvent,
    run_cluster,
    run_cluster_loadtest,
)
from repro.serve.cluster.trace import (
    ClusterLoadSpec,
    RequestTrace,
    generate_trace,
)

__all__ = [
    "Autoscaler",
    "AutoscalerPolicy",
    "ClusterConfig",
    "ClusterLoadSpec",
    "ClusterReport",
    "FleetFaultEvent",
    "ForcedScaleEvent",
    "HashRing",
    "IntervalSignals",
    "RequestTrace",
    "ScaleAction",
    "ScaleDecision",
    "TieredPlanCache",
    "TierStats",
    "TimerEvent",
    "TimerWheel",
    "generate_trace",
    "run_cluster",
    "run_cluster_loadtest",
]
