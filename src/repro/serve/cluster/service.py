"""The cluster serving simulator: router → fleets → tiered cache, on a
heap-driven virtual clock.

This is the multi-fleet generalization of :mod:`repro.serve.service`.
The host tier does everything the CPU is good at — fingerprint routing,
cache directory lookups, scale decisions — while fleets charge modeled
device time, mirroring the CPU–FPGA division of labor the serving docs
describe.  The design constraints, in order:

1. **Scale.**  ``--duration 3600 --rate 10000`` is ~36M requests and
   must finish in seconds of wall-clock.  The trace is a
   struct-of-arrays (:mod:`repro.serve.cluster.trace`), the loop is
   driven by a heap-based :class:`~repro.serve.cluster.events.TimerWheel`
   whose only per-event Python work is membership changes and epoch
   boundaries, and each epoch consumes its arrivals as vectorized
   ``searchsorted`` batches.  The only per-item Python loop is per
   *micro-batch* (~``rate / max_batch`` iterations per second of
   virtual time).

2. **Determinism.**  Everything runs on the virtual clock: no wall
   time, no unseeded randomness, membership changes only at event
   timestamps, ties broken by fleet id or push order.  A seed fully
   determines the report — byte-identical across runs, machines and
   ``--workers`` counts (workers only parallelize cold profiling, whose
   results are ordered).

3. **Exact accounting.**  Every generated request ends in exactly one
   bucket: ``completed``, ``shed_overflow`` (per-fleet admission queue
   full), ``shed_drain_limit`` (simulation refused to drain forever),
   ``expired`` (deadline lapsed while queued, swept at epoch
   boundaries) or ``failed`` (unprofileable source).  The report's
   ``unaccounted`` field is asserted zero in CI.

Modeling notes, deliberate and documented: deadlines are enforced at
epoch granularity (a request overtaken mid-epoch completes late rather
than expiring); there is no cross-fleet work stealing (affinity is the
point); priorities shape deadlines and reporting, not preemption —
preemption lives in the single-fleet tier where per-request objects
make it cheap.  A faulted fleet's in-flight batches complete, its slots
freeze until recovery, and its queue waits (the drain-limit backstop
bounds the wait).
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro import telemetry as tm
from repro.config import AcamarConfig
from repro.errors import ConfigurationError
from repro.placement import (
    CPU_ASSIST_ROUNDTRIP_SECONDS,
    FPGA,
    GPU,
    PlacementDecision,
    decide_placement,
    placement_section,
)
from repro.serve.api import PRIORITY_NAMES, Priority
from repro.serve.cluster.autoscale import (
    Autoscaler,
    AutoscalerPolicy,
    IntervalSignals,
    ScaleAction,
)
from repro.serve.cluster.cache import MISS, TieredPlanCache
from repro.serve.cluster.events import (
    EVENT_EPOCH,
    EVENT_FLEET_FAULT,
    EVENT_FLEET_RECOVER,
    EVENT_FORCED_SCALE,
    TimerWheel,
)
from repro.serve.cluster.ring import DEFAULT_VNODES, HashRing
from repro.serve.cluster.trace import ClusterLoadSpec, RequestTrace
from repro.serve.profile import DISPATCH_OVERHEAD_SECONDS, SolveProfile
from repro.serve.service import DRAIN_LIMIT_FACTOR, build_profiles
from repro.serve.stats import format_latency_ms, latency_summary_ms_array
from repro.telemetry import Telemetry, percentile

CLUSTER_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FleetFaultEvent:
    """A whole-fleet outage: slots freeze, residents wipe, ring exit.

    ``fleet_ordinal`` indexes the sorted alive-fleet id list *at the
    event's timestamp* (modulo its length), so a chaos schedule written
    against seeds stays valid whatever the autoscaler did meanwhile.
    """

    at_s: float
    fleet_ordinal: int
    outage_s: float


@dataclass(frozen=True)
class ForcedScaleEvent:
    """A chaos-driven membership change ("add" or "drain").

    Bypasses the autoscaler's hysteresis but not its floor/ceiling:
    forced drains never go below ``min_fleets`` and forced adds never
    exceed ``max_fleets``, so chaos cannot wedge the cluster.
    """

    at_s: float
    action: str

    def __post_init__(self) -> None:
        if self.action not in ("add", "drain"):
            raise ConfigurationError(
                f"forced scale action must be 'add' or 'drain', "
                f"got {self.action!r}"
            )


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of the cluster tier (defaults favor a small deployment)."""

    initial_fleets: int = 2
    min_fleets: int = 1
    max_fleets: int = 8
    slots_per_fleet: int = 4
    gpu_tenants_per_fleet: int = 0
    cpu_assist: bool = False
    max_gpu_tenants: int | None = None
    max_batch: int = 64
    batch_fill_ms: float = 40.0
    queue_capacity: int = 4096
    cache_capacity: int = 256
    remote_fetch_ms: float = 0.25
    interval_s: float = 1.0
    vnodes: int = DEFAULT_VNODES
    affinity_routing: bool = True
    autoscale: bool = True
    policy: AutoscalerPolicy = field(default_factory=AutoscalerPolicy)
    workers: int = 1
    profile_seed: int = 1
    fleet_faults: tuple[FleetFaultEvent, ...] = ()
    forced_scale: tuple[ForcedScaleEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.min_fleets < 1:
            raise ConfigurationError(
                f"min_fleets must be >= 1, got {self.min_fleets}"
            )
        if not (
            self.min_fleets <= self.initial_fleets <= self.max_fleets
        ):
            raise ConfigurationError(
                "need min_fleets <= initial_fleets <= max_fleets, got "
                f"{self.min_fleets} / {self.initial_fleets} / "
                f"{self.max_fleets}"
            )
        if self.slots_per_fleet < 0:
            raise ConfigurationError(
                f"slots_per_fleet must be >= 0, got {self.slots_per_fleet}"
            )
        if self.gpu_tenants_per_fleet < 0:
            raise ConfigurationError(
                "gpu_tenants_per_fleet must be >= 0, got "
                f"{self.gpu_tenants_per_fleet}"
            )
        if self.slots_per_fleet + self.gpu_tenants_per_fleet < 1:
            raise ConfigurationError(
                "a fleet needs at least one dispatchable slot "
                "(slots_per_fleet + gpu_tenants_per_fleet >= 1)"
            )
        if self.max_gpu_tenants is not None and self.max_gpu_tenants < 0:
            raise ConfigurationError(
                f"max_gpu_tenants must be >= 0, got {self.max_gpu_tenants}"
            )
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.batch_fill_ms < 0:
            raise ConfigurationError(
                f"batch fill must be >= 0 ms, got {self.batch_fill_ms}"
            )
        if self.batch_fill_ms * 1e-3 >= self.interval_s:
            raise ConfigurationError(
                "batch fill window must be shorter than the epoch "
                f"interval, got {self.batch_fill_ms} ms vs "
                f"{self.interval_s} s"
            )
        if self.interval_s <= 0:
            raise ConfigurationError(
                f"interval must be > 0 s, got {self.interval_s}"
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )

    @property
    def heterogeneous(self) -> bool:
        """Whether any non-FPGA tenancy is configured (schema gate:
        pure-FPGA reports must stay byte-identical with earlier
        releases, so every placement-specific key is conditional on
        this)."""
        return self.gpu_tenants_per_fleet > 0 or self.cpu_assist

    def as_dict(self) -> dict[str, Any]:
        document: dict[str, Any] = {
            "initial_fleets": self.initial_fleets,
            "min_fleets": self.min_fleets,
            "max_fleets": self.max_fleets,
            "slots_per_fleet": self.slots_per_fleet,
            "max_batch": self.max_batch,
            "batch_fill_ms": self.batch_fill_ms,
            "queue_capacity": self.queue_capacity,
            "cache_capacity": self.cache_capacity,
            "remote_fetch_ms": self.remote_fetch_ms,
            "interval_s": self.interval_s,
            "vnodes": self.vnodes,
            "affinity_routing": self.affinity_routing,
            "autoscale": self.autoscale,
            "policy": self.policy.as_dict(),
            "fleet_faults": len(self.fleet_faults),
            "forced_scale": len(self.forced_scale),
        }
        if self.heterogeneous:
            document["gpu_tenants_per_fleet"] = self.gpu_tenants_per_fleet
            document["cpu_assist"] = self.cpu_assist
            document["max_gpu_tenants"] = self.max_gpu_tenants
        return document


class FleetState:
    """Mutable per-fleet simulation state (slots, queues, lifecycle).

    Slot indices are class-partitioned: FPGA slots occupy
    ``[0, fpga_slots)`` and GPU tenants ``[fpga_slots, slots)``, so the
    dispatch loop scans a contiguous range per device class instead of
    filtering.
    """

    def __init__(
        self,
        fleet_id: int,
        slots: int,
        at_s: float,
        gpu_tenants: int = 0,
    ) -> None:
        self.fleet_id = fleet_id
        self.fpga_slots = slots
        self.gpu_tenants = gpu_tenants
        # Plain Python floats: slot counts are single digits and the
        # dispatch loop touches them per batch, where small-ndarray
        # operator overhead would dominate the whole simulation.
        self.slot_free: list[float] = [at_s] * (slots + gpu_tenants)
        self.slot_resident: list[str] = [""] * (slots + gpu_tenants)
        # source_idx -> [trace-index array, arrival array, pointer]
        self.queues: dict[int, list[Any]] = {}
        self.backlog = 0
        self.joined_s = at_s
        self.drained_s: float | None = None
        self.retired_s: float | None = None
        self.faulted_until: float | None = None
        self.alive = True
        self.busy_seconds = 0.0
        self.completed = 0
        self.batches = 0
        self.batch_members = 0
        self.max_batch_size = 0
        self.config_loads = 0
        self.gpu_transfers = 0
        self.gpu_batches = 0
        self.outages = 0
        self.last_routed_s: float | None = None

    @property
    def draining(self) -> bool:
        return self.drained_s is not None

    @property
    def slots(self) -> int:
        return len(self.slot_free)

    def slot_range(self, device_class: str) -> tuple[int, int]:
        """Index range of the slots serving ``device_class``.

        A class the fleet does not tenant falls back to the other
        class's range — placement decisions are cluster-wide, but a
        clamped or legacy fleet must still serve every source routed to
        it.
        """
        if device_class == GPU and self.gpu_tenants > 0:
            return self.fpga_slots, self.fpga_slots + self.gpu_tenants
        if self.fpga_slots > 0:
            return 0, self.fpga_slots
        return self.fpga_slots, self.fpga_slots + self.gpu_tenants

    def as_dict(self, horizon_s: float) -> dict[str, Any]:
        lifetime = (
            self.retired_s if self.retired_s is not None else horizon_s
        ) - self.joined_s
        slot_seconds = lifetime * self.slots
        document: dict[str, Any] = {
            "fleet_id": self.fleet_id,
            "slots": self.slots,
            "joined_s": round(self.joined_s, 9),
            "drained_s": (
                None if self.drained_s is None else round(self.drained_s, 9)
            ),
            "retired_s": (
                None if self.retired_s is None else round(self.retired_s, 9)
            ),
            "completed": self.completed,
            "batches": self.batches,
            "config_loads": self.config_loads,
            "outages": self.outages,
            "busy_seconds": round(self.busy_seconds, 9),
            "busy_fraction": round(
                self.busy_seconds / slot_seconds, 9
            ) if slot_seconds > 0 else 0.0,
        }
        if self.gpu_tenants > 0:
            document["gpu_tenants"] = self.gpu_tenants
            document["gpu_batches"] = self.gpu_batches
            document["gpu_transfers"] = self.gpu_transfers
        return document


@dataclass
class ClusterReport:
    """Aggregate outcome of one cluster run, with a stable JSON form.

    Unlike :class:`~repro.serve.service.ServingReport` there is no
    per-request response log — at 36M requests that would be the whole
    point of the array-native design thrown away.  Latency populations
    are kept as arrays and summarized; accounting is exact counts.
    """

    config: ClusterConfig
    meta: dict[str, Any]
    generated: int
    latencies_ms: np.ndarray
    latency_priorities: np.ndarray
    counts: dict[str, int]
    fleets: list[FleetState]
    autoscaler: Autoscaler
    cache: TieredPlanCache
    wheel: TimerWheel
    horizon_s: float
    queue_depth_samples: list[int]
    counters: dict[str, int]
    placements: dict[str, PlacementDecision] = field(default_factory=dict)
    telemetry: Telemetry = field(default_factory=Telemetry)
    # Cached document: the latency section partitions a multi-million
    # element array, so summary_lines() + write_json() must not pay for
    # it twice.  Treat the returned dict as read-only.
    _doc: "dict[str, Any] | None" = field(
        default=None, repr=False, compare=False
    )

    @property
    def completed(self) -> int:
        return self.counts["completed"]

    @property
    def unaccounted(self) -> int:
        accounted = (
            self.counts["completed"]
            + self.counts["shed_overflow"]
            + self.counts["shed_drain_limit"]
            + self.counts["expired"]
            + self.counts["failed"]
        )
        return self.generated - accounted

    def _latency_section(self) -> dict[str, Any]:
        # Per-priority subsets are extracted first: the overall summary
        # consumes the population array (partitions it in place), which
        # destroys its alignment with ``latency_priorities``.  Each
        # subset copy is likewise consumed by its own summary, so the
        # section allocates only the subsets — no full-size copies.
        by_priority = {}
        for priority in Priority:
            mask = self.latency_priorities == priority.value
            by_priority[PRIORITY_NAMES[priority]] = (
                latency_summary_ms_array(
                    self.latencies_ms[mask], consume=True
                )
            )
        overall = latency_summary_ms_array(self.latencies_ms, consume=True)
        return {"overall": overall, "by_priority": by_priority}

    def as_dict(self) -> dict[str, Any]:
        if self._doc is not None:
            return self._doc
        shed = (
            self.counts["shed_overflow"]
            + self.counts["shed_drain_limit"]
            + self.counts["expired"]
        )
        non_hold = [
            d.as_dict()
            for d in self.autoscaler.decisions
            if d.action is not ScaleAction.HOLD
        ]
        batch_members = sum(f.batch_members for f in self.fleets)
        batch_count = sum(f.batches for f in self.fleets)
        provisioned_fleet_s = 0.0
        provisioned_slot_s = 0.0
        provisioned_gpu_s = 0.0
        for fleet in self.fleets:
            lifetime = (
                fleet.retired_s
                if fleet.retired_s is not None
                else self.horizon_s
            ) - fleet.joined_s
            provisioned_fleet_s += lifetime
            provisioned_slot_s += lifetime * fleet.slots
            provisioned_gpu_s += lifetime * fleet.gpu_tenants
        document: dict[str, Any] = {
            "schema_version": CLUSTER_SCHEMA_VERSION,
            "cluster": {**self.meta, **self.config.as_dict()},
            "requests": {
                "generated": self.generated,
                "completed": self.counts["completed"],
                "failed": self.counts["failed"],
                "shed_overflow": self.counts["shed_overflow"],
                "shed_drain_limit": self.counts["shed_drain_limit"],
                "expired": self.counts["expired"],
                "unaccounted": self.unaccounted,
                "shed_rate": round(
                    shed / self.generated, 9
                ) if self.generated else 0.0,
            },
            "latency_ms": self._latency_section(),
            "routing": {
                "affinity": self.config.affinity_routing,
                "routed": self.counts["routed"],
                "remapped": self.counts["remapped"],
                "ring_rebuilds": self.counts["ring_rebuilds"],
            },
            "cache": self.cache.as_dict(),
            "autoscaler": {
                "enabled": self.config.autoscale,
                "evaluations": len(self.autoscaler.decisions),
                "scale_ups": sum(
                    1 for d in self.autoscaler.decisions
                    if d.action is ScaleAction.ADD
                ),
                "drains": sum(
                    1 for d in self.autoscaler.decisions
                    if d.action is ScaleAction.DRAIN
                ),
                "retired": sum(
                    1 for f in self.fleets if f.retired_s is not None
                ),
                "decisions": non_hold,
            },
            "fleets": {
                "peak": max(
                    self.counts["peak_fleets"], self.config.initial_fleets
                ),
                "final": sum(1 for f in self.fleets if f.alive),
                "provisioned_fleet_seconds": round(provisioned_fleet_s, 9),
                "provisioned_slot_seconds": round(provisioned_slot_s, 9),
                "device_seconds": round(
                    sum(f.busy_seconds for f in self.fleets), 9
                ),
                "horizon_s": round(self.horizon_s, 9),
                "members": [f.as_dict(self.horizon_s) for f in self.fleets],
            },
            "batches": {
                "count": batch_count,
                "mean_size": round(
                    batch_members / batch_count, 9
                ) if batch_count else 0.0,
                "max_size": max(
                    (f.max_batch_size for f in self.fleets), default=0
                ),
                "config_loads": sum(f.config_loads for f in self.fleets),
            },
            "queue": {
                "max_depth": max(self.queue_depth_samples, default=0),
                "mean_depth": round(
                    sum(self.queue_depth_samples)
                    / len(self.queue_depth_samples), 9
                ) if self.queue_depth_samples else 0.0,
            },
            "events": {
                "pushed": self.wheel.pushed,
                "popped": self.wheel.popped,
            },
            "counters": dict(sorted(self.counters.items())),
        }
        if self.config.heterogeneous:
            document["fleets"]["provisioned_gpu_tenant_seconds"] = round(
                provisioned_gpu_s, 9
            )
            document["batches"]["gpu_batches"] = sum(
                f.gpu_batches for f in self.fleets
            )
            document["batches"]["gpu_transfers"] = sum(
                f.gpu_transfers for f in self.fleets
            )
            document["placement"] = placement_section(self.placements)
        self._doc = document
        return document

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    def summary_lines(self) -> list[str]:
        doc = self.as_dict()
        overall = doc["latency_ms"]["overall"]
        lookups = doc["cache"]["lookups"]
        return [
            f"requests generated     : {doc['requests']['generated']}",
            f"completed / failed     : {doc['requests']['completed']} / "
            f"{doc['requests']['failed']}",
            f"shed (overflow/drain)  : {doc['requests']['shed_overflow']} / "
            f"{doc['requests']['shed_drain_limit']} "
            f"(+{doc['requests']['expired']} expired, "
            f"shed rate {doc['requests']['shed_rate']:.1%})",
            f"latency p50 / p99      : {format_latency_ms(overall['p50'])} / "
            f"{format_latency_ms(overall['p99'])} ms",
            f"cache local hit rate   : {lookups['local_hit_rate']:.1%} "
            f"({lookups['remote_hits']} remote, {lookups['misses']} miss)",
            f"fleets peak / final    : {doc['fleets']['peak']} / "
            f"{doc['fleets']['final']} "
            f"({doc['autoscaler']['scale_ups']} ups, "
            f"{doc['autoscaler']['drains']} drains)",
            f"router remaps          : {doc['routing']['remapped']} over "
            f"{doc['routing']['ring_rebuilds']} rebuilds",
            f"device seconds         : "
            f"{doc['fleets']['device_seconds']:.4f} provisioned "
            f"{doc['fleets']['provisioned_slot_seconds']:.1f} slot-s",
            f"timer events           : {doc['events']['popped']} popped",
        ]


class _ClusterSimulation:
    """One cluster run; see the module docstring for the design."""

    def __init__(
        self,
        trace: RequestTrace,
        config: ClusterConfig,
        profiles: dict[str, "SolveProfile | str"],
    ) -> None:
        self.trace = trace
        self.config = config
        self.n_sources = len(trace.sources)
        self.profiles: list[SolveProfile | None] = []
        self.fingerprints: list[str] = []
        for key in trace.sources:
            profile = profiles.get(key)
            if isinstance(profile, SolveProfile):
                self.profiles.append(profile)
                self.fingerprints.append(profile.fingerprint)
            else:
                self.profiles.append(None)
                self.fingerprints.append("")
        self.failed_source = np.array(
            [p is None for p in self.profiles], dtype=bool
        )
        # Per-source scalar cost tables: the dispatch loop runs once per
        # micro-batch, so profile property lookups there would be pure
        # overhead.  ``*_total`` includes the per-request dispatch cost.
        # CPU assist is folded into the cold totals here — the dispatch
        # loop only ever sees the effective cold cost.
        overhead = DISPATCH_OVERHEAD_SECONDS
        assist = config.cpu_assist
        self.warm_total = [
            (p.warm_service_s + overhead) if p else 0.0
            for p in self.profiles
        ]
        self.cold_total = [
            (
                p.cold_service_s + overhead
                - (
                    (p.analysis_s - CPU_ASSIST_ROUNDTRIP_SECONDS)
                    if assist else 0.0
                )
            ) if p else 0.0
            for p in self.profiles
        ]
        self.gpu_warm_total = [
            (p.gpu_warm_service_s + overhead) if p else 0.0
            for p in self.profiles
        ]
        self.gpu_cold_total = [
            (
                p.gpu_cold_service_s + overhead
                - (
                    (p.analysis_s - CPU_ASSIST_ROUNDTRIP_SECONDS)
                    if assist else 0.0
                )
            ) if p else 0.0
            for p in self.profiles
        ]
        self.swap_s = [
            p.solver_swap_s if p else 0.0 for p in self.profiles
        ]
        self.transfer_s = [
            p.gpu_transfer_s if p else 0.0 for p in self.profiles
        ]
        self.signatures = [
            p.plan_signature if p else "" for p in self.profiles
        ]
        # Placement is decided once per source from the *cluster-wide*
        # tenancy mix (every fleet shares the config), so routing and
        # scaling never change a source's device class mid-run.
        self.placements: list[PlacementDecision | None] = [
            decide_placement(
                p,
                fpga_slots=config.slots_per_fleet,
                gpu_tenants=config.gpu_tenants_per_fleet,
                max_batch=config.max_batch,
            ) if p else None
            for p in self.profiles
        ]
        self.placed_class = [
            d.device_class if d else FPGA for d in self.placements
        ]
        self.entries = [p.cache_entry() if p else None for p in self.profiles]
        self.ring = HashRing(vnodes=config.vnodes)
        self.route_map = np.full(self.n_sources, -1, dtype=np.int64)
        self.fleets: dict[int, FleetState] = {}
        self.next_fleet_id = 0
        self.cache = TieredPlanCache(
            local_capacity=config.cache_capacity,
            remote_fetch_s=config.remote_fetch_ms * 1e-3,
        )
        self.autoscaler = Autoscaler(config.policy)
        self.wheel = TimerWheel()
        self.counts = {
            "completed": 0,
            "failed": 0,
            "shed_overflow": 0,
            "shed_drain_limit": 0,
            "expired": 0,
            "routed": 0,
            "remapped": 0,
            "ring_rebuilds": 0,
            "peak_fleets": 0,
            "fleet_outages": 0,
            "forced_scale": 0,
            "cpu_assist_offloads": 0,
        }
        n = len(trace)
        # Latency bookkeeping is deferred: the dispatch loop records one
        # (first_finish, step, size) triple per batch plus each member's
        # trace index and arrival, and :meth:`latencies_s` materializes
        # the per-request latencies in a few vectorized passes at the
        # end.  Arrivals are copied per batch (cheap contiguous slices)
        # so the finalize pass never gathers 10⁷+ random indices.
        self.lat_idx = np.empty(n, dtype=np.int32)
        self.lat_arrival = np.empty(n, dtype=np.float64)
        self.lat_count = 0
        self.batch_first: list[float] = []
        self.batch_step: list[float] = []
        self.batch_size: list[int] = []
        self.queue_depth_samples: list[int] = []
        self.horizon_s = 0.0
        # per-epoch signal accumulators
        self._epoch_arrivals = 0
        self._epoch_shed = 0
        self._prev_lookups = 0
        self._prev_local_hits = 0

    # -- membership ----------------------------------------------------

    def _routing_fleets(self) -> list[int]:
        """Fleets taking new traffic, in id order (ring membership)."""
        return sorted(
            f.fleet_id
            for f in self.fleets.values()
            if f.alive and not f.draining and f.faulted_until is None
        )

    def _fallback_fleets(self) -> list[int]:
        """Last-resort routing targets when the ring is empty."""
        targets = sorted(
            f.fleet_id
            for f in self.fleets.values()
            if f.alive and not f.draining
        )
        if targets:
            return targets
        return sorted(
            f.fleet_id for f in self.fleets.values() if f.alive
        )

    def _rebuild_routes(self) -> None:
        new_map = np.full(self.n_sources, -1, dtype=np.int64)
        if len(self.ring):
            for src in range(self.n_sources):
                if not self.failed_source[src]:
                    new_map[src] = self.ring.owner(self.fingerprints[src])
        moved = np.count_nonzero(
            (self.route_map != -1)
            & (new_map != -1)
            & (self.route_map != new_map)
        )
        self.counts["remapped"] += int(moved)
        self.counts["ring_rebuilds"] += 1
        self.route_map = new_map

    def _add_fleet(self, at_s: float) -> FleetState:
        # Per-device-class scaling bound: a new fleet's GPU tenancy is
        # clamped so the cluster never holds more than
        # ``max_gpu_tenants`` across alive fleets (the FPGA side scales
        # with ``max_fleets`` as before).  A fleet with no FPGA slots
        # keeps one tenant regardless — an empty fleet can serve
        # nothing, and the bound still caps everything above the floor.
        tenants = self.config.gpu_tenants_per_fleet
        if self.config.max_gpu_tenants is not None:
            existing = sum(
                f.gpu_tenants for f in self.fleets.values() if f.alive
            )
            tenants = min(
                tenants, max(0, self.config.max_gpu_tenants - existing)
            )
            if self.config.slots_per_fleet == 0:
                tenants = max(1, tenants)
        fleet = FleetState(
            self.next_fleet_id,
            self.config.slots_per_fleet,
            at_s,
            gpu_tenants=tenants,
        )
        self.next_fleet_id += 1
        self.fleets[fleet.fleet_id] = fleet
        self.cache.attach_fleet(fleet.fleet_id)
        self.ring.add(fleet.fleet_id)
        self._rebuild_routes()
        alive = len(self._routing_fleets())
        self.counts["peak_fleets"] = max(self.counts["peak_fleets"], alive)
        return fleet

    def _drain_fleet(self, at_s: float) -> FleetState | None:
        candidates = [
            f for f in self.fleets.values()
            if f.alive and not f.draining
        ]
        if len(candidates) <= self.config.min_fleets:
            return None
        # Smallest backlog loses; ties drain the youngest (highest id).
        victim = min(
            candidates, key=lambda f: (f.backlog, -f.fleet_id)
        )
        victim.drained_s = at_s
        self.ring.remove(victim.fleet_id)
        self._rebuild_routes()
        return victim

    def _retire_idle(self, at_s: float) -> int:
        retired = 0
        for fleet in self.fleets.values():
            if (
                fleet.alive
                and fleet.draining
                and fleet.backlog == 0
                and max(fleet.slot_free) <= at_s
            ):
                fleet.alive = False
                fleet.retired_s = at_s
                self.cache.detach_fleet(fleet.fleet_id)
                retired += 1
        return retired

    # -- chaos events --------------------------------------------------

    def _apply_fault(self, event: Any) -> None:
        targets = sorted(
            f.fleet_id for f in self.fleets.values() if f.alive
        )
        if not targets:
            return
        fleet = self.fleets[
            targets[event.fleet_ordinal % len(targets)]
        ]
        recover_at = round(event.at_s + event.outage_s, 9)
        fleet.outages += 1
        fleet.faulted_until = recover_at
        fleet.slot_free = [
            free if free > recover_at else recover_at
            for free in fleet.slot_free
        ]
        fleet.slot_resident = [""] * fleet.slots
        self.counts["fleet_outages"] += 1
        if fleet.fleet_id in self.ring:
            self.ring.remove(fleet.fleet_id)
            self._rebuild_routes()
        self.wheel.schedule(
            recover_at, EVENT_FLEET_RECOVER, fleet.fleet_id
        )

    def _apply_recover(self, fleet_id: int) -> None:
        fleet = self.fleets.get(fleet_id)
        if fleet is None or not fleet.alive:
            return
        fleet.faulted_until = None
        if not fleet.draining and fleet_id not in self.ring:
            self.ring.add(fleet_id)
            self._rebuild_routes()

    def _apply_forced_scale(self, event: ForcedScaleEvent) -> None:
        if event.action == "add":
            alive = len(
                [f for f in self.fleets.values()
                 if f.alive and not f.draining]
            )
            if alive < self.config.max_fleets:
                self._add_fleet(event.at_s)
                self.counts["forced_scale"] += 1
        else:
            if self._drain_fleet(event.at_s) is not None:
                self.counts["forced_scale"] += 1

    def _apply_event(self, event: Any) -> None:
        if event.kind == EVENT_FLEET_FAULT:
            self._apply_fault(event.payload)
        elif event.kind == EVENT_FLEET_RECOVER:
            self._apply_recover(event.payload)
        elif event.kind == EVENT_FORCED_SCALE:
            self._apply_forced_scale(event.payload)

    # -- admission and expiry ------------------------------------------

    def _admit(self, new_idx: np.ndarray, at_s: float) -> None:
        if new_idx.shape[0] == 0:
            return
        trace = self.trace
        self._epoch_arrivals += int(new_idx.shape[0])
        src = trace.source_idx[new_idx].astype(np.int64)
        failed = self.failed_source[src]
        n_failed = int(np.count_nonzero(failed))
        if n_failed:
            self.counts["failed"] += n_failed
            new_idx = new_idx[~failed]
            src = src[~failed]
        if new_idx.shape[0] == 0:
            return
        self.counts["routed"] += int(new_idx.shape[0])
        if self.config.affinity_routing and len(self.ring):
            fleet_ids = self.route_map[src]
        else:
            targets = np.array(
                self._routing_fleets() or self._fallback_fleets(),
                dtype=np.int64,
            )
            fleet_ids = targets[new_idx % targets.shape[0]]
        order = np.argsort(fleet_ids, kind="stable")
        fleet_sorted = fleet_ids[order]
        idx_sorted = new_idx[order]
        src_sorted = src[order]
        cuts = np.flatnonzero(np.diff(fleet_sorted)) + 1
        starts = np.concatenate(([0], cuts))
        stops = np.concatenate((cuts, [fleet_sorted.shape[0]]))
        for lo, hi in zip(starts, stops):
            fleet = self.fleets[int(fleet_sorted[lo])]
            chunk_idx = idx_sorted[lo:hi]
            chunk_src = src_sorted[lo:hi]
            room = self.config.queue_capacity - fleet.backlog
            if room < chunk_idx.shape[0]:
                room = max(room, 0)
                # Tail-drop: arrivals are time-ordered within the
                # chunk, so the newest overflow is what gets shed.
                arrival_order = np.argsort(
                    self.trace.arrival_s[chunk_idx], kind="stable"
                )
                keep = np.sort(arrival_order[:room])
                shed = chunk_idx.shape[0] - room
                self.counts["shed_overflow"] += int(shed)
                self._epoch_shed += int(shed)
                chunk_idx = chunk_idx[keep]
                chunk_src = chunk_src[keep]
            if chunk_idx.shape[0] == 0:
                continue
            fleet.last_routed_s = at_s
            fleet.backlog += int(chunk_idx.shape[0])
            src_order = np.argsort(chunk_src, kind="stable")
            by_src = chunk_src[src_order]
            by_idx = chunk_idx[src_order]
            src_cuts = np.flatnonzero(np.diff(by_src)) + 1
            src_starts = np.concatenate(([0], src_cuts))
            src_stops = np.concatenate((src_cuts, [by_src.shape[0]]))
            for slo, shi in zip(src_starts, src_stops):
                source = int(by_src[slo])
                fresh = by_idx[slo:shi]
                queue = fleet.queues.get(source)
                if queue is None:
                    fleet.queues[source] = [
                        fresh,
                        self.trace.arrival_s[fresh],
                        0,
                    ]
                else:
                    idx_arr, arr_arr, ptr = queue
                    queue[0] = np.concatenate((idx_arr[ptr:], fresh))
                    queue[1] = np.concatenate(
                        (arr_arr[ptr:], self.trace.arrival_s[fresh])
                    )
                    queue[2] = 0

    def _expire(self, at_s: float) -> None:
        deadline = self.trace.deadline_s
        for fleet in self.fleets.values():
            if not fleet.alive or fleet.backlog == 0:
                continue
            dead_sources = []
            for source, queue in fleet.queues.items():
                idx_arr, arr_arr, ptr = queue
                live_idx = idx_arr[ptr:]
                lapsed = deadline[live_idx] <= at_s
                n_lapsed = int(np.count_nonzero(lapsed))
                if not n_lapsed:
                    continue
                self.counts["expired"] += n_lapsed
                self._epoch_shed += n_lapsed
                fleet.backlog -= n_lapsed
                keep = ~lapsed
                queue[0] = live_idx[keep]
                queue[1] = arr_arr[ptr:][keep]
                queue[2] = 0
                if queue[0].shape[0] == 0:
                    dead_sources.append(source)
            for source in dead_sources:
                del fleet.queues[source]

    # -- dispatch ------------------------------------------------------

    def _dispatch_fleet(
        self, fleet: FleetState, t1: float
    ) -> None:
        """Serve one fleet's queues up to epoch boundary ``t1``.

        This is the simulation's only per-batch Python loop; every
        quantity it touches is a scalar or a small-slice vector write.
        A batch departs at ``max(slot_free, head_arrival + fill)`` — the
        fill window is what lets batches reach ``max_batch`` under load
        instead of degenerating to one request per iteration — and
        carries every queued request of its source that has arrived by
        the departure time.
        """
        if fleet.backlog == 0:
            return
        queues = fleet.queues
        heap: list[tuple[float, int]] = []
        for source, queue in queues.items():
            if queue[0].shape[0] > queue[2]:
                heap.append((float(queue[1][queue[2]]), source))
        if not heap:
            return
        heapq.heapify(heap)
        slot_free = fleet.slot_free
        residents = fleet.slot_resident
        max_batch = self.config.max_batch
        fill = self.config.batch_fill_ms * 1e-3
        fleet_id = fleet.fleet_id
        assist = self.config.cpu_assist
        lookup = self.cache.lookup
        lat_idx = self.lat_idx
        lat_arrival = self.lat_arrival
        batch_first = self.batch_first
        batch_step = self.batch_step
        batch_size = self.batch_size
        counts = self.counts
        # A class's slot pool can saturate (no start before ``t1``)
        # while the other class still has room, so saturation is
        # tracked per class and the loop only stops when every class
        # the fleet tenants is saturated.
        saturated_fpga = False
        saturated_gpu = False
        while heap and min(slot_free) < t1:
            head_arrival, source = heapq.heappop(heap)
            queue = queues[source]
            idx_arr, arr_arr, ptr = queue
            signature = self.signatures[source]
            lo, hi = fleet.slot_range(self.placed_class[source])
            on_gpu = lo >= fleet.fpga_slots
            if saturated_gpu if on_gpu else saturated_fpga:
                continue
            # Pick the slot with the earliest achievable start; among
            # equal starts prefer a resident-matching slot (same modeled
            # start, one config load saved), then the lowest index.
            ready = head_arrival + fill
            start = float("inf")
            slot = lo
            for index in range(lo, hi):
                free = slot_free[index]
                candidate = free if free > ready else ready
                if candidate < start or (
                    candidate == start
                    and residents[index] == signature
                    and residents[slot] != signature
                ):
                    start = candidate
                    slot = index
            # Leftovers carry to the next epoch once no slot of the
            # class can start inside this one.  Sources later in the
            # heap have later heads, so their starts are no earlier:
            # safe to mark the class saturated.  (Deferred sources keep
            # their queue pointer, so the next epoch re-heaps them.)
            if start >= t1:
                if on_gpu:
                    saturated_gpu = True
                else:
                    saturated_fpga = True
                if (saturated_fpga or fleet.fpga_slots == 0) and (
                    saturated_gpu or fleet.gpu_tenants == 0
                ):
                    break
                continue
            ripe = int(arr_arr.searchsorted(start, side="right")) - ptr
            k = ripe if ripe < max_batch else max_batch
            tier, _, tier_charge = lookup(
                fleet_id, self.fingerprints[source]
            )
            if tier == MISS:
                first_total = (
                    self.gpu_cold_total[source] if on_gpu
                    else self.cold_total[source]
                )
                self.cache.publish(fleet_id, self.entries[source])
                if assist:
                    counts["cpu_assist_offloads"] += 1
            else:
                first_total = (
                    self.gpu_warm_total[source] if on_gpu
                    else self.warm_total[source]
                )
            base = start + tier_charge
            if residents[slot] != signature:
                if on_gpu:
                    base += self.transfer_s[source]
                    fleet.gpu_transfers += 1
                else:
                    base += self.swap_s[source]
                    fleet.config_loads += 1
                residents[slot] = signature
            step = (
                self.gpu_warm_total[source] if on_gpu
                else self.warm_total[source]
            )
            first_finish = base + first_total
            end = first_finish + step * (k - 1)
            slot_free[slot] = end
            fleet.busy_seconds += end - start
            fleet.batches += 1
            if on_gpu:
                fleet.gpu_batches += 1
            fleet.batch_members += k
            if k > fleet.max_batch_size:
                fleet.max_batch_size = k
            fleet.completed += k
            fleet.backlog -= k
            counts["completed"] += k
            c = self.lat_count
            stop = ptr + k
            lat_idx[c:c + k] = idx_arr[ptr:stop]
            lat_arrival[c:c + k] = arr_arr[ptr:stop]
            batch_first.append(first_finish)
            batch_step.append(step)
            batch_size.append(k)
            self.lat_count = c + k
            if end > self.horizon_s:
                self.horizon_s = end
            queue[2] = stop
            if idx_arr.shape[0] > stop:
                heapq.heappush(heap, (float(arr_arr[stop]), source))
            else:
                del queues[source]

    def latencies_s(self) -> np.ndarray:
        """Materialize per-request latencies from per-batch records.

        Request ``i`` of a batch finishes at ``first_finish + step * i``
        and its latency is that finish minus its arrival; doing this
        once over all batches replaces millions of small-slice array
        operations in the dispatch loop with three vectorized passes.
        """
        c = self.lat_count
        if c == 0:
            return np.empty(0, dtype=np.float64)
        sizes = np.asarray(self.batch_size, dtype=np.int64)
        starts = np.cumsum(sizes) - sizes
        first = np.asarray(self.batch_first)
        step = np.asarray(self.batch_step)
        # Element ``i`` of batch ``j`` (at local offset ``m``) has
        # latency ``first_j + step_j * m - arrival_i``.  Both piecewise
        # terms are expanded with scatter-then-cumsum instead of
        # ``np.repeat`` so the whole pass allocates exactly one
        # population-sized buffer (large allocations dominate the
        # finalize on memory-constrained hosts); ``lat_arrival`` is
        # consumed as in-place scratch for the ramp term.
        out = np.zeros(c, dtype=np.float64)
        out[starts] = np.diff(first, prepend=0.0)
        np.cumsum(out, out=out)
        out -= self.lat_arrival[:c]
        scratch = self.lat_arrival[:c]
        scratch[:] = 0.0
        scratch[starts] = np.diff(step, prepend=0.0)
        np.cumsum(scratch, out=scratch)  # step_j, expanded per element
        reset = np.empty_like(step)
        reset[0] = 0.0
        reset[1:] = step[:-1] * (1 - sizes[:-1])
        scratch[starts] = reset
        np.cumsum(scratch, out=scratch)  # step_j * m (local offset ramp)
        out += scratch
        return out

    # -- signals -------------------------------------------------------

    def _signals(self, at_s: float, interval_s: float) -> IntervalSignals:
        alive = [f for f in self.fleets.values() if f.alive]
        depths = [float(f.backlog) for f in alive]
        busy_slot_s = 0.0
        slot_count = 0
        for fleet in alive:
            busy_slot_s += sum(
                min(max(free - at_s, 0.0), interval_s)
                for free in fleet.slot_free
            )
            slot_count += fleet.slots
        lookups = self.cache.stats.lookups
        local_hits = self.cache.stats.local_hits
        delta_lookups = lookups - self._prev_lookups
        delta_local = local_hits - self._prev_local_hits
        self._prev_lookups = lookups
        self._prev_local_hits = local_hits
        arrivals = self._epoch_arrivals
        shed = self._epoch_shed
        self._epoch_arrivals = 0
        self._epoch_shed = 0
        return IntervalSignals(
            at_s=at_s,
            queue_depth_p90=percentile(depths, 90.0),
            shed_rate=shed / arrivals if arrivals else 0.0,
            busy_fraction=(
                busy_slot_s / (slot_count * interval_s)
                if slot_count else 0.0
            ),
            local_hit_rate=(
                delta_local / delta_lookups if delta_lookups else 0.0
            ),
        )

    # -- main loop -----------------------------------------------------

    def total_backlog(self) -> int:
        return sum(f.backlog for f in self.fleets.values() if f.alive)

    def _shed_survivors(self) -> None:
        for fleet in self.fleets.values():
            if not fleet.alive or fleet.backlog == 0:
                continue
            self.counts["shed_drain_limit"] += fleet.backlog
            fleet.backlog = 0
            fleet.queues = {}

    def run(self, duration_s: float) -> None:
        config = self.config
        interval = config.interval_s
        drain_limit = duration_s * DRAIN_LIMIT_FACTOR
        for _ in range(config.initial_fleets):
            self._add_fleet(0.0)
        for fault in config.fleet_faults:
            self.wheel.schedule(fault.at_s, EVENT_FLEET_FAULT, fault)
        for forced in config.forced_scale:
            self.wheel.schedule(forced.at_s, EVENT_FORCED_SCALE, forced)
        self.wheel.schedule(0.0, EVENT_EPOCH, 0)
        arrivals = self.trace.arrival_s
        n = arrivals.shape[0]
        pointer = 0
        self.horizon_s = duration_s
        while self.wheel:
            event = self.wheel.pop()
            if event.kind != EVENT_EPOCH:
                self._apply_event(event)
                continue
            epoch = int(event.payload)
            t0 = event.at_s
            t1 = round((epoch + 1) * interval, 9)
            self._retire_idle(t0)
            self._expire(t0)
            hi = int(np.searchsorted(arrivals, t1, side="left"))
            self._admit(np.arange(pointer, hi, dtype=np.int64), t0)
            pointer = hi
            for fleet_id in sorted(self.fleets):
                fleet = self.fleets[fleet_id]
                if fleet.alive:
                    self._dispatch_fleet(fleet, t1)
            self.queue_depth_samples.append(self.total_backlog())
            signals = self._signals(t1, interval)
            if config.autoscale and t1 <= duration_s:
                alive = len(
                    [f for f in self.fleets.values()
                     if f.alive and not f.draining]
                )
                decision = self.autoscaler.evaluate(
                    signals,
                    alive,
                    config.min_fleets,
                    config.max_fleets,
                )
                if decision.action is ScaleAction.ADD:
                    self._add_fleet(t1)
                elif decision.action is ScaleAction.DRAIN:
                    self._drain_fleet(t1)
            if pointer < n or self.total_backlog() > 0:
                if t1 > drain_limit:
                    self._shed_survivors()
                else:
                    self.wheel.schedule(t1, EVENT_EPOCH, epoch + 1)
        self._retire_idle(self.horizon_s)

    def flush_counters(self) -> None:
        """Publish run totals to the active telemetry collector.

        REP005 requires literal registered names at every call site, so
        the hot loop accumulates plain integers and this single flush
        translates them.
        """
        tm.count("cluster.requests", self.trace.arrival_s.shape[0])
        tm.count("cluster.completed", self.counts["completed"])
        tm.count("cluster.failed", self.counts["failed"])
        tm.count("cluster.shed.overflow", self.counts["shed_overflow"])
        tm.count(
            "cluster.shed.drain_limit", self.counts["shed_drain_limit"]
        )
        tm.count("cluster.expired", self.counts["expired"])
        tm.count(
            "cluster.batches",
            sum(f.batches for f in self.fleets.values()),
        )
        tm.count(
            "cluster.config_loads",
            sum(f.config_loads for f in self.fleets.values()),
        )
        if self.config.gpu_tenants_per_fleet > 0:
            gpu_batches = sum(
                f.gpu_batches for f in self.fleets.values()
            )
            tm.count(
                "placement.fpga_batches",
                sum(f.batches for f in self.fleets.values()) - gpu_batches,
            )
            tm.count("placement.gpu_batches", gpu_batches)
            tm.count(
                "gpu.transfers",
                sum(f.gpu_transfers for f in self.fleets.values()),
            )
        if self.config.cpu_assist:
            tm.count(
                "placement.cpu_assist_offloads",
                self.counts["cpu_assist_offloads"],
            )
        tm.count("router.routed", self.counts["routed"])
        tm.count("router.remapped", self.counts["remapped"])
        tm.count("router.ring_rebuilds", self.counts["ring_rebuilds"])
        tm.count("cache.tier.local_hits", self.cache.stats.local_hits)
        tm.count("cache.tier.remote_hits", self.cache.stats.remote_hits)
        tm.count("cache.tier.misses", self.cache.stats.misses)
        tm.count("cache.tier.evictions", self.cache.local_evictions())
        tm.count("cache.tier.publishes", self.cache.publishes)
        tm.count(
            "autoscale.evaluations", len(self.autoscaler.decisions)
        )
        tm.count(
            "autoscale.scale_ups",
            sum(
                1 for d in self.autoscaler.decisions
                if d.action is ScaleAction.ADD
            ),
        )
        tm.count(
            "autoscale.drains",
            sum(
                1 for d in self.autoscaler.decisions
                if d.action is ScaleAction.DRAIN
            ),
        )
        tm.count(
            "autoscale.holds",
            sum(
                1 for d in self.autoscaler.decisions
                if d.action is ScaleAction.HOLD
            ),
        )
        tm.count(
            "autoscale.retired",
            sum(
                1 for f in self.fleets.values()
                if f.retired_s is not None
            ),
        )
        tm.count(
            "faults.injected.fleet_outage", self.counts["fleet_outages"]
        )
        tm.count(
            "faults.injected.forced_scale", self.counts["forced_scale"]
        )


def run_cluster(
    trace: RequestTrace,
    config: ClusterConfig | None = None,
    acamar_config: AcamarConfig | None = None,
    profiles: "dict[str, SolveProfile | str] | None" = None,
) -> ClusterReport:
    """Simulate serving ``trace`` on a fleet cluster.

    ``profiles`` lets a caller inject pre-built source profiles (the
    design-space explorer memoizes them across points sharing an
    accelerator config); they must cover ``trace.sources`` and have been
    built with the same ``acamar_config`` and ``profile_seed`` a fresh
    :func:`~repro.serve.service.build_profiles` call would use, or the
    byte-determinism contract across callers is void.
    """
    config = config if config is not None else ClusterConfig()
    acamar_config = (
        acamar_config if acamar_config is not None else AcamarConfig()
    )
    collector = Telemetry()
    with collector.activate():
        if profiles is None:
            profiles = build_profiles(
                list(trace.sources),
                acamar_config,
                workers=config.workers,
                seed=config.profile_seed,
                collector=collector,
            )
        simulation = _ClusterSimulation(trace, config, profiles)
        duration = float(trace.meta.get("duration_s", 0.0))
        if duration <= 0.0 and len(trace):
            duration = float(trace.arrival_s[-1])
        simulation.run(duration)
        simulation.flush_counters()
    c = simulation.lat_count
    latencies = simulation.latencies_s()
    latencies *= 1e3  # seconds → milliseconds, in place
    priorities = trace.priority[simulation.lat_idx[:c]]
    return ClusterReport(
        config=config,
        meta=dict(trace.meta),
        generated=len(trace),
        latencies_ms=latencies,
        latency_priorities=priorities,
        counts=simulation.counts,
        fleets=[
            simulation.fleets[fid] for fid in sorted(simulation.fleets)
        ],
        autoscaler=simulation.autoscaler,
        cache=simulation.cache,
        wheel=simulation.wheel,
        horizon_s=simulation.horizon_s,
        queue_depth_samples=simulation.queue_depth_samples,
        counters=dict(collector.counters),
        placements={
            d.source: d for d in simulation.placements if d is not None
        },
        telemetry=collector,
    )


def run_cluster_loadtest(
    spec: ClusterLoadSpec,
    config: ClusterConfig | None = None,
    acamar_config: AcamarConfig | None = None,
    profiles: "dict[str, SolveProfile | str] | None" = None,
) -> ClusterReport:
    """Generate a synthetic cluster trace for ``spec`` and serve it."""
    from repro.serve.cluster.trace import generate_trace

    trace = generate_trace(spec)
    return run_cluster(trace, config, acamar_config, profiles=profiles)
