"""Deterministic synthetic load generation.

Serving behaviour is governed by the *shape* of traffic — arrival
burstiness, how concentrated the dataset mix is, how tight deadlines
run — so the generator models each dimension explicitly:

- **arrival process**: exponential inter-arrivals (Poisson traffic) at
  ``rate_rps``, optionally modulated by a square-wave burst pattern
  (``burst_factor``× the base rate for ``burst_s`` out of every
  ``burst_period_s``), the classic on/off overload model,
- **dataset mix**: named mixes over the Table II registry — ``uniform``
  spreads requests evenly (cache-hostile), ``repeat-heavy``
  concentrates 80% of traffic on a small hot set (cache-friendly, the
  regime Acamar's amortized analysis targets), ``bursty`` is the
  repeat-heavy mix under burst modulation,
- **priority/deadline mix**: a fixed fraction of traffic is interactive
  with a relative deadline; the rest splits batch/best-effort.

Everything derives from one ``numpy`` PCG64 generator seeded by the
caller, so a seed fully determines the request log.  Logs round-trip
through JSONL (:func:`write_request_log` / :func:`read_request_log`)
for replay and offline analysis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.serve.api import Priority, SolveRequest

HOT_SET_SIZE = 6
HOT_SET_SHARE = 0.8
"""``repeat-heavy`` sends this share of traffic to the first
``HOT_SET_SIZE`` registry keys (weighted geometrically within the set)."""

PRIORITY_SHARES = ((Priority.INTERACTIVE, 0.3), (Priority.BATCH, 0.5),
                   (Priority.BEST_EFFORT, 0.2))

TRAFFIC_MIXES = ("uniform", "repeat-heavy", "bursty")


@dataclass(frozen=True)
class LoadSpec:
    """Parameters of one synthetic traffic run."""

    seed: int = 0
    duration_s: float = 5.0
    rate_rps: float = 120.0
    mix: str = "repeat-heavy"
    deadline_ms: float = 100.0
    burst_factor: float = 4.0
    burst_s: float = 0.25
    burst_period_s: float = 1.0
    sources: tuple[str, ...] = ()  # empty → the Table II registry

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration must be > 0 s, got {self.duration_s}"
            )
        if self.rate_rps <= 0:
            raise ConfigurationError(
                f"rate must be > 0 rps, got {self.rate_rps}"
            )
        if self.mix not in TRAFFIC_MIXES:
            raise ConfigurationError(
                f"unknown traffic mix {self.mix!r}; "
                f"expected one of {TRAFFIC_MIXES}"
            )


def source_weights(mix: str, n_keys: int) -> np.ndarray:
    """Per-source probability weights of traffic mix ``mix``.

    Shared by the object-stream generator below and the cluster tier's
    vectorized trace generator (:mod:`repro.serve.cluster.trace`), so
    "repeat-heavy" means the same skew in both.
    """
    if mix not in TRAFFIC_MIXES:
        raise ConfigurationError(
            f"unknown traffic mix {mix!r}; expected one of {TRAFFIC_MIXES}"
        )
    if mix == "uniform":
        return np.full(n_keys, 1.0 / n_keys)
    # repeat-heavy / bursty: geometric weights over the hot set, the
    # remaining share spread over the tail.
    hot = min(HOT_SET_SIZE, n_keys)
    weights = np.zeros(n_keys)
    hot_weights = 0.5 ** np.arange(hot)
    weights[:hot] = HOT_SET_SHARE * hot_weights / hot_weights.sum()
    tail = n_keys - hot
    if tail:
        weights[hot:] = (1.0 - HOT_SET_SHARE) / tail
    else:
        weights[:hot] /= weights[:hot].sum()
    return weights


def _source_weights(spec: LoadSpec, keys: Sequence[str]) -> np.ndarray:
    return source_weights(spec.mix, len(keys))


def _instantaneous_rate(spec: LoadSpec, t: float) -> float:
    if spec.mix != "bursty":
        return spec.rate_rps
    phase = t % spec.burst_period_s
    if phase < spec.burst_s:
        return spec.rate_rps * spec.burst_factor
    return spec.rate_rps


def generate_requests(spec: LoadSpec) -> list[SolveRequest]:
    """Produce the full request log for ``spec`` (arrival-ordered)."""
    if spec.sources:
        keys: tuple[str, ...] = tuple(spec.sources)
    else:
        from repro.datasets.suite import dataset_keys

        keys = dataset_keys()
    rng = np.random.default_rng(spec.seed)
    weights = _source_weights(spec, keys)
    priorities = [p for p, _ in PRIORITY_SHARES]
    priority_weights = np.array([w for _, w in PRIORITY_SHARES])
    requests: list[SolveRequest] = []
    t = 0.0
    request_id = 0
    while True:
        # Thinning-free non-homogeneous sampling: draw the gap at the
        # *current* instantaneous rate.  Exact for piecewise-constant
        # rates whose pieces are long relative to the gap, which holds
        # for the burst parameters above.
        t += float(rng.exponential(1.0 / _instantaneous_rate(spec, t)))
        # Quantize to the log precision (9 decimals) so a live run and a
        # replay of its saved request log see bit-identical arrivals.
        t = round(t, 9)
        if t >= spec.duration_s:
            break
        source = keys[int(rng.choice(len(keys), p=weights))]
        priority = priorities[
            int(rng.choice(len(priorities), p=priority_weights))
        ]
        deadline = None
        if priority is Priority.INTERACTIVE:
            deadline = round(t + spec.deadline_ms * 1e-3, 9)
        requests.append(
            SolveRequest(
                request_id=request_id,
                source=source,
                arrival_s=t,
                priority=priority,
                deadline_s=deadline,
            )
        )
        request_id += 1
    return requests


def write_request_log(
    requests: Sequence[SolveRequest], path: str | Path
) -> Path:
    path = Path(path)
    with open(path, "w") as fh:
        for request in requests:
            fh.write(json.dumps(request.as_dict(), sort_keys=True) + "\n")
    return path


def read_request_log(path: str | Path) -> list[SolveRequest]:
    requests = [
        SolveRequest.from_dict(json.loads(line))
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]
    requests.sort(key=lambda r: (r.arrival_s, r.request_id))
    return requests
