"""The serving simulator: admission → micro-batching → fleet, on a
virtual clock.

:func:`run_service` consumes a request log (usually from
:mod:`repro.serve.loadgen`) and produces a :class:`ServingReport`.  The
simulation is **discrete-event over scheduling ticks**: virtual time
advances in fixed quanta (``tick_ms``); each tick admits the arrivals it
covers, expires lapsed deadlines, and lets the scheduler place ripe
micro-batches on free fleet slots.  All latencies are simulated —
device compute from the FPGA cost model, analysis/configuration charges
from the profile constants — so a fixed request log yields a
byte-identical JSON report on every run, on every machine.

Real numerics still happen: every unique source is profiled once with a
true Acamar solve (dispatched through :mod:`repro.parallel` when
``workers > 1``), and its decision-loop outcome is what the simulator
replays.  Wall-clock quantities (profiling spans) live only in the
separate telemetry export, never in the deterministic report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from repro import telemetry as tm
from repro.config import AcamarConfig
from repro.errors import ConfigurationError
from repro.fpga.multitenancy import FleetSpec
from repro.parallel import WorkItem, estimate_cost, run_sharded
from repro.serve.admission import AdmissionController, AdmissionVerdict
from repro.serve.api import (
    PRIORITY_NAMES,
    Outcome,
    Priority,
    SolveRequest,
    SolveResponse,
)
from repro.serve.cache import PlanCache
from repro.serve.profile import SolveProfile, profile_items
from repro.serve.scheduler import DeviceFaultEvent, MicroBatchScheduler
from repro.serve.stats import format_latency_ms, latency_summary_ms
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover — type name only, avoids eager import
    from repro.serve.loadgen import LoadSpec

SERVING_SCHEMA_VERSION = 1

DRAIN_LIMIT_FACTOR = 20.0
"""The simulator refuses to run past ``duration * factor`` draining a
queue that cannot empty; survivors are shed with an explicit response."""


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the serving layer (defaults favor a small deployment)."""

    queue_capacity: int = 64
    max_batch: int = 8
    batch_window_ms: float = 1.0
    tick_ms: float = 0.5
    cache_enabled: bool = True
    cache_capacity: int = 256
    fleet: FleetSpec = field(default_factory=FleetSpec)
    workers: int = 1
    profile_seed: int = 1
    device_faults: tuple[DeviceFaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.tick_ms <= 0:
            raise ConfigurationError(
                f"tick must be > 0 ms, got {self.tick_ms}"
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )

    def as_dict(self) -> dict[str, Any]:
        fleet: dict[str, Any] = {
            "devices": self.fleet.devices,
            "slots_per_device": self.fleet.slots_per_device,
            "total_slots": self.fleet.total_slots,
        }
        # Tenancy-mix keys appear only on heterogeneous fleets so the
        # pure-FPGA config schema (and its committed goldens) stay
        # byte-identical.
        if self.fleet.gpu_tenants or self.fleet.cpu_assist:
            fleet["gpu_tenants"] = self.fleet.gpu_tenants
            fleet["cpu_assist"] = self.fleet.cpu_assist
        return {
            "queue_capacity": self.queue_capacity,
            "max_batch": self.max_batch,
            "batch_window_ms": self.batch_window_ms,
            "tick_ms": self.tick_ms,
            "cache_enabled": self.cache_enabled,
            "cache_capacity": self.cache_capacity,
            "fleet": fleet,
            "device_faults": len(self.device_faults),
        }


@dataclass
class ServingReport:
    """Everything one serving run produced, with a stable JSON form."""

    config: ServiceConfig
    requests: list[SolveRequest]
    responses: list[SolveResponse]
    queue_depth_samples: list[int]
    scheduler: MicroBatchScheduler
    admission: AdmissionController
    cache: PlanCache | None
    horizon_s: float
    counters: dict[str, int]
    telemetry: Telemetry = field(default_factory=Telemetry)
    meta: dict[str, Any] = field(default_factory=dict)

    # -- derived statistics -------------------------------------------

    def _by_outcome(self, outcome: Outcome) -> list[SolveResponse]:
        return [r for r in self.responses if r.outcome is outcome]

    @property
    def completed(self) -> list[SolveResponse]:
        return self._by_outcome(Outcome.COMPLETED)

    @property
    def shed_count(self) -> int:
        return len(self._by_outcome(Outcome.SHED))

    @property
    def expired_count(self) -> int:
        return len(self._by_outcome(Outcome.EXPIRED))

    @property
    def unaccounted(self) -> int:
        """Requests without a response — the invariant says zero."""
        return len(self.requests) - len(self.responses)

    @property
    def cache_hit_rate(self) -> float:
        done = self.completed
        if not done:
            return 0.0
        return sum(r.cache_hit for r in done) / len(done)

    def latency_stats_ms(
        self, responses: Sequence[SolveResponse]
    ) -> dict[str, float]:
        return latency_summary_ms([r.latency_s * 1e3 for r in responses])

    def as_dict(self, include_responses: bool = True) -> dict[str, Any]:
        done = self.completed
        generated = len(self.requests)
        batch_sizes = [b.size for b in self.scheduler.batches]
        document: dict[str, Any] = {
            "schema_version": SERVING_SCHEMA_VERSION,
            "serving": {**self.meta, **self.config.as_dict()},
            "requests": {
                "generated": generated,
                "completed": len(done),
                "converged": sum(1 for r in done if r.converged),
                "failed": len(self._by_outcome(Outcome.FAILED)),
                "shed": self.shed_count,
                "expired": self.expired_count,
                "unaccounted": self.unaccounted,
                "shed_rate": round(
                    (self.shed_count + self.expired_count) / generated, 9
                ) if generated else 0.0,
            },
            "latency_ms": {
                "overall": self.latency_stats_ms(done),
                "by_priority": {
                    PRIORITY_NAMES[priority]: self.latency_stats_ms(
                        [r for r in done if r.priority is priority]
                    )
                    for priority in Priority
                },
            },
            "queue": {
                "max_depth": max(self.queue_depth_samples, default=0),
                "mean_depth": round(
                    sum(self.queue_depth_samples)
                    / len(self.queue_depth_samples),
                    9,
                ) if self.queue_depth_samples else 0.0,
                "shed_full": self.admission.shed_full,
                "shed_deadline": self.admission.shed_deadline,
                "preemptions": self.admission.preemptions,
            },
            "cache": {
                "enabled": self.cache is not None,
                "hit_rate": round(self.cache_hit_rate, 9),
                "entries": len(self.cache) if self.cache else 0,
                "lookups": (
                    self.cache.stats.as_dict() if self.cache else None
                ),
            },
            "batches": {
                "count": len(batch_sizes),
                "mean_size": round(
                    sum(batch_sizes) / len(batch_sizes), 9
                ) if batch_sizes else 0.0,
                "max_size": max(batch_sizes, default=0),
                "cold": sum(1 for b in self.scheduler.batches if b.cold),
                "config_loads": sum(
                    s.config_loads for s in self.scheduler.slots
                ),
            },
            "fleet": {
                "total_slots": len(self.scheduler.slots),
                "horizon_s": round(self.horizon_s, 9),
                "busy_fraction": [
                    round(s.busy_seconds / self.horizon_s, 9)
                    if self.horizon_s else 0.0
                    for s in self.scheduler.slots
                ],
                "device_seconds": round(
                    sum(s.busy_seconds for s in self.scheduler.slots), 9
                ),
                "device_faults": sum(
                    s.outages for s in self.scheduler.slots
                ),
            },
            "counters": dict(sorted(self.counters.items())),
        }
        if self.scheduler.fleet.gpu_tenants > 0:
            document["placement"] = self._placement_section()
            document["fleet"]["by_class"] = self._fleet_by_class()
        if include_responses:
            document["responses"] = [r.as_dict() for r in self.responses]
        return document

    def _placement_section(self) -> dict[str, Any]:
        """Per-source decisions plus the Table-II-style scenario matrix."""
        from repro.placement import placement_section

        decisions = {}
        for source, profile in self.scheduler.profiles.items():
            if isinstance(profile, str):
                continue
            decisions[source] = self.scheduler.placement_for(source)
        return placement_section(decisions)

    def _fleet_by_class(self) -> dict[str, Any]:
        """Busy-time and batch accounting split by device class."""
        section: dict[str, Any] = {}
        for slot in self.scheduler.slots:
            stats = section.setdefault(
                slot.device_class,
                {"slots": 0, "device_seconds": 0.0, "batches": 0,
                 "config_loads": 0},
            )
            stats["slots"] += 1
            stats["device_seconds"] += slot.busy_seconds
            stats["batches"] += slot.batches
            stats["config_loads"] += slot.config_loads
        for stats in section.values():
            stats["device_seconds"] = round(stats["device_seconds"], 9)
        return dict(sorted(section.items()))

    def to_json(self, include_responses: bool = True) -> str:
        return json.dumps(
            self.as_dict(include_responses=include_responses),
            indent=2,
            sort_keys=True,
        ) + "\n"

    def write_json(
        self, path: str | Path, include_responses: bool = True
    ) -> Path:
        path = Path(path)
        path.write_text(self.to_json(include_responses=include_responses))
        return path

    def write_response_log(self, path: str | Path) -> Path:
        path = Path(path)
        with open(path, "w") as fh:
            for response in self.responses:
                fh.write(json.dumps(response.as_dict(), sort_keys=True) + "\n")
        return path

    def summary_lines(self) -> list[str]:
        doc = self.as_dict(include_responses=False)
        overall = doc["latency_ms"]["overall"]
        return [
            f"requests generated    : {doc['requests']['generated']}",
            f"completed / converged : {doc['requests']['completed']} / "
            f"{doc['requests']['converged']}",
            f"shed / expired        : {doc['requests']['shed']} / "
            f"{doc['requests']['expired']} "
            f"(shed rate {doc['requests']['shed_rate']:.1%})",
            f"latency p50 / p99     : {format_latency_ms(overall['p50'])} / "
            f"{format_latency_ms(overall['p99'])} ms",
            f"cache hit rate        : {doc['cache']['hit_rate']:.1%} "
            f"({doc['cache']['entries']} entries)",
            f"batches (mean size)   : {doc['batches']['count']} "
            f"({doc['batches']['mean_size']:.2f})",
            f"queue depth max/mean  : {doc['queue']['max_depth']} / "
            f"{doc['queue']['mean_depth']:.2f}",
            f"fleet device seconds  : {doc['fleet']['device_seconds']:.4f} "
            f"over {doc['fleet']['total_slots']} slots",
        ]


def build_profiles(
    sources: Sequence[str],
    config: AcamarConfig,
    workers: int = 1,
    seed: int = 1,
    collector: Telemetry | None = None,
) -> dict[str, "SolveProfile | str"]:
    """Profile every unique source once (real solves, memoized).

    ``workers > 1`` fans profiling out through the parallel engine's
    pool machinery with :func:`profile_items` as the work function;
    otherwise it runs in-process.  A profiling failure maps the source
    to its error string — requests for it will be answered with
    ``FAILED`` responses rather than sinking the run.
    """
    unique: list[str] = []
    seen = set()
    for source in sources:
        if source not in seen:
            seen.add(source)
            unique.append(source)
    items = [
        WorkItem(
            index=index,
            source=source,
            seed=seed,
            cost=estimate_cost(source),
        )
        for index, source in enumerate(unique)
    ]
    collector = collector if collector is not None else Telemetry()
    if workers > 1 and len(items) > 1:
        outcome = run_sharded(
            items, config, workers=workers, work_fn=profile_items
        )
        results = outcome.results
        collector.merge(outcome.telemetry)
    else:
        results = profile_items(items, config)
        for result in results:
            collector.merge(result.telemetry)
    profiles: dict[str, SolveProfile | str] = {}
    for item, result in zip(items, sorted(results, key=lambda r: r.index)):
        profiles[str(item.source)] = (
            result.entry if result.entry is not None else result.error
        )
    return profiles


def run_loadtest(
    spec: "LoadSpec",
    service_config: ServiceConfig | None = None,
    acamar_config: AcamarConfig | None = None,
) -> ServingReport:
    """Generate synthetic traffic for ``spec`` and serve it."""
    from repro.serve.loadgen import generate_requests

    requests = generate_requests(spec)
    meta = {
        "seed": spec.seed,
        "duration_s": spec.duration_s,
        "rate_rps": spec.rate_rps,
        "mix": spec.mix,
    }
    return run_service(
        requests, service_config, acamar_config, meta=meta
    )


def run_service(
    requests: Sequence[SolveRequest],
    service_config: ServiceConfig | None = None,
    acamar_config: AcamarConfig | None = None,
    meta: dict[str, Any] | None = None,
) -> ServingReport:
    """Simulate serving ``requests``; every request gets one response."""
    service_config = (
        service_config if service_config is not None else ServiceConfig()
    )
    acamar_config = (
        acamar_config if acamar_config is not None else AcamarConfig()
    )
    requests = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    collector = Telemetry()
    with collector.activate():
        profiles = build_profiles(
            [r.source for r in requests],
            acamar_config,
            workers=service_config.workers,
            seed=service_config.profile_seed,
            collector=collector,
        )
        cache = (
            PlanCache(capacity=service_config.cache_capacity)
            if service_config.cache_enabled
            else None
        )
        scheduler = MicroBatchScheduler(
            fleet=service_config.fleet,
            profiles=profiles,
            cache=cache,
            max_batch=service_config.max_batch,
            batch_window_s=service_config.batch_window_ms * 1e-3,
            device_faults=service_config.device_faults,
        )
        admission = AdmissionController(
            capacity=service_config.queue_capacity
        )
        responses: list[SolveResponse] = []
        queue_depth_samples: list[int] = []
        tick = service_config.tick_ms * 1e-3
        duration = requests[-1].arrival_s if requests else 0.0
        drain_limit = max(duration, tick) * DRAIN_LIMIT_FACTOR
        pointer = 0
        batch_id = 0
        now = 0.0
        step = 0
        while pointer < len(requests) or admission.queue:
            now = step * tick
            # 1. Admit (or shed) every arrival this tick covers, at its
            #    own arrival timestamp so deadline math stays exact.
            while (
                pointer < len(requests)
                and requests[pointer].arrival_s <= now
            ):
                request = requests[pointer]
                pointer += 1
                tm.count("serve.requests")
                verdict, victim = admission.offer(request, request.arrival_s)
                if victim is not None:
                    responses.append(
                        SolveResponse(
                            request_id=victim.request.request_id,
                            source=victim.request.source,
                            outcome=Outcome.SHED,
                            priority=victim.request.priority,
                            arrival_s=victim.request.arrival_s,
                            finish_s=request.arrival_s,
                            detail="preempted: displaced by higher priority",
                        )
                    )
                if verdict is not AdmissionVerdict.ADMITTED:
                    responses.append(
                        SolveResponse(
                            request_id=request.request_id,
                            source=request.source,
                            outcome=Outcome.SHED,
                            priority=request.priority,
                            arrival_s=request.arrival_s,
                            finish_s=request.arrival_s,
                            detail=verdict.value,
                        )
                    )
            # 2. Expire queued requests whose deadline lapsed.
            for lapsed in admission.expire(now):
                responses.append(
                    SolveResponse(
                        request_id=lapsed.request.request_id,
                        source=lapsed.request.source,
                        outcome=Outcome.EXPIRED,
                        priority=lapsed.request.priority,
                        arrival_s=lapsed.request.arrival_s,
                        finish_s=lapsed.request.deadline_s or now,
                        queue_s=(lapsed.request.deadline_s or now)
                        - lapsed.request.arrival_s,
                        detail="deadline expired in queue",
                    )
                )
            # 3. Dispatch ripe micro-batches onto free slots.
            batch_responses, admission.queue, batch_id = scheduler.dispatch(
                admission.queue, now, batch_id
            )
            responses.extend(batch_responses)
            queue_depth_samples.append(admission.depth())
            step += 1
            if now > drain_limit and admission.queue:
                for queued in admission.queue:
                    responses.append(
                        SolveResponse(
                            request_id=queued.request.request_id,
                            source=queued.request.source,
                            outcome=Outcome.SHED,
                            priority=queued.request.priority,
                            arrival_s=queued.request.arrival_s,
                            finish_s=now,
                            detail="drain limit reached",
                        )
                    )
                    tm.count("serve.shed.drain_limit")
                admission.queue = []
                break
        for response in responses:
            if response.outcome is Outcome.COMPLETED:
                tm.observe("serve.latency_ms", response.latency_s * 1e3)
    responses.sort(key=lambda r: (r.finish_s, r.request_id))
    horizon = max(
        [duration]
        + [slot.busy_until_s for slot in scheduler.slots]
        + [r.finish_s for r in responses]
    ) if (requests or responses) else 0.0
    return ServingReport(
        config=service_config,
        requests=list(requests),
        responses=responses,
        queue_depth_samples=queue_depth_samples,
        scheduler=scheduler,
        admission=admission,
        cache=cache,
        horizon_s=horizon,
        counters=dict(collector.counters),
        telemetry=collector,
        meta=dict(meta or {}),
    )
