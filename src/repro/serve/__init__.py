"""Online solver serving: admission, micro-batching, plan cache, fleet.

This package turns the batch reproducer into a request-driven service
model.  A stream of :class:`SolveRequest` objects flows through

1. **admission control** — a bounded priority queue that sheds with
   explicit backpressure responses instead of growing without bound,
2. the **micro-batch scheduler** — groups structurally compatible
   requests (same CSR fingerprint, or same reconfiguration-plan
   signature once cached) and dispatches them onto the multi-tenant
   fleet model, charging simulated device time,
3. the **fingerprint-keyed plan cache** — repeat traffic skips the
   Matrix Structure unit and Fine-Grained Reconfiguration analysis,
   the serving-side analogue of the per-instance structure caches.

Everything runs on a virtual clock, so a fixed request log produces a
byte-identical report (see ``docs/serving.md``).  Entry points:
``repro serve`` / ``repro loadtest`` on the CLI, or
:func:`run_service` / :func:`run_loadtest` from code.

The :mod:`repro.serve.cluster` subpackage scales this model to a
dynamically sized *cluster* of fleets — consistent-hash fingerprint
routing, a tiered plan cache and a deterministic autoscaler — behind
``repro loadtest --cluster`` / :func:`run_cluster_loadtest`.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionVerdict,
    deadline_lapsed,
    deadline_unmeetable,
)
from repro.serve.api import (
    Outcome,
    Priority,
    SolveRequest,
    SolveResponse,
    parse_priority,
)
from repro.serve.cache import (
    CacheEntry,
    PlanCache,
    plan_signature,
    structure_fingerprint,
)
from repro.serve.cluster import (
    AutoscalerPolicy,
    ClusterConfig,
    ClusterLoadSpec,
    ClusterReport,
    FleetFaultEvent,
    ForcedScaleEvent,
    HashRing,
    TieredPlanCache,
    generate_trace,
    run_cluster,
    run_cluster_loadtest,
)
from repro.serve.loadgen import (
    TRAFFIC_MIXES,
    LoadSpec,
    generate_requests,
    read_request_log,
    write_request_log,
)
from repro.serve.profile import SolveProfile, build_profile, profile_items
from repro.serve.scheduler import DeviceFaultEvent, MicroBatchScheduler
from repro.serve.service import (
    ServiceConfig,
    ServingReport,
    build_profiles,
    run_loadtest,
    run_service,
)

__all__ = [
    "TRAFFIC_MIXES",
    "AdmissionController",
    "AdmissionVerdict",
    "AutoscalerPolicy",
    "CacheEntry",
    "ClusterConfig",
    "ClusterLoadSpec",
    "ClusterReport",
    "DeviceFaultEvent",
    "FleetFaultEvent",
    "ForcedScaleEvent",
    "HashRing",
    "LoadSpec",
    "MicroBatchScheduler",
    "Outcome",
    "PlanCache",
    "Priority",
    "ServiceConfig",
    "ServingReport",
    "SolveProfile",
    "SolveRequest",
    "SolveResponse",
    "TieredPlanCache",
    "build_profile",
    "build_profiles",
    "deadline_lapsed",
    "deadline_unmeetable",
    "generate_requests",
    "generate_trace",
    "parse_priority",
    "plan_signature",
    "profile_items",
    "read_request_log",
    "run_cluster",
    "run_cluster_loadtest",
    "run_loadtest",
    "run_service",
    "structure_fingerprint",
    "write_request_log",
]
