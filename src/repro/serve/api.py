"""Request/response contract of the online solver service.

A :class:`SolveRequest` is one client ask: solve the system identified
by ``source`` (a Table II key, an ``.mtx`` path, or an in-memory
problem) under a priority class and an optional deadline.  Every
generated request receives **exactly one** :class:`SolveResponse` — a
completed solve, an explicit shed (admission refused or preempted), an
expiry (deadline passed while queued), or a failure (the solve raised).
"Zero dropped without a shed response" is the subsystem's accounting
invariant and is asserted by the CI smoke job.

All timestamps are *virtual* seconds on the simulator clock (see
``docs/serving.md``): the serving layer is a discrete-event model, so a
fixed request log always yields a byte-identical response log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.errors import ValidationError


class Priority(enum.IntEnum):
    """Request priority class; lower value = more urgent.

    ``INTERACTIVE`` requests typically carry deadlines and may preempt
    queued ``BEST_EFFORT`` work when the admission queue is full;
    ``BATCH`` is the default for bulk traffic.
    """

    INTERACTIVE = 0
    BATCH = 1
    BEST_EFFORT = 2


PRIORITY_NAMES = {p: p.name.lower() for p in Priority}


def parse_priority(value: "str | int | Priority") -> Priority:
    """Coerce a CLI/JSON value to a :class:`Priority`."""
    if isinstance(value, Priority):
        return value
    if isinstance(value, int):
        return Priority(value)
    try:
        return Priority[str(value).strip().upper()]
    except KeyError:
        raise ValidationError(
            f"unknown priority {value!r}; expected one of "
            f"{sorted(PRIORITY_NAMES.values())}"
        ) from None


class Outcome(enum.Enum):
    """Terminal state of one request."""

    COMPLETED = "completed"  # solved; converged flag says how it went
    SHED = "shed"            # admission refused or preempted (backpressure)
    EXPIRED = "expired"      # deadline passed while still queued
    FAILED = "failed"        # the solve itself raised


@dataclass(frozen=True)
class SolveRequest:
    """One solve request on the virtual clock.

    Attributes
    ----------
    request_id:
        Dense, unique id (generation order).
    source:
        Problem source — Table II key or ``.mtx``/``.mtx.gz`` path.
    arrival_s:
        Virtual arrival time in seconds.
    priority:
        Scheduling class.
    deadline_s:
        Absolute virtual deadline, or ``None`` for no deadline.
    tenant:
        Logical traffic owner (used for accounting only).
    """

    request_id: int
    source: str
    arrival_s: float
    priority: Priority = Priority.BATCH
    deadline_s: float | None = None
    tenant: str = "default"

    def as_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "source": self.source,
            "arrival_s": round(self.arrival_s, 9),
            "priority": PRIORITY_NAMES[self.priority],
            "deadline_s": (
                None if self.deadline_s is None else round(self.deadline_s, 9)
            ),
            "tenant": self.tenant,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SolveRequest":
        return cls(
            request_id=int(payload["request_id"]),
            source=str(payload["source"]),
            arrival_s=float(payload["arrival_s"]),
            priority=parse_priority(payload.get("priority", Priority.BATCH)),
            deadline_s=(
                None
                if payload.get("deadline_s") is None
                else float(payload["deadline_s"])
            ),
            tenant=str(payload.get("tenant", "default")),
        )


@dataclass(frozen=True)
class SolveResponse:
    """What the service reports back for one request.

    Latency fields decompose as ``latency_s = queue_s + service_s`` where
    ``service_s`` covers configuration load, structure analysis (cache
    misses only) and modeled device compute.  For non-``COMPLETED``
    outcomes the solve fields are zeroed and ``detail`` carries the shed
    or failure reason.
    """

    request_id: int
    source: str
    outcome: Outcome
    priority: Priority
    arrival_s: float
    finish_s: float
    queue_s: float = 0.0
    service_s: float = 0.0
    cache_hit: bool = False
    batch_id: int = -1
    instance: int = -1
    converged: bool = False
    solver_sequence: tuple[str, ...] = ()
    iterations: int = 0
    detail: str = ""

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.arrival_s

    def as_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "source": self.source,
            "outcome": self.outcome.value,
            "priority": PRIORITY_NAMES[self.priority],
            "arrival_s": round(self.arrival_s, 9),
            "finish_s": round(self.finish_s, 9),
            "latency_s": round(self.latency_s, 9),
            "queue_s": round(self.queue_s, 9),
            "service_s": round(self.service_s, 9),
            "cache_hit": self.cache_hit,
            "batch_id": self.batch_id,
            "instance": self.instance,
            "converged": self.converged,
            "solver_sequence": list(self.solver_sequence),
            "iterations": self.iterations,
            "detail": self.detail,
        }
