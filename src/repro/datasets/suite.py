"""Synthetic stand-ins for the paper's Table II SuiteSparse datasets.

Each registry entry mirrors one row of Table II: the paper's dataset name,
dimension, sparsity, and — crucially — the per-solver convergence pattern
(JB / CG / BiCG-STAB ✓/✗).  The stand-in is generated at a reduced
dimension with a construction from :mod:`repro.datasets.generators` whose
structural class forces the same pattern; pattern-critical seeds were
selected empirically and are pinned (see ``tests/datasets/test_suite.py``,
which asserts every pattern).

The paper's sparsity column mixes units across rows, so stand-in NNZ/row
values are chosen to *span the same regimes* (≈3–24 average NNZ/row with
assorted skews) rather than computed from that column; what the results
depend on is the row-length distribution shape, which the generators vary
per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.datasets.generators import (
    balanced_indefinite_matrix,
    ill_conditioned_spd_matrix,
    sdd_indefinite_matrix,
    sdd_matrix,
    spd_clique_matrix,
    spd_clique_skew_matrix,
)
from repro.datasets.problem import Problem, manufacture_problem
from repro.errors import DatasetError
from repro.sparse.csr import CSRMatrix

Pattern = tuple[bool, bool, bool]
"""(jacobi, cg, bicgstab) convergence expectations."""


@dataclass(frozen=True)
class DatasetSpec:
    """One Table II row and its synthetic stand-in recipe."""

    key: str
    name: str
    paper_dim: str
    paper_sparsity: str
    pattern: Pattern
    n: int
    builder: Callable[[], CSRMatrix]
    structure: str

    @property
    def expected(self) -> dict[str, bool]:
        jacobi, cg, bicgstab = self.pattern
        return {"jacobi": jacobi, "cg": cg, "bicgstab": bicgstab}


def _spec(
    key: str,
    name: str,
    paper_dim: str,
    paper_sparsity: str,
    pattern: Pattern,
    n: int,
    structure: str,
    builder: Callable[[], CSRMatrix],
) -> DatasetSpec:
    return DatasetSpec(
        key=key,
        name=name,
        paper_dim=paper_dim,
        paper_sparsity=paper_sparsity,
        pattern=pattern,
        n=n,
        builder=builder,
        structure=structure,
    )


_ALL_YES: Pattern = (True, True, True)
_SPD_ONLY: Pattern = (False, True, True)  # SPD, not diagonally dominant
_SDD_NONSYM: Pattern = (True, False, True)
_BICG_ONLY: Pattern = (False, False, True)
_JACOBI_ONLY: Pattern = (True, False, False)
_CG_ONLY: Pattern = (False, True, False)


def _build_registry() -> dict[str, DatasetSpec]:
    """All 25 Table II rows, in the paper's order."""
    rows = [
        _spec("2C", "2cubes_sphere", "101K", "0.016", _SPD_ONLY, 2048,
              "SPD cliques (not diagonally dominant)",
              lambda: spd_clique_matrix(2048, 9.0, seed=101)),
        _spec("Of", "offshore", "259K", "0.0063", _SPD_ONLY, 3072,
              "SPD cliques (not diagonally dominant)",
              lambda: spd_clique_matrix(3072, 6.0, seed=102)),
        _spec("Wi", "windtunnel_evap3d", "40K", "0.1426", _SDD_NONSYM, 1024,
              "strictly diagonally dominant, non-symmetric",
              lambda: sdd_matrix(1024, 18.0, seed=103, symmetric=False,
                                 dominance=1.05)),
        _spec("If", "ifiss_mat", "96K", "0.0388", _BICG_ONLY, 2048,
              "PD symmetric part + skew coupling",
              lambda: spd_clique_skew_matrix(2048, 8.0, seed=104, gamma=0.5)),
        _spec("Wa", "wang3", "177K", "8.3e-05", _ALL_YES, 2048,
              "strictly diagonally dominant, symmetric (SPD)",
              lambda: sdd_matrix(2048, 5.0, seed=105, symmetric=True)),
        _spec("Fe", "fe_rotor", "99K", "5.6e-06", _JACOBI_ONLY, 2048,
              "SDD, mixed-sign diagonal, heterogeneous row scales",
              lambda: sdd_indefinite_matrix(2048, 8.0, seed=106)),
        _spec("Eb", "epb3", "84K", "0.0065", _SDD_NONSYM, 2048,
              "strictly diagonally dominant, non-symmetric",
              lambda: sdd_matrix(2048, 7.0, seed=107, symmetric=False)),
        _spec("Qa", "qa8fm", "66K", "0.038", _SPD_ONLY, 2048,
              "SPD cliques (not diagonally dominant)",
              lambda: spd_clique_matrix(2048, 14.0, seed=108)),
        _spec("Th", "thermomech_TC", "711K", "0.0068", _SPD_ONLY, 3072,
              "SPD cliques (not diagonally dominant)",
              lambda: spd_clique_matrix(3072, 10.0, seed=109)),
        _spec("Bc", "bcircuit", "375K", "4.8e-05", _CG_ONLY, 2048,
              "symmetric indefinite, origin-symmetric spectrum",
              lambda: balanced_indefinite_matrix(2048, seed=48)),
        _spec("Sd", "sd2010", "88K", "5.2e-05", _JACOBI_ONLY, 2048,
              "SDD, mixed-sign diagonal, heterogeneous row scales",
              lambda: sdd_indefinite_matrix(2048, 6.0, seed=110)),
        _spec("Li", "light_in_tissue", "29K", "0.0474", _ALL_YES, 1024,
              "strictly diagonally dominant, symmetric (SPD)",
              lambda: sdd_matrix(1024, 12.0, seed=111, symmetric=True)),
        _spec("Po", "poisson3Db", "85K", "0.032", _ALL_YES, 2048,
              "strictly diagonally dominant, symmetric (SPD)",
              lambda: sdd_matrix(2048, 14.0, seed=112, symmetric=True, spread=0.3)),
        _spec("Cr", "crystm03", "583K", "0.0957", _SPD_ONLY, 3072,
              "SPD cliques (not diagonally dominant)",
              lambda: spd_clique_matrix(3072, 18.0, seed=113, clique_max=40)),
        _spec("At", "atmosmodm", "1.4M", "0.0005", _ALL_YES, 4096,
              "strictly diagonally dominant, symmetric (SPD)",
              lambda: sdd_matrix(4096, 4.0, seed=114, symmetric=True, spread=0.2)),
        _spec("Mo", "mono_500Hz", "169K", "0.0175", _ALL_YES, 2048,
              "strictly diagonally dominant, symmetric (SPD)",
              lambda: sdd_matrix(2048, 10.0, seed=115, symmetric=True)),
        _spec("Ct", "cti", "16K", "1.8e-04", _JACOBI_ONLY, 1024,
              "SDD, mixed-sign diagonal, heterogeneous row scales",
              lambda: sdd_indefinite_matrix(1024, 10.0, seed=116)),
        _spec("Ns", "ns3Da", "1.67M", "7.2e-07", _BICG_ONLY, 4096,
              "PD symmetric part + skew coupling",
              lambda: spd_clique_skew_matrix(4096, 6.0, seed=117, gamma=0.5)),
        _spec("Fi", "finan512", "74K", "0.0107", _ALL_YES, 2048,
              "strictly diagonally dominant, symmetric (SPD)",
              lambda: sdd_matrix(2048, 8.0, seed=118, symmetric=True, spread=0.9)),
        _spec("G2", "G2_circuit", "150K", "2.8e-05", _ALL_YES, 2048,
              "strictly diagonally dominant, symmetric (SPD)",
              lambda: sdd_matrix(2048, 3.0, seed=119, symmetric=True)),
        _spec("Ga", "GaAsH6", "3.3M", "5.3e-08", _SPD_ONLY, 4096,
              "SPD cliques (not diagonally dominant)",
              lambda: spd_clique_matrix(4096, 22.0, seed=120, clique_max=48)),
        _spec("Si", "Si34H36", "5.1M", "0.016", _SPD_ONLY, 4096,
              "SPD cliques (not diagonally dominant)",
              lambda: spd_clique_matrix(4096, 16.0, seed=121)),
        _spec("To", "torso2", "1M", "1.1e-05", _ALL_YES, 3072,
              "strictly diagonally dominant, symmetric (SPD)",
              lambda: sdd_matrix(3072, 6.0, seed=122, symmetric=True, spread=1.1)),
        _spec("Ci", "cit-HepPh", "27K", "1.9e-05", _JACOBI_ONLY, 1024,
              "SDD, mixed-sign diagonal, heterogeneous row scales",
              lambda: sdd_indefinite_matrix(1024, 14.0, seed=123)),
        _spec("Tf", "Trefethen_20000", "20K", "0.0014", _SPD_ONLY, 1024,
              "SPD cliques (not diagonally dominant)",
              lambda: spd_clique_matrix(1024, 12.0, seed=124, clique_min=4)),
    ]
    return {spec.key: spec for spec in rows}


_REGISTRY = _build_registry()

ILL_CONDITIONED_EXTRA = "IC"
"""Key of an extra (non-Table II) ill-conditioned SPD stand-in used by
stress tests; see :func:`load_extra`."""


def dataset_keys() -> tuple[str, ...]:
    """All Table II dataset keys, in the paper's row order."""
    return tuple(_REGISTRY)


def dataset_spec(key: str) -> DatasetSpec:
    """Look up one Table II row by key (e.g. ``"2C"``)."""
    try:
        return _REGISTRY[key]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {key!r}; known keys: {', '.join(_REGISTRY)}"
        ) from None


@lru_cache(maxsize=None)
def load_matrix(key: str) -> CSRMatrix:
    """Build (and cache) the stand-in coefficient matrix for ``key``."""
    return dataset_spec(key).builder()


def load_problem(key: str, seed: int = 1) -> Problem:
    """Build the full ``Ax = b`` problem for one Table II stand-in."""
    spec = dataset_spec(key)
    matrix = load_matrix(key)
    return manufacture_problem(
        name=spec.name,
        matrix=matrix,
        seed=seed,
        metadata={
            "key": spec.key,
            "paper_dim": spec.paper_dim,
            "paper_sparsity": spec.paper_sparsity,
            "structure": spec.structure,
            "expected_pattern": spec.expected,
        },
    )


def load_extra(key: str = ILL_CONDITIONED_EXTRA) -> Problem:
    """Extra stand-ins outside Table II (currently the near-singular SPD)."""
    if key != ILL_CONDITIONED_EXTRA:
        raise DatasetError(f"unknown extra dataset {key!r}")
    matrix = ill_conditioned_spd_matrix(1024, 10.0, seed=200)
    return manufacture_problem(
        name="ill_conditioned_spd",
        matrix=matrix,
        metadata={"structure": "near-singular SPD cliques"},
    )
