"""Workload generation: Table II stand-ins and scientific-computing problems.

- :mod:`~repro.datasets.suite` — the 25 SuiteSparse stand-ins of Table II,
- :mod:`~repro.datasets.generators` — the structural-class matrix
  constructions behind them,
- :mod:`~repro.datasets.pde` / :mod:`~repro.datasets.graph` /
  :mod:`~repro.datasets.optimization` — the three ``Ax = b`` problem
  streams Section II-A motivates,
- :mod:`~repro.datasets.problem` — the shared :class:`Problem` container.
"""

from repro.datasets.generators import (
    balanced_indefinite_matrix,
    ill_conditioned_spd_matrix,
    sample_row_lengths,
    sdd_indefinite_matrix,
    sdd_matrix,
    spd_clique_matrix,
    spd_clique_skew_matrix,
)
from repro.datasets.graph import (
    grounded_laplacian_system,
    laplacian_matrix,
    random_graph_edges,
    regularized_laplacian_system,
)
from repro.datasets.optimization import (
    network_flow_system,
    normal_equations_system,
    sparse_design_matrix,
)
from repro.datasets.pde import (
    convection_diffusion_2d,
    convection_diffusion_2d_matrix,
    poisson_2d,
    poisson_2d_matrix,
    poisson_3d,
    poisson_3d_matrix,
)
from repro.datasets.problem import Problem, manufacture_problem
from repro.datasets.suite import (
    DatasetSpec,
    dataset_keys,
    dataset_spec,
    load_extra,
    load_matrix,
    load_problem,
)

__all__ = [
    "DatasetSpec",
    "Problem",
    "balanced_indefinite_matrix",
    "convection_diffusion_2d",
    "convection_diffusion_2d_matrix",
    "dataset_keys",
    "dataset_spec",
    "grounded_laplacian_system",
    "ill_conditioned_spd_matrix",
    "laplacian_matrix",
    "load_extra",
    "load_matrix",
    "load_problem",
    "manufacture_problem",
    "network_flow_system",
    "normal_equations_system",
    "poisson_2d",
    "poisson_2d_matrix",
    "poisson_3d",
    "poisson_3d_matrix",
    "random_graph_edges",
    "regularized_laplacian_system",
    "sample_row_lengths",
    "sdd_indefinite_matrix",
    "sdd_matrix",
    "sparse_design_matrix",
    "spd_clique_matrix",
    "spd_clique_skew_matrix",
]
