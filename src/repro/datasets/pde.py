"""PDE discretizations (Section II-A's motivating workload).

Finite-difference discretizations that reduce PDEs to ``Ax = b``, exactly
as the paper's introduction describes: the 2-D/3-D Poisson equation (heat
conduction, electrostatics) on a regular grid with Dirichlet boundaries,
and a convection–diffusion operator whose upwinded convection term makes
the matrix non-symmetric — the case where the Matrix Structure unit routes
to BiCG-STAB.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.problem import Problem, manufacture_problem
from repro.errors import ConfigurationError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def poisson_2d_matrix(nx: int, ny: int | None = None) -> CSRMatrix:
    """Five-point Laplacian on an ``nx × ny`` interior grid (Dirichlet).

    The classic SPD model problem: diagonal 4, neighbors -1.  It is
    weakly (not strictly) diagonally dominant and irreducible, so Jacobi
    still converges — slowly, which is what makes solver choice matter.
    """
    ny = ny if ny is not None else nx
    if nx < 1 or ny < 1:
        raise ConfigurationError(f"grid must be at least 1x1, got {nx}x{ny}")
    n = nx * ny
    index = np.arange(n).reshape(ny, nx)
    rows = [np.arange(n)]
    cols = [np.arange(n)]
    vals = [np.full(n, 4.0)]
    # Horizontal couplings.
    left, right = index[:, :-1].ravel(), index[:, 1:].ravel()
    rows += [left, right]
    cols += [right, left]
    vals += [np.full(len(left), -1.0)] * 2
    # Vertical couplings.
    up, down = index[:-1, :].ravel(), index[1:, :].ravel()
    rows += [up, down]
    cols += [down, up]
    vals += [np.full(len(up), -1.0)] * 2
    return COOMatrix(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    ).to_csr()


def poisson_3d_matrix(
    nx: int, ny: int | None = None, nz: int | None = None
) -> CSRMatrix:
    """Seven-point Laplacian on an ``nx × ny × nz`` interior grid."""
    ny = ny if ny is not None else nx
    nz = nz if nz is not None else nx
    if min(nx, ny, nz) < 1:
        raise ConfigurationError(f"grid must be at least 1x1x1, got {nx}x{ny}x{nz}")
    n = nx * ny * nz
    index = np.arange(n).reshape(nz, ny, nx)
    rows = [np.arange(n)]
    cols = [np.arange(n)]
    vals = [np.full(n, 6.0)]
    for axis in range(3):
        lo = np.moveaxis(index, axis, 0)[:-1].ravel()
        hi = np.moveaxis(index, axis, 0)[1:].ravel()
        rows += [lo, hi]
        cols += [hi, lo]
        vals += [np.full(len(lo), -1.0)] * 2
    return COOMatrix(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    ).to_csr()


def convection_diffusion_2d_matrix(
    nx: int, peclet: float = 10.0, ny: int | None = None
) -> CSRMatrix:
    """Upwinded convection–diffusion on a 2-D grid (non-symmetric).

    Discretizes ``-Δu + p ∂u/∂x`` with first-order upwinding of the
    convective term.  ``peclet`` is the cell Péclet number ``p·h``; larger
    values make the matrix more non-symmetric, steering the Matrix
    Structure unit away from CG.
    """
    ny = ny if ny is not None else nx
    if nx < 1 or ny < 1:
        raise ConfigurationError(f"grid must be at least 1x1, got {nx}x{ny}")
    if peclet < 0:
        raise ConfigurationError(f"peclet must be >= 0, got {peclet}")
    n = nx * ny
    index = np.arange(n).reshape(ny, nx)
    rows = [np.arange(n)]
    cols = [np.arange(n)]
    vals = [np.full(n, 4.0 + peclet)]
    left, right = index[:, :-1].ravel(), index[:, 1:].ravel()
    # Flow in +x: upwind difference takes (1 + peclet) from the left
    # neighbor, 1 from the right.
    rows += [right, left]
    cols += [left, right]
    vals += [np.full(len(left), -(1.0 + peclet)), np.full(len(left), -1.0)]
    up, down = index[:-1, :].ravel(), index[1:, :].ravel()
    rows += [up, down]
    cols += [down, up]
    vals += [np.full(len(up), -1.0)] * 2
    return COOMatrix(
        (n, n), np.concatenate(rows), np.concatenate(cols), np.concatenate(vals)
    ).to_csr()


def poisson_2d(nx: int, ny: int | None = None, seed: int = 1) -> Problem:
    """2-D Poisson problem with a manufactured solution."""
    matrix = poisson_2d_matrix(nx, ny)
    return manufacture_problem(
        f"poisson_2d_{nx}x{ny if ny else nx}",
        matrix,
        seed=seed,
        metadata={"kind": "pde", "grid": (nx, ny if ny else nx)},
    )


def poisson_3d(nx: int, ny: int | None = None, nz: int | None = None,
               seed: int = 1) -> Problem:
    """3-D Poisson problem with a manufactured solution."""
    matrix = poisson_3d_matrix(nx, ny, nz)
    return manufacture_problem(
        f"poisson_3d_{nx}", matrix, seed=seed,
        metadata={"kind": "pde", "grid": (nx, ny or nx, nz or nx)},
    )


def convection_diffusion_2d(
    nx: int, peclet: float = 10.0, seed: int = 1
) -> Problem:
    """Non-symmetric convection–diffusion problem."""
    matrix = convection_diffusion_2d_matrix(nx, peclet)
    return manufacture_problem(
        f"convection_diffusion_{nx}_pe{peclet:g}", matrix, seed=seed,
        metadata={"kind": "pde", "peclet": peclet},
    )
