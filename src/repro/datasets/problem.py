"""The ``Ax = b`` problem container shared by datasets and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ValidationError
from repro.sparse.csr import CSRMatrix


@dataclass
class Problem:
    """One linear system instance.

    Attributes
    ----------
    name:
        Dataset or generator identifier.
    matrix:
        The sparse coefficient matrix ``A`` (CSR).
    b:
        Right-hand side.
    x_true:
        The vector used to manufacture ``b`` (``b = A x_true``) when known;
        lets examples and tests report forward error, not just residual.
    metadata:
        Free-form provenance (generator parameters, paper row, grid size).
    """

    name: str
    matrix: CSRMatrix
    b: np.ndarray
    x_true: np.ndarray | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.matrix.shape[0]

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    def relative_error(self, x: np.ndarray) -> float:
        """Forward error ``‖x - x_true‖ / ‖x_true‖`` (requires x_true)."""
        if self.x_true is None:
            raise ValidationError(f"problem {self.name!r} has no known x_true")
        denominator = float(np.linalg.norm(self.x_true))
        if denominator == 0.0:
            return float(np.linalg.norm(x))
        return float(np.linalg.norm(np.asarray(x, dtype=np.float64) - self.x_true))\
            / denominator

    def residual_norm(self, x: np.ndarray) -> float:
        """True relative residual ``‖b - Ax‖ / ‖b‖`` recomputed exactly."""
        r = self.b.astype(np.float64) - self.matrix.matvec(
            np.asarray(x, dtype=np.float64)
        )
        b_norm = float(np.linalg.norm(self.b.astype(np.float64)))
        return float(np.linalg.norm(r)) / (b_norm if b_norm else 1.0)


def manufacture_problem(
    name: str,
    matrix: CSRMatrix,
    seed: int = 1,
    dtype: np.dtype | type = np.float32,
    metadata: dict[str, Any] | None = None,
) -> Problem:
    """Build a problem with a manufactured solution ``b = A x_true``."""
    rng = np.random.default_rng(seed)
    x_true = rng.standard_normal(matrix.shape[0])
    b = matrix.matvec(x_true).astype(dtype)
    return Problem(
        name=name,
        matrix=matrix,
        b=b,
        x_true=x_true,
        metadata=dict(metadata or {}),
    )
