"""Graph-theory workloads (Section II-A's third problem stream).

The paper motivates ``Ax = b`` with spectral graph theory: Laplacian
systems encode circuit place-and-route, spanning-tree constraints, and
diffusion on networks.  A graph Laplacian is singular (the all-ones
vector), so the standard solvable forms are provided:

- the **grounded Laplacian** (delete one vertex's row/column), SPD, and
- the **regularized Laplacian** ``L + εI``, SPD with a tunable margin.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.problem import Problem, manufacture_problem
from repro.errors import ConfigurationError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def random_graph_edges(
    n: int, avg_degree: float, seed: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random weighted undirected graph (Erdős–Rényi-style edge sample).

    Returns ``(u, v, w)`` arrays with ``u < v`` and positive weights.
    """
    if n < 2:
        raise ConfigurationError(f"need at least two vertices, got {n}")
    if avg_degree <= 0:
        raise ConfigurationError(f"avg_degree must be > 0, got {avg_degree}")
    rng = np.random.default_rng(seed)
    n_edges = int(n * avg_degree / 2)
    u = rng.integers(0, n, size=2 * n_edges)
    v = rng.integers(0, n, size=2 * n_edges)
    keep = u < v
    u, v = u[keep][:n_edges], v[keep][:n_edges]
    # Guarantee connectivity with a random spanning path.
    perm = rng.permutation(n)
    u = np.concatenate([u, np.minimum(perm[:-1], perm[1:])])
    v = np.concatenate([v, np.maximum(perm[:-1], perm[1:])])
    w = rng.uniform(0.5, 1.5, size=len(u))
    return u, v, w


def laplacian_matrix(
    u: np.ndarray, v: np.ndarray, w: np.ndarray, n: int
) -> CSRMatrix:
    """Weighted graph Laplacian ``L = D - W`` from an edge list."""
    rows = np.concatenate([u, v, u, v])
    cols = np.concatenate([v, u, u, v])
    degree_w = np.concatenate([-w, -w, w, w])
    return COOMatrix((n, n), rows, cols, degree_w).canonical().to_csr()


def grounded_laplacian_system(
    n: int, avg_degree: float = 6.0, seed: int = 7
) -> Problem:
    """SPD Laplacian system with vertex 0 grounded (row/column removed).

    Models a resistive circuit with node 0 tied to ground; the solution is
    the node-voltage vector for a random current injection.
    """
    u, v, w = random_graph_edges(n, avg_degree, seed)
    full = laplacian_matrix(u, v, w, n)
    dense = full.to_dense()[1:, 1:]
    matrix = CSRMatrix.from_dense(dense)
    return manufacture_problem(
        f"grounded_laplacian_{n}",
        matrix,
        seed=seed,
        metadata={"kind": "graph", "n_vertices": n, "grounded": 0},
    )


def regularized_laplacian_system(
    n: int, avg_degree: float = 6.0, epsilon: float = 1e-2, seed: int = 7
) -> Problem:
    """SPD system ``(L + εI) x = b`` (graph diffusion / spectral methods)."""
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be > 0, got {epsilon}")
    u, v, w = random_graph_edges(n, avg_degree, seed)
    lap = laplacian_matrix(u, v, w, n)
    coo = lap.to_coo()
    rows = np.concatenate([coo.rows, np.arange(n)])
    cols = np.concatenate([coo.cols, np.arange(n)])
    vals = np.concatenate([coo.data, np.full(n, epsilon)])
    matrix = COOMatrix((n, n), rows, cols, vals).canonical().to_csr()
    return manufacture_problem(
        f"regularized_laplacian_{n}",
        matrix,
        seed=seed,
        metadata={"kind": "graph", "n_vertices": n, "epsilon": epsilon},
    )
