"""Random sparse-matrix generators for the Table II stand-ins.

SuiteSparse matrices cannot be downloaded in this environment, so each
Table II dataset is replaced by a synthetic matrix engineered to land in
the same *structural class* — the only thing the paper's results depend on
(Section 2 of DESIGN.md).  The constructions and the solver behaviour they
force:

``sdd_matrix``
    Strictly diagonally dominant (Eq. 1), optionally symmetric.  Jacobi
    and Gauss-Seidel converge; with a positive diagonal and symmetry the
    matrix is SPD so CG converges too.
``spd_clique_matrix``
    Symmetric positive definite but *not* diagonally dominant: a union of
    positive-coupling cliques with diagonal ``1 + margin``.  Each size-m
    clique contributes an eigenvalue ``m + margin`` while the diagonal
    stays at ``1 + margin``, so the Jacobi iteration matrix has spectral
    radius ``(m - 1)/(1 + margin) > 1`` — Jacobi diverges, CG converges.
``spd_clique_skew_matrix``
    The previous construction plus a skew-symmetric coupling: no longer
    symmetric (CG fails), Jacobi still divergent, but the symmetric part
    remains positive definite so BiCG-STAB converges.
``sdd_indefinite_matrix``
    Strictly diagonally dominant with *mixed-sign* diagonal entries and a
    non-symmetric pattern: Jacobi converges (dominance bounds the
    iteration matrix), CG fails (non-symmetric/indefinite), and the
    symmetric part is indefinite, which stalls BiCG-STAB's GMRES(1)
    smoothing step (``omega = (As, s)/(As, As)`` crosses zero).
``ill_conditioned_spd_matrix``
    SPD with a tiny definiteness margin: CG's optimal short recurrence
    still reaches 1e-5 in fp32, while BiCG-STAB's irregular residual
    peaks amplify rounding and stagnate or trip the divergence monitor.

All generators take an integer seed and are fully deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def sample_row_lengths(
    n: int,
    mean_nnz: float,
    rng: np.random.Generator,
    spread: float = 0.6,
    min_nnz: int = 1,
    max_nnz: int | None = None,
    correlation: float = 0.95,
) -> np.ndarray:
    """Skewed (lognormal), spatially-correlated NNZ/row sample.

    Real scientific matrices have uneven NNZ/row — the very irregularity
    that causes resource underutilization (Section III-B) — *and* the
    unevenness is spatially correlated along the row index (mesh regions,
    variable bands), which is what makes the Row Length Trace's per-set
    averages informative.  The log-lengths follow an AR(1) process with
    the given ``correlation``; ``correlation=0`` recovers an i.i.d.
    lognormal profile.
    """
    if mean_nnz < min_nnz:
        raise ConfigurationError(
            f"mean_nnz ({mean_nnz}) must be >= min_nnz ({min_nnz})"
        )
    if not 0.0 <= correlation < 1.0:
        raise ConfigurationError(
            f"correlation must be in [0, 1), got {correlation}"
        )
    noise = rng.standard_normal(n)
    z = np.empty(n)
    z[0] = noise[0]
    scale = np.sqrt(1.0 - correlation**2)
    for i in range(1, n):
        z[i] = correlation * z[i - 1] + scale * noise[i]
    mu = np.log(mean_nnz) - 0.5 * spread**2
    lengths = np.round(np.exp(mu + spread * z)).astype(np.int64)
    cap = max_nnz if max_nnz is not None else max(min_nnz, n - 1)
    return np.clip(lengths, min_nnz, cap)


def _random_offdiag_pattern(
    n: int, row_lengths: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Random off-diagonal coordinates with the requested row lengths."""
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    for i, k in enumerate(row_lengths):
        k = int(min(k, n - 1))
        if k <= 0:
            continue
        choices = rng.choice(n - 1, size=k, replace=False)
        choices = np.where(choices >= i, choices + 1, choices)  # skip diagonal
        rows.append(np.full(k, i, dtype=np.int64))
        cols.append(choices.astype(np.int64))
    if not rows:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    return np.concatenate(rows), np.concatenate(cols)


def _assemble(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    diag: np.ndarray,
    permute: bool,
    rng: np.random.Generator,
) -> CSRMatrix:
    """Add a diagonal, optionally relabel rows/columns, and build CSR."""
    all_rows = np.concatenate([rows, np.arange(n)])
    all_cols = np.concatenate([cols, np.arange(n)])
    all_vals = np.concatenate([vals, diag])
    if permute:
        perm = rng.permutation(n)
        all_rows = perm[all_rows]
        all_cols = perm[all_cols]
    return COOMatrix((n, n), all_rows, all_cols, all_vals).canonical().to_csr()


def sdd_matrix(
    n: int,
    mean_nnz: float,
    seed: int,
    symmetric: bool = False,
    dominance: float = 1.3,
    spread: float = 0.6,
) -> CSRMatrix:
    """Strictly diagonally dominant matrix (positive diagonal).

    With ``symmetric=True`` the result is SPD (all three solvers
    converge); otherwise it is doubly dominant but non-symmetric (Jacobi
    and BiCG-STAB converge, CG fails).
    """
    if dominance <= 1.0:
        raise ConfigurationError(f"dominance must be > 1, got {dominance}")
    rng = np.random.default_rng(seed)
    lengths = sample_row_lengths(n, mean_nnz, rng, spread)
    rows, cols = _random_offdiag_pattern(n, lengths, rng)
    vals = rng.uniform(0.5, 1.5, size=len(rows)) * rng.choice([-1.0, 1.0], len(rows))
    if symmetric:
        keep = rows < cols
        rows, cols, vals = rows[keep], cols[keep], vals[keep]
        rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        vals = np.concatenate([vals, vals])
    # Deduplicate before computing row sums so dominance holds exactly.
    coo = COOMatrix((n, n), rows, cols, vals).canonical()
    row_abs = np.zeros(n)
    np.add.at(row_abs, coo.rows, np.abs(coo.data))
    col_abs = np.zeros(n)
    np.add.at(col_abs, coo.cols, np.abs(coo.data))
    # Dominance in rows guarantees Jacobi; dominance in columns as well
    # keeps the symmetric part positive definite for BiCG-STAB.
    diag = dominance * np.maximum(np.maximum(row_abs, col_abs), 1.0)
    return _assemble(n, coo.rows, coo.cols, coo.data, diag, False, rng)


def _clique_pattern(
    n: int,
    clique_mean: float,
    rng: np.random.Generator,
    clique_min: int = 3,
    clique_max: int = 24,
) -> tuple[np.ndarray, np.ndarray]:
    """Partition rows into cliques; return the off-diagonal clique pairs."""
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    start = 0
    while start < n:
        size = int(
            np.clip(
                round(rng.lognormal(np.log(clique_mean), 0.4)),
                clique_min,
                clique_max,
            )
        )
        size = min(size, n - start)
        if size >= 2:
            members = np.arange(start, start + size)
            grid_r, grid_c = np.meshgrid(members, members, indexing="ij")
            off = grid_r != grid_c
            rows.append(grid_r[off].ravel())
            cols.append(grid_c[off].ravel())
        start += max(size, 1)
    if not rows:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    return np.concatenate(rows), np.concatenate(cols)


def spd_clique_matrix(
    n: int,
    clique_mean: float,
    seed: int,
    margin: float = 0.5,
    coupling: float = 1.0,
    clique_min: int = 3,
    clique_max: int = 24,
) -> CSRMatrix:
    """SPD but not diagonally dominant: Jacobi diverges, CG converges.

    Each clique block is ``coupling * (J - I) + (1 + margin) I`` (``J`` the
    all-ones matrix): eigenvalues ``coupling*(m-1) + 1 + margin`` (once)
    and ``1 + margin - coupling`` (m-1 times), so the matrix is PD for
    ``margin > coupling - 1`` while the Jacobi iteration matrix has
    spectral radius ``coupling*(m-1)/(1+margin) > 1`` for cliques of three
    or more rows.
    """
    if margin <= coupling - 1.0:
        raise ConfigurationError(
            f"need margin > coupling - 1 for positive definiteness, got "
            f"margin={margin}, coupling={coupling}"
        )
    rng = np.random.default_rng(seed)
    rows, cols = _clique_pattern(n, clique_mean, rng, clique_min, clique_max)
    vals = np.full(len(rows), coupling)
    diag = np.full(n, 1.0 + margin)
    # Block ordering is kept (no relabeling): FEM-style matrices exhibit
    # exactly this row-length locality, which the Row Length Trace exploits.
    return _assemble(n, rows, cols, vals, diag, False, rng)


def spd_clique_skew_matrix(
    n: int,
    clique_mean: float,
    seed: int,
    gamma: float = 0.5,
    margin: float = 0.5,
    pairs_per_row: float = 2.0,
) -> CSRMatrix:
    """Non-symmetric with PD symmetric part: only BiCG-STAB converges.

    Adds ``gamma``-scaled skew-symmetric couplings to the SPD clique base;
    the symmetric part is untouched (still PD, so BiCG-STAB's smoothing
    steps make progress) but symmetry is broken (CG fails) and the Jacobi
    spectral radius stays above one.
    """
    rng = np.random.default_rng(seed)
    base_rows, base_cols = _clique_pattern(n, clique_mean, rng)
    base_vals = np.full(len(base_rows), 1.0)
    n_pairs = int(n * pairs_per_row)
    i = rng.integers(0, n, size=n_pairs)
    j = rng.integers(0, n, size=n_pairs)
    keep = i != j
    i, j = i[keep], j[keep]
    w = gamma * rng.uniform(0.5, 1.5, size=len(i))
    rows = np.concatenate([base_rows, i, j])
    cols = np.concatenate([base_cols, j, i])
    vals = np.concatenate([base_vals, w, -w])
    diag = np.full(n, 1.0 + margin)
    return _assemble(n, rows, cols, vals, diag, False, rng)


def sdd_indefinite_matrix(
    n: int,
    mean_nnz: float,
    seed: int,
    neg_fraction: float = 0.5,
    dominance: float = 1.05,
    spread: float = 0.6,
    magnitude_spread: float = 1.5,
) -> CSRMatrix:
    """SDD with mixed-sign diagonal and heterogeneous row scales:
    Jacobi converges, CG and BiCG-STAB fail.

    ``neg_fraction`` of the rows get a negative dominant diagonal, making
    the spectrum straddle the origin; ``magnitude_spread`` rescales whole
    rows by lognormal factors.  Jacobi is per-row scale-invariant and its
    iteration matrix stays below one by strict dominance, so it converges
    regardless.  CG fails on the non-symmetric indefinite operator.
    BiCG-STAB's stabilization factors ``(1 - omega z)`` can damp only one
    side of the origin at a time — with a wide, badly-scaled two-sided
    spectrum the method stagnates or trips the divergence monitor
    (verified empirically per fixed seed in the dataset tests).
    """
    rng = np.random.default_rng(seed)
    lengths = sample_row_lengths(n, mean_nnz, rng, spread)
    rows, cols = _random_offdiag_pattern(n, lengths, rng)
    vals = rng.uniform(0.5, 1.5, size=len(rows)) * rng.choice([-1.0, 1.0], len(rows))
    coo = COOMatrix((n, n), rows, cols, vals).canonical()
    row_abs = np.zeros(n)
    np.add.at(row_abs, coo.rows, np.abs(coo.data))
    signs = np.where(rng.random(n) < neg_fraction, -1.0, 1.0)
    magnitudes = np.exp(rng.normal(0.0, magnitude_spread, n))
    diag = signs * dominance * np.maximum(row_abs, 1.0) * magnitudes
    data = coo.data * magnitudes[coo.rows]
    return _assemble(n, coo.rows, coo.cols, data, diag, False, rng)


def balanced_indefinite_matrix(
    n: int,
    seed: int,
    mean_nnz: float = 6.0,
    coupling: float = 2.0,
    magnitude_spread: float = 0.5,
) -> CSRMatrix:
    """Symmetric indefinite with origin-symmetric spectrum:
    CG converges, Jacobi and BiCG-STAB fail.

    The matrix is ``[[D, C], [C, -D]]`` with ``C`` symmetric and ``D``
    positive diagonal.  Conjugating by ``swap ∘ diag(I, -I)`` maps it to
    its negation, so the spectrum is exactly symmetric about the origin:
    CG's optimal residual polynomial can exploit the symmetry (an even
    polynomial in the operator), while BiCG-STAB's degree-one smoothing
    factors amplify whichever half of the spectrum ``omega`` is not
    targeting, and the heterogeneous row scales (``magnitude_spread``)
    push it past the divergence monitor.  The ``coupling`` strength breaks
    diagonal dominance, so Jacobi diverges.  The regime is narrow — the
    suite pins a verified seed per dataset.
    """
    rng = np.random.default_rng(seed)
    half = n // 2
    rows_list: list[np.ndarray] = []
    cols_list: list[np.ndarray] = []
    for i in range(half):
        k = max(1, int(rng.lognormal(np.log(mean_nnz), 0.5)))
        chosen = rng.choice(half, size=min(k, half), replace=False)
        rows_list.append(np.full(len(chosen), i, dtype=np.int64))
        cols_list.append(chosen.astype(np.int64))
    r = np.concatenate(rows_list)
    c = np.concatenate(cols_list)
    v = rng.uniform(0.5, 1.5, len(r)) * coupling
    # Symmetrize C and scale rows/columns by matched magnitudes so the
    # +/- pairing (and hence the spectral symmetry) is preserved.
    r_sym = np.concatenate([r, c])
    c_sym = np.concatenate([c, r])
    v_sym = np.concatenate([v, v]) * 0.5
    scale = np.exp(rng.normal(0.0, magnitude_spread, half))
    v_sym = v_sym * scale[r_sym] * scale[c_sym]
    diag_mag = scale * scale
    diag_idx = np.arange(half)
    rows = np.concatenate([r_sym, half + r_sym, diag_idx, half + diag_idx])
    cols = np.concatenate([half + c_sym, c_sym, diag_idx, half + diag_idx])
    vals = np.concatenate([v_sym, v_sym, diag_mag, -diag_mag])
    return COOMatrix((n, n), rows, cols, vals).canonical().to_csr()


def ill_conditioned_spd_matrix(
    n: int,
    clique_mean: float,
    seed: int,
    margin: float = 2e-3,
    coupling: float = 1.0,
) -> CSRMatrix:
    """Nearly-singular SPD: CG converges in fp32, BiCG-STAB does not.

    Same clique construction as :func:`spd_clique_matrix` but with the
    clique coupling shaped so the smallest eigenvalue is ``margin``:
    block ``coupling*(J - I) + (coupling - 1 + 1 + margin) I``.  The huge
    condition number makes BiCG-STAB's residual polynomial (a product of
    locally-minimizing GMRES(1) factors) oscillate with large peaks that,
    in 32-bit arithmetic, either stagnate above the 1e-5 threshold or trip
    the divergence monitor; CG's globally optimal polynomial still grinds
    through.
    """
    rng = np.random.default_rng(seed)
    rows, cols = _clique_pattern(n, clique_mean, rng, clique_min=3, clique_max=40)
    vals = np.full(len(rows), coupling)
    diag = np.full(n, coupling + margin)
    return _assemble(n, rows, cols, vals, diag, True, rng)
