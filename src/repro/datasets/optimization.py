"""Optimization-problem workloads (Section II-A's second problem stream).

Linear-algebraic cores of optimization problems that reduce to ``Ax = b``:

- **regularized least squares** — the normal equations
  ``(GᵀG + λI) x = Gᵀ y`` of a sparse regression / linear-programming
  subproblem (SPD by construction),
- **network-flow potentials** — the KKT-reduced system of a min-cost-flow
  step, which is a weighted grounded graph Laplacian.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.graph import grounded_laplacian_system
from repro.datasets.problem import Problem
from repro.errors import ConfigurationError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def sparse_design_matrix(
    n_samples: int, n_features: int, nnz_per_row: int, seed: int
) -> CSRMatrix:
    """Random sparse design matrix ``G`` for a regression problem."""
    if nnz_per_row < 1 or nnz_per_row > n_features:
        raise ConfigurationError(
            f"nnz_per_row must be in [1, {n_features}], got {nnz_per_row}"
        )
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n_samples), nnz_per_row)
    cols = np.concatenate(
        [rng.choice(n_features, size=nnz_per_row, replace=False)
         for _ in range(n_samples)]
    )
    vals = rng.standard_normal(len(rows))
    return COOMatrix((n_samples, n_features), rows, cols, vals).to_csr()


def normal_equations_system(
    n_samples: int = 4096,
    n_features: int = 1024,
    nnz_per_row: int = 8,
    ridge: float = 1e-2,
    seed: int = 11,
) -> Problem:
    """Ridge-regression normal equations ``(GᵀG + λI) x = Gᵀ y``.

    ``GᵀG`` is assembled explicitly (it is sparse for a sparse ``G``), and
    the true coefficient vector is recovered through the SPD system —
    a realistic CG workload whose row lengths are irregular.
    """
    if ridge <= 0:
        raise ConfigurationError(f"ridge must be > 0, got {ridge}")
    rng = np.random.default_rng(seed)
    design = sparse_design_matrix(n_samples, n_features, nnz_per_row, seed)
    x_true = rng.standard_normal(n_features)
    y = design.matvec(x_true)

    # Assemble G^T G + ridge*I in COO by expanding each sample's outer
    # product over its (few) active features.
    lengths = design.row_lengths()
    rows_acc: list[np.ndarray] = []
    cols_acc: list[np.ndarray] = []
    vals_acc: list[np.ndarray] = []
    for i in range(n_samples):
        lo, hi = design.indptr[i], design.indptr[i + 1]
        feats = design.indices[lo:hi]
        coeffs = design.data[lo:hi]
        grid_r, grid_c = np.meshgrid(feats, feats, indexing="ij")
        outer = np.outer(coeffs, coeffs)
        rows_acc.append(grid_r.ravel())
        cols_acc.append(grid_c.ravel())
        vals_acc.append(outer.ravel())
    rows_acc.append(np.arange(n_features))
    cols_acc.append(np.arange(n_features))
    vals_acc.append(np.full(n_features, ridge))
    gram = COOMatrix(
        (n_features, n_features),
        np.concatenate(rows_acc),
        np.concatenate(cols_acc),
        np.concatenate(vals_acc),
    ).canonical().to_csr()

    b = design.rmatvec(y) + ridge * x_true  # so x_true solves exactly
    problem = Problem(
        name=f"normal_equations_{n_samples}x{n_features}",
        matrix=gram,
        b=b.astype(np.float32),
        x_true=x_true,
        metadata={
            "kind": "optimization",
            "n_samples": n_samples,
            "ridge": ridge,
            "avg_row_nnz": float(lengths.mean()),
        },
    )
    return problem


def network_flow_system(
    n_nodes: int = 1024, avg_degree: float = 6.0, seed: int = 13
) -> Problem:
    """Node-potential system of a network-flow optimization step.

    The reduced KKT system of a min-cost-flow Newton step is a weighted
    grounded Laplacian; this wraps the graph module's construction under
    the optimization framing the paper uses.
    """
    problem = grounded_laplacian_system(n_nodes, avg_degree, seed)
    problem.name = f"network_flow_{n_nodes}"
    problem.metadata["kind"] = "optimization"
    return problem
