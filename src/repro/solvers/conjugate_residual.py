"""Conjugate Residual method (Table I extension).

CR is CG's sibling for Hermitian (here: real symmetric) matrices that are
*not necessarily definite*: it minimizes the residual 2-norm instead of
the A-norm of the error, which only requires symmetry (Table I's
"Hermitian" row).  One SpMV per iteration — ``A r`` is carried through a
recurrence alongside ``A p``.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.base import (
    IterativeSolver,
    OpCounter,
    SolveResult,
    SolveStatus,
    tolerate_float_excursions,
)
from repro.solvers.monitor import ConvergenceMonitor
from repro.sparse.csr import CSRMatrix

_BREAKDOWN_EPS = 1e-30


class ConjugateResidualSolver(IterativeSolver):
    """Conjugate Residual with recurrence-carried ``A r`` and ``A p``."""

    name = "conjugate_residual"

    @tolerate_float_excursions
    def solve(
        self,
        matrix: CSRMatrix,
        b: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        matrix, b, x = self._prepare(matrix, b, x0)
        ops = OpCounter()
        n = matrix.shape[0]

        r = (b - matrix.matvec(x)).astype(np.float64)
        ops.record("spmv", matrix.nnz)
        ops.record("vadd", n)
        p = r.copy()
        ar = matrix.matvec(r.astype(self.dtype)).astype(np.float64)
        ops.record("spmv", matrix.nnz)
        ap = ar.copy()
        r_ar = float(r @ ar)
        ops.record("dot", n)

        monitor = ConvergenceMonitor(
            b_norm=float(np.linalg.norm(b.astype(np.float64))),
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            setup_iterations=self.setup_iterations,
        )
        status = monitor.update(float(np.linalg.norm(r)))
        while status is None:
            ap_ap = float(ap @ ap)
            ops.record("dot", n)
            if ap_ap < _BREAKDOWN_EPS or abs(r_ar) < _BREAKDOWN_EPS:
                status = SolveStatus.BREAKDOWN
                break
            alpha = r_ar / ap_ap
            x = x + self.dtype.type(alpha) * p.astype(self.dtype)
            ops.record("axpy", n)
            r = r - alpha * ap
            ops.record("axpy", n)
            residual = float(np.linalg.norm(r))
            ops.record("norm", n)
            status = monitor.update(residual)
            if status is not None:
                break
            ar = matrix.matvec(r.astype(self.dtype)).astype(np.float64)
            ops.record("spmv", matrix.nnz)
            r_ar_next = float(r @ ar)
            ops.record("dot", n)
            beta = r_ar_next / r_ar
            p = r + beta * p
            ops.record("axpy", n)
            ap = ar + beta * ap
            ops.record("axpy", n)
            r_ar = r_ar_next
        return SolveResult(
            solver=self.name,
            status=status,
            x=x,
            iterations=monitor.iterations,
            residual_history=monitor.history_array(),
            ops=ops,
        )

    @classmethod
    def kernel_schedule(cls) -> dict[str, int]:
        return {"spmv": 1, "dot": 2, "axpy": 4, "norm": 1}
