"""Convergence-theory predictors.

Closed-form iteration-count estimates for the implemented solvers, used
to sanity-check measured behaviour (tests hold measurements to the
theory within modest factors) and to let users budget solves before
running them:

- stationary methods (Jacobi, SRJ-as-Richardson): error contracts by the
  iteration matrix's spectral radius per sweep,
- CG / Chebyshev on SPD systems: error contracts by
  ``(sqrt(kappa) - 1) / (sqrt(kappa) + 1)`` per step,
- steepest-descent-class bounds for comparison.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def stationary_iterations(
    spectral_radius: float, tolerance: float = 1e-5
) -> float:
    """Sweeps a stationary iteration needs to contract the error by ``tol``.

    ``inf`` when the method does not converge (radius >= 1).
    """
    if not 0.0 < tolerance < 1.0:
        raise ConfigurationError(f"tolerance must be in (0,1), got {tolerance}")
    if spectral_radius <= 0.0:
        return 1.0
    if spectral_radius >= 1.0:
        return math.inf
    return math.log(tolerance) / math.log(spectral_radius)


def cg_iterations(kappa: float, tolerance: float = 1e-5) -> float:
    """Classic CG bound: ``ceil(sqrt(kappa)/2 * ln(2/tol))`` steps.

    An upper bound — clustered spectra converge much faster — so tests
    treat it as a ceiling, not an estimate.
    """
    if kappa < 1.0:
        raise ConfigurationError(f"condition number must be >= 1, got {kappa}")
    if not 0.0 < tolerance < 1.0:
        raise ConfigurationError(f"tolerance must be in (0,1), got {tolerance}")
    if kappa <= 1.0:  # the guard above leaves exactly kappa == 1.0 here
        return 1.0
    rate = (math.sqrt(kappa) - 1.0) / (math.sqrt(kappa) + 1.0)
    return math.log(tolerance / 2.0) / math.log(rate)


def chebyshev_iterations(kappa: float, tolerance: float = 1e-5) -> float:
    """Chebyshev semi-iteration shares CG's asymptotic bound (it *is*
    the bound CG's analysis borrows), given exact interval bounds."""
    return cg_iterations(kappa, tolerance)


def steepest_descent_iterations(kappa: float, tolerance: float = 1e-5) -> float:
    """Richardson/steepest-descent: contraction ``(kappa-1)/(kappa+1)``
    per step — linear in ``kappa``, the gap CG's sqrt closes."""
    if kappa < 1.0:
        raise ConfigurationError(f"condition number must be >= 1, got {kappa}")
    if kappa <= 1.0:  # the guard above leaves exactly kappa == 1.0 here
        return 1.0
    rate = (kappa - 1.0) / (kappa + 1.0)
    return math.log(tolerance) / math.log(rate)


def poisson_2d_condition_number(nx: int, ny: int | None = None) -> float:
    """Exact condition number of the 5-point Laplacian on an interior grid.

    Eigenvalues are ``4 - 2cos(i pi h_x) - 2cos(j pi h_y)`` with
    ``h = 1/(n+1)``; the extremes give a closed-form kappa that the
    theory tests use as ground truth.
    """
    ny = ny if ny is not None else nx
    if nx < 1 or ny < 1:
        raise ConfigurationError("grid must be at least 1x1")
    hx = math.pi / (nx + 1)
    hy = math.pi / (ny + 1)
    lam_min = 4.0 - 2.0 * math.cos(hx) - 2.0 * math.cos(hy)
    lam_max = 4.0 - 2.0 * math.cos(nx * hx) - 2.0 * math.cos(ny * hy)
    return lam_max / lam_min


def poisson_2d_jacobi_radius(nx: int, ny: int | None = None) -> float:
    """Exact Jacobi spectral radius for the 5-point Laplacian:
    ``(cos(pi/(nx+1)) + cos(pi/(ny+1))) / 2``."""
    ny = ny if ny is not None else nx
    if nx < 1 or ny < 1:
        raise ConfigurationError("grid must be at least 1x1")
    return 0.5 * (
        math.cos(math.pi / (nx + 1)) + math.cos(math.pi / (ny + 1))
    )
