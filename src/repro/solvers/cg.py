"""Conjugate Gradient (paper Algorithm 2).

CG is the workhorse for symmetric positive-definite systems: it minimizes
the ``A``-norm of the error over the growing Krylov subspace, which gives
monotone convergence when the matrix really is SPD.  On non-symmetric or
indefinite matrices the short recurrence loses its optimality and the
residual typically grows — the divergence path that triggers the Solver
Modifier unit in Table II's CG ✗ rows.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.base import (
    IterativeSolver,
    OpCounter,
    SolveResult,
    SolveStatus,
    tolerate_float_excursions,
)
from repro.solvers.monitor import ConvergenceMonitor
from repro.sparse.csr import CSRMatrix

_BREAKDOWN_EPS = 1e-30
"""Denominator magnitude below which the recurrence is declared broken."""


class ConjugateGradientSolver(IterativeSolver):
    """Conjugate Gradient per Algorithm 2 of the paper.

    One SpMV (``A p_j``) per iteration, two inner products and three AXPYs,
    tracked through the recursive residual ``r_{j+1} = r_j - alpha A p_j``
    exactly as the hardware pipeline computes it.
    """

    name = "cg"

    @tolerate_float_excursions
    def solve(
        self,
        matrix: CSRMatrix,
        b: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        matrix, b, x = self._prepare(matrix, b, x0)
        ops = OpCounter()
        n = matrix.shape[0]

        # Initialize unit: r_0 = b - A x_0, p_0 = r_0 (one static SpMV).
        r = b - matrix.matvec(x)
        ops.record("spmv", matrix.nnz)
        ops.record("vadd", n)
        p = r.copy()
        rs = float(r.astype(np.float64) @ r.astype(np.float64))
        ops.record("dot", n)

        monitor = ConvergenceMonitor(
            b_norm=float(np.linalg.norm(b.astype(np.float64))),
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            setup_iterations=self.setup_iterations,
        )
        status = monitor.update(np.sqrt(rs))
        while status is None:
            ap = matrix.matvec(p)
            ops.record("spmv", matrix.nnz)
            p_ap = float(p.astype(np.float64) @ ap.astype(np.float64))
            ops.record("dot", n)
            if abs(p_ap) < _BREAKDOWN_EPS:
                status = SolveStatus.BREAKDOWN
                break
            alpha = self.dtype.type(rs / p_ap)
            x = x + alpha * p
            ops.record("axpy", n)
            r = r - alpha * ap
            ops.record("axpy", n)
            rs_next = float(r.astype(np.float64) @ r.astype(np.float64))
            ops.record("dot", n)
            if rs < _BREAKDOWN_EPS:
                status = SolveStatus.BREAKDOWN
                break
            beta = self.dtype.type(rs_next / rs)
            p = r + beta * p
            ops.record("axpy", n)
            rs = rs_next
            status = monitor.update(np.sqrt(max(rs, 0.0)))
        return SolveResult(
            solver=self.name,
            status=status,
            x=x,
            iterations=monitor.iterations,
            residual_history=monitor.history_array(),
            ops=ops,
        )

    @classmethod
    def kernel_schedule(cls) -> dict[str, int]:
        return {"spmv": 1, "dot": 2, "axpy": 3}
