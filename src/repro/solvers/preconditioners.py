"""Preconditioners for the Krylov solvers.

The paper's Table I lists preconditioned CG among the solver design
space; this module provides the classic sparse preconditioners from
scratch so :class:`~repro.solvers.pcg.PreconditionedCGSolver` (and user
code) can go beyond the diagonal:

- :class:`JacobiPreconditioner` — ``M = diag(A)``; one multiply per apply.
- :class:`SSORPreconditioner` — symmetric SOR splitting
  ``M = (D/ω + L) (D/ω)^-1 (D/ω + U) · ω/(2-ω)``; two triangular sweeps.
- :class:`ILU0Preconditioner` — incomplete LU with zero fill-in: the LU
  factors restricted to ``A``'s sparsity pattern, applied by forward and
  backward substitution.

All implement ``apply(r) -> z ≈ M^-1 r`` and report the dense-kernel cost
of one application for the cost model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import (
    ConfigurationError,
    SolverBreakdownError,
    UnknownNameError,
)
from repro.sparse.csr import CSRMatrix


class Preconditioner(ABC):
    """Interface: approximate solves with ``M ≈ A``."""

    name: str = "identity"

    @abstractmethod
    def apply(self, r: np.ndarray) -> np.ndarray:
        """Return ``z ≈ M^-1 r``."""

    @abstractmethod
    def apply_cost_elements(self) -> int:
        """Elements touched per application (for the dense cost model)."""


class IdentityPreconditioner(Preconditioner):
    """No preconditioning (useful as a baseline in comparisons)."""

    name = "identity"

    def __init__(self, matrix: CSRMatrix) -> None:
        self._n = matrix.shape[0]

    def apply(self, r: np.ndarray) -> np.ndarray:
        return r.copy()

    def apply_cost_elements(self) -> int:
        return 0


class JacobiPreconditioner(Preconditioner):
    """Diagonal scaling ``z = r / diag(A)``."""

    name = "jacobi"

    def __init__(self, matrix: CSRMatrix) -> None:
        diag = matrix.diagonal().astype(np.float64)
        if np.any(diag == 0):
            raise SolverBreakdownError(
                "Jacobi preconditioner needs a zero-free diagonal"
            )
        self._inv_diag = 1.0 / diag

    def apply(self, r: np.ndarray) -> np.ndarray:
        return self._inv_diag * r

    def apply_cost_elements(self) -> int:
        return len(self._inv_diag)


def _split_triangles(matrix: CSRMatrix):
    """Return (lower-strict, diag, upper-strict) views as index arrays."""
    row_of = matrix.row_ids()
    lower = row_of > matrix.indices
    upper = row_of < matrix.indices
    return row_of, lower, upper


class SSORPreconditioner(Preconditioner):
    """Symmetric SOR preconditioner.

    One application performs a forward sweep with ``(D/ω + L)``, a
    diagonal scale, and a backward sweep with ``(D/ω + U)``.  Requires a
    zero-free diagonal and ``0 < ω < 2``.
    """

    name = "ssor"

    def __init__(self, matrix: CSRMatrix, omega: float = 1.0) -> None:
        if not 0.0 < omega < 2.0:
            raise ConfigurationError(f"SSOR needs 0 < omega < 2, got {omega}")
        diag = matrix.diagonal().astype(np.float64)
        if np.any(diag == 0):
            raise SolverBreakdownError(
                "SSOR preconditioner needs a zero-free diagonal"
            )
        self.omega = float(omega)
        self._matrix = matrix
        self._diag = diag
        self._n = matrix.shape[0]

    def apply(self, r: np.ndarray) -> np.ndarray:
        matrix, diag, omega = self._matrix, self._diag, self.omega
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        n = self._n
        scaled_diag = diag / omega
        # Forward solve (D/w + L) y = r.
        y = np.zeros(n, dtype=np.float64)
        r64 = r.astype(np.float64)
        for i in range(n):
            lo, hi = indptr[i], indptr[i + 1]
            cols = indices[lo:hi]
            vals = data[lo:hi].astype(np.float64)
            below = cols < i
            acc = float(vals[below] @ y[cols[below]])
            y[i] = (r64[i] - acc) / scaled_diag[i]
        # Middle scale: z' = (D/w) y ... then backward solve (D/w + U) z = z'.
        mid = scaled_diag * y
        z = np.zeros(n, dtype=np.float64)
        for i in range(n - 1, -1, -1):
            lo, hi = indptr[i], indptr[i + 1]
            cols = indices[lo:hi]
            vals = data[lo:hi].astype(np.float64)
            above = cols > i
            acc = float(vals[above] @ z[cols[above]])
            z[i] = (mid[i] - acc) / scaled_diag[i]
        return z * (2.0 - omega) / omega

    def apply_cost_elements(self) -> int:
        return 2 * self._matrix.nnz + self._n


class ILU0Preconditioner(Preconditioner):
    """Incomplete LU factorization with zero fill-in.

    Computes ``A ≈ L U`` where ``L`` (unit lower) and ``U`` (upper) are
    restricted to ``A``'s sparsity pattern (the classic IKJ variant), and
    applies ``M^-1 r`` by forward/backward substitution.  Raises
    :class:`SolverBreakdownError` on a zero pivot, as a hardware
    implementation would flag.
    """

    name = "ilu0"

    def __init__(self, matrix: CSRMatrix) -> None:
        if matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError("ILU(0) needs a square matrix")
        self._matrix = matrix
        self._n = matrix.shape[0]
        self._factor = matrix.data.astype(np.float64).copy()
        self._factorize()

    def _factorize(self) -> None:
        n = self._n
        indptr, indices = self._matrix.indptr, self._matrix.indices
        factor = self._factor
        # Position of each (row, col) entry for pattern lookups.
        position: dict[tuple[int, int], int] = {}
        row_of = self._matrix.row_ids()
        for idx, (r, c) in enumerate(zip(row_of, indices)):
            position[(int(r), int(c))] = idx
        diag_pos = np.full(n, -1, dtype=np.int64)
        for i in range(n):
            if (i, i) in position:
                diag_pos[i] = position[(i, i)]
        for i in range(n):
            lo, hi = indptr[i], indptr[i + 1]
            for kk in range(lo, hi):
                k = int(indices[kk])
                if k >= i:
                    break
                pivot_pos = diag_pos[k]
                if pivot_pos < 0 or factor[pivot_pos] == 0.0:
                    raise SolverBreakdownError(
                        f"ILU(0) zero pivot at row {k}"
                    )
                factor[kk] /= factor[pivot_pos]
                multiplier = factor[kk]
                # Subtract multiplier * U[k, j] for j in row i's pattern.
                for jj in range(kk + 1, hi):
                    j = int(indices[jj])
                    u_pos = position.get((k, j))
                    if u_pos is not None:
                        factor[jj] -= multiplier * factor[u_pos]
            if diag_pos[i] < 0 or factor[diag_pos[i]] == 0.0:
                raise SolverBreakdownError(f"ILU(0) zero pivot at row {i}")
        self._diag_pos = diag_pos

    def apply(self, r: np.ndarray) -> np.ndarray:
        n = self._n
        indptr, indices = self._matrix.indptr, self._matrix.indices
        factor = self._factor
        # Forward: L y = r (unit diagonal).
        y = np.zeros(n, dtype=np.float64)
        r64 = r.astype(np.float64)
        for i in range(n):
            lo, hi = indptr[i], indptr[i + 1]
            acc = r64[i]
            for kk in range(lo, hi):
                k = int(indices[kk])
                if k >= i:
                    break
                acc -= factor[kk] * y[k]
            y[i] = acc
        # Backward: U z = y.
        z = np.zeros(n, dtype=np.float64)
        for i in range(n - 1, -1, -1):
            lo, hi = indptr[i], indptr[i + 1]
            acc = y[i]
            for kk in range(hi - 1, lo - 1, -1):
                k = int(indices[kk])
                if k <= i:
                    break
                acc -= factor[kk] * z[k]
            z[i] = acc / factor[self._diag_pos[i]]
        return z

    def apply_cost_elements(self) -> int:
        return 2 * self._matrix.nnz

    def factor_dense(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialize L (unit diagonal) and U as dense arrays (tests)."""
        n = self._n
        lower = np.eye(n)
        upper = np.zeros((n, n))
        row_of = self._matrix.row_ids()
        for idx, (r, c) in enumerate(zip(row_of, self._matrix.indices)):
            if c < r:
                lower[r, c] = self._factor[idx]
            else:
                upper[r, c] = self._factor[idx]
        return lower, upper


PRECONDITIONER_REGISTRY = {
    "identity": IdentityPreconditioner,
    "jacobi": JacobiPreconditioner,
    "ssor": SSORPreconditioner,
    "ilu0": ILU0Preconditioner,
}
"""Name → class, for CLI/experiment configuration."""


def make_preconditioner(
    name: str, matrix: CSRMatrix, **kwargs
) -> Preconditioner:
    """Instantiate a preconditioner by registry name."""
    try:
        cls = PRECONDITIONER_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(PRECONDITIONER_REGISTRY))
        raise UnknownNameError(
            f"unknown preconditioner {name!r}; known: {known}"
        ) from None
    return cls(matrix, **kwargs)
