"""Iterative solvers for ``Ax = b``.

The paper's Reconfigurable Solver unit can be configured as one of three
iterative methods — Jacobi (Algorithm 1), Conjugate Gradient (Algorithm 2)
and BiCG-STAB (Algorithm 3).  This package implements all three in the
matrix/vector form the hardware executes, plus the additional Table I
methods (Gauss-Seidel, SOR, GMRES) as extensions, a shared convergence /
divergence monitor, and per-kernel operation counting that feeds the FPGA
and GPU cost models.
"""

from repro.errors import UnknownNameError
from repro.solvers.base import (
    IterativeSolver,
    OpCounter,
    SolveResult,
    SolveStatus,
)
from repro.solvers.batched import BATCHED_SOLVERS, solve_batched
from repro.solvers.bicg import BiCGSolver
from repro.solvers.bicgstab import BiCGStabSolver
from repro.solvers.cg import ConjugateGradientSolver
from repro.solvers.chebyshev import ChebyshevSolver
from repro.solvers.conjugate_residual import ConjugateResidualSolver
from repro.solvers.criteria import (
    ConvergenceCriterion,
    criteria_table,
    criterion_for,
)
from repro.solvers.gauss_seidel import GaussSeidelSolver
from repro.solvers.gmres import GMRESSolver
from repro.solvers.jacobi import JacobiSolver
from repro.solvers.monitor import ConvergenceMonitor
from repro.solvers.multicolor_gs import MulticolorGaussSeidelSolver
from repro.solvers.pcg import PreconditionedCGSolver
from repro.solvers.sor import SORSolver
from repro.solvers.srj import ScheduledRelaxationJacobiSolver

SOLVER_REGISTRY: dict[str, type[IterativeSolver]] = {
    "jacobi": JacobiSolver,
    "cg": ConjugateGradientSolver,
    "bicgstab": BiCGStabSolver,
    "gauss_seidel": GaussSeidelSolver,
    "sor": SORSolver,
    "gmres": GMRESSolver,
    "bicg": BiCGSolver,
    "conjugate_residual": ConjugateResidualSolver,
    "pcg": PreconditionedCGSolver,
    "srj": ScheduledRelaxationJacobiSolver,
    "chebyshev": ChebyshevSolver,
    "multicolor_gs": MulticolorGaussSeidelSolver,
}
"""Solver name → class.  The first three are the paper's hardware
configurations; the rest are Table I methods provided as extensions."""


def make_solver(name: str, **kwargs) -> IterativeSolver:
    """Instantiate a solver by registry name (e.g. ``"cg"``)."""
    try:
        cls = SOLVER_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(SOLVER_REGISTRY))
        raise UnknownNameError(
            f"unknown solver {name!r}; known solvers: {known}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "BATCHED_SOLVERS",
    "BiCGSolver",
    "BiCGStabSolver",
    "ChebyshevSolver",
    "ConjugateGradientSolver",
    "ConjugateResidualSolver",
    "ConvergenceCriterion",
    "ConvergenceMonitor",
    "GMRESSolver",
    "GaussSeidelSolver",
    "IterativeSolver",
    "JacobiSolver",
    "MulticolorGaussSeidelSolver",
    "OpCounter",
    "PreconditionedCGSolver",
    "SOLVER_REGISTRY",
    "SORSolver",
    "ScheduledRelaxationJacobiSolver",
    "SolveResult",
    "SolveStatus",
    "criteria_table",
    "criterion_for",
    "make_solver",
    "solve_batched",
]
