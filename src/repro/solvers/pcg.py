"""Preconditioned Conjugate Gradient (Table I extension).

PCG applies CG to the symmetrically preconditioned system; the
preconditioner is pluggable (:mod:`repro.solvers.preconditioners`):
``jacobi`` (diagonal, the default — one scale per iteration), ``ssor``,
or ``ilu0``.  Diagonal preconditioning pays off exactly on the badly
row-scaled SPD matrices several Table II stand-ins emulate; ILU(0) is
the classic stronger choice for PDE meshes.  (The paper's Table I lists
preconditioned CG with a "Negative Definite" criterion; the standard
requirement implemented and tested here is symmetric positive
definiteness of both ``A`` and ``M``.)
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverBreakdownError
from repro.solvers.base import (
    IterativeSolver,
    OpCounter,
    SolveResult,
    SolveStatus,
    tolerate_float_excursions,
)
from repro.solvers.monitor import ConvergenceMonitor
from repro.solvers.preconditioners import make_preconditioner
from repro.sparse.csr import CSRMatrix

_BREAKDOWN_EPS = 1e-30


class PreconditionedCGSolver(IterativeSolver):
    """CG with a pluggable preconditioner (default: Jacobi diagonal)."""

    name = "pcg"

    def __init__(self, preconditioner: str = "jacobi", **kwargs) -> None:
        super().__init__(**kwargs)
        self.preconditioner_name = preconditioner

    def _breakdown(self, x: np.ndarray, ops: OpCounter) -> SolveResult:
        return SolveResult(
            solver=self.name,
            status=SolveStatus.BREAKDOWN,
            x=x,
            iterations=0,
            residual_history=np.array([], dtype=np.float64),
            ops=ops,
        )

    @tolerate_float_excursions
    def solve(
        self,
        matrix: CSRMatrix,
        b: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        matrix, b, x = self._prepare(matrix, b, x0)
        ops = OpCounter()
        n = matrix.shape[0]
        try:
            preconditioner = make_preconditioner(
                self.preconditioner_name, matrix
            )
        except SolverBreakdownError:
            # Setup failure (zero diagonal / zero pivot): clean breakdown.
            return self._breakdown(x, ops)
        if self.preconditioner_name == "jacobi" and np.any(
            matrix.diagonal() < 0
        ):
            # A negative diagonal means A is not SPD; the preconditioned
            # operator would be indefinite by construction.
            return self._breakdown(x, ops)
        apply_cost = max(1, preconditioner.apply_cost_elements())

        r = (b - matrix.matvec(x)).astype(np.float64)
        ops.record("spmv", matrix.nnz)
        ops.record("vadd", n)
        z = preconditioner.apply(r)
        ops.record("scale", apply_cost)
        p = z.copy()
        rz = float(r @ z)
        ops.record("dot", n)

        monitor = ConvergenceMonitor(
            b_norm=float(np.linalg.norm(b.astype(np.float64))),
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            setup_iterations=self.setup_iterations,
        )
        status = monitor.update(float(np.linalg.norm(r)))
        while status is None:
            ap = matrix.matvec(p.astype(self.dtype)).astype(np.float64)
            ops.record("spmv", matrix.nnz)
            p_ap = float(p @ ap)
            ops.record("dot", n)
            if abs(p_ap) < _BREAKDOWN_EPS or abs(rz) < _BREAKDOWN_EPS:
                status = SolveStatus.BREAKDOWN
                break
            alpha = rz / p_ap
            x = x + self.dtype.type(alpha) * p.astype(self.dtype)
            ops.record("axpy", n)
            r = r - alpha * ap
            ops.record("axpy", n)
            residual = float(np.linalg.norm(r))
            ops.record("norm", n)
            status = monitor.update(residual)
            if status is not None:
                break
            z = preconditioner.apply(r)
            ops.record("scale", apply_cost)
            rz_next = float(r @ z)
            ops.record("dot", n)
            beta = rz_next / rz
            p = z + beta * p
            ops.record("axpy", n)
            rz = rz_next
        return SolveResult(
            solver=self.name,
            status=status,
            x=x,
            iterations=monitor.iterations,
            residual_history=monitor.history_array(),
            ops=ops,
        )

    @classmethod
    def kernel_schedule(cls) -> dict[str, int]:
        return {"spmv": 1, "dot": 2, "axpy": 3, "scale": 1, "norm": 1}
