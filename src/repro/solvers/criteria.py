"""Table I: structural convergence criteria per solver.

The paper's Table I catalogs, for eleven iterative methods, the structural
property the coefficient matrix must have for the method to guarantee
convergence.  This module encodes that table as data plus, for the
properties that are cheap to evaluate (the ones the Matrix Structure unit
checks, and the randomized definiteness probe), executable predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import UnknownNameError
from repro.sparse.csr import CSRMatrix
from repro.sparse.properties import (
    is_strictly_diagonally_dominant,
    is_symmetric,
    positive_definite_probe,
)

Predicate = Callable[[CSRMatrix], bool]


def _sdd(matrix: CSRMatrix) -> bool:
    return is_strictly_diagonally_dominant(matrix)


def _spd(matrix: CSRMatrix) -> bool:
    return is_symmetric(matrix) and positive_definite_probe(matrix)


def _symmetric(matrix: CSRMatrix) -> bool:
    return is_symmetric(matrix)


def _non_symmetric(matrix: CSRMatrix) -> bool:
    return not is_symmetric(matrix)


def _positive_definite(matrix: CSRMatrix) -> bool:
    return positive_definite_probe(matrix)


@dataclass(frozen=True)
class ConvergenceCriterion:
    """One row of Table I.

    ``predicate`` is ``None`` for the criteria the paper lists but that
    have no cheap structural test (e.g. "Negative Definite" for
    preconditioned CG); those rows are carried as documentation.
    """

    solver: str
    description: str
    predicate: Optional[Predicate]

    def satisfied_by(self, matrix: CSRMatrix) -> Optional[bool]:
        """Evaluate the criterion, or ``None`` when it is not executable."""
        if self.predicate is None:
            return None
        return self.predicate(matrix)


_TABLE_I: tuple[ConvergenceCriterion, ...] = (
    ConvergenceCriterion("jacobi", "Strictly Diagonally Dominant", _sdd),
    ConvergenceCriterion("gauss_seidel", "Strictly Diagonally Dominant", _sdd),
    ConvergenceCriterion("sor", "Symmetric, Positive Definite", _spd),
    ConvergenceCriterion("cg", "Symmetric, Positive Definite", _spd),
    ConvergenceCriterion("preconditioned_cg", "Negative Definite", None),
    ConvergenceCriterion("conjugate_residual", "Hermitian", _symmetric),
    ConvergenceCriterion("bicg", "Non-symmetric", _non_symmetric),
    ConvergenceCriterion("bicgstab", "Non-symmetric", _non_symmetric),
    ConvergenceCriterion("two_sided_lanczos", "Non-symmetric", _non_symmetric),
    ConvergenceCriterion(
        "concus_golub_widlund", "Nearly symmetric, Positive Definite", None
    ),
    ConvergenceCriterion(
        "gmres",
        "Symmetric and Non-symmetric, Positive Definite",
        _positive_definite,
    ),
)


def criteria_table() -> tuple[ConvergenceCriterion, ...]:
    """All rows of the paper's Table I."""
    return _TABLE_I


def criterion_for(solver: str) -> ConvergenceCriterion:
    """Look up the Table I row for ``solver``."""
    for criterion in _TABLE_I:
        if criterion.solver == solver:
            return criterion
    known = ", ".join(c.solver for c in _TABLE_I)
    raise UnknownNameError(f"no Table I entry for {solver!r}; known: {known}")
