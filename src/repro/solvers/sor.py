"""Successive Over-Relaxation (Table I extension).

SOR blends a Gauss-Seidel update with the previous iterate through a
relaxation factor ``omega``: ``x_i <- (1 - omega) x_i + omega * x_i^GS``.
For symmetric positive-definite matrices it converges for any
``0 < omega < 2`` (Table I's criterion); ``omega = 1`` reduces to
Gauss-Seidel, ``omega > 1`` over-relaxes to accelerate smooth error modes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.solvers.base import (
    IterativeSolver,
    OpCounter,
    SolveResult,
    SolveStatus,
    tolerate_float_excursions,
)
from repro.solvers.monitor import ConvergenceMonitor
from repro.sparse.csr import CSRMatrix


class SORSolver(IterativeSolver):
    """Forward SOR sweeps with relaxation factor ``omega``."""

    name = "sor"

    def __init__(self, omega: float = 1.5, **kwargs) -> None:
        super().__init__(**kwargs)
        if not 0.0 < omega < 2.0:
            raise ConfigurationError(
                f"SOR requires 0 < omega < 2 for convergence, got {omega}"
            )
        self.omega = float(omega)

    @tolerate_float_excursions
    def solve(
        self,
        matrix: CSRMatrix,
        b: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        matrix, b, x = self._prepare(matrix, b, x0)
        ops = OpCounter()
        n = matrix.shape[0]
        diag = matrix.diagonal().astype(np.float64)
        if np.any(diag == 0):
            return SolveResult(
                solver=self.name,
                status=SolveStatus.BREAKDOWN,
                x=x,
                iterations=0,
                residual_history=np.array([], dtype=np.float64),
                ops=ops,
            )
        monitor = ConvergenceMonitor(
            b_norm=float(np.linalg.norm(b.astype(np.float64))),
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            setup_iterations=self.setup_iterations,
        )
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        x = x.astype(np.float64)
        b64 = b.astype(np.float64)
        status = SolveStatus.MAX_ITERATIONS
        while True:
            for i in range(n):
                lo, hi = indptr[i], indptr[i + 1]
                cols = indices[lo:hi]
                vals = data[lo:hi].astype(np.float64)
                off = cols != i
                acc = float(vals[off] @ x[cols[off]])
                gs_value = (b64[i] - acc) / diag[i]
                x[i] = (1.0 - self.omega) * x[i] + self.omega * gs_value
            ops.record("spmv", matrix.nnz)
            residual = float(
                np.linalg.norm(
                    b64 - matrix.matvec(x.astype(self.dtype)).astype(np.float64)
                )
            )
            ops.record("spmv", matrix.nnz)
            ops.record("vadd", n)
            ops.record("norm", n)
            verdict = monitor.update(residual)
            if verdict is not None:
                status = verdict
                break
        return SolveResult(
            solver=self.name,
            status=status,
            x=x.astype(self.dtype),
            iterations=monitor.iterations,
            residual_history=monitor.history_array(),
            ops=ops,
        )

    @classmethod
    def kernel_schedule(cls) -> dict[str, int]:
        return {"spmv": 2, "vadd": 1, "norm": 1}
