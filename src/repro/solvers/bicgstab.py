"""Bi-Conjugate Gradient Stabilized (paper Algorithm 3).

BiCG-STAB extends CG to non-symmetric systems with two SpMVs per iteration
(``A p_j`` and ``A s_j``) and a local GMRES(1) smoothing step ``omega_j``.
Its known failure modes — rho-breakdown when ``(r_j, r0*)`` vanishes and
omega-breakdown when ``(A s, s)`` vanishes (e.g. for strongly skew-symmetric
operators) — are detected explicitly, because they are the mechanism behind
several of Table II's BiCG-STAB ✗ rows.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry as tm
from repro.solvers.base import (
    IterativeSolver,
    OpCounter,
    SolveResult,
    SolveStatus,
    tolerate_float_excursions,
)
from repro.solvers.monitor import ConvergenceMonitor
from repro.sparse.csr import CSRMatrix

_BREAKDOWN_EPS = 1e-30


class BiCGStabSolver(IterativeSolver):
    """BiCG-STAB per Algorithm 3 of the paper.

    The shadow residual ``r0*`` is chosen as ``r_0`` (the algorithm allows
    it to be arbitrary).  Convergence is tracked through the recursive
    residual ``r_{j+1} = s_j - omega_j A s_j``.
    """

    name = "bicgstab"

    @tolerate_float_excursions
    def solve(
        self,
        matrix: CSRMatrix,
        b: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        matrix, b, x = self._prepare(matrix, b, x0)
        ops = OpCounter()
        n = matrix.shape[0]

        # Initialize unit: r_0 = b - A x_0 (static SpMV), r0* = r_0, p_0 = r_0.
        with tm.span("kernel.spmv"):
            ax = matrix.matvec(x)
        r = b - ax
        ops.record("spmv", matrix.nnz)
        ops.record("vadd", n)
        r_shadow = r.astype(np.float64).copy()
        p = r.copy()

        monitor = ConvergenceMonitor(
            b_norm=float(np.linalg.norm(b.astype(np.float64))),
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            setup_iterations=self.setup_iterations,
        )
        status = monitor.update(float(np.linalg.norm(r.astype(np.float64))))
        rho = float(r.astype(np.float64) @ r_shadow)
        ops.record("dot", n)
        while status is None:
            if abs(rho) < _BREAKDOWN_EPS:
                status = SolveStatus.BREAKDOWN  # rho-breakdown
                break
            with tm.span("kernel.spmv"):
                ap = matrix.matvec(p)
            ops.record("spmv", matrix.nnz)
            ap_rs = float(ap.astype(np.float64) @ r_shadow)
            ops.record("dot", n)
            if abs(ap_rs) < _BREAKDOWN_EPS:
                status = SolveStatus.BREAKDOWN  # alpha denominator vanished
                break
            alpha = rho / ap_rs
            s = r - self.dtype.type(alpha) * ap
            ops.record("axpy", n)
            s_norm = float(np.linalg.norm(s.astype(np.float64)))
            if monitor.relative(s_norm) <= self.tolerance:
                # Lucky convergence: the alpha step alone solved the system
                # (s = r - alpha A p vanished), so skip the smoothing step.
                x = x + self.dtype.type(alpha) * p
                ops.record("axpy", n)
                status = monitor.update(s_norm)
                break
            with tm.span("kernel.spmv"):
                a_s = matrix.matvec(s)
            ops.record("spmv", matrix.nnz)
            as_s = float(a_s.astype(np.float64) @ s.astype(np.float64))
            as_as = float(a_s.astype(np.float64) @ a_s.astype(np.float64))
            ops.record("dot", n)
            ops.record("dot", n)
            if as_as < _BREAKDOWN_EPS:
                # A s = 0 with s != 0 only for singular A; treat as breakdown.
                status = SolveStatus.BREAKDOWN
                break
            omega = as_s / as_as
            x = x + self.dtype.type(alpha) * p + self.dtype.type(omega) * s
            ops.record("axpy", n)
            ops.record("axpy", n)
            r = s - self.dtype.type(omega) * a_s
            ops.record("axpy", n)
            residual = float(np.linalg.norm(r.astype(np.float64)))
            ops.record("norm", n)
            status = monitor.update(residual)
            if status is not None:
                break
            rho_next = float(r.astype(np.float64) @ r_shadow)
            ops.record("dot", n)
            if abs(omega) < _BREAKDOWN_EPS:
                # omega-breakdown: the GMRES(1) step stalled (skew operators).
                status = SolveStatus.BREAKDOWN
                break
            beta = (rho_next / rho) * (alpha / omega)
            p = r + self.dtype.type(beta) * (p - self.dtype.type(omega) * ap)
            ops.record("axpy", n)
            ops.record("axpy", n)
            rho = rho_next
        return SolveResult(
            solver=self.name,
            status=status,
            x=x,
            iterations=monitor.iterations,
            residual_history=monitor.history_array(),
            ops=ops,
        )

    @classmethod
    def kernel_schedule(cls) -> dict[str, int]:
        return {"spmv": 2, "dot": 4, "axpy": 6, "norm": 1}
