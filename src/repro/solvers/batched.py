"""Batched lockstep drivers: K fingerprint-sharing solves at once.

:func:`solve_batched` runs K problems whose matrices share one sparsity
pattern through a single lockstep iteration, replacing K per-iteration
kernel dispatches with one batched SpMV
(:class:`~repro.sparse.batched.BatchedCSROperator`) and stacked vector
updates.  The contract is strict **bit-identity**: every returned
:class:`~repro.solvers.base.SolveResult` — iterate, status, iteration
count, residual history, op tally — equals what ``solver.solve`` would
produce for that problem alone.

How bit-identity survives batching
----------------------------------
- every batched stage is elementwise *per problem row* (broadcast
  ``(K, 1) * (K, n)`` scalar application, row-wise adds) or a per-row
  segmented reduction over unchanged segments, so each problem's
  floating-point accumulation order is exactly the sequential one;
- inner products and norms are taken per row off the C-ordered stacked
  state (a row view is contiguous, and ``astype(np.float64)`` copies it
  contiguously), reproducing the sequential ``float(v.astype(f64) @
  w.astype(f64))`` expressions verbatim;
- each problem owns its :class:`~repro.solvers.monitor.ConvergenceMonitor`
  and :class:`~repro.solvers.base.OpCounter`, updated in the sequential
  order;
- **finalize-and-compact**: the sequential solvers exit mid-iteration
  (breakdowns, lucky convergence, monitor verdicts).  A finished row is
  finalized with a snapshot taken at its exact sequential exit point;
  any batched update that still touches the row afterwards writes
  garbage that is discarded when the batch compacts at the end of the
  step, so surviving rows never see perturbed state.

Solvers without a lockstep driver (and batches whose matrices turn out
not to share a pattern) fall back to K sequential ``solver.solve``
calls — trivially bit-identical — counted on
``batch.fallback_sequential``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import telemetry as tm
from repro.errors import ShapeMismatchError
from repro.solvers.base import (
    IterativeSolver,
    OpCounter,
    SolveResult,
    SolveStatus,
)
from repro.solvers.monitor import ConvergenceMonitor
from repro.sparse.batched import BatchedCSROperator
from repro.sparse.csr import CSRMatrix

_BREAKDOWN_EPS = 1e-30
"""Must match the sequential solvers' breakdown threshold exactly."""

BATCHED_SOLVERS = frozenset({"jacobi", "cg", "bicgstab"})
"""Solvers with a lockstep driver; everything else falls back."""


def solve_batched(
    solver: IterativeSolver,
    matrices: Sequence[CSRMatrix],
    bs: Sequence[np.ndarray],
    x0s: Sequence[np.ndarray | None] | None = None,
) -> list[SolveResult]:
    """Solve ``matrices[k] @ x = bs[k]`` for all k, bit-identical to
    ``[solver.solve(m, b, x0) for ...]``.

    ``solver`` supplies the numerical parameters (tolerance, iteration
    caps, dtype) exactly as a sequential run would use them.  Batches
    whose matrices share a sparsity pattern and whose solver has a
    lockstep driver run the batched path; everything else takes the
    sequential fallback (``batch.fallback_sequential``).
    """
    k = len(matrices)
    if k != len(bs):
        raise ShapeMismatchError(
            f"solve_batched got {k} matrices and {len(bs)} right-hand sides"
        )
    if x0s is None:
        x0s = [None] * k
    if k != len(x0s):
        raise ShapeMismatchError(
            f"solve_batched got {k} matrices and {len(x0s)} initial guesses"
        )
    tm.count("batch.groups")
    tm.count("batch.items", k)
    if k == 0:
        return []
    pattern_shared = all(
        matrices[0].structurally_equal(m) for m in matrices[1:]
    )
    if solver.name not in BATCHED_SOLVERS or not pattern_shared:
        tm.count("batch.fallback_sequential", k)
        return [
            solver.solve(m, b, x0) for m, b, x0 in zip(matrices, bs, x0s)
        ]
    prepared = [
        solver._prepare(m, b, x0) for m, b, x0 in zip(matrices, bs, x0s)
    ]
    driver = _DRIVERS[solver.name]
    # Divergence legitimately overflows fp32 before the monitor catches
    # it — same errstate policy as ``tolerate_float_excursions``.
    with np.errstate(over="ignore", invalid="ignore"):
        return driver(solver, prepared)


def _finish(
    solver: IterativeSolver,
    status: SolveStatus,
    x: np.ndarray,
    monitor: ConvergenceMonitor,
    ops: OpCounter,
) -> SolveResult:
    return SolveResult(
        solver=solver.name,
        status=status,
        x=x,
        iterations=monitor.iterations,
        residual_history=monitor.history_array(),
        ops=ops,
    )


def _row_dot(v: np.ndarray, w: np.ndarray) -> float:
    """The sequential solvers' f64 inner product, on stacked rows."""
    return float(v.astype(np.float64) @ w.astype(np.float64))


def _row_norm(v: np.ndarray) -> float:
    """The sequential solvers' f64 norm, on a stacked row."""
    return float(np.linalg.norm(v.astype(np.float64)))


def _monitor_for(
    solver: IterativeSolver, b_row: np.ndarray
) -> ConvergenceMonitor:
    return ConvergenceMonitor(
        b_norm=float(np.linalg.norm(b_row.astype(np.float64))),
        tolerance=solver.tolerance,
        max_iterations=solver.max_iterations,
        setup_iterations=solver.setup_iterations,
    )


# ----------------------------------------------------------------------
# Jacobi (paper Algorithm 1)
# ----------------------------------------------------------------------


def _jacobi_lockstep(
    solver: IterativeSolver, prepared: list[tuple]
) -> list[SolveResult]:
    k_total = len(prepared)
    n = prepared[0][0].shape[0]
    dtype = solver.dtype
    results: list[SolveResult | None] = [None] * k_total
    ops = [OpCounter() for _ in range(k_total)]

    t_parts: list[CSRMatrix] = []
    c_rows: list[np.ndarray] = []
    diag_rows: list[np.ndarray] = []
    x_rows: list[np.ndarray] = []
    monitors: dict[int, ConvergenceMonitor] = {}
    alive: list[int] = []
    for k, (matrix, b, x0) in enumerate(prepared):
        diag = matrix.diagonal().astype(dtype)
        if np.any(diag == 0):
            # A zero diagonal makes D^-1 undefined: immediate breakdown,
            # exactly the sequential early return (0 iterations).
            results[k] = SolveResult(
                solver=solver.name,
                status=SolveStatus.BREAKDOWN,
                x=x0,
                iterations=0,
                residual_history=np.array([], dtype=np.float64),
                ops=ops[k],
            )
            continue
        inv_diag = (1.0 / diag).astype(dtype)
        off_diag = matrix.without_diagonal()
        row_of = off_diag.row_ids()
        t_parts.append(
            off_diag.with_data(
                (off_diag.data * inv_diag[row_of]).astype(dtype)
            )
        )
        c_rows.append((inv_diag * b).astype(dtype))
        diag_rows.append(diag)
        x_rows.append(x0)
        monitors[k] = _monitor_for(solver, b)
        alive.append(k)

    if not alive:
        return results  # type: ignore[return-value]
    op = BatchedCSROperator(t_parts)
    t_nnz = op.nnz
    x_block = np.stack(x_rows)
    c_block = np.stack(c_rows)
    diag_block = np.stack(diag_rows)

    while alive:
        with tm.span("kernel.spmv_batched"):
            tx = op.matvec(x_block)
        x_next = c_block - tx
        delta = x_next - x_block
        survivors: list[int] = []
        for pos, k in enumerate(alive):
            ops[k].record("spmv", t_nnz)
            ops[k].record("vadd", n)
            ops[k].record("vadd", n)
            residual = _row_norm(diag_block[pos] * delta[pos])
            ops[k].record("scale", n)
            ops[k].record("norm", n)
            verdict = monitors[k].update(residual)
            if verdict is not None:
                results[k] = _finish(
                    solver, verdict, x_next[pos].copy(), monitors[k], ops[k]
                )
            else:
                survivors.append(pos)
        x_block = x_next
        if len(survivors) < len(alive):
            keep = np.asarray(survivors, dtype=np.intp)
            x_block = x_block[keep]
            c_block = c_block[keep]
            diag_block = diag_block[keep]
            op = op.take(keep)
            alive = [alive[pos] for pos in survivors]
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Conjugate Gradient (paper Algorithm 2)
# ----------------------------------------------------------------------


def _cg_lockstep(
    solver: IterativeSolver, prepared: list[tuple]
) -> list[SolveResult]:
    k_total = len(prepared)
    n = prepared[0][0].shape[0]
    dtype = solver.dtype
    results: list[SolveResult | None] = [None] * k_total
    ops = [OpCounter() for _ in range(k_total)]
    op = BatchedCSROperator([m for m, _, _ in prepared])
    nnz = op.nnz
    b_block = np.stack([b for _, b, _ in prepared])
    x_block = np.stack([x0 for _, _, x0 in prepared])

    with tm.span("kernel.spmv_batched"):
        ax = op.matvec(x_block)
    r_block = b_block - ax
    p_block = r_block.copy()
    monitors: dict[int, ConvergenceMonitor] = {}
    rs: dict[int, float] = {}
    alive: list[int] = []
    for k in range(k_total):
        ops[k].record("spmv", nnz)
        ops[k].record("vadd", n)
        rs[k] = _row_dot(r_block[k], r_block[k])
        ops[k].record("dot", n)
        monitors[k] = _monitor_for(solver, b_block[k])
        status = monitors[k].update(np.sqrt(rs[k]))
        if status is not None:
            results[k] = _finish(
                solver, status, x_block[k].copy(), monitors[k], ops[k]
            )
        else:
            alive.append(k)

    def compact(survivors: list[int]) -> None:
        nonlocal x_block, r_block, p_block, op, alive
        if len(survivors) == len(alive):
            return
        keep = np.asarray(survivors, dtype=np.intp)
        x_block = x_block[keep]
        r_block = r_block[keep]
        p_block = p_block[keep]
        op = op.take(keep)
        alive[:] = [alive[pos] for pos in survivors]

    # Rows finished at iteration zero: drop them before the first sweep
    # (positions still equal original indices here).
    if len(alive) < k_total:
        keep = np.asarray(alive, dtype=np.intp)
        x_block = x_block[keep]
        r_block = r_block[keep]
        p_block = p_block[keep]
        op = op.take(keep)
    while alive:
        with tm.span("kernel.spmv_batched"):
            ap = op.matvec(p_block)
        width = len(alive)
        alphas = np.zeros(width, dtype=dtype)
        past_pap: list[int] = []
        for pos, k in enumerate(alive):
            ops[k].record("spmv", nnz)
            p_ap = _row_dot(p_block[pos], ap[pos])
            ops[k].record("dot", n)
            if abs(p_ap) < _BREAKDOWN_EPS:
                # Sequential CG breaks *before* the x/r updates.
                results[k] = _finish(
                    solver,
                    SolveStatus.BREAKDOWN,
                    x_block[pos].copy(),
                    monitors[k],
                    ops[k],
                )
            else:
                alphas[pos] = dtype.type(rs[k] / p_ap)
                past_pap.append(pos)
        x_block += alphas[:, None] * p_block
        r_block -= alphas[:, None] * ap
        betas = np.zeros(width, dtype=dtype)
        past_rs: list[int] = []
        for pos in past_pap:
            k = alive[pos]
            ops[k].record("axpy", n)
            ops[k].record("axpy", n)
            rs_next = _row_dot(r_block[pos], r_block[pos])
            ops[k].record("dot", n)
            if rs[k] < _BREAKDOWN_EPS:
                # The sequential quirk: the check reads the *old* rs,
                # after x and r were already updated.
                results[k] = _finish(
                    solver,
                    SolveStatus.BREAKDOWN,
                    x_block[pos].copy(),
                    monitors[k],
                    ops[k],
                )
                continue
            betas[pos] = dtype.type(rs_next / rs[k])
            rs[k] = rs_next
            past_rs.append(pos)
        p_block = r_block + betas[:, None] * p_block
        survivors: list[int] = []
        for pos in past_rs:
            k = alive[pos]
            ops[k].record("axpy", n)
            status = monitors[k].update(np.sqrt(max(rs[k], 0.0)))
            if status is not None:
                results[k] = _finish(
                    solver, status, x_block[pos].copy(), monitors[k], ops[k]
                )
            else:
                survivors.append(pos)
        compact(survivors)
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# BiCG-STAB (paper Algorithm 3)
# ----------------------------------------------------------------------


def _bicgstab_lockstep(
    solver: IterativeSolver, prepared: list[tuple]
) -> list[SolveResult]:
    k_total = len(prepared)
    n = prepared[0][0].shape[0]
    dtype = solver.dtype
    results: list[SolveResult | None] = [None] * k_total
    ops = [OpCounter() for _ in range(k_total)]
    op = BatchedCSROperator([m for m, _, _ in prepared])
    nnz = op.nnz
    b_block = np.stack([b for _, b, _ in prepared])
    x_block = np.stack([x0 for _, _, x0 in prepared])

    with tm.span("kernel.spmv_batched"):
        ax = op.matvec(x_block)
    r_block = b_block - ax
    shadow = r_block.astype(np.float64).copy()
    p_block = r_block.copy()
    monitors: dict[int, ConvergenceMonitor] = {}
    rho: dict[int, float] = {}
    alive: list[int] = []
    for k in range(k_total):
        ops[k].record("spmv", nnz)
        ops[k].record("vadd", n)
        monitors[k] = _monitor_for(solver, b_block[k])
        status = monitors[k].update(_row_norm(r_block[k]))
        rho[k] = _row_dot(r_block[k], shadow[k])
        ops[k].record("dot", n)
        if status is not None:
            results[k] = _finish(
                solver, status, x_block[k].copy(), monitors[k], ops[k]
            )
        else:
            alive.append(k)

    blocks: dict[str, np.ndarray] = {}

    def compact(survivors: list[int]) -> None:
        nonlocal op, alive
        if len(survivors) == len(alive):
            return
        keep = np.asarray(survivors, dtype=np.intp)
        for name in list(blocks):
            blocks[name] = blocks[name][keep]
        op = op.take(keep)
        alive[:] = [alive[pos] for pos in survivors]

    blocks["x"] = x_block
    blocks["r"] = r_block
    blocks["p"] = p_block
    blocks["shadow"] = shadow
    # Rows finished at iteration zero: drop them before the first sweep
    # (positions still equal original indices here).
    if len(alive) < k_total:
        keep = np.asarray(alive, dtype=np.intp)
        for name in list(blocks):
            blocks[name] = blocks[name][keep]
        op = op.take(keep)

    while alive:
        # rho-breakdown is checked at the top of the sequential loop.
        survivors = []
        for pos, k in enumerate(alive):
            if abs(rho[k]) < _BREAKDOWN_EPS:
                results[k] = _finish(
                    solver,
                    SolveStatus.BREAKDOWN,
                    blocks["x"][pos].copy(),
                    monitors[k],
                    ops[k],
                )
            else:
                survivors.append(pos)
        compact(survivors)
        if not alive:
            break
        with tm.span("kernel.spmv_batched"):
            ap = op.matvec(blocks["p"])
        blocks["ap"] = ap
        width = len(alive)
        alpha_f: dict[int, float] = {}
        alphas = np.zeros(width, dtype=dtype)
        past_aprs: list[int] = []
        for pos, k in enumerate(alive):
            ops[k].record("spmv", nnz)
            ap_rs = _row_dot(ap[pos], blocks["shadow"][pos])
            ops[k].record("dot", n)
            if abs(ap_rs) < _BREAKDOWN_EPS:
                results[k] = _finish(
                    solver,
                    SolveStatus.BREAKDOWN,
                    blocks["x"][pos].copy(),
                    monitors[k],
                    ops[k],
                )
            else:
                alpha_f[k] = rho[k] / ap_rs
                alphas[pos] = dtype.type(alpha_f[k])
                past_aprs.append(pos)
        blocks["s"] = blocks["r"] - alphas[:, None] * blocks["ap"]
        survivors = []
        for pos in past_aprs:
            k = alive[pos]
            ops[k].record("axpy", n)
            s_norm = _row_norm(blocks["s"][pos])
            if monitors[k].relative(s_norm) <= solver.tolerance:
                # Lucky convergence: the alpha step alone solved the
                # system; this row takes the sequential early exit.
                x_final = (
                    blocks["x"][pos]
                    + dtype.type(alpha_f[k]) * blocks["p"][pos]
                )
                ops[k].record("axpy", n)
                status = monitors[k].update(s_norm)
                results[k] = _finish(
                    solver, status, x_final, monitors[k], ops[k]
                )
            else:
                survivors.append(pos)
        compact(survivors)
        if not alive:
            break
        with tm.span("kernel.spmv_batched"):
            a_s = op.matvec(blocks["s"])
        blocks["as"] = a_s
        width = len(alive)
        omega_f: dict[int, float] = {}
        omegas = np.zeros(width, dtype=dtype)
        alphas2 = np.zeros(width, dtype=dtype)
        past_asas: list[int] = []
        for pos, k in enumerate(alive):
            ops[k].record("spmv", nnz)
            as_s = _row_dot(a_s[pos], blocks["s"][pos])
            as_as = _row_dot(a_s[pos], a_s[pos])
            ops[k].record("dot", n)
            ops[k].record("dot", n)
            if as_as < _BREAKDOWN_EPS:
                # A s = 0 with s != 0 only for singular A; the sequential
                # loop breaks before updating x.
                results[k] = _finish(
                    solver,
                    SolveStatus.BREAKDOWN,
                    blocks["x"][pos].copy(),
                    monitors[k],
                    ops[k],
                )
            else:
                omega_f[k] = as_s / as_as
                omegas[pos] = dtype.type(omega_f[k])
                alphas2[pos] = dtype.type(alpha_f[k])
                past_asas.append(pos)
        blocks["x"] = (
            blocks["x"]
            + alphas2[:, None] * blocks["p"]
            + omegas[:, None] * blocks["s"]
        )
        blocks["r"] = blocks["s"] - omegas[:, None] * blocks["as"]
        betas = np.zeros(width, dtype=dtype)
        survivors = []
        for pos in past_asas:
            k = alive[pos]
            ops[k].record("axpy", n)
            ops[k].record("axpy", n)
            ops[k].record("axpy", n)
            residual = _row_norm(blocks["r"][pos])
            ops[k].record("norm", n)
            status = monitors[k].update(residual)
            if status is not None:
                results[k] = _finish(
                    solver,
                    status,
                    blocks["x"][pos].copy(),
                    monitors[k],
                    ops[k],
                )
                continue
            rho_next = _row_dot(blocks["r"][pos], blocks["shadow"][pos])
            ops[k].record("dot", n)
            if abs(omega_f[k]) < _BREAKDOWN_EPS:
                # omega-breakdown (skew operators); x keeps the update.
                results[k] = _finish(
                    solver,
                    SolveStatus.BREAKDOWN,
                    blocks["x"][pos].copy(),
                    monitors[k],
                    ops[k],
                )
                continue
            betas[pos] = dtype.type(
                (rho_next / rho[k]) * (alpha_f[k] / omega_f[k])
            )
            rho[k] = rho_next
            survivors.append(pos)
        blocks["p"] = blocks["r"] + betas[:, None] * (
            blocks["p"] - omegas[:, None] * blocks["ap"]
        )
        for pos in survivors:
            k = alive[pos]
            ops[k].record("axpy", n)
            ops[k].record("axpy", n)
        del blocks["ap"], blocks["s"], blocks["as"]
        compact(survivors)
    return results  # type: ignore[return-value]


_DRIVERS = {
    "jacobi": _jacobi_lockstep,
    "cg": _cg_lockstep,
    "bicgstab": _bicgstab_lockstep,
}
