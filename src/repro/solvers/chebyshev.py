"""Chebyshev iteration (extension solver).

Chebyshev iteration achieves CG-like convergence on SPD systems *without
inner products* — only the SpMV and AXPYs remain — which makes it the
classic choice when global reductions are expensive (deep pipelines,
multi-die fabrics).  The price is needing an eigenvalue interval
``[λ_min, λ_max]``: this implementation estimates ``λ_max`` by power
iteration and lower-bounds ``λ_min`` either from a user hint or from a
(safe for diagonally dominant SPD) Gershgorin-margin heuristic backed by
a small inverse-power refinement.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.solvers.base import (
    IterativeSolver,
    OpCounter,
    SolveResult,
    tolerate_float_excursions,
)
from repro.solvers.monitor import ConvergenceMonitor
from repro.sparse.csr import CSRMatrix
from repro.sparse.properties import (
    diagonal_dominance_margin,
    estimate_spectral_radius,
    gershgorin_upper_bound,
)


class ChebyshevSolver(IterativeSolver):
    """Chebyshev semi-iteration over an estimated SPD spectrum interval.

    Parameters
    ----------
    eig_bounds:
        Optional ``(lambda_min, lambda_max)`` override.  Without it the
        solver estimates ``lambda_max`` by power iteration and takes
        ``lambda_min`` from the Gershgorin dominance margin (clamped to a
        small positive fraction of ``lambda_max`` when the margin is not
        informative — a conservative interval only slows convergence).
    """

    name = "chebyshev"

    def __init__(
        self, eig_bounds: tuple[float, float] | None = None, **kwargs
    ) -> None:
        super().__init__(**kwargs)
        if eig_bounds is not None:
            lo, hi = eig_bounds
            if not 0 < lo < hi:
                raise ConfigurationError(
                    f"need 0 < lambda_min < lambda_max, got {eig_bounds}"
                )
        self.eig_bounds = eig_bounds

    def _estimate_interval(self, matrix: CSRMatrix) -> tuple[float, float]:
        if self.eig_bounds is not None:
            return self.eig_bounds
        # Power iteration converges to lambda_max from below, and on a
        # clustered spectrum a finite number of iterations can still sit
        # under it — a Chebyshev interval that misses the top of the
        # spectrum diverges.  The rightmost Gershgorin disc edge is a
        # guaranteed upper bound (tight on the dominant matrices this
        # solver targets), and an interval that is only too wide merely
        # slows convergence, so take the bound outright and keep the
        # power estimate as a floor for the degenerate-spectrum check.
        lam_est = estimate_spectral_radius(
            matrix.matvec, matrix.shape[0], n_iters=60, seed=0
        )
        lam_max = max(lam_est, gershgorin_upper_bound(matrix))
        if lam_max <= 0 or not np.isfinite(lam_max):
            raise ConfigurationError("could not estimate a positive spectrum")
        margin = float(diagonal_dominance_margin(matrix).min())
        lam_min = margin if margin > 0 else lam_max * 1e-3
        lam_min = min(lam_min, 0.9 * lam_max)
        return lam_min, lam_max

    @tolerate_float_excursions
    def solve(
        self,
        matrix: CSRMatrix,
        b: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        matrix, b, x = self._prepare(matrix, b, x0)
        ops = OpCounter()
        n = matrix.shape[0]
        lam_min, lam_max = self._estimate_interval(matrix)
        theta = 0.5 * (lam_max + lam_min)  # interval center
        delta = 0.5 * (lam_max - lam_min)  # interval half-width

        x64 = x.astype(np.float64)
        b64 = b.astype(np.float64)
        r = b64 - matrix.matvec(x64.astype(self.dtype)).astype(np.float64)
        ops.record("spmv", matrix.nnz)
        ops.record("vadd", n)

        monitor = ConvergenceMonitor(
            b_norm=float(np.linalg.norm(b64)),
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            setup_iterations=self.setup_iterations,
        )
        status = monitor.update(float(np.linalg.norm(r)))
        # Saad's Chebyshev recurrence: sigma = theta/delta, rho_k tracks
        # the ratio of consecutive scaled Chebyshev polynomials.
        sigma = theta / delta
        rho = 1.0 / sigma
        d = r / theta
        while status is None:
            x64 = x64 + d
            ops.record("axpy", n)
            r = b64 - matrix.matvec(x64.astype(self.dtype)).astype(np.float64)
            ops.record("spmv", matrix.nnz)
            ops.record("vadd", n)
            residual = float(np.linalg.norm(r))
            ops.record("norm", n)
            status = monitor.update(residual)
            if status is not None:
                break
            rho_next = 1.0 / (2.0 * sigma - rho)
            d = (rho_next * rho) * d + (2.0 * rho_next / delta) * r
            ops.record("axpy", n)
            rho = rho_next
        return SolveResult(
            solver=self.name,
            status=status,
            x=x64.astype(self.dtype),
            iterations=monitor.iterations,
            residual_history=monitor.history_array(),
            ops=ops,
        )

    @classmethod
    def kernel_schedule(cls) -> dict[str, int]:
        return {"spmv": 1, "axpy": 1, "vadd": 1, "norm": 1}
