"""Bi-Conjugate Gradient (Table I extension).

BiCG is the un-stabilized ancestor of BiCG-STAB: it runs two coupled
Lanczos recurrences, one with ``A`` and one with ``A^T``, and converges
for general non-symmetric systems at the price of an extra transposed
SpMV per iteration and a famously erratic residual.  It is included
because the paper's Table I lists it (and Two-Sided Lanczos, whose
recurrences it shares); comparing it against BiCG-STAB on the same
workloads shows exactly what the stabilization step buys.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry as tm
from repro.solvers.base import (
    IterativeSolver,
    OpCounter,
    SolveResult,
    SolveStatus,
    tolerate_float_excursions,
)
from repro.solvers.monitor import ConvergenceMonitor
from repro.sparse.csr import CSRMatrix

_BREAKDOWN_EPS = 1e-30


class BiCGSolver(IterativeSolver):
    """Bi-Conjugate Gradient with ``r0* = r0`` shadow residual.

    Per iteration: one SpMV with ``A`` (search direction) and one with
    ``A^T`` (shadow direction), two inner products, four AXPYs.
    """

    name = "bicg"

    @tolerate_float_excursions
    def solve(
        self,
        matrix: CSRMatrix,
        b: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        matrix, b, x = self._prepare(matrix, b, x0)
        ops = OpCounter()
        n = matrix.shape[0]

        r = b - matrix.matvec(x)
        ops.record("spmv", matrix.nnz)
        ops.record("vadd", n)
        r_shadow = r.astype(np.float64).copy()
        p = r.copy()
        p_shadow = r_shadow.copy()

        monitor = ConvergenceMonitor(
            b_norm=float(np.linalg.norm(b.astype(np.float64))),
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            setup_iterations=self.setup_iterations,
        )
        status = monitor.update(float(np.linalg.norm(r.astype(np.float64))))
        rho = float(r.astype(np.float64) @ r_shadow)
        ops.record("dot", n)
        while status is None:
            if abs(rho) < _BREAKDOWN_EPS:
                status = SolveStatus.BREAKDOWN
                break
            with tm.span("kernel.spmv"):
                ap = matrix.matvec(p)
            ops.record("spmv", matrix.nnz)
            with tm.span("kernel.rmatvec"):
                atp = matrix.rmatvec(
                    p_shadow.astype(self.dtype)
                ).astype(np.float64)
            ops.record("spmv", matrix.nnz)
            denom = float(p_shadow @ ap.astype(np.float64))
            ops.record("dot", n)
            if abs(denom) < _BREAKDOWN_EPS:
                status = SolveStatus.BREAKDOWN
                break
            alpha = rho / denom
            x = x + self.dtype.type(alpha) * p
            ops.record("axpy", n)
            r = r - self.dtype.type(alpha) * ap
            ops.record("axpy", n)
            r_shadow = r_shadow - alpha * atp
            ops.record("axpy", n)
            residual = float(np.linalg.norm(r.astype(np.float64)))
            ops.record("norm", n)
            status = monitor.update(residual)
            if status is not None:
                break
            rho_next = float(r.astype(np.float64) @ r_shadow)
            ops.record("dot", n)
            beta = rho_next / rho
            p = r + self.dtype.type(beta) * p
            ops.record("axpy", n)
            p_shadow = r_shadow + beta * p_shadow
            rho = rho_next
        return SolveResult(
            solver=self.name,
            status=status,
            x=x,
            iterations=monitor.iterations,
            residual_history=monitor.history_array(),
            ops=ops,
        )

    @classmethod
    def kernel_schedule(cls) -> dict[str, int]:
        return {"spmv": 2, "dot": 2, "axpy": 4, "norm": 1}
