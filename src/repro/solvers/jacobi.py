"""Jacobi iterative method in matrix form (paper Algorithm 1).

The paper is explicit that the hardware runs the *matrix form* of Jacobi:

- split ``A = D + (L + U)``,
- precompute ``T = D^-1 (L + U)`` and ``c = D^-1 b``,
- iterate ``x_{j+1} = c - T x_j``.

The per-iteration SpMV is ``T x_j``, so Jacobi's sparse kernel has the same
NNZ/row profile as ``A`` minus its diagonal.  The residual the hardware can
check for free is ``b - A x_j = D (x_{j+1} - x_j)`` — a diagonal scaling of
the iterate delta — which avoids a second SpMV per iteration.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.base import (
    IterativeSolver,
    OpCounter,
    SolveResult,
    SolveStatus,
    tolerate_float_excursions,
)
from repro.solvers.monitor import ConvergenceMonitor
from repro.sparse.csr import CSRMatrix


class JacobiSolver(IterativeSolver):
    """Matrix-form Jacobi iteration.

    Converges for every initial guess iff the spectral radius of
    ``T = D^-1 (L + U)`` is below one; strict diagonal dominance of ``A``
    (Eq. 1) is the sufficient condition the Matrix Structure unit checks.
    """

    name = "jacobi"

    @tolerate_float_excursions
    def solve(
        self,
        matrix: CSRMatrix,
        b: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        matrix, b, x = self._prepare(matrix, b, x0)
        ops = OpCounter()
        n = matrix.shape[0]
        diag = matrix.diagonal().astype(self.dtype)
        if np.any(diag == 0):
            # A zero diagonal makes D^-1 undefined: immediate breakdown.
            return SolveResult(
                solver=self.name,
                status=SolveStatus.BREAKDOWN,
                x=x,
                iterations=0,
                residual_history=np.array([], dtype=np.float64),
                ops=ops,
            )
        inv_diag = (1.0 / diag).astype(self.dtype)
        off_diag = matrix.without_diagonal()
        # T = D^-1 (L + U): scale each stored row of (L+U) by 1/d_i.
        # ``row_ids``/``without_diagonal`` are cached on the matrix, so
        # repeated solves of the same operator skip the structure work.
        row_of = off_diag.row_ids()
        t_matrix = off_diag.with_data(
            (off_diag.data * inv_diag[row_of]).astype(self.dtype)
        )
        c = (inv_diag * b).astype(self.dtype)

        monitor = ConvergenceMonitor(
            b_norm=float(np.linalg.norm(b.astype(np.float64))),
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            setup_iterations=self.setup_iterations,
        )
        status = SolveStatus.MAX_ITERATIONS
        while True:
            tx = t_matrix.matvec(x)
            ops.record("spmv", t_matrix.nnz)
            x_next = c - tx
            ops.record("vadd", n)
            # Residual b - A x_j = D (x_{j+1} - x_j); diagonal scale + norm.
            delta = x_next - x
            ops.record("vadd", n)
            residual = float(
                np.linalg.norm((diag * delta).astype(np.float64))
            )
            ops.record("scale", n)
            ops.record("norm", n)
            x = x_next
            verdict = monitor.update(residual)
            if verdict is not None:
                status = verdict
                break
        return SolveResult(
            solver=self.name,
            status=status,
            x=x,
            iterations=monitor.iterations,
            residual_history=monitor.history_array(),
            ops=ops,
        )

    @classmethod
    def kernel_schedule(cls) -> dict[str, int]:
        return {"spmv": 1, "vadd": 2, "scale": 1, "norm": 1}
