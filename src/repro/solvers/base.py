"""Shared solver infrastructure: results, statuses, operation counting.

The accelerator's cost models do not time Python code — they replay the
*kernel schedule* a solver executed (how many SpMV passes, dot products,
AXPYs, …) through a cycle-level device model.  Every solver therefore
records its kernel invocations in an :class:`OpCounter` while it iterates,
and returns them inside :class:`SolveResult`.
"""

from __future__ import annotations

import enum
import functools
from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, TypeVar

import numpy as np

from repro.errors import ShapeMismatchError
from repro.sparse.csr import CSRMatrix


_F = TypeVar("_F", bound=Callable)


def tolerate_float_excursions(solve_method: _F) -> _F:
    """Silence numpy overflow/invalid warnings inside a solver loop.

    Divergence legitimately overflows fp32 before the monitor detects it
    (the iterates blow up by design on a divergent system); the residual
    monitor turns the resulting inf/NaN into a clean ``DIVERGED`` status,
    so the intermediate warnings are noise.
    """

    @functools.wraps(solve_method)
    def wrapper(*args, **kwargs):
        with np.errstate(over="ignore", invalid="ignore"):
            return solve_method(*args, **kwargs)

    return wrapper  # type: ignore[return-value]


class SolveStatus(enum.Enum):
    """Terminal state of an iterative solve."""

    CONVERGED = "converged"
    DIVERGED = "diverged"
    MAX_ITERATIONS = "max_iterations"
    BREAKDOWN = "breakdown"

    @property
    def failed(self) -> bool:
        """Everything except convergence counts as failure (Table II ✗)."""
        return self is not SolveStatus.CONVERGED


class OpCounter:
    """Tallies kernel invocations; consumed by the FPGA/GPU cost models."""

    DENSE_KINDS = ("dot", "axpy", "scale", "vadd", "norm")

    def __init__(self) -> None:
        self.counts: Counter[str] = Counter()
        self.sizes: Counter[str] = Counter()

    def record(self, kind: str, size: int) -> None:
        """Count one invocation of ``kind`` touching ``size`` elements."""
        self.counts[kind] += 1
        self.sizes[kind] += int(size)

    def spmv_count(self) -> int:
        """Number of SpMV passes executed."""
        return self.counts.get("spmv", 0)

    def dense_element_total(self) -> int:
        """Total dense-kernel elements processed (for the dense cycle model)."""
        return sum(self.sizes.get(kind, 0) for kind in self.DENSE_KINDS)

    def merged_with(self, other: "OpCounter") -> "OpCounter":
        """Return a new counter with both tallies combined.

        ``Counter.update`` rather than ``Counter.__add__``: the latter
        drops non-positive entries, and a recorded kind with total size 0
        (e.g. an empty-vector kernel) must survive the merge.
        """
        merged = OpCounter()
        merged.counts.update(self.counts)
        merged.counts.update(other.counts)
        merged.sizes.update(self.sizes)
        merged.sizes.update(other.sizes)
        return merged

    def as_dict(self) -> dict[str, int]:
        return dict(self.counts)


@dataclass
class SolveResult:
    """Outcome of one iterative solve.

    Attributes
    ----------
    solver:
        Registry name of the solver that produced this result.
    status:
        Terminal :class:`SolveStatus`.
    x:
        Final iterate (the solution when ``status`` is ``CONVERGED``).
    iterations:
        Number of completed solver iterations.
    residual_history:
        Relative recursive-residual norm after each iteration, as the
        hardware tracks it (the residual from the recurrence, not a
        recomputed ``b - Ax``).
    ops:
        Kernel-invocation tally for the cost models.
    """

    solver: str
    status: SolveStatus
    x: np.ndarray
    iterations: int
    residual_history: np.ndarray
    ops: OpCounter = field(default_factory=OpCounter)

    @property
    def converged(self) -> bool:
        return self.status is SolveStatus.CONVERGED

    @property
    def final_residual(self) -> float:
        """Last recorded relative residual (inf when nothing was recorded)."""
        if len(self.residual_history) == 0:
            return float("inf")
        return float(self.residual_history[-1])


class IterativeSolver(ABC):
    """Base class for the Reconfigurable Solver unit's configurations.

    Subclasses implement :meth:`solve` with the numerical recurrence, and
    declare ``name`` (registry key) plus ``kernel_schedule`` — the per-
    iteration kernel mix the hardware executes, used for documentation and
    cross-checked against the recorded :class:`OpCounter` in tests.
    """

    name: str = "base"

    def __init__(
        self,
        tolerance: float = 1e-5,
        max_iterations: int = 4000,
        setup_iterations: int = 200,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self.setup_iterations = int(setup_iterations)
        self.dtype = np.dtype(dtype)

    # ------------------------------------------------------------------

    def _prepare(
        self, matrix: CSRMatrix, b: np.ndarray, x0: np.ndarray | None
    ) -> tuple[CSRMatrix, np.ndarray, np.ndarray]:
        """Validate shapes and cast operands to the solver precision."""
        if matrix.shape[0] != matrix.shape[1]:
            raise ShapeMismatchError(
                f"iterative solvers need a square matrix, got {matrix.shape}"
            )
        n = matrix.shape[0]
        b = np.asarray(b, dtype=self.dtype)
        if b.shape != (n,):
            raise ShapeMismatchError(f"b must have shape ({n},), got {b.shape}")
        if x0 is None:
            x0 = np.zeros(n, dtype=self.dtype)
        else:
            x0 = np.asarray(x0, dtype=self.dtype).copy()
            if x0.shape != (n,):
                raise ShapeMismatchError(f"x0 must have shape ({n},), got {x0.shape}")
        if matrix.data.dtype != self.dtype:
            matrix = matrix.astype(self.dtype)
        return matrix, b, x0

    @abstractmethod
    def solve(
        self,
        matrix: CSRMatrix,
        b: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        """Run the iteration until convergence, divergence or the cap."""

    @classmethod
    @abstractmethod
    def kernel_schedule(cls) -> dict[str, int]:
        """Per-iteration kernel mix, e.g. ``{"spmv": 2, "dot": 4, ...}``."""
