"""Convergence / divergence monitoring.

Section V-B: every solver converges when the (recursive) relative residual
drops below ``1e-5``; Acamar gives each solver a *setup time* — 200
iterations at the reference 4096×4096 problem size — before it starts
checking for divergence, because Krylov residuals are legitimately
non-monotone early on.  After the setup window, a residual that is NaN/Inf
or has grown by more than ``divergence_factor`` over the best residual seen
declares divergence, which is what triggers the Solver Modifier unit.
"""

from __future__ import annotations

import math

import numpy as np

from repro.solvers.base import SolveStatus

REFERENCE_PROBLEM_SIZE = 4096
"""Problem size at which the paper's 200-iteration setup time applies."""


def scaled_setup_iterations(n_rows: int, base: int = 200) -> int:
    """Setup iterations for a problem of ``n_rows`` rows.

    The paper states the setup time "increases with the problem size" and
    fixes it to 200 iterations for 4096×4096 problems; we scale linearly
    with a floor of 20 iterations.
    """
    if n_rows <= 0:
        return base
    scaled = int(round(base * n_rows / REFERENCE_PROBLEM_SIZE))
    return max(20, scaled)


class ConvergenceMonitor:
    """Tracks the relative residual of one solver run.

    Parameters
    ----------
    b_norm:
        Norm of the right-hand side, used to normalize residuals.  A zero
        ``b`` makes every residual converged immediately (``x = 0``).
    tolerance:
        Relative-residual convergence threshold (paper: ``1e-5``).
    max_iterations:
        Iteration cap; reaching it without convergence is a failure.
    setup_iterations:
        Grace period before divergence checks are armed.
    divergence_factor:
        Growth over the best residual that constitutes divergence.
    """

    def __init__(
        self,
        b_norm: float,
        tolerance: float = 1e-5,
        max_iterations: int = 4000,
        setup_iterations: int = 200,
        divergence_factor: float = 1e4,
    ) -> None:
        self.b_norm = float(b_norm) if b_norm > 0 else 1.0
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self.setup_iterations = int(setup_iterations)
        self.divergence_factor = float(divergence_factor)
        self.history: list[float] = []
        self.best: float = math.inf

    @property
    def iterations(self) -> int:
        """Number of residuals recorded so far."""
        return len(self.history)

    def relative(self, residual_norm: float) -> float:
        """Normalize an absolute residual norm against ``‖b‖``."""
        return float(residual_norm) / self.b_norm

    def update(self, residual_norm: float) -> SolveStatus | None:
        """Record one iteration's residual and classify the run state.

        Returns ``None`` while the solver should keep iterating, or the
        terminal :class:`SolveStatus` once the run is decided.
        """
        rel = self.relative(residual_norm)
        self.history.append(rel)
        if not math.isfinite(rel):
            return SolveStatus.DIVERGED
        if rel <= self.tolerance:
            return SolveStatus.CONVERGED
        self.best = min(self.best, rel)
        past_setup = self.iterations > self.setup_iterations
        if past_setup and rel > self.best * self.divergence_factor:
            return SolveStatus.DIVERGED
        if self.iterations >= self.max_iterations:
            return SolveStatus.MAX_ITERATIONS
        return None

    def history_array(self) -> np.ndarray:
        """Residual history as a float64 array."""
        return np.asarray(self.history, dtype=np.float64)
