"""Gauss-Seidel iteration (Table I extension).

Gauss-Seidel improves on Jacobi by consuming freshly-updated components
within the same sweep: ``x_i <- (b_i - sum_{j<i} a_ij x_j^new -
sum_{j>i} a_ij x_j^old) / a_ii``.  Like Jacobi it is guaranteed to converge
for strictly diagonally dominant matrices (Table I), and additionally for
symmetric positive-definite ones.  It is inherently sequential across rows,
which is exactly why the paper's hardware prefers the matrix-form Jacobi;
it is included here as one of the Table I methods for completeness and for
the criteria/examples modules.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.base import (
    IterativeSolver,
    OpCounter,
    SolveResult,
    SolveStatus,
    tolerate_float_excursions,
)
from repro.solvers.monitor import ConvergenceMonitor
from repro.sparse.csr import CSRMatrix


class GaussSeidelSolver(IterativeSolver):
    """Forward Gauss-Seidel sweeps with the same monitoring as Jacobi."""

    name = "gauss_seidel"

    @tolerate_float_excursions
    def solve(
        self,
        matrix: CSRMatrix,
        b: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        matrix, b, x = self._prepare(matrix, b, x0)
        ops = OpCounter()
        n = matrix.shape[0]
        diag = matrix.diagonal().astype(np.float64)
        if np.any(diag == 0):
            return SolveResult(
                solver=self.name,
                status=SolveStatus.BREAKDOWN,
                x=x,
                iterations=0,
                residual_history=np.array([], dtype=np.float64),
                ops=ops,
            )
        monitor = ConvergenceMonitor(
            b_norm=float(np.linalg.norm(b.astype(np.float64))),
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            setup_iterations=self.setup_iterations,
        )
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        x = x.astype(np.float64)
        b64 = b.astype(np.float64)
        status = SolveStatus.MAX_ITERATIONS
        while True:
            for i in range(n):
                lo, hi = indptr[i], indptr[i + 1]
                cols = indices[lo:hi]
                vals = data[lo:hi].astype(np.float64)
                off = cols != i
                acc = float(vals[off] @ x[cols[off]])
                x[i] = (b64[i] - acc) / diag[i]
            # One full sweep costs one SpMV-equivalent pass over the matrix.
            ops.record("spmv", matrix.nnz)
            residual = float(
                np.linalg.norm(
                    b64 - matrix.matvec(x.astype(self.dtype)).astype(np.float64)
                )
            )
            ops.record("spmv", matrix.nnz)
            ops.record("vadd", n)
            ops.record("norm", n)
            verdict = monitor.update(residual)
            if verdict is not None:
                status = verdict
                break
        return SolveResult(
            solver=self.name,
            status=status,
            x=x.astype(self.dtype),
            iterations=monitor.iterations,
            residual_history=monitor.history_array(),
            ops=ops,
        )

    @classmethod
    def kernel_schedule(cls) -> dict[str, int]:
        return {"spmv": 2, "vadd": 1, "norm": 1}
