"""Restarted GMRES (Table I's "General Method of Residual" extension).

GMRES minimizes the residual 2-norm over the Krylov subspace built by an
Arnoldi process, which makes it applicable to general (symmetric or not)
positive-definite systems per Table I.  The restarted variant GMRES(m)
bounds memory by rebuilding the subspace every ``m`` steps.  It is not one
of the three hardware configurations, but the Solver Modifier's design
space includes it, and it serves as the robust reference solver in tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.solvers.base import (
    IterativeSolver,
    OpCounter,
    SolveResult,
    SolveStatus,
    tolerate_float_excursions,
)
from repro.solvers.monitor import ConvergenceMonitor
from repro.sparse.csr import CSRMatrix

_BREAKDOWN_EPS = 1e-30


class GMRESSolver(IterativeSolver):
    """GMRES(m) with modified Gram-Schmidt Arnoldi and Givens rotations.

    ``max_iterations`` counts *inner* Arnoldi steps (matrix products), so
    cost is comparable with the other solvers' iteration counts.
    """

    name = "gmres"

    def __init__(self, restart: int = 32, **kwargs) -> None:
        super().__init__(**kwargs)
        if restart < 1:
            raise ConfigurationError(f"restart must be >= 1, got {restart}")
        self.restart = int(restart)

    @tolerate_float_excursions
    def solve(
        self,
        matrix: CSRMatrix,
        b: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        matrix, b, x = self._prepare(matrix, b, x0)
        ops = OpCounter()
        n = matrix.shape[0]
        monitor = ConvergenceMonitor(
            b_norm=float(np.linalg.norm(b.astype(np.float64))),
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            setup_iterations=self.setup_iterations,
        )
        x = x.astype(np.float64)
        b64 = b.astype(np.float64)
        status: SolveStatus | None = None
        while status is None:
            r = b64 - matrix.matvec(x.astype(self.dtype)).astype(np.float64)
            ops.record("spmv", matrix.nnz)
            ops.record("vadd", n)
            beta = float(np.linalg.norm(r))
            ops.record("norm", n)
            status = monitor.update(beta)
            if status is not None:
                break
            if beta < _BREAKDOWN_EPS:
                status = SolveStatus.CONVERGED
                break
            m = self.restart
            basis = np.zeros((m + 1, n), dtype=np.float64)
            hessenberg = np.zeros((m + 1, m), dtype=np.float64)
            cs = np.zeros(m)
            sn = np.zeros(m)
            g = np.zeros(m + 1)
            g[0] = beta
            basis[0] = r / beta
            k_used = 0
            for k in range(m):
                w = matrix.matvec(basis[k].astype(self.dtype)).astype(np.float64)
                ops.record("spmv", matrix.nnz)
                for i in range(k + 1):
                    hessenberg[i, k] = float(w @ basis[i])
                    w -= hessenberg[i, k] * basis[i]
                    ops.record("dot", n)
                    ops.record("axpy", n)
                hessenberg[k + 1, k] = float(np.linalg.norm(w))
                ops.record("norm", n)
                lucky = hessenberg[k + 1, k] < _BREAKDOWN_EPS
                if not lucky:
                    basis[k + 1] = w / hessenberg[k + 1, k]
                # Apply accumulated Givens rotations to the new column.
                for i in range(k):
                    temp = cs[i] * hessenberg[i, k] + sn[i] * hessenberg[i + 1, k]
                    hessenberg[i + 1, k] = (
                        -sn[i] * hessenberg[i, k] + cs[i] * hessenberg[i + 1, k]
                    )
                    hessenberg[i, k] = temp
                denom = np.hypot(hessenberg[k, k], hessenberg[k + 1, k])
                if denom < _BREAKDOWN_EPS:
                    cs[k], sn[k] = 1.0, 0.0
                else:
                    cs[k] = hessenberg[k, k] / denom
                    sn[k] = hessenberg[k + 1, k] / denom
                hessenberg[k, k] = denom
                hessenberg[k + 1, k] = 0.0
                g[k + 1] = -sn[k] * g[k]
                g[k] = cs[k] * g[k]
                k_used = k + 1
                status = monitor.update(abs(g[k + 1]))
                if status is not None or lucky:
                    break
            # Solve the triangular system and update x with the Krylov combo.
            if k_used:
                y = np.zeros(k_used)
                for i in range(k_used - 1, -1, -1):
                    y[i] = (
                        g[i] - hessenberg[i, i + 1 : k_used] @ y[i + 1 : k_used]
                    ) / hessenberg[i, i]
                x = x + basis[:k_used].T @ y
                ops.record("axpy", n)
            if status is SolveStatus.CONVERGED:
                break
        return SolveResult(
            solver=self.name,
            status=status if status is not None else SolveStatus.MAX_ITERATIONS,
            x=x.astype(self.dtype),
            iterations=monitor.iterations,
            residual_history=monitor.history_array(),
            ops=ops,
        )

    @classmethod
    def kernel_schedule(cls) -> dict[str, int]:
        # Per inner Arnoldi step (orthogonalization cost grows with k; this
        # is the leading-order mix at k ~ restart/2).
        return {"spmv": 1, "dot": 16, "axpy": 16, "norm": 1}
