"""Multicolor Gauss-Seidel (vectorizable GS, extension solver).

Plain Gauss-Seidel updates rows sequentially — fine mathematically,
hopeless for wide hardware.  Multicolor GS reorders the sweep by graph
color: rows of one color have no mutual coupling, so each color class
updates as one vectorized Jacobi-style step *using the freshest values of
all other colors*.  For the 5-point Laplacian this is the textbook
red-black Gauss-Seidel; convergence matches lexicographic GS to within a
constant while every step is a full-width SpMV — exactly the execution
shape Acamar's SpMV unit wants.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.base import (
    IterativeSolver,
    OpCounter,
    SolveResult,
    SolveStatus,
    tolerate_float_excursions,
)
from repro.solvers.monitor import ConvergenceMonitor
from repro.sparse.coloring import color_classes, greedy_coloring
from repro.sparse.csr import CSRMatrix


class MulticolorGaussSeidelSolver(IterativeSolver):
    """Gauss-Seidel swept in greedy-coloring order, one color per step."""

    name = "multicolor_gs"

    @tolerate_float_excursions
    def solve(
        self,
        matrix: CSRMatrix,
        b: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        matrix, b, x = self._prepare(matrix, b, x0)
        ops = OpCounter()
        n = matrix.shape[0]
        diag = matrix.diagonal().astype(np.float64)
        if np.any(diag == 0):
            return SolveResult(
                solver=self.name,
                status=SolveStatus.BREAKDOWN,
                x=x,
                iterations=0,
                residual_history=np.array([], dtype=np.float64),
                ops=ops,
            )
        colors = greedy_coloring(matrix)
        classes = color_classes(colors)
        # Per-color off-diagonal row slices, pre-extracted for vector steps.
        off_diag = matrix.without_diagonal()

        monitor = ConvergenceMonitor(
            b_norm=float(np.linalg.norm(b.astype(np.float64))),
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            setup_iterations=self.setup_iterations,
        )
        x64 = x.astype(np.float64)
        b64 = b.astype(np.float64)
        status = SolveStatus.MAX_ITERATIONS
        while True:
            for rows in classes:
                # One vectorized step: rows of this color read only other
                # colors' (already updated) values.
                coupled = off_diag.matvec(x64.astype(self.dtype)).astype(
                    np.float64
                )
                ops.record("spmv", off_diag.nnz)
                x64[rows] = (b64[rows] - coupled[rows]) / diag[rows]
                ops.record("scale", len(rows))
            residual = float(
                np.linalg.norm(
                    b64 - matrix.matvec(x64.astype(self.dtype)).astype(np.float64)
                )
            )
            ops.record("spmv", matrix.nnz)
            ops.record("vadd", n)
            ops.record("norm", n)
            verdict = monitor.update(residual)
            if verdict is not None:
                status = verdict
                break
        return SolveResult(
            solver=self.name,
            status=status,
            x=x64.astype(self.dtype),
            iterations=monitor.iterations,
            residual_history=monitor.history_array(),
            ops=ops,
        )

    @classmethod
    def kernel_schedule(cls) -> dict[str, int]:
        # One SpMV per color class plus the residual check; the paper's
        # matrices color in a handful of classes.
        return {"spmv": 4, "scale": 3, "vadd": 1, "norm": 1}
