"""Scheduled Relaxation Jacobi (paper reference [74], Yang & Mittal 2014).

Plain Jacobi damps each error mode by ``1 - ω λ`` per sweep; no single
relaxation factor handles both the smooth (small ``λ``) and rough (large
``λ``) ends of the spectrum, which is why Jacobi crawls on PDE meshes.
SRJ cycles through a short *schedule* of relaxation factors — large ones
to attack smooth modes, small ones to keep rough modes stable — and
recovers order-of-magnitude speedups over plain Jacobi while keeping its
embarrassingly parallel per-sweep structure (the property that made
Jacobi attractive to the paper's hardware in the first place).

The default schedules below are the P-level sets published for the
5-point Laplacian family; a custom schedule can be passed directly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.solvers.base import (
    IterativeSolver,
    OpCounter,
    SolveResult,
    SolveStatus,
    tolerate_float_excursions,
)
from repro.solvers.monitor import ConvergenceMonitor
from repro.sparse.csr import CSRMatrix

SRJ_SCHEDULES: dict[int, tuple[float, ...]] = {
    1: (1.0,),
    # P=2 and P=3 schedules (relaxation factors with repeat counts
    # unrolled) from the scheduled-relaxation literature for Laplacian-
    # type spectra; larger factors over-relax smooth modes, the trailing
    # under-relaxations re-stabilize the rough ones.
    2: (6.874, 0.5173, 0.5173, 0.5173, 0.5173, 0.5173),
    3: (13.775, 2.5234, 2.5234, 0.5126, 0.5126, 0.5126, 0.5126, 0.5126,
        0.5126, 0.5126),
}
"""Published relaxation schedules keyed by level count P."""


class ScheduledRelaxationJacobiSolver(IterativeSolver):
    """Jacobi with a cyclic relaxation-factor schedule.

    ``x_{j+1} = x_j + ω_j D^-1 (b - A x_j)`` with ``ω_j`` cycling through
    the schedule.  ``levels`` picks a published schedule; ``schedule``
    overrides it with explicit factors.
    """

    name = "srj"

    def __init__(
        self,
        levels: int = 2,
        schedule: tuple[float, ...] | None = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if schedule is not None:
            factors = tuple(float(w) for w in schedule)
        else:
            if levels not in SRJ_SCHEDULES:
                raise ConfigurationError(
                    f"no published schedule for P={levels}; available: "
                    f"{sorted(SRJ_SCHEDULES)}"
                )
            factors = SRJ_SCHEDULES[levels]
        if not factors or any(w <= 0 for w in factors):
            raise ConfigurationError(
                f"schedule must be non-empty and positive, got {factors}"
            )
        self.schedule = factors

    @tolerate_float_excursions
    def solve(
        self,
        matrix: CSRMatrix,
        b: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> SolveResult:
        matrix, b, x = self._prepare(matrix, b, x0)
        ops = OpCounter()
        n = matrix.shape[0]
        diag = matrix.diagonal().astype(np.float64)
        if np.any(diag == 0):
            return SolveResult(
                solver=self.name,
                status=SolveStatus.BREAKDOWN,
                x=x,
                iterations=0,
                residual_history=np.array([], dtype=np.float64),
                ops=ops,
            )
        inv_diag = 1.0 / diag
        # Published schedules are derived for Jacobi-preconditioned
        # spectra spanning (0, 2) (Laplacian-type).  Rescale the factors
        # so the actual spectrum of D^-1 A — whose upper edge is
        # 1 + rho(D^-1 (L+U)) — maps onto the design interval; without
        # this, strongly dominant matrices (narrow spectra) would see the
        # large factors amplify instead of over-relax.
        from repro.sparse.properties import jacobi_iteration_spectral_radius

        rho_t = jacobi_iteration_spectral_radius(matrix, n_iters=60)
        if np.isfinite(rho_t) and rho_t < 1.0:
            scale = 2.0 / (1.0 + rho_t)
        else:
            rho_t = 1.0
            scale = 1.0
        schedule = tuple(w * scale for w in self.schedule)
        # Stability check: the per-cycle amplification G(λ) = Π(1 - ωλ)
        # must stay below 1 over the whole (scaled) spectrum estimate.
        # SRJ schedules are designed for wide Laplacian-type spectra; on a
        # narrow (strongly dominant) spectrum the large factors amplify
        # mid-range modes, so fall back to plain Jacobi there.
        lam_lo = max((1.0 - rho_t) * scale, 1e-9)
        lam_hi = (1.0 + rho_t) * scale
        samples = np.linspace(lam_lo, lam_hi, 512)
        gain = np.ones_like(samples)
        for omega in schedule:
            gain *= 1.0 - omega * samples
        if float(np.abs(gain).max()) >= 1.0 - 1e-9:
            schedule = (1.0,)
        monitor = ConvergenceMonitor(
            b_norm=float(np.linalg.norm(b.astype(np.float64))),
            tolerance=self.tolerance,
            max_iterations=self.max_iterations,
            setup_iterations=self.setup_iterations,
        )
        x64 = x.astype(np.float64)
        b64 = b.astype(np.float64)
        status = SolveStatus.MAX_ITERATIONS
        step = 0
        while True:
            omega = schedule[step % len(schedule)]
            step += 1
            residual_vec = b64 - matrix.matvec(x64.astype(self.dtype)).astype(
                np.float64
            )
            ops.record("spmv", matrix.nnz)
            ops.record("vadd", n)
            x64 = x64 + omega * (inv_diag * residual_vec)
            ops.record("scale", n)
            ops.record("axpy", n)
            residual = float(np.linalg.norm(residual_vec))
            ops.record("norm", n)
            verdict = monitor.update(residual)
            if verdict is not None:
                status = verdict
                break
        return SolveResult(
            solver=self.name,
            status=status,
            x=x64.astype(self.dtype),
            iterations=monitor.iterations,
            residual_history=monitor.history_array(),
            ops=ops,
        )

    @classmethod
    def kernel_schedule(cls) -> dict[str, int]:
        return {"spmv": 1, "vadd": 1, "scale": 1, "axpy": 1, "norm": 1}
