"""GPU device description (Nvidia GTX 1650 Super class).

The paper's GPU reference point runs cuSPARSE CSR SpMV on a GTX 1650 Super
(CUDA 11.6, profiled with Nsight).  This module carries the public
specifications of that part; the kernel behaviour lives in
:mod:`repro.gpu.cusparse_model`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GPUDevice:
    """Public-spec description of the modeled GPU.

    Attributes
    ----------
    cuda_cores:
        FP32 lanes across the chip (1650 Super / TU116: 1280).
    n_sms:
        Streaming multiprocessors (20).
    boost_clock_hz:
        Boost clock used for peak-FLOPs math.
    memory_bandwidth_bps:
        GDDR6 peak bandwidth (12 Gbps on a 128-bit bus → 192 GB/s).
    warp_size:
        Threads per warp (32 on all Nvidia parts).
    memory_efficiency:
        Fraction of peak DRAM bandwidth a strided sparse kernel sustains.
    gather_cycles_per_element:
        Effective issue cycles each non-zero costs a lane (irregular
        gather of ``x`` dominates; calibrated, not measured).
    """

    name: str = "gtx-1650-super"
    cuda_cores: int = 1280
    n_sms: int = 20
    boost_clock_hz: float = 1.725e9
    memory_bandwidth_bps: float = 192e9
    warp_size: int = 32
    memory_efficiency: float = 0.65
    gather_cycles_per_element: float = 4.0

    def __post_init__(self) -> None:
        if self.cuda_cores < 1 or self.n_sms < 1:
            raise ConfigurationError("GPU needs at least one core and one SM")
        if not 0.0 < self.memory_efficiency <= 1.0:
            raise ConfigurationError(
                f"memory_efficiency must be in (0, 1], got {self.memory_efficiency}"
            )

    @property
    def peak_flops(self) -> float:
        """Peak fp32 throughput (2 FLOPs per core per cycle, FMA)."""
        return 2.0 * self.cuda_cores * self.boost_clock_hz


GTX_1650_SUPER = GPUDevice()
"""Default GPU instance used by the experiments."""
