"""Analytic model of cuSPARSE's CSR SpMV on the modeled GPU.

cuSPARSE's CSR kernel (the ``spmv_csr`` sample the paper links) assigns a
warp of 32 threads to each matrix row; the warp strides the row's non-zeros
cooperatively and reduces with shuffles.  Two inefficiencies follow, and
they are what Figures 8 and 9 (bottom) measure:

- **lane underutilization** — a row of ``nnz`` non-zeros keeps only
  ``nnz / (32 * ceil(nnz/32))`` of its warp's lanes busy; scientific
  matrices with ~5–10 NNZ/row leave ~80 % of lanes idle, matching the
  paper's 81 % average GPU underutilization;
- **memory-bound throughput** — SpMV moves ~12 bytes per FLOP pair, so the
  achieved FLOP rate is capped by DRAM bandwidth at a tiny percentage of
  the chip's 4.4 TFLOPS fp32 peak.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.device import GTX_1650_SUPER, GPUDevice
from repro.sparse.csr import CSRMatrix

CSR_BYTES_PER_NNZ = 12.0
"""Traffic per stored non-zero: 4 B value + 4 B column index + ~4 B of
``x`` gather (cache-amortized)."""

CSR_BYTES_PER_ROW = 16.0
"""Traffic per row: indptr reads plus ``y`` write-back."""


def _validated_row_lengths(row_lengths: np.ndarray) -> np.ndarray:
    """Coerce a row-length profile to int64 and reject negatives.

    The serving placement model calls these helpers per profiled source,
    so malformed inputs must fail loudly here rather than produce NaN
    underutilization downstream.
    """
    nnz = np.asarray(row_lengths, dtype=np.int64)
    if nnz.ndim != 1:
        raise ConfigurationError(
            f"row_lengths must be one-dimensional, got shape {nnz.shape}"
        )
    if nnz.size and int(nnz.min()) < 0:
        raise ConfigurationError(
            f"row_lengths must be >= 0, got minimum {int(nnz.min())}"
        )
    return nnz


@dataclass(frozen=True)
class GPUSpMVReport:
    """Modeled execution of one cuSPARSE CSR SpMV pass."""

    seconds: float
    flops: float
    lane_underutilization: float
    achieved_flops: float
    peak_flops: float
    memory_bound: bool

    @property
    def achieved_fraction(self) -> float:
        """Achieved / peak throughput (Figure 9 bottom's y-axis).

        Defined on every sweep the model can produce: a zero-FLOP pass
        (empty matrix, or all rows empty) reports exactly 0.0, and a
        device modeled with zero peak FLOPs reports 0.0 rather than
        dividing by zero.
        """
        if self.peak_flops == 0:
            return 0.0
        return self.achieved_flops / self.peak_flops

    @property
    def underutilization(self) -> float:
        """Compute-unit underutilization (Figure 8's y-axis)."""
        return self.lane_underutilization


def warp_lane_underutilization(row_lengths: np.ndarray, warp_size: int = 32) -> float:
    """Mean idle-lane fraction of the warp-per-row (CSR-vector) kernel.

    A row with zero non-zeros still schedules its warp for the reduction
    epilogue, wasting all lanes — an all-empty matrix is therefore fully
    underutilized (1.0), while a zero-row matrix schedules no warps at
    all and reports 0.0.  Both edges are defined (no division by zero):
    the per-row lane-slot count is floored at one warp.
    """
    nnz = _validated_row_lengths(row_lengths)
    if len(nnz) == 0:
        return 0.0
    slots = np.maximum(1, -(-nnz // warp_size))
    util = nnz / (slots * warp_size)
    return float(1.0 - util.mean())


def scalar_kernel_underutilization(
    row_lengths: np.ndarray, warp_size: int = 32
) -> float:
    """Idle-lane fraction of the thread-per-row (CSR-scalar) kernel.

    Thirty-two consecutive rows share a warp; every lane iterates until
    the warp's *longest* row finishes, so the divergence waste of a warp
    is ``1 - sum(nnz) / (32 · max(nnz))``.

    Edge cases are defined, not accidental: a zero-row matrix reports
    0.0 (no warps scheduled), and an all-empty-row matrix reports 1.0
    because each warp still runs its floor of one iteration with every
    lane idle (``longest`` is clamped below at 1).
    """
    nnz = _validated_row_lengths(row_lengths)
    if len(nnz) == 0:
        return 0.0
    pad = (-len(nnz)) % warp_size
    padded = np.concatenate([nnz, np.zeros(pad, dtype=np.int64)])
    groups = padded.reshape(-1, warp_size)
    longest = np.maximum(1, groups.max(axis=1))
    busy = groups.sum(axis=1)
    provisioned = warp_size * longest
    return float(1.0 - busy.sum() / provisioned.sum())


ADAPTIVE_VECTOR_THRESHOLD = 8.0
"""Mean NNZ/row above which the adaptive policy picks the vector kernel
(cuSPARSE-like heuristic: long rows amortize the warp-wide reduction)."""


class CuSparseSpMVModel:
    """Times CSR SpMV passes on a :class:`GPUDevice`.

    ``kernel`` selects the execution scheme the way cuSPARSE's internal
    heuristics do: ``"vector"`` (warp per row — best for long rows),
    ``"scalar"`` (thread per row — best for short rows, but divergent on
    irregular ones), or ``"adaptive"`` (pick by mean row length).
    """

    KERNELS = ("vector", "scalar", "adaptive")

    def __init__(
        self, device: GPUDevice = GTX_1650_SUPER, kernel: str = "vector"
    ) -> None:
        if kernel not in self.KERNELS:
            raise ConfigurationError(
                f"unknown GPU kernel {kernel!r}; expected one of {self.KERNELS}"
            )
        self.device = device
        self.kernel = kernel

    def _resolve_kernel(self, nnz_per_row: np.ndarray) -> str:
        if self.kernel != "adaptive":
            return self.kernel
        mean = float(nnz_per_row.mean()) if len(nnz_per_row) else 0.0
        return "vector" if mean >= ADAPTIVE_VECTOR_THRESHOLD else "scalar"

    def sweep(self, matrix: CSRMatrix) -> GPUSpMVReport:
        """Model one SpMV pass over ``matrix``."""
        return self.sweep_from_row_lengths(matrix.row_lengths())

    def sweep_from_row_lengths(self, row_lengths: np.ndarray) -> GPUSpMVReport:
        """Model one pass given only the NNZ/row profile.

        A zero-row profile is a defined no-op — zero seconds, zero
        FLOPs, zero underutilization, memory-bound by convention (the
        pass moves no data and runs no lanes).  An all-empty-row
        profile still pays the indptr traffic and the per-warp floor
        iteration, so it takes nonzero seconds for zero FLOPs and its
        achieved fraction is exactly 0.0.
        """
        nnz_per_row = _validated_row_lengths(row_lengths)
        if len(nnz_per_row) == 0:
            return GPUSpMVReport(
                seconds=0.0,
                flops=0.0,
                lane_underutilization=0.0,
                achieved_flops=0.0,
                peak_flops=self.device.peak_flops,
                memory_bound=True,
            )
        nnz = int(nnz_per_row.sum())
        n_rows = len(nnz_per_row)
        device = self.device
        kernel = self._resolve_kernel(nnz_per_row)

        # Compute time: lane-cycles issued / chip-wide lane throughput.
        if kernel == "vector":
            slots = np.maximum(1, -(-nnz_per_row // device.warp_size))
            lane_slots = float(slots.sum()) * device.warp_size
            underutilization = warp_lane_underutilization(
                nnz_per_row, device.warp_size
            )
        else:  # scalar: warps of 32 rows run to their longest member
            pad = (-n_rows) % device.warp_size
            padded = np.concatenate(
                [nnz_per_row, np.zeros(pad, dtype=np.int64)]
            )
            groups = padded.reshape(-1, device.warp_size)
            longest = np.maximum(1, groups.max(axis=1))
            lane_slots = float(longest.sum()) * device.warp_size
            underutilization = scalar_kernel_underutilization(
                nnz_per_row, device.warp_size
            )
        lane_cycles = lane_slots * device.gather_cycles_per_element
        compute_seconds = lane_cycles / (device.cuda_cores * device.boost_clock_hz)

        # Memory time: CSR traffic at sustained (de-rated) bandwidth.
        traffic = CSR_BYTES_PER_NNZ * nnz + CSR_BYTES_PER_ROW * n_rows
        memory_seconds = traffic / (
            device.memory_bandwidth_bps * device.memory_efficiency
        )

        seconds = max(compute_seconds, memory_seconds)
        flops = 2.0 * nnz
        return GPUSpMVReport(
            seconds=seconds,
            flops=flops,
            lane_underutilization=underutilization,
            achieved_flops=flops / seconds if seconds > 0 else 0.0,
            peak_flops=device.peak_flops,
            memory_bound=memory_seconds >= compute_seconds,
        )
