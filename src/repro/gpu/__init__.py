"""Analytic GPU baseline (Nvidia GTX 1650 Super + cuSPARSE CSR SpMV).

Stands in for the paper's physical GPU measurements (Nsight profiles of
the cuSPARSE ``spmv_csr`` sample on CUDA 11.6): a warp-per-row occupancy
model for compute-unit underutilization (Figure 8) and a memory-bound
roofline for achieved-vs-peak throughput (Figure 9, bottom).
"""

from repro.gpu.cusparse_model import (
    ADAPTIVE_VECTOR_THRESHOLD,
    CuSparseSpMVModel,
    GPUSpMVReport,
    scalar_kernel_underutilization,
    warp_lane_underutilization,
)
from repro.gpu.device import GTX_1650_SUPER, GPUDevice

__all__ = [
    "ADAPTIVE_VECTOR_THRESHOLD",
    "CuSparseSpMVModel",
    "scalar_kernel_underutilization",
    "GPUDevice",
    "GPUSpMVReport",
    "GTX_1650_SUPER",
    "warp_lane_underutilization",
]
