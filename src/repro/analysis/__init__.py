"""Analysis tooling: convergence diagnostics and the invariant linter.

Two halves share this package:

- :mod:`repro.analysis.convergence` — the "why did my solver diverge"
  utilities (residual-trajectory summaries, rate extrapolation, ASCII
  trajectory plots, failure diagnosis), re-exported here so the
  long-standing ``from repro.analysis import summarize_residuals``
  imports keep working;
- :mod:`repro.analysis.engine` + :mod:`repro.analysis.checkers` — the
  AST-based lint engine that machine-checks the repo's determinism,
  layering, numeric-safety, exception, telemetry-naming and
  virtual-clock contracts (rule ids REP001–REP006), fronted by the
  ``repro lint`` CLI with baseline suppression in
  :mod:`repro.analysis.baseline`.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.checkers import (
    ALL_CHECKERS,
    RULE_IDS,
    checkers_for_rules,
)
from repro.analysis.convergence import (
    ResidualSummary,
    diagnose_failure,
    iterations_to_tolerance,
    render_residual_history,
    summarize_residuals,
)
from repro.analysis.engine import (
    FORMATS,
    Checker,
    Finding,
    LintReport,
    SourceFile,
    format_findings,
    run_lint,
)

__all__ = [
    "ALL_CHECKERS",
    "DEFAULT_BASELINE",
    "FORMATS",
    "Checker",
    "Finding",
    "LintReport",
    "RULE_IDS",
    "ResidualSummary",
    "SourceFile",
    "apply_baseline",
    "checkers_for_rules",
    "diagnose_failure",
    "format_findings",
    "iterations_to_tolerance",
    "load_baseline",
    "render_residual_history",
    "run_lint",
    "summarize_residuals",
    "write_baseline",
]
