"""Analysis tooling: convergence diagnostics and the invariant linter.

Two halves share this package:

- :mod:`repro.analysis.convergence` — the "why did my solver diverge"
  utilities (residual-trajectory summaries, rate extrapolation, ASCII
  trajectory plots, failure diagnosis), re-exported here so the
  long-standing ``from repro.analysis import summarize_residuals``
  imports keep working;
- :mod:`repro.analysis.engine` + :mod:`repro.analysis.checkers` — the
  AST-based lint engine that machine-checks the repo's file-scoped
  contracts (determinism, layering, numeric safety, exceptions,
  telemetry naming, virtual clock — REP001–REP006), extended by
  :mod:`repro.analysis.project` into a whole-program pass with
  cross-module rules (telemetry liveness, worker-boundary purity, CLI
  exit contract, determinism escapes — REP007–REP010), an incremental
  content-hash cache and ``run_sharded`` fan-out; fronted by the
  ``repro lint`` CLI with baseline suppression in
  :mod:`repro.analysis.baseline` and SARIF output in
  :mod:`repro.analysis.sarif`.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    prune_baseline,
    write_baseline,
)
from repro.analysis.checkers import (
    ALL_CHECKERS,
    ALL_PROJECT_CHECKERS,
    ALL_RULES,
    PROJECT_RULE_IDS,
    RULE_IDS,
    checkers_for_rules,
    partition_checkers,
)
from repro.analysis.convergence import (
    ResidualSummary,
    diagnose_failure,
    iterations_to_tolerance,
    render_residual_history,
    summarize_residuals,
)
from repro.analysis.engine import (
    FORMATS,
    Checker,
    Finding,
    LintReport,
    SourceFile,
    format_findings,
    run_lint,
)
from repro.analysis.project import (
    DEFAULT_CACHE_NAME,
    ProjectChecker,
    ProjectIndex,
    changed_files,
    run_project_lint,
)

__all__ = [
    "ALL_CHECKERS",
    "ALL_PROJECT_CHECKERS",
    "ALL_RULES",
    "DEFAULT_BASELINE",
    "DEFAULT_CACHE_NAME",
    "FORMATS",
    "Checker",
    "Finding",
    "LintReport",
    "PROJECT_RULE_IDS",
    "ProjectChecker",
    "ProjectIndex",
    "RULE_IDS",
    "ResidualSummary",
    "SourceFile",
    "apply_baseline",
    "changed_files",
    "checkers_for_rules",
    "diagnose_failure",
    "format_findings",
    "iterations_to_tolerance",
    "load_baseline",
    "partition_checkers",
    "prune_baseline",
    "render_residual_history",
    "run_lint",
    "run_project_lint",
    "summarize_residuals",
    "write_baseline",
]
