"""The invariant lint engine: parse once, dispatch to checkers.

The repo's most valuable guarantees — byte-identical serving reports on
a virtual clock, bit-identical seed-kernel SpMV parity, deterministic
per-position campaign seeds, and the ``sparse → fpga → solvers →
serve/parallel → cli`` layering — are contracts that generic linters
cannot express.  This module provides the machinery to machine-check
them:

- :class:`SourceFile` — one parsed file (text, AST, dotted module name),
- :class:`Finding` — one rule violation with a line-independent
  fingerprint so baselines survive unrelated edits,
- :class:`Checker` — the protocol every rule implements,
- :func:`run_lint` — walk paths, parse each file once, dispatch every
  checker over the shared AST, return sorted findings,
- :func:`format_findings` — ``text`` / ``json`` / ``github`` / ``sarif``
  renderers (``github`` emits workflow annotation commands so findings
  land on PR diffs; ``sarif`` emits a SARIF 2.1.0 log for code-scanning
  upload, rendered by :mod:`repro.analysis.sarif`).

Checkers live in :mod:`repro.analysis.checkers`; baseline suppression in
:mod:`repro.analysis.baseline`; the CLI front-end is ``repro lint``.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Protocol, Sequence

from repro.errors import ConfigurationError

ANALYSIS_SCHEMA_VERSION = 1

FORMATS = ("text", "json", "github", "sarif")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific site."""

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"

    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching.

        Deliberately excludes the line number so a grandfathered finding
        stays suppressed when unrelated edits shift it around the file.
        """
        return f"{self.rule}|{self.path}|{self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "severity": self.severity,
        }

    def sort_key(self) -> tuple[str, int, str]:
        return (self.path, self.line, self.rule)


@dataclass(frozen=True)
class SourceFile:
    """One parsed Python file, shared by every checker."""

    path: Path
    """Absolute filesystem path."""
    display_path: str
    """Repo-relative POSIX path used in findings and baselines."""
    module: str | None
    """Dotted module name (``repro.serve.service``) when the file lives
    under the ``repro`` package, else ``None`` — package-scoped checkers
    skip such files."""
    text: str
    tree: ast.Module

    def finding(
        self, rule: str, node: ast.AST | int, message: str
    ) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            rule=rule, path=self.display_path, line=line, message=message
        )


class Checker(Protocol):
    """One lint rule: inspect a parsed file, yield findings."""

    rule_id: str
    title: str

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Yield every violation of this rule in ``source``."""
        ...  # pragma: no cover — protocol body


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding]
    suppressed: int = 0
    stale_baseline: list[str] = field(default_factory=list)
    files_checked: int = 0
    cache_hits: int = 0
    """Files whose per-file results were reused from the incremental
    cache (whole-program runs only).  Deliberately **not** rendered by
    any formatter: cold-cache, warm-cache and ``--workers N`` runs must
    stay byte-identical on stdout."""
    cache_misses: int = 0
    """Files that had to be (re)parsed this run.  Not rendered either."""

    @property
    def clean(self) -> bool:
        return not self.findings


def module_name_for(path: Path) -> str | None:
    """Dotted module name for a file under a ``repro`` source tree.

    Walks the path components for the last ``repro`` segment (the
    package root under ``src/``); files outside any ``repro`` package —
    tests, benchmarks, fixtures — return ``None``.
    """
    parts = path.resolve().with_suffix("").parts
    if "repro" not in parts:
        return None
    root = len(parts) - 1 - tuple(reversed(parts)).index("repro")
    dotted = parts[root:]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1] or ("repro",)
    return ".".join(dotted)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories to a sorted, deduplicated ``.py`` list."""
    seen: set[Path] = set()
    collected: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        elif not path.exists():
            raise ConfigurationError(f"lint path does not exist: {path}")
        else:
            candidates = []
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return iter(collected)


def load_source(
    path: Path, root: Path | None = None, text: str | None = None
) -> SourceFile:
    """Parse one file into the :class:`SourceFile` all checkers share.

    ``text`` short-circuits the disk read when the caller already holds
    the file contents (the whole-program pass reads bytes once to
    content-hash them for the incremental cache).
    """
    if text is None:
        text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        raise ConfigurationError(
            f"cannot lint {path}: {exc.msg} (line {exc.lineno})"
        ) from exc
    resolved = path.resolve()
    display = resolved
    base = (root or Path.cwd()).resolve()
    try:
        display = resolved.relative_to(base)
    except ValueError:
        pass
    return SourceFile(
        path=resolved,
        display_path=display.as_posix(),
        module=module_name_for(path),
        text=text,
        tree=tree,
    )


def run_lint(
    paths: Sequence[Path],
    checkers: Sequence[Checker],
    root: Path | None = None,
) -> LintReport:
    """Run every checker over every file; findings come back sorted."""
    findings: list[Finding] = []
    files_checked = 0
    for path in iter_python_files(paths):
        source = load_source(path, root=root)
        files_checked += 1
        for checker in checkers:
            findings.extend(checker.check(source))
    findings.sort(key=Finding.sort_key)
    return LintReport(findings=findings, files_checked=files_checked)


# -- rendering ----------------------------------------------------------


def _render_text(report: LintReport) -> str:
    lines = [
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in report.findings
    ]
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_checked} "
        f"file(s)"
    )
    if report.suppressed:
        summary += f", {report.suppressed} baseline-suppressed"
    lines.append(summary)
    for stale in report.stale_baseline:
        lines.append(f"note: stale baseline entry (no longer fires): {stale}")
    return "\n".join(lines)


def _render_json(report: LintReport) -> str:
    document = {
        "schema_version": ANALYSIS_SCHEMA_VERSION,
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "stale_baseline": list(report.stale_baseline),
        "findings": [f.as_dict() for f in report.findings],
    }
    return json.dumps(document, indent=2)


def _render_github(report: LintReport) -> str:
    """GitHub Actions workflow commands — one annotation per finding."""
    lines = []
    for f in report.findings:
        # Workflow-command data must escape %, CR and LF.
        message = (
            f.message.replace("%", "%25")
            .replace("\r", "%0D")
            .replace("\n", "%0A")
        )
        lines.append(
            f"::error file={f.path},line={f.line},title={f.rule}::{message}"
        )
    lines.append(
        f"{len(report.findings)} finding(s) in "
        f"{report.files_checked} file(s)"
    )
    return "\n".join(lines)


def format_findings(report: LintReport, fmt: str = "text") -> str:
    """Render a report as ``text``, ``json``, ``github`` or ``sarif``."""
    if fmt == "text":
        return _render_text(report)
    if fmt == "json":
        return _render_json(report)
    if fmt == "github":
        return _render_github(report)
    if fmt == "sarif":
        # Imported lazily: the SARIF renderer needs the rule catalogue
        # from repro.analysis.checkers, which imports this module.
        from repro.analysis.sarif import render_sarif

        return render_sarif(report)
    raise ConfigurationError(
        f"unknown lint format {fmt!r}; expected one of {FORMATS}"
    )
