"""The whole-program analysis layer behind ``repro lint``.

The per-file engine (:mod:`repro.analysis.engine`) can only see one
AST at a time, so cross-module contract violations — a registered
telemetry counter nobody emits, an unpicklable object handed across the
``run_sharded`` worker boundary, a wall-clock value laundered into the
deterministic core through a helper re-export — are invisible to it.
This module closes that gap with a classic two-phase design:

**Phase 1 (per file, cacheable, parallelizable).**  Each file is parsed
once; the file-scoped checkers (REP001–REP006) run over the tree, and a
JSON-serializable *facts record* is extracted: emitted telemetry names,
module-level definitions, import bindings, ``run_sharded`` boundary
calls, CLI return/exit shapes, determinism-tainted exports, and — for
``repro.telemetry`` itself — the literal name registry.  Phase-1 output
is keyed by content hash in an incremental cache
(``.repro-lint-cache.json``) and, for cold files, fanned out over the
:mod:`repro.parallel` process pool.

**Phase 2 (whole program, cheap, serial).**  The facts are assembled
into a :class:`ProjectIndex` — a module name → facts map with
qualified-name resolution — and the project-scoped checkers
(REP007–REP010 in :mod:`repro.analysis.checkers`) run over it.

Output is **byte-identical** between cold-cache, warm-cache and
``--workers N`` runs: facts and findings round-trip through JSON, the
final report is fully sorted, and cache statistics are kept off every
renderer.
"""

from __future__ import annotations

import ast
import hashlib
import json
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Protocol, Sequence

from repro import telemetry as tm
from repro.analysis.checkers.common import ImportMap, qualified_name
from repro.analysis.engine import (
    Finding,
    LintReport,
    SourceFile,
    iter_python_files,
    load_source,
)
from repro.config import AcamarConfig
from repro.errors import ConfigurationError
from repro.parallel import ItemResult, WorkItem, run_sharded

FACTS_VERSION = 1
"""Schema version of the per-file facts record."""

LINT_CACHE_VERSION = 1
"""Bumped whenever phase-1 semantics change; invalidates every cache."""

DEFAULT_CACHE_NAME = ".repro-lint-cache.json"
"""Cache file name, created next to the lint root (gitignored)."""

#: Qualified names that mark a call as crossing the worker boundary.
BOUNDARY_FUNCTIONS = frozenset({
    "repro.parallel.run_sharded",
    "repro.parallel.engine.run_sharded",
})

#: ``run_sharded`` keyword arguments that never cross into a worker
#: process (the executor factory runs parent-side), so REP008 must not
#: inspect them.  ``work_fn``/positional index 6 is handled separately.
_PARENT_SIDE_KWARGS = frozenset({"executor_factory"})
_WORK_FN_POSITION = 6

#: Registry constants parsed out of ``repro.telemetry``'s module body.
_REGISTRY_NAMES = {
    "KNOWN_SPANS": "spans",
    "KNOWN_COUNTERS": "counters",
    "KNOWN_DISTRIBUTIONS": "distributions",
    "KNOWN_COUNTER_PREFIXES": "prefixes",
}

#: Recording method → the emission kind it feeds (mirrors REP005).
_EMISSION_KINDS = {
    "span": "spans",
    "record_span": "spans",
    "count": "counters",
    "observe": "distributions",
}

#: Wall-clock and entropy reads whose values must not leak into the
#: deterministic core through helper modules (REP010).  Includes the
#: ``perf_counter`` pair REP001 tolerates for in-place benchmarking:
#: *returning* such a value across a module boundary is the laundering
#: hazard this rule exists for.
CLOCK_AND_ENTROPY_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.today",
    "datetime.datetime.utcnow", "datetime.date.today",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
})

#: Module roots whose re-export from a helper is itself a taint.
CLOCK_MODULE_ROOTS = ("time", "datetime", "secrets")

#: Constructors whose module-level instances are shared mutable RNG
#: streams (order-of-consumption nondeterminism even when seeded).
RNG_CONSTRUCTORS = frozenset({
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
})

#: Modules whose facts record CLI return/exit shapes for REP009.
EXIT_CONTRACT_MODULES = frozenset({"repro.cli", "repro.__main__"})


class ProjectChecker(Protocol):
    """One cross-module rule: inspect the whole index, yield findings."""

    rule_id: str
    title: str

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Yield every violation of this rule across the project."""
        ...  # pragma: no cover — protocol body


# -- phase 1: per-file fact extraction ----------------------------------


def _scope_names(fn: ast.AST) -> tuple[set[str], set[str]]:
    """(parameter names, assigned names) of one function scope."""
    params: set[str] = set()
    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = fn.args
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        ):
            params.add(arg.arg)
    assigned: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    assigned.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                assigned.add(node.target.id)
    return params, assigned


def _local_assignments(fn: ast.AST, name: str) -> list[ast.expr]:
    """Every value assigned to ``name`` inside ``fn`` (any order)."""
    values: list[ast.expr] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == name for t in node.targets
        ):
            values.append(node.value)
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == name
            and node.value is not None
        ):
            values.append(node.value)
    return values


def _classify_work_fn(
    expr: ast.expr,
    scopes: Sequence[ast.AST],
    imports: ImportMap,
    depth: int = 0,
) -> tuple[list[list[object]], list[str], list[str]]:
    """Classify a ``work_fn`` argument expression.

    Returns ``(bad, local_candidates, qualified_candidates)`` where
    ``bad`` entries are definite ``[line, reason]`` violations, local
    candidates are module-scope names to verify against this module's
    facts, and qualified candidates are dotted ``repro.*`` names to
    verify cross-module.
    """
    line = getattr(expr, "lineno", 1)
    if depth > 5:
        return (
            [[line, "work function resolution chain is too deep to prove "
                    "module-level"]],
            [], [],
        )
    if isinstance(expr, ast.Lambda):
        return (
            [[line, "a lambda cannot be pickled across the worker "
                    "boundary; define a module-level function"]],
            [], [],
        )
    if isinstance(expr, ast.IfExp):
        bad_b, loc_b, qual_b = _classify_work_fn(
            expr.body, scopes, imports, depth + 1
        )
        bad_o, loc_o, qual_o = _classify_work_fn(
            expr.orelse, scopes, imports, depth + 1
        )
        return bad_b + bad_o, loc_b + loc_o, qual_b + qual_o
    if isinstance(expr, ast.Call):
        return (
            [[line, "the result of a call expression is not provably a "
                    "picklable module-level function"]],
            [], [],
        )
    if isinstance(expr, ast.Name):
        name = expr.id
        for scope in reversed(list(scopes)):
            params, assigned = _scope_names(scope)
            if name in assigned:
                bad: list[list[object]] = []
                local: list[str] = []
                qual: list[str] = []
                for value in _local_assignments(scope, name):
                    b, lo, q = _classify_work_fn(
                        value, scopes, imports, depth + 1
                    )
                    bad += b
                    local += lo
                    qual += q
                return bad, local, qual
            if name in params:
                return (
                    [[line, f"work function flows from enclosing-function "
                            f"parameter {name!r} and cannot be proven "
                            "module-level; pass a top-level function"]],
                    [], [],
                )
        return [], [name], []
    chain_q = qualified_name(expr, imports)
    if isinstance(expr, ast.Attribute) and chain_q is not None:
        base = chain_q.split(".", 1)[0]
        if chain_q.startswith("repro."):
            return [], [], [chain_q]
        if imports.resolve(base) is not None or base in sys.stdlib_module_names:
            return [], [], []  # attribute of an imported non-repro module
        return (
            [[line, f"attribute reference {chain_q!r} is not a module-level "
                    "function; the worker boundary pickles by qualified "
                    "name"]],
            [], [],
        )
    return (
        [[line, "work function expression is not provably a module-level "
                "callable"]],
        [], [],
    )


class _BoundaryVisitor(ast.NodeVisitor):
    """Collect every ``run_sharded`` call with its enclosing scopes."""

    def __init__(self, imports: ImportMap) -> None:
        self.imports = imports
        self.scopes: list[ast.AST] = []
        self.calls: list[dict[str, Any]] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.scopes.append(node)
        self.generic_visit(node)
        self.scopes.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.scopes.append(node)
        self.generic_visit(node)
        self.scopes.pop()

    def visit_Call(self, node: ast.Call) -> None:
        target = qualified_name(node.func, self.imports)
        if target in BOUNDARY_FUNCTIONS:
            self.calls.append(self._record(node))
        self.generic_visit(node)

    def _record(self, node: ast.Call) -> dict[str, Any]:
        work_expr: ast.expr | None = None
        crossing_args: list[ast.expr] = []
        for i, arg in enumerate(node.args):
            if i == _WORK_FN_POSITION:
                work_expr = arg
            elif i == _WORK_FN_POSITION - 1:
                continue  # positional executor_factory: parent-side
            else:
                crossing_args.append(arg)
        for kw in node.keywords:
            if kw.arg == "work_fn":
                work_expr = kw.value
            elif kw.arg not in _PARENT_SIDE_KWARGS:
                crossing_args.append(kw.value)
        bad: list[list[object]] = []
        local: list[str] = []
        qual: list[str] = []
        if work_expr is not None:
            bad, local, qual = _classify_work_fn(
                work_expr, self.scopes, self.imports
            )
        args_bad: list[list[object]] = []
        for arg in crossing_args:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda):
                    args_bad.append([
                        sub.lineno,
                        "a lambda flows into the worker boundary and "
                        "cannot be pickled",
                    ])
                elif (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "open"
                ):
                    args_bad.append([
                        sub.lineno,
                        "an open() handle flows into the worker boundary "
                        "and cannot be pickled",
                    ])
        return {
            "line": node.lineno,
            "bad": sorted(bad, key=repr),
            "local": sorted(set(local)),
            "qualified": sorted(set(qual)),
            "args_bad": sorted(args_bad, key=repr),
        }


def _definitions(tree: ast.Module) -> dict[str, list[str]]:
    """Module-level vs. nested definition names."""
    top_defs: set[str] = set()
    top_assigns: set[str] = set()
    lambda_assigns: set[str] = set()
    for node in tree.body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            top_defs.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if isinstance(node.value, ast.Lambda):
                        lambda_assigns.add(target.id)
                    else:
                        top_assigns.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                if isinstance(node.value, ast.Lambda):
                    lambda_assigns.add(node.target.id)
                else:
                    top_assigns.add(node.target.id)
    nested: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name not in top_defs:
                nested.add(node.name)
    return {
        "top": sorted(top_defs),
        "assigns": sorted(top_assigns),
        "lambdas": sorted(lambda_assigns),
        "nested": sorted(nested - top_defs),
    }


def _emissions(source: SourceFile, imports: ImportMap) -> dict[str, Any]:
    """Every telemetry name this module emits, by instrument kind."""
    from repro.analysis.checkers.common import string_literals
    from repro.analysis.checkers.telemetry_names import _recording_target

    emitted: dict[str, dict[str, list[int]]] = {
        "spans": {}, "counters": {}, "distributions": {},
    }
    heads: dict[str, list[int]] = {}
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        method = _recording_target(node.func, imports)
        if method is None:
            continue
        kind = _EMISSION_KINDS[method]
        literals = string_literals(node.args[0])
        if literals is not None:
            for name in literals:
                emitted[kind].setdefault(name, []).append(node.lineno)
        elif kind == "counters" and isinstance(node.args[0], ast.JoinedStr):
            values = node.args[0].values
            if values and isinstance(values[0], ast.Constant) and isinstance(
                values[0].value, str
            ):
                heads.setdefault(values[0].value, []).append(node.lineno)
    return {**emitted, "counter_heads": heads}


def _registry(tree: ast.Module) -> dict[str, dict[str, int]]:
    """Literal registry contents of the ``repro.telemetry`` module."""
    registry: dict[str, dict[str, int]] = {
        kind: {} for kind in _REGISTRY_NAMES.values()
    }
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        kind = _REGISTRY_NAMES.get(target.id)
        if kind is None:
            continue
        value = node.value
        if isinstance(value, ast.Call) and value.args:
            value = value.args[0]
        if isinstance(value, (ast.Set, ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    registry[kind][element.value] = element.lineno
    return registry


def _from_imports(tree: ast.Module) -> list[list[object]]:
    """Absolute from-imports: ``[module, name, line, is_module_level]``."""
    top_level = set(tree.body)
    records: list[tuple[str, str, int, bool]] = []
    for node in ast.walk(tree):
        if (
            not isinstance(node, ast.ImportFrom)
            or node.level
            or not node.module
        ):
            continue
        for alias in node.names:
            if alias.name == "*":
                continue
            records.append(
                (node.module, alias.name, node.lineno, node in top_level)
            )
    records.sort()
    return [list(record) for record in records]


def _tainted_exports(
    source: SourceFile, imports: ImportMap
) -> dict[str, str]:
    """Module-level names that carry wall-clock/entropy/shared-RNG taint."""
    if source.module == "repro.telemetry":
        return {}  # the sanctioned timing boundary
    tainted: dict[str, str] = {}
    for node in source.tree.body:
        if isinstance(node, ast.ImportFrom) and node.module and not node.level:
            root = node.module.split(".")[0]
            if root in CLOCK_MODULE_ROOTS:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    tainted[local] = (
                        f"re-export of {node.module}.{alias.name} "
                        "(wall-clock/entropy source)"
                    )
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            value = node.value
            if value is None:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names:
                continue
            alias_q = qualified_name(value, imports)
            reason: str | None = None
            if alias_q is not None and (
                alias_q in CLOCK_AND_ENTROPY_CALLS
                or alias_q.split(".")[0] in CLOCK_MODULE_ROOTS
            ):
                reason = f"alias of {alias_q} (wall-clock/entropy source)"
            elif isinstance(value, ast.Call):
                func_q = qualified_name(value.func, imports)
                if func_q in RNG_CONSTRUCTORS:
                    reason = (
                        f"module-level RNG instance ({func_q}); a shared "
                        "stream makes results depend on consumption order"
                    )
                elif func_q in CLOCK_AND_ENTROPY_CALLS:
                    reason = f"value captured from {func_q}() at import time"
            if reason is not None:
                for name in names:
                    tainted[name] = reason
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                func_q = qualified_name(sub.func, imports)
                if func_q is None:
                    continue
                if func_q in CLOCK_AND_ENTROPY_CALLS or func_q.startswith(
                    "secrets."
                ):
                    tainted[node.name] = (
                        f"calls {func_q}() internally, so its results "
                        "embed wall-clock/entropy state"
                    )
                    break
    return tainted


def _shape_of(
    node: ast.expr | None, imports: ImportMap, depth: int = 0
) -> list[dict[str, Any]]:
    """Exit-status shapes an expression can evaluate to (REP009)."""
    line = getattr(node, "lineno", 1) if node is not None else 1
    if node is None or (
        isinstance(node, ast.Constant) and node.value is None
    ):
        return [{"kind": "none", "line": line}]
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return [{"kind": "int", "value": int(node.value), "line": line}]
    if isinstance(node, ast.IfExp) and depth <= 5:
        return (
            _shape_of(node.body, imports, depth + 1)
            + _shape_of(node.orelse, imports, depth + 1)
        )
    if isinstance(node, ast.Call):
        target = (
            node.func.id if isinstance(node.func, ast.Name)
            else qualified_name(node.func, imports)
        )
        if target is not None:
            return [{"kind": "call", "target": target, "line": line}]
    return [{"kind": "unknown", "line": line}]


def _returns_in(fn: ast.AST) -> list[ast.Return]:
    """Return statements belonging to ``fn`` itself (not nested defs)."""
    returns: list[ast.Return] = []
    body = getattr(fn, "body", [])
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        if isinstance(node, ast.Return):
            returns.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return sorted(returns, key=lambda r: r.lineno)


def _exit_facts(
    source: SourceFile, imports: ImportMap
) -> dict[str, Any]:
    """Return/exit shapes of a CLI entry module (REP009)."""
    functions: dict[str, list[dict[str, Any]]] = {}
    for node in source.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            shapes: list[dict[str, Any]] = []
            for ret in _returns_in(node):
                shapes.extend(_shape_of(ret.value, imports))
            functions[node.name] = shapes
    raises: list[dict[str, Any]] = []

    def record_exits(scope: ast.AST, owner: str) -> None:
        for sub in ast.walk(scope):
            if isinstance(sub, ast.Call):
                target = qualified_name(sub.func, imports)
                if target == "sys.exit":
                    arg = sub.args[0] if sub.args else None
                    for shape in (
                        _shape_of(arg, imports) if arg is not None
                        else [{"kind": "int", "value": 0, "line": sub.lineno}]
                    ):
                        raises.append({"fn": owner, "shape": shape})
            elif isinstance(sub, ast.Raise) and isinstance(
                sub.exc, ast.Call
            ):
                exc_name = qualified_name(sub.exc.func, imports)
                if exc_name == "SystemExit":
                    arg = sub.exc.args[0] if sub.exc.args else None
                    for shape in (
                        _shape_of(arg, imports) if arg is not None
                        else [{"kind": "int", "value": 0, "line": sub.lineno}]
                    ):
                        raises.append({"fn": owner, "shape": shape})

    for node in source.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            record_exits(node, node.name)
        else:
            record_exits(node, "<module>")
    raises.sort(key=lambda r: (int(r["shape"]["line"]), str(r["fn"])))
    return {"functions": functions, "raises": raises}


def extract_facts(source: SourceFile) -> dict[str, Any]:
    """The JSON-serializable facts record phase 2 consumes."""
    imports = ImportMap(source.tree)
    visitor = _BoundaryVisitor(imports)
    visitor.visit(source.tree)
    facts: dict[str, Any] = {
        "module": source.module,
        "path": source.display_path,
        "defs": _definitions(source.tree),
        "bindings": dict(sorted(imports.bindings.items())),
        "from_imports": _from_imports(source.tree),
        "emits": _emissions(source, imports),
        "boundary_calls": sorted(
            visitor.calls, key=lambda c: int(c["line"])
        ),
        "tainted": dict(sorted(_tainted_exports(source, imports).items())),
        "registry": (
            _registry(source.tree)
            if source.module == "repro.telemetry" else None
        ),
        "exits": (
            _exit_facts(source, imports)
            if source.module in EXIT_CONTRACT_MODULES else None
        ),
    }
    return facts


# -- the project index --------------------------------------------------


@dataclass
class ProjectIndex:
    """Module name → facts, with qualified-name resolution helpers."""

    modules: dict[str, dict[str, Any]] = field(default_factory=dict)

    @classmethod
    def build(cls, facts_list: Sequence[dict[str, Any]]) -> "ProjectIndex":
        modules: dict[str, dict[str, Any]] = {}
        for facts in sorted(facts_list, key=lambda f: str(f["path"])):
            module = facts.get("module")
            if isinstance(module, str) and module not in modules:
                modules[module] = facts
        return cls(modules=modules)

    def split_qualified(self, qualified: str) -> tuple[str, str] | None:
        """``repro.a.b.name`` → (longest indexed module, first attr)."""
        parts = qualified.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module in self.modules:
                return module, parts[cut]
        return None

    def resolve_def(
        self, module: str, name: str, _depth: int = 0
    ) -> tuple[bool | None, str]:
        """Does ``module.name`` resolve to a module-level definition?

        Returns ``(verdict, detail)``: ``True`` for a proven top-level
        def, ``False`` for a proven violation (nested def, lambda
        assignment, missing symbol), ``None`` when the chain leaves the
        indexed tree and must be trusted.
        """
        if _depth > 5:
            return None, "resolution chain too deep"
        facts = self.modules.get(module)
        if facts is None:
            return None, f"module {module} is outside the linted tree"
        defs = facts["defs"]
        if name in defs["top"]:
            return True, f"top-level def in {module}"
        if name in defs["lambdas"]:
            return False, (
                f"{module}.{name} is a module-level lambda assignment, "
                "which pickles by qualified name '<lambda>' and breaks"
            )
        bindings = facts.get("bindings", {})
        if name in bindings:
            qualified = str(bindings[name])
            if not qualified.startswith("repro."):
                return None, f"imported from {qualified}"
            split = self.split_qualified(qualified)
            if split is None:
                return None, f"re-export of unindexed {qualified}"
            target_module, attr = split
            return self.resolve_def(target_module, attr, _depth + 1)
        if name in defs["assigns"]:
            return None, f"module-level assignment in {module}"
        if name in defs["nested"]:
            return False, (
                f"{module}.{name} is a nested function; workers can only "
                "import module-level callables"
            )
        return False, f"{module} has no module-level binding named {name!r}"


# -- phase 1 execution: worker entry point and cache --------------------


def _process_file(
    path: Path, root: Path, rules: Sequence[str] | None
) -> dict[str, Any]:
    """Parse one file; run file-scoped checkers; extract facts."""
    from repro.analysis.checkers import partition_checkers

    file_checkers, _ = partition_checkers(rules)
    data = path.read_bytes()
    digest = hashlib.sha256(data).hexdigest()
    source = load_source(path, root=root, text=data.decode("utf-8"))
    findings = [
        finding.as_dict()
        for checker in file_checkers
        for finding in checker.check(source)
    ]
    return {
        "path": source.display_path,
        "hash": digest,
        "findings": findings,
        "facts": extract_facts(source),
    }


def lint_items(
    items: Sequence[WorkItem], config: AcamarConfig
) -> list[ItemResult]:
    """``run_sharded`` worker entry point: phase-1 one file per item.

    ``item.source`` is ``(path, root, rules_csv)`` — plain strings so
    the item pickles cheaply.  Syntax/read errors come back in
    ``ItemResult.error`` and are re-raised parent-side to keep the
    serial and parallel paths behaviorally identical.
    """
    del config  # the solver config is irrelevant to lint work
    results: list[ItemResult] = []
    for item in items:
        path_str, root_str, rules_csv = item.source
        rules = [r for r in rules_csv.split(",") if r] if rules_csv else None
        try:
            entry = _process_file(Path(path_str), Path(root_str), rules)
        except ConfigurationError as exc:
            message = str(exc.args[0]) if exc.args else str(exc)
            results.append(ItemResult(
                index=item.index, entry=None, error=message,
                label=path_str, telemetry={},
            ))
        else:
            results.append(ItemResult(
                index=item.index, entry=entry, error=None,
                label=str(entry["path"]), telemetry={},
            ))
    return results


def _cache_signature(rule_ids: Sequence[str]) -> str:
    """Content key for the whole cache: versions + rule set + python."""
    payload = json.dumps({
        "cache_version": LINT_CACHE_VERSION,
        "facts_version": FACTS_VERSION,
        "rules": sorted(rule_ids),
        "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
    }, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _load_cache(path: Path, signature: str) -> dict[str, dict[str, Any]]:
    """File-entry map from a cache file; empty on any mismatch.

    A corrupt or stale cache never fails the run — it just degrades to
    a cold start and is rewritten afterwards.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return {}
    if not isinstance(payload, dict):
        return {}
    if payload.get("version") != LINT_CACHE_VERSION:
        return {}
    if payload.get("signature") != signature:
        return {}
    files = payload.get("files")
    return files if isinstance(files, dict) else {}


def _write_cache(
    path: Path, signature: str, entries: dict[str, dict[str, Any]]
) -> None:
    document = {
        "version": LINT_CACHE_VERSION,
        "signature": signature,
        "files": {key: entries[key] for key in sorted(entries)},
    }
    try:
        path.write_text(
            json.dumps(document, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    except OSError:
        pass  # a read-only tree still lints, just never warms up


# -- diff mode ----------------------------------------------------------


def changed_files(root: Path, ref: str) -> set[str]:
    """Display paths (relative to ``root``) changed since ``ref``.

    Union of ``git diff --name-only <ref>`` and untracked files, so a
    ``--diff`` lint covers work in progress too.  Any git failure (not
    a repository, unknown ref) raises
    :class:`~repro.errors.ConfigurationError` → CLI exit 2.
    """
    root = root.resolve()

    def run_git(*args: str) -> list[str]:
        proc = subprocess.run(
            ["git", "-C", str(root), *args],
            capture_output=True, text=True,
        )
        if proc.returncode != 0:
            detail = proc.stderr.strip() or proc.stdout.strip()
            raise ConfigurationError(
                f"git {' '.join(args)} failed: {detail}"
            )
        return [line for line in proc.stdout.splitlines() if line]

    toplevel = Path(run_git("rev-parse", "--show-toplevel")[0]).resolve()
    names = run_git("diff", "--name-only", ref, "--")
    names += run_git("ls-files", "--others", "--exclude-standard")
    changed: set[str] = set()
    for name in names:
        try:
            rel = (toplevel / name).resolve().relative_to(root)
        except ValueError:
            continue  # changed outside the lint root
        changed.add(rel.as_posix())
    return changed


# -- the whole-program entry point --------------------------------------


def _display_path(path: Path, root: Path) -> str:
    resolved = path.resolve()
    try:
        return resolved.relative_to(root).as_posix()
    except ValueError:
        return resolved.as_posix()


def run_project_lint(
    paths: Sequence[Path],
    *,
    rules: Sequence[str] | None = None,
    root: Path | None = None,
    workers: int = 1,
    cache_path: Path | None = None,
    use_cache: bool = True,
    changed_only: set[str] | None = None,
) -> LintReport:
    """Run the full two-phase lint; findings come back sorted.

    ``changed_only`` (the ``--diff`` mode) filters *file-scoped*
    findings to the given display paths, while project-scoped findings
    (REP007–REP010) are always reported — an edit anywhere can break a
    cross-module contract whose finding lands in an unchanged file.
    """
    from repro.analysis.checkers import PROJECT_RULE_IDS, partition_checkers

    base = (root or Path.cwd()).resolve()
    file_checkers, project_checkers = partition_checkers(rules)
    signature = _cache_signature([c.rule_id for c in file_checkers])
    cache_file = cache_path or (base / DEFAULT_CACHE_NAME)

    files = list(iter_python_files(paths))
    cached = _load_cache(cache_file, signature) if use_cache else {}

    entries: dict[str, dict[str, Any]] = {}
    misses: list[tuple[int, Path, str]] = []
    hits = 0
    for i, path in enumerate(files):
        display = _display_path(path, base)
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        entry = cached.get(display)
        if entry is not None and entry.get("hash") == digest:
            entries[display] = entry
            hits += 1
        else:
            misses.append((i, path, display))

    rules_csv = ",".join(c.rule_id for c in file_checkers)
    pool_workers = min(int(workers), len(misses))
    if pool_workers > 1:
        items = [
            WorkItem(
                index=i,
                source=(str(path), str(base), rules_csv),
                seed=0,
                cost=float(max(1, path.stat().st_size)),
            )
            for i, path, _ in misses
        ]
        outcome = run_sharded(
            items, AcamarConfig(), workers=pool_workers,
            work_fn=lint_items,
        )
        by_index = {result.index: result for result in outcome.results}
        for i, path, display in misses:
            result = by_index.get(i)
            if result is None or result.entry is None:
                if result is not None and result.error is not None:
                    raise ConfigurationError(result.error)
                # Lost-worker fallback: finish the file in-process so a
                # flaky pool never changes lint output.
                entries[display] = _process_file(path, base, rules)
            else:
                entries[display] = dict(result.entry)
    else:
        for _, path, display in misses:
            entries[display] = _process_file(path, base, rules)

    tm.count("lint.files_parsed", len(misses))
    tm.count("lint.cache_hits", hits)
    tm.count("lint.cache_misses", len(misses))

    findings: list[Finding] = []
    ordered_displays = [_display_path(path, base) for path in files]
    for display in ordered_displays:
        for raw in entries[display]["findings"]:
            findings.append(Finding(
                rule=str(raw["rule"]), path=str(raw["path"]),
                line=int(raw["line"]), message=str(raw["message"]),
                severity=str(raw.get("severity", "error")),
            ))

    index = ProjectIndex.build(
        [entries[display]["facts"] for display in ordered_displays]
    )
    for project_checker in project_checkers:
        findings.extend(project_checker.check_project(index))

    if changed_only is not None:
        findings = [
            f for f in findings
            if f.rule in PROJECT_RULE_IDS or f.path in changed_only
        ]
    findings.sort(key=Finding.sort_key)

    if use_cache and misses:
        _write_cache(cache_file, signature, entries)

    return LintReport(
        findings=findings,
        files_checked=len(files),
        cache_hits=hits,
        cache_misses=len(misses),
    )


__all__ = [
    "BOUNDARY_FUNCTIONS",
    "CLOCK_AND_ENTROPY_CALLS",
    "DEFAULT_CACHE_NAME",
    "EXIT_CONTRACT_MODULES",
    "FACTS_VERSION",
    "LINT_CACHE_VERSION",
    "ProjectChecker",
    "ProjectIndex",
    "changed_files",
    "extract_facts",
    "lint_items",
    "run_project_lint",
]
