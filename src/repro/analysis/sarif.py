"""SARIF 2.1.0 rendering for lint reports.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning, VS Code SARIF viewers and most CI dashboards ingest.
This module renders a :class:`~repro.analysis.engine.LintReport` as one
SARIF *run* of the ``repro-lint`` tool driver:

- the driver carries the **full rule catalogue** (REP001–REP010, sorted
  by id) regardless of which rules fired, so dashboards can show rule
  metadata for zero-result runs too,
- each finding becomes one ``result`` with ``ruleId``/``ruleIndex``
  resolved against that catalogue, the finding severity as ``level``,
  and a single physical location (repo-relative URI + start line),
- output is deterministic: rules and results keep the report's sorted
  order and the JSON is rendered with a fixed indent and no ambient
  state (no timestamps, no absolute paths).

The renderer is dispatched lazily from
:func:`repro.analysis.engine.format_findings` (``--format sarif``) to
keep the engine ↔ checkers import graph acyclic.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

TOOL_NAME = "repro-lint"
TOOL_URI = "https://example.invalid/repro/docs/static-analysis.md"

#: Finding severity → SARIF result level.  Every current rule reports
#: ``error``; the mapping keeps the renderer total over the schema.
_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _rule_catalogue() -> list[dict[str, object]]:
    """All known rules, sorted by id, as SARIF reportingDescriptors."""
    from repro.analysis.checkers import ALL_RULES

    return [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {"text": title},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id, title in sorted(ALL_RULES.items())
    ]


def render_sarif(report: LintReport) -> str:
    """Render ``report`` as a SARIF 2.1.0 log (a JSON string)."""
    rules = _rule_catalogue()
    rule_index = {
        str(descriptor["id"]): i for i, descriptor in enumerate(rules)
    }
    results: list[dict[str, object]] = []
    for finding in report.findings:
        result: dict[str, object] = {
            "ruleId": finding.rule,
            "level": _LEVELS.get(finding.severity, "error"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {"startLine": max(1, finding.line)},
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
