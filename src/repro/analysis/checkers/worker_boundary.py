"""REP008 — worker-boundary purity for ``run_sharded`` work functions.

:func:`repro.parallel.run_sharded` ships its ``work_fn`` (and every
work item) to a ``ProcessPoolExecutor`` worker by **pickling**.  Python
pickles functions *by qualified name*: only a module-level callable
importable under the same dotted path on the worker side survives the
trip.  A lambda, a closure, a bound method, or the result of a call
expression fails at submit time — and because the pool interprets such
failures as lost workers, the failure mode is a confusing restart storm
rather than a clean error.

The facts layer (:mod:`repro.analysis.project`) records every
``run_sharded`` call with the shape of its ``work_fn`` argument,
resolving local variables through enclosing-function assignments (the
campaign's ``work_fn = solve_items_batched if batch else solve_items``
idiom).  This checker then proves each candidate against the
whole-program index:

- a name must resolve — through module-level assignments and import
  re-export chains (``from repro.serve.profile import profile_items``,
  the ``repro.parallel`` facade) — to a **top-level def** such as
  ``solve_items`` / ``solve_items_batched`` / ``evaluate_items``,
- nested defs, module-level lambda assignments, and missing symbols are
  violations; chains that leave the linted tree are trusted,
- any lambda or ``open()`` handle flowing through the remaining
  boundary-crossing arguments is a violation (``executor_factory`` is
  parent-side and exempt).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.analysis.engine import Finding

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.analysis.project import ProjectIndex

RULE_ID = "REP008"


class WorkerBoundaryChecker:
    """Prove every ``run_sharded`` work function is picklable."""

    rule_id = RULE_ID
    title = "run_sharded work functions are module-level callables"

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        for module, facts in sorted(index.modules.items()):
            path = str(facts["path"])
            for call in facts.get("boundary_calls", []):
                yield from self._check_call(index, module, path, call)

    def _check_call(
        self,
        index: "ProjectIndex",
        module: str,
        path: str,
        call: dict[str, Any],
    ) -> Iterator[Finding]:
        line = int(call["line"])
        for bad_line, reason in call.get("bad", []):
            yield Finding(
                rule=self.rule_id, path=path, line=int(bad_line),
                message=f"run_sharded work function: {reason}",
            )
        for name in call.get("local", []):
            verdict, detail = index.resolve_def(module, str(name))
            if verdict is False:
                yield Finding(
                    rule=self.rule_id, path=path, line=line,
                    message=(
                        f"run_sharded work function {name!r} is not a "
                        f"picklable module-level callable: {detail}"
                    ),
                )
        for qualified in call.get("qualified", []):
            split = index.split_qualified(str(qualified))
            if split is None:
                continue  # outside the linted tree: trust it
            target_module, attr = split
            verdict, detail = index.resolve_def(target_module, attr)
            if verdict is False:
                yield Finding(
                    rule=self.rule_id, path=path, line=line,
                    message=(
                        f"run_sharded work function {qualified!r} is not "
                        f"a picklable module-level callable: {detail}"
                    ),
                )
        for bad_line, reason in call.get("args_bad", []):
            yield Finding(
                rule=self.rule_id, path=path, line=int(bad_line),
                message=f"run_sharded argument: {reason}",
            )
