"""REP004 — exception policy.

Three contracts keep failures diagnosable across a fleet of workers:

- **No bare ``except:``** — it swallows ``KeyboardInterrupt`` and
  ``SystemExit`` and makes shard teardown unkillable.
- **No silent swallows** — an ``except Exception`` (or
  ``BaseException``) handler whose body is only ``pass``/``...``
  destroys the per-problem fault-isolation story: failures must be
  recorded (the campaign engine turns them into failure entries).
- **Domain errors derive from ``repro.errors``** — code in ``repro``
  raises the :class:`~repro.errors.ReproError` family so callers can
  catch the library's failures with one clause.  Raising generic
  builtins (``ValueError``, ``KeyError``, ``RuntimeError``, …) is
  forbidden; the dual-inheritance classes in ``repro.errors``
  (``ValidationError``, ``UnknownNameError``) keep builtin-catching
  callers working.  ``TypeError``/``NotImplementedError``/
  ``AssertionError``/``SystemExit`` stay allowed: they signal API
  misuse and entry-point exits, not domain failures.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers.common import ImportMap, in_module
from repro.analysis.engine import Finding, SourceFile

RULE_ID = "REP004"

#: Builtin exceptions that must not be raised as domain errors.
FORBIDDEN_RAISES = frozenset({
    "Exception", "BaseException", "ValueError", "KeyError", "IndexError",
    "LookupError", "RuntimeError", "ArithmeticError", "ZeroDivisionError",
    "OSError", "IOError", "EnvironmentError", "StopIteration",
})

#: Builtins that remain legitimate raises inside the library.
ALLOWED_BUILTIN_RAISES = frozenset({
    "TypeError", "NotImplementedError", "AssertionError", "SystemExit",
    "KeyboardInterrupt", "UnicodeDecodeError",
})

BROAD_TYPES = ("Exception", "BaseException")


def _exception_names(node: ast.expr | None) -> list[str]:
    """Names a handler catches (``except (A, B):`` → ``["A", "B"]``)."""
    if node is None:
        return []
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Tuple):
        return [
            element.id
            for element in node.elts
            if isinstance(element, ast.Name)
        ]
    return []


def _is_silent_body(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # docstring or `...`
        return False
    return True


class ExceptionPolicyChecker:
    """Enforce catch and raise discipline across the library."""

    rule_id = RULE_ID
    title = "exception policy (no bare/silent except, domain errors)"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not in_module(source.module, "repro"):
            return
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(source, node)
            elif isinstance(node, ast.Raise):
                yield from self._check_raise(source, node, imports)

    def _check_handler(
        self, source: SourceFile, node: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if node.type is None:
            yield source.finding(
                self.rule_id, node,
                "bare 'except:' also swallows KeyboardInterrupt/"
                "SystemExit; catch Exception (and record the failure) "
                "at most",
            )
            return
        caught = _exception_names(node.type)
        if any(name in BROAD_TYPES for name in caught) and _is_silent_body(
            node.body
        ):
            yield source.finding(
                self.rule_id, node,
                f"except {'/'.join(caught)} with a pass-only body "
                "silently swallows failures; record or re-raise them",
            )

    def _check_raise(
        self, source: SourceFile, node: ast.Raise, imports: ImportMap
    ) -> Iterator[Finding]:
        exc = node.exc
        if exc is None:
            return  # bare re-raise inside a handler
        if isinstance(exc, ast.Call):
            exc = exc.func
        if not isinstance(exc, ast.Name):
            return  # attribute raises (mod.Error) are trusted
        name = exc.id
        if name in FORBIDDEN_RAISES:
            yield source.finding(
                self.rule_id, node,
                f"raise {name}: domain errors must derive from "
                "repro.errors (use ValidationError/UnknownNameError or "
                "a ReproError subclass)",
            )
            return
        if name in ALLOWED_BUILTIN_RAISES:
            return
        origin = imports.resolve(name)
        if origin is not None and not origin.startswith("repro."):
            yield source.finding(
                self.rule_id, node,
                f"raise {name} (imported from {origin.rsplit('.', 1)[0]}):"
                " domain errors must derive from repro.errors",
            )
