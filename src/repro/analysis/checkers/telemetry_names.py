"""REP005 — telemetry naming discipline.

Operations dashboards and the golden telemetry reports key on span,
counter and distribution *names*.  A typo'd or ad-hoc name silently
forks a metric, so every recording call must:

- pass the name as a **string literal** (the conditional-of-literals
  idiom ``count("a" if warm else "b")`` counts — both arms are
  checked), never a computed expression, and
- use a name registered in :mod:`repro.telemetry`'s
  ``KNOWN_SPANS`` / ``KNOWN_COUNTERS`` / ``KNOWN_DISTRIBUTIONS``
  registry, which is the single source of truth the docs and
  dashboards are generated from.

One dynamic shape is sanctioned: an f-string whose literal head lies in
a registered *prefix family* (``KNOWN_COUNTER_PREFIXES``), e.g. the
per-solver ``f"solver_attempts.{name}"`` counters the campaign report
aggregates.  Families are themselves registry entries, so the rule
stays machine-checkable.

The checker resolves call sites through the import map (the
``from repro import telemetry as tm`` idiom) and additionally covers
method calls on conventional collector names (``tm``, ``telemetry``),
which is how :class:`repro.telemetry.Telemetry` instances are used.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers.common import (
    ImportMap,
    attribute_chain,
    in_module,
    string_literals,
)
from repro.analysis.engine import Finding, SourceFile
from repro.telemetry import (
    KNOWN_COUNTER_PREFIXES,
    KNOWN_COUNTERS,
    KNOWN_DISTRIBUTIONS,
    KNOWN_SPANS,
)

RULE_ID = "REP005"

#: Recording function → (its name registry, its dynamic-family prefixes).
RECORDING_FUNCTIONS: dict[str, tuple[frozenset[str], frozenset[str]]] = {
    "span": (KNOWN_SPANS, frozenset()),
    "record_span": (KNOWN_SPANS, frozenset()),
    "count": (KNOWN_COUNTERS, KNOWN_COUNTER_PREFIXES),
    "observe": (KNOWN_DISTRIBUTIONS, frozenset()),
}

REGISTRY_LABEL = {
    id(KNOWN_SPANS): "KNOWN_SPANS",
    id(KNOWN_COUNTERS): "KNOWN_COUNTERS",
    id(KNOWN_DISTRIBUTIONS): "KNOWN_DISTRIBUTIONS",
}

#: Conventional local names for a telemetry collector (module alias or
#: Telemetry instance); method calls on them are checked too.
COLLECTOR_NAMES = frozenset({"tm", "telemetry"})


def _matches_prefix_family(
    node: ast.expr, prefixes: frozenset[str]
) -> bool:
    """Is this an f-string whose literal head is a registered family?

    The one sanctioned dynamic-name shape: ``f"family.{tail}"`` where
    ``family.`` is listed in the registry's prefix families.
    """
    if not isinstance(node, ast.JoinedStr) or not node.values:
        return False
    head = node.values[0]
    if not (
        isinstance(head, ast.Constant) and isinstance(head.value, str)
    ):
        return False
    return any(head.value.startswith(prefix) for prefix in prefixes)


def _recording_target(
    func: ast.expr, imports: ImportMap
) -> str | None:
    """The recording-function name this call resolves to, if any."""
    if isinstance(func, ast.Name):
        origin = imports.resolve(func.id)
        if origin is not None and origin.startswith("repro.telemetry."):
            name = origin.rsplit(".", 1)[1]
            return name if name in RECORDING_FUNCTIONS else None
        return None
    chain = attribute_chain(func)
    if chain is None or len(chain) < 2:
        return None
    method = chain[-1]
    if method not in RECORDING_FUNCTIONS:
        return None
    base = chain[0]
    origin = imports.resolve(base)
    if origin == "repro.telemetry" or base in COLLECTOR_NAMES:
        return method
    return None


class TelemetryNameChecker:
    """Require literal, registered telemetry names at every call site."""

    rule_id = RULE_ID
    title = "telemetry span/counter names from the registry"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not in_module(source.module, "repro"):
            return
        if source.module == "repro.telemetry":
            return  # the registry/recorder itself
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            method = _recording_target(node.func, imports)
            if method is None or not node.args:
                continue
            registry, prefixes = RECORDING_FUNCTIONS[method]
            literals = string_literals(node.args[0])
            if literals is None:
                if _matches_prefix_family(node.args[0], prefixes):
                    continue
                yield source.finding(
                    self.rule_id, node,
                    f"telemetry {method}() name must be a string literal "
                    "(or a conditional of literals, or an f-string in a "
                    "registered dynamic family) so dashboards can be "
                    "generated from the registry",
                )
                continue
            for name in literals:
                if name not in registry and not any(
                    name.startswith(prefix) for prefix in prefixes
                ):
                    yield source.finding(
                        self.rule_id, node,
                        f"telemetry name {name!r} is not registered in "
                        f"repro.telemetry.{REGISTRY_LABEL[id(registry)]}; "
                        "register it there (the registry is the single "
                        "source of truth)",
                    )
