"""Shared AST utilities for the invariant checkers.

Every checker needs the same two primitives:

- :class:`ImportMap` — what each local name is bound to
  (``tm`` → ``repro.telemetry``, ``np`` → ``numpy``), collected from
  both module-level and function-level imports, so call sites can be
  resolved without type inference,
- :func:`qualified_name` — turn an attribute chain like
  ``np.random.default_rng`` into its fully-qualified dotted form using
  the import map.

The resolution is deliberately syntactic: it never imports the linted
code and therefore works on broken or partial trees too.
"""

from __future__ import annotations

import ast

#: Top-level modules of the repro package; used to tell
#: ``from repro import telemetry`` (submodule) apart from
#: ``from repro import Acamar`` (attribute of the root facade).
REPRO_TOP_MODULES = frozenset({
    "analysis", "baselines", "campaign", "cli", "config", "core",
    "datasets", "dse", "errors", "experiments", "faults", "fpga", "gpu",
    "metrics", "parallel", "placement", "serve", "solvers", "sparse",
    "telemetry",
})


class ImportMap:
    """Local name → fully-qualified module/attribute bindings."""

    def __init__(self, tree: ast.Module) -> None:
        self.bindings: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a`` unless aliased.
                    target = alias.name if alias.asname else (
                        alias.name.split(".")[0]
                    )
                    self.bindings[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:
                    continue  # relative imports are layering findings
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.bindings[local] = f"{node.module}.{alias.name}"

    def resolve(self, name: str) -> str | None:
        """Qualified binding of a bare local name, if imported."""
        return self.bindings.get(name)


def attribute_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` → ``["a", "b", "c"]``; ``None`` for non-name chains."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return parts


def qualified_name(node: ast.expr, imports: ImportMap) -> str | None:
    """Fully-qualified dotted name of an expression, when resolvable.

    ``tm.span`` with ``from repro import telemetry as tm`` resolves to
    ``repro.telemetry.span``; a chain whose base is not an imported name
    resolves with the local base untouched (``self.clock.now`` →
    ``self.clock.now``), which keeps prefix tests meaningful.
    """
    parts = attribute_chain(node)
    if parts is None:
        return None
    base = imports.resolve(parts[0])
    if base is not None:
        parts[0] = base
    return ".".join(parts)


def string_literals(node: ast.expr) -> list[str] | None:
    """The string literal(s) an expression can evaluate to.

    Handles the plain literal and the conditional-of-literals idiom
    (``"a" if warm else "b"``).  Returns ``None`` when the expression
    is anything else — i.e. not statically checkable.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.IfExp):
        body = string_literals(node.body)
        orelse = string_literals(node.orelse)
        if body is not None and orelse is not None:
            return body + orelse
    return None


def in_module(module: str | None, *packages: str) -> bool:
    """Is ``module`` inside any of the given dotted package prefixes?"""
    if module is None:
        return False
    return any(
        module == package or module.startswith(package + ".")
        for package in packages
    )
