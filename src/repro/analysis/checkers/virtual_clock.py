"""REP006 — virtual-clock purity in the serving layer.

``repro serve``/``loadtest`` promise a **byte-identical report** for a
fixed request log: all timestamps are virtual seconds advanced by the
discrete-event loop, never wall-clock reads.  The contract (PR 3,
pinned by the serving-smoke CI job) dies the moment any
``repro.serve`` module consults a real clock, so this rule bans the
whole ``time``/``datetime`` surface there — stricter than REP001,
which only bans the nondeterministic subset (``time.perf_counter`` is
deterministic-enough for spans but still wall-clock, and still
forbidden here).

Wall-clock profiling spans remain available through
:mod:`repro.telemetry`, which is the one sanctioned boundary: its
output is documented as non-deterministic and lives outside the
serving report.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers.common import (
    ImportMap,
    in_module,
    qualified_name,
)
from repro.analysis.engine import Finding, SourceFile

RULE_ID = "REP006"

SCOPED_PACKAGE = "repro.serve"

CLOCK_MODULES = ("time", "datetime")


class VirtualClockChecker:
    """No wall-clock access anywhere in ``repro.serve``."""

    rule_id = RULE_ID
    title = "virtual-clock purity in repro.serve"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not in_module(source.module, SCOPED_PACKAGE):
            return
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in CLOCK_MODULES:
                        yield source.finding(
                            self.rule_id, node,
                            f"import {alias.name}: repro.serve runs on "
                            "the virtual clock; route timing through the "
                            "simulation's virtual time (telemetry spans "
                            "are the only wall-clock boundary)",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if node.level == 0 and root in CLOCK_MODULES:
                    yield source.finding(
                        self.rule_id, node,
                        f"from {node.module} import ...: repro.serve "
                        "runs on the virtual clock; wall-clock reads "
                        "would break the byte-identical report contract",
                    )
            elif isinstance(node, ast.Call):
                name = qualified_name(node.func, imports)
                if name is None:
                    continue
                root = name.split(".")[0]
                if root in CLOCK_MODULES:
                    yield source.finding(
                        self.rule_id, node,
                        f"call to {name}(): repro.serve must take time "
                        "from the virtual clock only",
                    )
