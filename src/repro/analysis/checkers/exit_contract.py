"""REP009 — the CLI exit-code contract, proven over every return path.

Every ``repro`` subcommand documents the same three-way contract,
pinned in ``tests/analysis/test_lint_cli.py`` and its siblings: **0**
for success/clean, **1** for findings / not-converged / violations,
**2** for a usage error.  CI pipelines, the chaos harness and the
smoke jobs all branch on those literals, so an undocumented status
(a stray ``return 3``, an ``sys.exit(code)`` with a computed code, a
command handler that falls back to returning ``None``) silently turns
a red build green or vice versa.

The facts layer records, for ``repro.cli`` and ``repro.__main__``, the
shape of every ``return`` in each top-level function and every
``sys.exit(...)`` / ``raise SystemExit(...)`` site.  This checker then
proves *confinement to {0, 1, 2}* for each **enforced** function —
``main`` and every ``_cmd_*`` handler — by chasing shapes:

- integer literals must be 0, 1 or 2,
- conditional expressions are checked on both arms,
- a call's exit status is confined iff the callee is (followed through
  same-module helpers and, for ``sys.exit(main())`` in ``__main__``,
  across modules through the index),
- ``None`` returns and computed values are violations,
- call cycles are resolved optimistically (a cycle of otherwise-clean
  dispatchers is confined).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.analysis.engine import Finding

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.analysis.project import ProjectIndex

RULE_ID = "REP009"

ALLOWED_STATUSES = frozenset({0, 1, 2})

#: A violation: (display path, line, reason).
_Violation = tuple[str, int, str]


def _is_enforced(name: str) -> bool:
    return name == "main" or name.startswith("_cmd_")


class ExitContractChecker:
    """Confine every subcommand's exit paths to the documented 0/1/2."""

    rule_id = RULE_ID
    title = "CLI exit statuses provably confined to 0/1/2"

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        memo: dict[tuple[str, str], list[_Violation]] = {}
        seen: set[_Violation] = set()
        for module, facts in sorted(index.modules.items()):
            exits = facts.get("exits")
            if exits is None:
                continue
            path = str(facts["path"])
            for fname in sorted(exits["functions"]):
                if not _is_enforced(fname):
                    continue
                for violation in self._confined(
                    index, module, fname, memo, frozenset()
                ):
                    if violation not in seen:
                        seen.add(violation)
                        yield self._finding(fname, violation)
            for record in exits.get("raises", []):
                owner = str(record["fn"])
                for violation in self._shape_violations(
                    index, module, path, record["shape"], memo, frozenset()
                ):
                    if violation not in seen:
                        seen.add(violation)
                        yield self._finding(owner, violation)

    def _finding(self, owner: str, violation: _Violation) -> Finding:
        path, line, reason = violation
        return Finding(
            rule=self.rule_id, path=path, line=line,
            message=(
                f"exit contract of {owner}(): {reason} — every repro "
                "subcommand must exit with a documented status "
                "(0 ok, 1 findings/violations, 2 usage error)"
            ),
        )

    def _confined(
        self,
        index: "ProjectIndex",
        module: str,
        fname: str,
        memo: dict[tuple[str, str], list[_Violation]],
        stack: frozenset[tuple[str, str]],
    ) -> list[_Violation]:
        key = (module, fname)
        if key in memo:
            return memo[key]
        if key in stack:
            return []  # optimistic on dispatch cycles
        facts = index.modules.get(module)
        if facts is None or facts.get("exits") is None:
            return [("<unknown>", 1, f"{module}.{fname} is outside the "
                     "linted tree")]
        path = str(facts["path"])
        shapes = facts["exits"]["functions"].get(fname)
        if shapes is None:
            return [(path, 1, f"{module} has no top-level function "
                     f"{fname!r} to prove the exit contract against")]
        violations: list[_Violation] = []
        if not shapes:
            violations.append((
                path, 1,
                f"{fname}() has no return statement; return an explicit "
                "0/1/2 status",
            ))
        for shape in shapes:
            violations.extend(self._shape_violations(
                index, module, path, shape, memo, stack | {key}
            ))
        memo[key] = violations
        return violations

    def _shape_violations(
        self,
        index: "ProjectIndex",
        module: str,
        path: str,
        shape: dict[str, Any],
        memo: dict[tuple[str, str], list[_Violation]],
        stack: frozenset[tuple[str, str]],
    ) -> list[_Violation]:
        kind = str(shape["kind"])
        line = int(shape["line"])
        if kind == "int":
            value = int(shape["value"])
            if value in ALLOWED_STATUSES:
                return []
            return [(path, line, f"status {value} is outside the "
                     "documented contract")]
        if kind == "none":
            return [(path, line, "a path yields None instead of an "
                     "explicit status literal")]
        if kind == "call":
            target = str(shape["target"])
            if "." not in target:
                facts = index.modules.get(module)
                functions = (
                    facts["exits"]["functions"]
                    if facts is not None and facts.get("exits") is not None
                    else {}
                )
                if target in functions:
                    return self._confined(index, module, target, memo, stack)
                # An import-bound name (``from repro.cli import main``)
                # resolves through the module's bindings.
                bindings = (
                    facts.get("bindings", {}) if facts is not None else {}
                )
                if target in bindings:
                    target = str(bindings[target])
                else:
                    return [(path, line, f"status flows from {target}(), "
                             "which is not provably confined to 0/1/2")]
            split = index.split_qualified(target)
            if split is not None:
                target_module, attr = split
                facts = index.modules.get(target_module)
                if facts is not None and facts.get("exits") is not None:
                    return self._confined(
                        index, target_module, attr, memo, stack
                    )
            return [(path, line, f"status flows from {target}(), which is "
                     "not provably confined to 0/1/2")]
        return [(path, line, "a computed status is not provably confined "
                 "to 0/1/2")]
