"""REP007 — telemetry liveness: every registered name must be emitted.

REP005 guards one direction of the telemetry contract: every *emission*
must use a registered name.  This rule guards the other: every
*registered* name must have at least one emission somewhere in the
linted tree.  A dead registry entry is not harmless — dashboards and
golden telemetry reports are generated from the registry, so an
orphaned name renders as a permanently-zero series that masks real
regressions ("the counter exists, it just never fired").

Checked cross-module, over the whole-program index:

- every name in ``KNOWN_SPANS`` / ``KNOWN_COUNTERS`` /
  ``KNOWN_DISTRIBUTIONS`` must be emitted by some module (literal or
  conditional-of-literals call sites, as REP005 recognizes them),
- every prefix family in ``KNOWN_COUNTER_PREFIXES`` must have at least
  one live emission: a literal counter under the prefix or an f-string
  whose literal head starts with it.  (Emissions under *unregistered*
  prefixes are already REP005 findings at the call site.)

The registry is parsed from the **linted tree's** ``repro.telemetry``
module — not from the installed package — so fixture trees are judged
against their own registry and findings anchor at the registry lines.
When the linted paths do not include ``repro.telemetry``, the rule is
silent (a partial lint cannot prove an emission is missing).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.analysis.engine import Finding

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.analysis.project import ProjectIndex

RULE_ID = "REP007"

REGISTRY_MODULE = "repro.telemetry"

_KIND_LABEL = {
    "spans": "KNOWN_SPANS",
    "counters": "KNOWN_COUNTERS",
    "distributions": "KNOWN_DISTRIBUTIONS",
}


class TelemetryLivenessChecker:
    """Flag registered telemetry names that no module ever emits."""

    rule_id = RULE_ID
    title = "every registered telemetry name is emitted somewhere"

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        registry_facts = index.modules.get(REGISTRY_MODULE)
        if registry_facts is None or registry_facts.get("registry") is None:
            return
        registry: dict[str, dict[str, int]] = registry_facts["registry"]
        registry_path = str(registry_facts["path"])

        emitted: dict[str, set[str]] = {
            "spans": set(), "counters": set(), "distributions": set(),
        }
        heads: set[str] = set()
        for module, facts in sorted(index.modules.items()):
            if module == REGISTRY_MODULE:
                continue
            emits: dict[str, Any] = facts.get("emits", {})
            for kind in emitted:
                emitted[kind].update(emits.get(kind, {}))
            heads.update(emits.get("counter_heads", {}))

        prefixes = registry.get("prefixes", {})
        for kind, label in _KIND_LABEL.items():
            for name in sorted(registry.get(kind, {})):
                if name in emitted[kind]:
                    continue
                if kind == "counters" and any(
                    name.startswith(prefix) for prefix in prefixes
                ):
                    # Family members are kept live by their family.
                    continue
                yield Finding(
                    rule=self.rule_id,
                    path=registry_path,
                    line=registry[kind][name],
                    message=(
                        f"telemetry name {name!r} is registered in {label} "
                        "but no module ever emits it; wire up the emission "
                        "or delete the registry entry (dead names render "
                        "as permanently-zero dashboard series)"
                    ),
                )
        for prefix in sorted(prefixes):
            live = any(
                name.startswith(prefix) for name in emitted["counters"]
            ) or any(head.startswith(prefix) for head in heads)
            if not live:
                yield Finding(
                    rule=self.rule_id,
                    path=registry_path,
                    line=prefixes[prefix],
                    message=(
                        f"counter prefix family {prefix!r} is registered in "
                        "KNOWN_COUNTER_PREFIXES but no module emits any "
                        "counter under it; wire up an emission or delete "
                        "the family"
                    ),
                )
