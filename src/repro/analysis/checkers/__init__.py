"""The repo-specific invariant checkers (rule ids REP001–REP010).

Two checker families share the registry:

- **file-scoped** checkers (REP001–REP006) implement
  :class:`~repro.analysis.engine.Checker` and see one parsed file at a
  time; they run in phase 1 of the whole-program pass (cacheable,
  parallelizable) and under the legacy per-file
  :func:`~repro.analysis.engine.run_lint`,
- **project-scoped** checkers (REP007–REP010) implement
  :class:`~repro.analysis.project.ProjectChecker` and see the assembled
  :class:`~repro.analysis.project.ProjectIndex`; they run in phase 2
  and only via :func:`~repro.analysis.project.run_project_lint`.

:func:`partition_checkers` splits a rule selection into the two
families; :func:`checkers_for_rules` keeps its historical contract of
returning the file-scoped subset.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.analysis.checkers.clock_escape import ClockEscapeChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.exceptions import ExceptionPolicyChecker
from repro.analysis.checkers.exit_contract import ExitContractChecker
from repro.analysis.checkers.layering import LayeringChecker
from repro.analysis.checkers.numeric import NumericSafetyChecker
from repro.analysis.checkers.telemetry_liveness import (
    TelemetryLivenessChecker,
)
from repro.analysis.checkers.telemetry_names import TelemetryNameChecker
from repro.analysis.checkers.virtual_clock import VirtualClockChecker
from repro.analysis.checkers.worker_boundary import WorkerBoundaryChecker
from repro.analysis.engine import Checker
from repro.errors import UnknownNameError

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.analysis.project import ProjectChecker

ALL_CHECKERS: tuple[Checker, ...] = (
    DeterminismChecker(),
    LayeringChecker(),
    NumericSafetyChecker(),
    ExceptionPolicyChecker(),
    TelemetryNameChecker(),
    VirtualClockChecker(),
)
"""The file-scoped checkers, in rule-id order."""

ALL_PROJECT_CHECKERS: tuple["ProjectChecker", ...] = (
    TelemetryLivenessChecker(),
    WorkerBoundaryChecker(),
    ExitContractChecker(),
    ClockEscapeChecker(),
)
"""The project-scoped (cross-module) checkers, in rule-id order."""

RULE_IDS: tuple[str, ...] = tuple(
    c.rule_id for c in (*ALL_CHECKERS, *ALL_PROJECT_CHECKERS)
)

PROJECT_RULE_IDS: tuple[str, ...] = tuple(
    c.rule_id for c in ALL_PROJECT_CHECKERS
)

ALL_RULES: dict[str, str] = {
    c.rule_id: c.title for c in (*ALL_CHECKERS, *ALL_PROJECT_CHECKERS)
}
"""Rule id → one-line title, for ``--help`` text and SARIF metadata."""


def _validate(rules: Sequence[str]) -> None:
    unknown = sorted(set(rules) - set(ALL_RULES))
    if unknown:
        raise UnknownNameError(
            f"unknown lint rule(s) {unknown}; known: {sorted(ALL_RULES)}"
        )


def checkers_for_rules(rules: Sequence[str] | None) -> tuple[Checker, ...]:
    """File-scoped subset of the registry for the given rule ids.

    ``None`` (or an empty selection) means every file-scoped checker;
    an unknown rule id raises :class:`~repro.errors.UnknownNameError`.
    Project-scoped ids are accepted but contribute nothing here — use
    :func:`partition_checkers` to get both families.
    """
    if not rules:
        return ALL_CHECKERS
    _validate(rules)
    by_id = {c.rule_id: c for c in ALL_CHECKERS}
    return tuple(
        by_id[rule] for rule in dict.fromkeys(rules) if rule in by_id
    )


def partition_checkers(
    rules: Sequence[str] | None,
) -> tuple[tuple[Checker, ...], tuple["ProjectChecker", ...]]:
    """Split a rule selection into (file-scoped, project-scoped).

    ``None`` (or an empty selection) means everything; an unknown rule
    id raises :class:`~repro.errors.UnknownNameError`.  Order follows
    the selection, deduplicated.
    """
    if not rules:
        return ALL_CHECKERS, ALL_PROJECT_CHECKERS
    _validate(rules)
    file_by_id = {c.rule_id: c for c in ALL_CHECKERS}
    project_by_id = {c.rule_id: c for c in ALL_PROJECT_CHECKERS}
    selection = tuple(dict.fromkeys(rules))
    return (
        tuple(file_by_id[r] for r in selection if r in file_by_id),
        tuple(project_by_id[r] for r in selection if r in project_by_id),
    )


__all__ = [
    "ALL_CHECKERS",
    "ALL_PROJECT_CHECKERS",
    "ALL_RULES",
    "PROJECT_RULE_IDS",
    "RULE_IDS",
    "ClockEscapeChecker",
    "DeterminismChecker",
    "ExceptionPolicyChecker",
    "ExitContractChecker",
    "LayeringChecker",
    "NumericSafetyChecker",
    "TelemetryLivenessChecker",
    "TelemetryNameChecker",
    "VirtualClockChecker",
    "WorkerBoundaryChecker",
    "checkers_for_rules",
    "partition_checkers",
]
