"""The repo-specific invariant checkers (rule ids REP001–REP006)."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.exceptions import ExceptionPolicyChecker
from repro.analysis.checkers.layering import LayeringChecker
from repro.analysis.checkers.numeric import NumericSafetyChecker
from repro.analysis.checkers.telemetry_names import TelemetryNameChecker
from repro.analysis.checkers.virtual_clock import VirtualClockChecker
from repro.analysis.engine import Checker
from repro.errors import UnknownNameError

ALL_CHECKERS: tuple[Checker, ...] = (
    DeterminismChecker(),
    LayeringChecker(),
    NumericSafetyChecker(),
    ExceptionPolicyChecker(),
    TelemetryNameChecker(),
    VirtualClockChecker(),
)

RULE_IDS: tuple[str, ...] = tuple(c.rule_id for c in ALL_CHECKERS)


def checkers_for_rules(rules: Sequence[str] | None) -> tuple[Checker, ...]:
    """Subset of :data:`ALL_CHECKERS` for the given rule ids.

    ``None`` (or an empty selection) means every checker; an unknown
    rule id raises :class:`~repro.errors.UnknownNameError`.
    """
    if not rules:
        return ALL_CHECKERS
    by_id = {c.rule_id: c for c in ALL_CHECKERS}
    unknown = sorted(set(rules) - set(by_id))
    if unknown:
        raise UnknownNameError(
            f"unknown lint rule(s) {unknown}; known: {sorted(by_id)}"
        )
    return tuple(by_id[rule] for rule in dict.fromkeys(rules))


__all__ = [
    "ALL_CHECKERS",
    "RULE_IDS",
    "DeterminismChecker",
    "ExceptionPolicyChecker",
    "LayeringChecker",
    "NumericSafetyChecker",
    "TelemetryNameChecker",
    "VirtualClockChecker",
    "checkers_for_rules",
]
