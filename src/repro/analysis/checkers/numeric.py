"""REP003 — numeric-safety contracts.

Two rules, both rooted in how the solvers guarantee reproducible
convergence behaviour:

- **No equality against inexact float values.**  ``==``/``!=`` where
  either operand is a *nonzero* float literal or an explicit
  ``float(...)``/``np.float32(...)``/``np.float64(...)`` cast compares
  values that carry rounding error; use a tolerance.  Comparison with
  exactly ``0.0`` stays allowed — it is the sanctioned breakdown idiom
  (a vanished recurrence denominator is detected by *exact* zero, per
  the solver breakdown policy in ``repro.errors``).
- **No bare ``float(name)`` casts inside solver inner loops.**  In
  ``repro.solvers``, a ``float()`` of a plain variable inside a
  ``for``/``while`` body relies on the operand being a one-element
  ndarray and hides a device-to-host scalarization on the hot path.
  Casting an explicit reduction (``float(r @ ar)``,
  ``float(np.linalg.norm(r))``) is fine — the reduction names the
  scalar being extracted.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers.common import (
    ImportMap,
    in_module,
    qualified_name,
)
from repro.analysis.engine import Finding, SourceFile

RULE_ID = "REP003"

FLOAT_CASTS = frozenset({
    "float", "numpy.float32", "numpy.float64", "numpy.float16",
})


def _is_nonzero_float_literal(node: ast.expr) -> bool:
    # Peel unary +/- so ``x == -1.5`` is caught too.
    while isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.UAdd, ast.USub)
    ):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value != 0.0
    )


def _is_float_cast(node: ast.expr, imports: ImportMap) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = qualified_name(node.func, imports)
    return name in FLOAT_CASTS


class NumericSafetyChecker:
    """Flag float equality and hot-loop scalarization hazards."""

    rule_id = RULE_ID
    title = "numeric safety (float equality, hot-loop casts)"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not in_module(source.module, "repro"):
            return
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Compare):
                yield from self._check_compare(source, node, imports)
        if in_module(source.module, "repro.solvers"):
            yield from self._check_loop_casts(source)

    def _check_compare(
        self, source: SourceFile, node: ast.Compare, imports: ImportMap
    ) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if _is_nonzero_float_literal(side):
                    yield source.finding(
                        self.rule_id, node,
                        "equality comparison against a nonzero float "
                        "literal; compare with a tolerance (exact-zero "
                        "breakdown checks are the only sanctioned float "
                        "equality)",
                    )
                    break
                if _is_float_cast(side, imports):
                    yield source.finding(
                        self.rule_id, node,
                        "equality comparison on a float(...) cast result; "
                        "compare with a tolerance",
                    )
                    break

    def _check_loop_casts(self, source: SourceFile) -> Iterator[Finding]:
        reported: set[int] = set()
        for loop in ast.walk(source.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if id(node) in reported:
                    continue  # nested loops walk the same calls twice
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "float"
                    and len(node.args) == 1
                    and isinstance(node.args[0], ast.Name)
                ):
                    reported.add(id(node))
                    yield source.finding(
                        self.rule_id, node,
                        f"bare float({node.args[0].id}) inside a solver "
                        "inner loop relies on a one-element ndarray; cast "
                        "an explicit reduction or use .item() outside the "
                        "loop",
                    )
