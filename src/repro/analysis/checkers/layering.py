"""REP002 — the sanctioned import graph, as a declarative table.

The architecture is a layered stack: foundation modules (``errors``,
``telemetry``, ``config``) at the bottom, then the ``sparse`` substrate,
the numeric layers (``solvers``, ``fpga``, ``core``), the orchestration
layers (``campaign``, ``parallel``, ``serve``), and the entry points
(``cli``, ``__main__``) on top.  :data:`ALLOWED_DEPENDENCIES` spells
out, per top-level unit, exactly which other units it may import; the
checker resolves every import statement (including the
``from repro import telemetry as tm`` idiom) against it.

On top of the per-unit table, :data:`DENIED_MODULE_PREFIXES` carries
module-granular bans that the unit table cannot express:

- nothing but ``cli`` and ``__main__`` imports ``repro.cli``,
- ``repro.serve.cluster`` is only importable from ``serve`` itself,
  the ``faults`` chaos harness, the ``dse`` explorer and the ``cli``
  entry point,
- neither ``repro.serve`` nor ``repro.dse`` reaches into
  ``repro.parallel`` submodules (``parallel.engine`` internals); they
  must use the ``repro.parallel`` facade, which re-exports the
  supported surface,
- nothing imports the root facade ``repro`` itself except the entry
  points (everything else names its dependency explicitly).

Known sanctioned cycles (``core ↔ fpga`` via the cost model,
``campaign ↔ parallel`` via lazy worker imports) appear as mutual
entries — the table documents them instead of pretending they do not
exist.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from repro.analysis.checkers.common import REPRO_TOP_MODULES
from repro.analysis.engine import Finding, SourceFile

RULE_ID = "REP002"

#: Pseudo-unit names for the package's own top-level files.
ROOT_FACADE = "<repro>"

#: Per top-level unit: the units it is allowed to import.  Importing
#: within one's own unit is always allowed and not listed.
ALLOWED_DEPENDENCIES: Mapping[str, frozenset[str]] = {
    # -- foundation ---------------------------------------------------
    "errors": frozenset(),
    "telemetry": frozenset(),
    "config": frozenset({"errors"}),
    # -- numeric substrate and models ---------------------------------
    "sparse": frozenset({"errors", "config", "telemetry"}),
    "gpu": frozenset({"errors", "sparse"}),
    # placement prices one micro-batch on each device class: it wraps
    # the gpu SpMV model and carries the FPGA-side constants itself.
    "placement": frozenset({"errors", "gpu"}),
    "solvers": frozenset({"errors", "config", "telemetry", "sparse"}),
    "datasets": frozenset({"errors", "sparse"}),
    "metrics": frozenset({"errors", "fpga"}),
    # core ↔ fpga is a sanctioned cycle: the cost model prices core's
    # reconfiguration plans, core's design space consults the cost model
    # (broken at runtime by lazy imports).
    "core": frozenset(
        {"errors", "config", "telemetry", "sparse", "solvers", "fpga"}
    ),
    "fpga": frozenset({
        "errors", "config", "telemetry", "sparse", "solvers", "gpu",
        "metrics", "core",
    }),
    "baselines": frozenset(
        {"errors", "config", "sparse", "solvers", "fpga"}
    ),
    # analysis → parallel covers the whole-program lint pass, which
    # fans phase-1 file parsing out over the run_sharded pool.
    "analysis": frozenset(
        {"errors", "config", "telemetry", "sparse", "solvers", "parallel"}
    ),
    # -- orchestration ------------------------------------------------
    # campaign ↔ parallel is a sanctioned cycle: workers lazily import
    # campaign's entry builders.  campaign → solvers covers the batched
    # group driver, which runs the shared first attempt through
    # ``solve_batched`` before handing per-item results to core.
    "campaign": frozenset({
        "errors", "config", "telemetry", "sparse", "solvers", "datasets",
        "core", "fpga", "metrics", "parallel",
    }),
    "parallel": frozenset(
        {"errors", "config", "telemetry", "datasets", "campaign"}
    ),
    "serve": frozenset({
        "errors", "config", "telemetry", "sparse", "datasets", "core",
        "fpga", "campaign", "parallel", "placement",
    }),
    # faults sits beside cli at the top of the stack: it injects into
    # the three recovery surfaces (parallel pool, serve, core attempt
    # loop), so it may depend on all of them but nothing depends on it
    # except the cli entry point.
    "faults": frozenset({
        "errors", "config", "telemetry", "sparse", "solvers", "datasets",
        "core", "fpga", "campaign", "parallel", "serve",
    }),
    # dse closes the deployment loop: it drives the serving simulator
    # and prices the result with the fpga models, but nothing below the
    # cli depends on it.
    "dse": frozenset({
        "errors", "config", "telemetry", "datasets", "core", "fpga",
        "parallel", "serve", "placement",
    }),
    "experiments": frozenset({
        "errors", "config", "telemetry", "sparse", "solvers", "datasets",
        "core", "fpga", "gpu", "metrics", "baselines",
    }),
    # -- entry points -------------------------------------------------
    "cli": frozenset({
        "errors", "config", "telemetry", "sparse", "solvers", "datasets",
        "core", "fpga", "gpu", "metrics", "baselines", "analysis",
        "campaign", "parallel", "serve", "faults", "experiments", "dse",
        "placement", ROOT_FACADE,
    }),
    "__main__": frozenset({"cli"}),
    ROOT_FACADE: frozenset({
        "errors", "config", "sparse", "solvers", "datasets", "core",
        "campaign",
    }),
}

#: (source-unit, banned module prefix, reason).  ``None`` as the source
#: unit means "every unit except those in the exempt set".
DENIED_MODULE_PREFIXES: tuple[tuple[str | None, str, str], ...] = (
    (
        "serve", "repro.parallel.",
        "repro.serve must import the repro.parallel facade, not "
        "parallel submodule internals",
    ),
    (
        "dse", "repro.parallel.",
        "repro.dse must import the repro.parallel facade, not "
        "parallel submodule internals",
    ),
)

#: Module prefixes only importable from these units.
RESTRICTED_TARGETS: Mapping[str, frozenset[str]] = {
    "repro.cli": frozenset({"cli", "__main__"}),
    # The cluster package is the serving tier's distributed layer: the
    # rest of repro.serve may build on it, the chaos harness injects
    # into it, and the cli drives it — but the numeric and campaign
    # layers below serving must never reach up into cluster internals.
    "repro.serve.cluster": frozenset({"serve", "faults", "cli", "dse"}),
}


def cycle_path(source_unit: str, target_unit: str) -> list[str] | None:
    """Declared-dependency chain ``target_unit → … → source_unit``.

    When an undeclared edge ``source_unit → target_unit`` would close a
    cycle through the *sanctioned* graph, the chain names every module
    on the loop — the actionable fix is breaking one of those declared
    edges (or a lazy import), and the offending edge alone doesn't say
    which.  Returns ``None`` when no declared path exists (the edge is
    merely unsanctioned, not cyclic).  BFS, so the shortest cycle wins;
    neighbor order is sorted for deterministic messages.
    """
    if source_unit == target_unit:
        return [target_unit]
    queue: list[list[str]] = [[target_unit]]
    visited = {target_unit}
    while queue:
        path = queue.pop(0)
        for neighbor in sorted(ALLOWED_DEPENDENCIES.get(path[-1], ())):
            if neighbor == source_unit:
                return path + [neighbor]
            if neighbor not in visited:
                visited.add(neighbor)
                queue.append(path + [neighbor])
    return None


def unit_of(module: str) -> str | None:
    """Top-level unit of a dotted repro module name."""
    if module == "repro" or not module.startswith("repro."):
        return ROOT_FACADE if module == "repro" else None
    head = module.split(".")[1]
    if head in ("__init__", "__main__"):
        return head
    if head in ALLOWED_DEPENDENCIES:
        return head
    return head  # unknown unit: surfaced as an unlisted-unit finding


def _import_targets(
    node: ast.stmt, source_module: str | None
) -> Iterator[tuple[str, ast.stmt]]:
    """Resolve one import statement to repro module targets.

    ``from repro import telemetry`` yields ``repro.telemetry`` (a
    submodule), while ``from repro import Acamar`` yields ``repro`` (an
    attribute of the root facade); the distinction uses the known
    top-level module set.
    """
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "repro" or alias.name.startswith("repro."):
                yield alias.name, node
    elif isinstance(node, ast.ImportFrom):
        if node.level:
            # Relative imports obscure the graph; resolve against the
            # current package when possible.
            if source_module is None:
                return
            parts = source_module.split(".")
            if node.level >= len(parts):
                return
            base = ".".join(parts[: len(parts) - node.level])
            module = f"{base}.{node.module}" if node.module else base
            yield module, node
            return
        module = node.module or ""
        if module == "repro":
            for alias in node.names:
                if alias.name in REPRO_TOP_MODULES:
                    yield f"repro.{alias.name}", node
                else:
                    yield "repro", node
        elif module.startswith("repro."):
            yield module, node


class LayeringChecker:
    """Enforce the declarative import-layering table."""

    rule_id = RULE_ID
    title = "sanctioned import graph"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.module is None or not source.module.startswith("repro"):
            return
        if source.module == "repro":
            source_unit = ROOT_FACADE
        else:
            source_unit = unit_of(source.module)
            if source.module == "repro.__main__":
                source_unit = "__main__"
        if source_unit is None:
            return
        allowed = ALLOWED_DEPENDENCIES.get(source_unit)
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for target, stmt in _import_targets(node, source.module):
                yield from self._check_edge(
                    source, stmt, source_unit, allowed, target
                )

    def _check_edge(
        self,
        source: SourceFile,
        node: ast.stmt,
        source_unit: str,
        allowed: frozenset[str] | None,
        target: str,
    ) -> Iterator[Finding]:
        for restricted, importers in RESTRICTED_TARGETS.items():
            if (
                (target == restricted or target.startswith(restricted + "."))
                and source_unit not in importers
            ):
                yield source.finding(
                    self.rule_id, node,
                    f"{source.module} imports {target}: only "
                    f"{sorted(importers)} may import {restricted}",
                )
                return
        for deny_unit, prefix, reason in DENIED_MODULE_PREFIXES:
            if (deny_unit is None or deny_unit == source_unit) and (
                target.startswith(prefix)
            ):
                yield source.finding(
                    self.rule_id, node,
                    f"{source.module} imports {target}: {reason}",
                )
                return
        target_unit = unit_of(target)
        if target_unit is None or target_unit == source_unit:
            return
        if allowed is None:
            yield source.finding(
                self.rule_id, node,
                f"unit {source_unit!r} is not in the layering table; add "
                "it to ALLOWED_DEPENDENCIES with its sanctioned imports",
            )
            return
        if target_unit not in allowed:
            label = "the repro root facade" if (
                target_unit == ROOT_FACADE
            ) else f"unit {target_unit!r}"
            message = (
                f"{source.module} imports {target}: unit "
                f"{source_unit!r} may not depend on {label} "
                "(see ALLOWED_DEPENDENCIES)"
            )
            loop = cycle_path(source_unit, target_unit)
            if loop is not None:
                chain = " → ".join([source_unit, *loop])
                message += (
                    f"; this edge closes a dependency cycle through the "
                    f"sanctioned graph: {chain} — break one of those "
                    "declared edges or make this import lazy"
                )
            yield source.finding(self.rule_id, node, message)
