"""REP010 — cross-module determinism escapes via helper re-exports.

REP001 bans wall-clock and entropy reads *inside* the deterministic
packages, and REP006 bans the ``time`` module in the virtual-clock
serving tier.  Both are file-local rules, so they share a blind spot:
a helper module **outside** the scoped packages can read the clock (or
hold a shared RNG stream) and export the result, and a scoped module
can then import it — same nondeterminism, laundered through one level
of indirection the per-file rules cannot see.

The facts layer marks *tainted exports* in every module: re-exports of
``time``/``datetime``/``secrets`` attributes, module-level values
captured from clock/entropy calls at import time, module-level RNG
instances (shared streams are consumption-order dependent even when
seeded), and top-level functions that call a clock/entropy source
internally.  Taint propagates through module-level re-export chains to
a fixpoint.  This checker then flags every ``from <helper> import
<tainted name>`` in a scoped module, where the helper is a non-scoped
``repro`` module in the index.

``repro.telemetry`` is the sanctioned timing boundary (its spans are
wall-clock by design and never feed deterministic output), so it is
exempt both as a source and as a taint carrier.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.checkers.common import in_module
from repro.analysis.checkers.determinism import (
    SCOPED_PACKAGES as DETERMINISM_SCOPES,
)
from repro.analysis.engine import Finding

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.analysis.project import ProjectIndex

RULE_ID = "REP010"

#: The modules the escape hatch is guarded for: the REP001 determinism
#: scopes (which include the REP006 virtual-clock tier ``repro.serve``).
SCOPED_PACKAGES = DETERMINISM_SCOPES

SANCTIONED_SOURCES = frozenset({"repro.telemetry"})

_PROPAGATION_ROUNDS = 10


def _propagate(index: "ProjectIndex") -> dict[str, dict[str, str]]:
    """Close the per-module taint maps over module-level re-exports."""
    tainted: dict[str, dict[str, str]] = {
        module: dict(facts.get("tainted", {}))
        for module, facts in index.modules.items()
    }
    for _ in range(_PROPAGATION_ROUNDS):
        changed = False
        for module, facts in index.modules.items():
            if module in SANCTIONED_SOURCES:
                continue
            for record in facts.get("from_imports", []):
                target, name, _line, is_top = (
                    str(record[0]), str(record[1]), record[2],
                    bool(record[3]),
                )
                if not is_top or target in SANCTIONED_SOURCES:
                    continue
                source_taint = tainted.get(target, {})
                if name in source_taint and name not in tainted[module]:
                    tainted[module][name] = (
                        f"via {target}: {source_taint[name]}"
                    )
                    changed = True
        if not changed:
            break
    return tainted


class ClockEscapeChecker:
    """Flag tainted helper imports entering the deterministic core."""

    rule_id = RULE_ID
    title = "no wall-clock/RNG laundering into the deterministic core"

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        tainted = _propagate(index)
        for module, facts in sorted(index.modules.items()):
            if not in_module(module, *SCOPED_PACKAGES):
                continue
            path = str(facts["path"])
            for record in facts.get("from_imports", []):
                target, name, line = (
                    str(record[0]), str(record[1]), int(record[2]),
                )
                if not target.startswith("repro"):
                    continue
                if target in SANCTIONED_SOURCES:
                    continue
                if in_module(target, *SCOPED_PACKAGES):
                    continue  # intra-core imports are REP001's business
                reason = tainted.get(target, {}).get(name)
                if reason is None:
                    continue
                yield Finding(
                    rule=self.rule_id, path=path, line=line,
                    message=(
                        f"{module} imports {name!r} from {target}, which "
                        f"is determinism-tainted ({reason}); the "
                        "deterministic core must not consume wall-clock "
                        "or shared-RNG state through helper modules"
                    ),
                )
