"""REP001 — determinism in the numeric and serving core.

The repo's reproducibility story rests on three pinned behaviours:
bit-identical SpMV against the seed kernel (PR 2), deterministic
per-position campaign seeds (PR 1), and byte-identical serving reports
on the virtual clock (PR 3).  Inside the packages that carry those
guarantees (``repro.sparse``, ``repro.fpga``, ``repro.solvers``,
``repro.serve``, ``repro.dse``, plus the cost-model tenants
``repro.gpu`` / ``repro.metrics`` the upcoming placement work will
schedule) this rule forbids every ambient source of nondeterminism:

- wall-clock reads (``time.time``/``time.monotonic``/``datetime.now``
  and friends),
- OS entropy (``os.urandom``, ``uuid.uuid1``/``uuid4``, ``secrets``),
- the seedless stdlib ``random`` module (only explicitly-seeded
  ``random.Random(seed)`` instances are allowed),
- NumPy global-state randomness (``np.random.<fn>``) and
  ``np.random.default_rng()`` with no seed argument,
- iterating a ``set`` literal or ``set(...)`` call: set order is
  hash-randomized across processes, so such loops feed ordered output
  nondeterministically (iterate a sorted or tuple form instead).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers.common import (
    ImportMap,
    in_module,
    qualified_name,
)
from repro.analysis.engine import Finding, SourceFile

RULE_ID = "REP001"

SCOPED_PACKAGES = (
    "repro.sparse", "repro.fpga", "repro.solvers", "repro.serve",
    "repro.dse", "repro.gpu", "repro.metrics", "repro.placement",
)

#: Fully-qualified callables that read ambient nondeterministic state.
FORBIDDEN_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "datetime.datetime.now", "datetime.datetime.today",
    "datetime.datetime.utcnow", "datetime.date.today",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
})

#: ``random.<name>`` attributes that are *allowed* (explicitly seeded
#: generator construction); everything else on the module draws from
#: the hidden global generator.
RANDOM_ALLOWED = frozenset({"Random"})

#: ``numpy.random`` helpers that construct explicit generators/seeds —
#: fine when given a seed argument, checked separately for default_rng.
NP_RANDOM_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
})


def _has_seed_argument(call: ast.Call) -> bool:
    if call.args and not (
        isinstance(call.args[0], ast.Constant) and call.args[0].value is None
    ):
        return True
    return any(
        kw.arg == "seed"
        and not (
            isinstance(kw.value, ast.Constant) and kw.value.value is None
        )
        for kw in call.keywords
    )


class DeterminismChecker:
    """Forbid ambient nondeterminism in the guaranteed-deterministic core."""

    rule_id = RULE_ID
    title = "determinism in sparse/fpga/solvers/serve/dse/gpu/metrics"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not in_module(source.module, *SCOPED_PACKAGES):
            return
        imports = ImportMap(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(source, node, imports)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_set_iteration(source, node.iter)
            elif isinstance(node, ast.comprehension):
                yield from self._check_set_iteration(source, node.iter)

    def _check_call(
        self, source: SourceFile, node: ast.Call, imports: ImportMap
    ) -> Iterator[Finding]:
        name = qualified_name(node.func, imports)
        if name is None:
            return
        if name in FORBIDDEN_CALLS:
            yield source.finding(
                self.rule_id, node,
                f"call to nondeterministic {name}() — the numeric core "
                "must not read wall clocks or OS entropy",
            )
            return
        if name.startswith("secrets."):
            yield source.finding(
                self.rule_id, node,
                f"call to {name}() — OS entropy is forbidden in the "
                "deterministic core",
            )
            return
        parts = name.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] not in RANDOM_ALLOWED:
                yield source.finding(
                    self.rule_id, node,
                    f"{name}() draws from the seedless global generator; "
                    "construct random.Random(seed) explicitly",
                )
            return
        if len(parts) >= 3 and parts[0] == "numpy" and parts[1] == "random":
            fn = parts[2]
            if fn == "default_rng":
                if not _has_seed_argument(node):
                    yield source.finding(
                        self.rule_id, node,
                        "np.random.default_rng() without a seed argument "
                        "is entropy-seeded; pass an explicit seed",
                    )
            elif fn not in NP_RANDOM_CONSTRUCTORS:
                yield source.finding(
                    self.rule_id, node,
                    f"np.random.{fn}() uses NumPy's global random state; "
                    "thread an explicitly-seeded Generator instead",
                )

    def _check_set_iteration(
        self, source: SourceFile, iterable: ast.expr
    ) -> Iterator[Finding]:
        if isinstance(iterable, ast.Set):
            yield source.finding(
                self.rule_id, iterable,
                "iteration over a set literal: set order is "
                "hash-randomized; iterate a tuple or sorted(...) instead",
            )
        elif (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("set", "frozenset")
        ):
            yield source.finding(
                self.rule_id, iterable,
                f"iteration over a bare {iterable.func.id}(...): order is "
                "hash-randomized; wrap it in sorted(...) before iterating",
            )
