"""Baseline suppression for grandfathered lint findings.

A baseline is a committed JSON file of finding fingerprints (rule +
path + message, deliberately line-free) with occurrence counts.  A
finding that matches a baseline entry is *suppressed* rather than
reported, which lets a new rule land with the tree still red and be
burned down incrementally — while any **new** violation of the same
rule fails immediately.

The repo policy (docs/static-analysis.md) is to keep the committed
baseline empty: genuine violations get fixed, and only findings with a
written justification may be grandfathered.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Mapping

from repro.analysis.engine import Finding, LintReport
from repro.errors import ConfigurationError

BASELINE_SCHEMA_VERSION = 1

DEFAULT_BASELINE = Path(__file__).with_name("baseline.json")
"""The committed repo baseline, shipped inside the package."""


def load_baseline(path: Path) -> Counter[str]:
    """Read a baseline file into a fingerprint → allowance counter."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigurationError(f"baseline file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"baseline file {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, Mapping) or "findings" not in payload:
        raise ConfigurationError(
            f"baseline file {path} lacks the 'findings' key"
        )
    allowance: Counter[str] = Counter()
    for entry in payload["findings"]:
        fingerprint = (
            f"{entry['rule']}|{entry['path']}|{entry['message']}"
        )
        allowance[fingerprint] += int(entry.get("count", 1))
    return allowance


def _write_allowance(counts: Counter[str], path: Path) -> Path:
    """Serialize a fingerprint → count allowance as a baseline file.

    Entries are aggregated by fingerprint with a count, sorted for
    stable diffs.
    """
    findings = []
    for fingerprint in sorted(counts):
        if counts[fingerprint] <= 0:
            continue
        rule, file_path, message = fingerprint.split("|", 2)
        entry: dict[str, object] = {
            "rule": rule,
            "path": file_path,
            "message": message,
        }
        if counts[fingerprint] > 1:
            entry["count"] = counts[fingerprint]
        findings.append(entry)
    document = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "findings": findings,
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return path


def write_baseline(report: LintReport, path: Path) -> Path:
    """Serialize the report's findings as a baseline file."""
    counts: Counter[str] = Counter(
        f.fingerprint() for f in report.findings
    )
    return _write_allowance(counts, path)


def prune_baseline(
    report: LintReport, allowance: Counter[str], path: Path
) -> tuple[int, int]:
    """Rewrite ``path`` keeping only allowance that still fires.

    ``report`` must be the **unsuppressed** lint report.  Each entry's
    count is trimmed to the number of matching findings (so a partially
    fixed fingerprint shrinks), and entries that no longer fire at all
    are dropped.  Returns ``(kept, dropped)`` entry-count totals so the
    CLI can report what changed; the file is rewritten even when
    nothing was dropped, normalizing its formatting.
    """
    fired: Counter[str] = Counter(f.fingerprint() for f in report.findings)
    kept: Counter[str] = Counter()
    for fingerprint, count in allowance.items():
        kept[fingerprint] = min(count, fired[fingerprint])
    dropped = sum(allowance.values()) - sum(kept.values())
    _write_allowance(kept, path)
    return sum(kept.values()), dropped


def apply_baseline(
    report: LintReport, allowance: Counter[str]
) -> LintReport:
    """Split a report into active findings and baseline-suppressed ones.

    Each baseline entry suppresses up to ``count`` matching findings;
    extra occurrences beyond the allowance surface as active findings.
    Baseline entries that matched nothing are reported as *stale* so
    the baseline shrinks as violations get fixed.
    """
    remaining = Counter(allowance)
    active: list[Finding] = []
    suppressed = 0
    for finding in report.findings:
        fingerprint = finding.fingerprint()
        if remaining[fingerprint] > 0:
            remaining[fingerprint] -= 1
            suppressed += 1
        else:
            active.append(finding)
    stale = sorted(
        fingerprint
        for fingerprint, count in remaining.items()
        if count > 0
    )
    return LintReport(
        findings=active,
        suppressed=suppressed,
        stale_baseline=stale,
        files_checked=report.files_checked,
    )
