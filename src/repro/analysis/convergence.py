"""Convergence-history analysis and divergence diagnostics.

Utilities for inspecting what a solve *did*: residual-trajectory
summaries, convergence-rate estimates, and a diagnosis helper that
explains a failed solve in terms of the structural properties the Matrix
Structure unit checks — the "why did my solver diverge" tooling a user of
the accelerator reaches for first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.solvers.base import SolveResult, SolveStatus
from repro.sparse.csr import CSRMatrix
from repro.sparse.properties import analyze_properties


@dataclass(frozen=True)
class ResidualSummary:
    """Trajectory statistics of one solve's relative-residual history."""

    iterations: int
    initial: float
    final: float
    best: float
    peak: float
    peak_over_initial: float
    monotone: bool
    rate: float
    """Geometric per-iteration contraction factor estimated from the
    first-to-best residual drop (1.0 means no progress)."""


def summarize_residuals(result: SolveResult) -> ResidualSummary:
    """Summarize a solve's residual trajectory."""
    history = np.asarray(result.residual_history, dtype=np.float64)
    if len(history) == 0:
        return ResidualSummary(
            iterations=0, initial=math.inf, final=math.inf, best=math.inf,
            peak=math.inf, peak_over_initial=math.inf, monotone=True, rate=1.0,
        )
    finite = history[np.isfinite(history)]
    initial = float(history[0])
    best = float(finite.min()) if len(finite) else math.inf
    peak = float(finite.max()) if len(finite) else math.inf
    best_index = int(np.argmin(np.where(np.isfinite(history), history, np.inf)))
    if best_index > 0 and initial > 0 and best > 0:
        rate = float((best / initial) ** (1.0 / best_index))
    else:
        rate = 1.0
    monotone = bool(np.all(history[1:] <= history[:-1] * (1 + 1e-12)))
    return ResidualSummary(
        iterations=len(history),
        initial=initial,
        final=float(history[-1]),
        best=best,
        peak=peak,
        peak_over_initial=peak / initial if initial > 0 else math.inf,
        monotone=monotone,
        rate=min(rate, 1.0) if math.isfinite(rate) else 1.0,
    )


def iterations_to_tolerance(summary: ResidualSummary, tolerance: float) -> float:
    """Extrapolate how many iterations the observed rate needs for ``tol``.

    Returns ``inf`` when the trajectory shows no contraction.
    """
    if summary.rate >= 1.0 or summary.initial <= 0:
        return math.inf
    if summary.best <= tolerance:
        return float(summary.iterations)
    return math.log(tolerance / summary.initial) / math.log(summary.rate)


def render_residual_history(
    result: SolveResult, width: int = 64, height: int = 8
) -> str:
    """ASCII log-scale plot of a solve's residual trajectory.

    Rows are log10(residual) bands (top = worst), columns are iteration
    buckets; useful for eyeballing divergence spikes and stagnation
    plateaus in a terminal.  Returns a multi-line string.
    """
    history = np.asarray(result.residual_history, dtype=np.float64)
    finite = history[np.isfinite(history) & (history > 0)]
    if len(finite) == 0:
        return "(no finite residuals recorded)"
    logs = np.log10(np.clip(history, finite.min() * 1e-3, None))
    logs = np.where(np.isfinite(logs), logs, np.log10(finite.max()) + 1)
    lo, hi = float(logs.min()), float(logs.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0
    # Bucket iterations into columns (max of each bucket, to keep spikes).
    buckets = np.array_split(logs, min(width, len(logs)))
    column_values = np.array([b.max() for b in buckets])
    lines = []
    for row in range(height, 0, -1):
        threshold = lo + (hi - lo) * (row - 0.5) / height
        cells = "".join("#" if v >= threshold else " " for v in column_values)
        label = f"10^{lo + (hi - lo) * row / height:+6.1f} |"
        lines.append(label + cells)
    lines.append(" " * 10 + "+" + "-" * len(column_values))
    lines.append(
        " " * 11 + f"iterations 1..{len(history)} "
        f"(final {result.final_residual:.2e})"
    )
    return "\n".join(lines)


def diagnose_failure(matrix: CSRMatrix, result: SolveResult) -> str:
    """Human-readable explanation of a failed solve.

    Cross-references the terminal status with the matrix's structural
    properties and the solver's Table I requirement.
    """
    if result.converged:
        return f"{result.solver} converged in {result.iterations} iterations."
    props = analyze_properties(matrix)
    summary = summarize_residuals(result)
    reasons: list[str] = []
    if result.status is SolveStatus.BREAKDOWN:
        reasons.append(
            f"{result.solver} hit a numerical breakdown (a recurrence "
            "denominator vanished)"
        )
    elif result.status is SolveStatus.DIVERGED:
        reasons.append(
            f"{result.solver} diverged: the residual grew to "
            f"{summary.peak_over_initial:.1e}x its initial value"
        )
    else:
        reasons.append(
            f"{result.solver} stagnated: best residual {summary.best:.2e} "
            f"after {summary.iterations} iterations"
        )
    if result.solver == "jacobi" and not props.strictly_diagonally_dominant:
        reasons.append(
            "the matrix is not strictly diagonally dominant (Eq. 1), so "
            "Jacobi's convergence guarantee does not apply"
        )
    if result.solver in ("cg", "pcg", "sor") and not props.symmetric:
        reasons.append(
            "the matrix is non-symmetric, violating the symmetric-"
            "positive-definite requirement (Eq. 2-3)"
        )
    if result.solver in ("bicgstab", "bicg") and props.symmetric:
        reasons.append(
            "the matrix is symmetric — if it is also indefinite, the "
            "one-sided stabilization steps cannot damp both spectrum halves"
        )
    suggestion = (
        "Acamar's Solver Modifier would fall back to the next untried "
        "configuration; run repro.core.Acamar to get the automatic recovery."
    )
    return "; ".join(reasons) + ". " + suggestion
