"""Exception hierarchy for the Acamar reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch the whole family with one clause while still being able
to discriminate between matrix-format problems, solver breakdowns, and
simulation misconfiguration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SparseFormatError(ReproError):
    """A sparse-matrix container was constructed from inconsistent arrays.

    Raised, for example, when a CSR ``indptr`` is not monotone, when column
    indices fall outside the matrix shape, or when the data and index arrays
    disagree in length.
    """


class ShapeMismatchError(ReproError):
    """Operands of a sparse/dense operation have incompatible shapes."""


class SolverError(ReproError):
    """Base class for solver-related failures."""


class SolverBreakdownError(SolverError):
    """An iterative solver hit a numerical breakdown (division by ~0).

    Krylov methods such as BiCG-STAB break down when an inner product in a
    denominator vanishes (rho- or omega-breakdown).  The solver records the
    breakdown and reports divergence rather than propagating NaNs.
    """


class ConfigurationError(ReproError):
    """An accelerator or simulation parameter is out of its valid range."""


class DatasetError(ReproError):
    """A dataset stand-in was requested that the registry does not know."""


class ValidationError(ReproError, ValueError):
    """A value failed domain validation (bad priority, missing field…).

    Derives from both :class:`ReproError` (the exception-policy contract:
    every domain error is catchable as the repro family — enforced by
    lint rule REP004) and :class:`ValueError`, so callers written
    against the builtin keep working.
    """


class UnknownNameError(ReproError, KeyError):
    """A name lookup missed a registry (solver, kernel, preconditioner…).

    Dual-derived from :class:`ReproError` and :class:`KeyError` for the
    same compatibility reason as :class:`ValidationError`.  ``str()``
    follows :class:`KeyError` semantics (the message is repr-quoted).
    """
