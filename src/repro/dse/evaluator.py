"""End-to-end evaluation of one fleet design point.

Each (shape, traffic) pair is deployed through the real virtual-clock
cluster simulator — profiling, admission, routing, batching,
autoscaling and all — then priced with the FPGA area and fleet energy
models.  The result is one flat metrics record per point, carrying the
five frontier objectives (p99 latency, device-seconds, area-mm²,
reconfiguration rate, GFLOPS/W) plus the raw accounting they derive
from.

:func:`evaluate_items` has the campaign's ``(items, config) ->
list[ItemResult]`` worker shape, so :func:`run_sweep` fans a whole
space out over :func:`repro.parallel.run_sharded` — pool restarts,
fault isolation and ordered reassembly included — while staying
byte-deterministic for any worker count: the virtual clock inside each
point never observes the pool, and results are reassembled in point
order.  Cold profiles are memoized per (sources, solver-plan) key so
the sweep pays each real solve once per worker process, not once per
point.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from repro import telemetry as tm
from repro.config import AcamarConfig
from repro.dse.space import (
    SOLVER_MIXES,
    DesignSpace,
    FleetShape,
    TrafficSpec,
    point_id,
)
from repro.fpga.cost_model import PerformanceModel
from repro.fpga.device import ALVEO_U55C, FPGADevice
from repro.fpga.energy import EnergyModel
from repro.placement import GPU_TENANT_AREA_MM2
from repro.parallel import ItemResult, WorkItem, run_sharded
from repro.serve import (
    ClusterConfig,
    ClusterLoadSpec,
    SolveProfile,
    build_profiles,
    run_cluster_loadtest,
)
from repro.serve.loadgen import source_weights
from repro.telemetry import Telemetry

SLOT_AREA_HEADROOM = 2.0
"""A deployed slot is floorplanned at twice its maximum SpMV region —
the same 2x partial-region budget the fleet designer
(``FleetSpec.sized_for``) reserves for in-flight reconfiguration."""

_PROFILE_MEMO: dict[str, dict[str, "SolveProfile | str"]] = {}
"""Per-process cold-profile cache keyed by the profiling-relevant
config: sources, seed, and the solver-plan fields of the Acamar
config.  Shapes differing only in serving knobs (cache, queue, fleet
bounds, slot count) share one entry."""


def _profile_key(
    sources: Sequence[str], seed: int, acamar: AcamarConfig
) -> str:
    return json.dumps(
        {
            "sources": list(sources),
            "seed": seed,
            "acamar": acamar.to_dict(),
        },
        sort_keys=True,
    )


def _profiles_for(
    sources: Sequence[str], seed: int, acamar: AcamarConfig
) -> dict[str, "SolveProfile | str"]:
    key = _profile_key(sources, seed, acamar)
    if key not in _PROFILE_MEMO:
        _PROFILE_MEMO[key] = build_profiles(
            list(sources), acamar, workers=1, seed=seed
        )
    return _PROFILE_MEMO[key]


def acamar_config_for(
    shape: FleetShape, base_config: AcamarConfig | None = None
) -> AcamarConfig:
    """The per-slot Acamar configuration a shape deploys."""
    base = base_config if base_config is not None else AcamarConfig()
    return base.with_overrides(
        max_unroll=shape.max_unroll,
        solver_fallback_order=SOLVER_MIXES[shape.solver_mix],
    )


def cluster_config_for(shape: FleetShape) -> ClusterConfig:
    """The cluster-tier deployment a shape describes."""
    return ClusterConfig(
        initial_fleets=shape.min_fleets,
        min_fleets=shape.min_fleets,
        max_fleets=shape.max_fleets,
        slots_per_fleet=shape.slots_per_fleet,
        gpu_tenants_per_fleet=shape.gpu_tenants,
        cpu_assist=shape.cpu_assist,
        cache_capacity=shape.cache_capacity,
        queue_capacity=shape.queue_capacity,
        autoscale=shape.max_fleets > shape.min_fleets,
        workers=1,
    )


def _modeled_flops_per_request(
    traffic: TrafficSpec,
    sources: Sequence[str],
    profiles: Mapping[str, "SolveProfile | str"],
) -> float:
    """Expected FLOPs of one served request under the traffic mix.

    2 FLOPs (multiply + add) per stored non-zero per iteration of the
    profiled solver sequence's final attempt, weighted by each source's
    arrival probability.  Sources whose profiling failed contribute
    zero — their requests are answered FAILED, not computed.
    """
    weights = source_weights(traffic.mix, len(sources))
    expected = 0.0
    for weight, source in zip(weights, sources):
        profile = profiles.get(source)
        if isinstance(profile, SolveProfile):
            expected += (
                float(weight) * 2.0 * profile.nnz * profile.iterations
            )
    return expected


def evaluate_point(
    shape: FleetShape,
    traffic: TrafficSpec,
    sources: Sequence[str],
    seed: int,
    base_config: AcamarConfig | None = None,
    device: FPGADevice = ALVEO_U55C,
) -> dict[str, Any]:
    """Deploy one design point through the cluster simulator and price it."""
    with tm.span("dse.point_eval"):
        acamar = acamar_config_for(shape, base_config)
        config = cluster_config_for(shape)
        profiles = _profiles_for(sources, config.profile_seed, acamar)
        spec = ClusterLoadSpec(
            seed=seed,
            duration_s=traffic.duration_s,
            rate_rps=traffic.rate_rps,
            mix=traffic.mix,
            deadline_ms=traffic.deadline_ms,
            sources=tuple(sources),
        )
        report = run_cluster_loadtest(
            spec, config, acamar, profiles=profiles
        )
        doc = report.as_dict()

        fleets = doc["fleets"]
        requests = doc["requests"]
        horizon_s = fleets["horizon_s"]
        config_loads = doc["batches"]["config_loads"]

        slot_area_mm2 = SLOT_AREA_HEADROOM * device.spmv_region_area_mm2(
            shape.max_unroll
        )
        # GPU tenants are priced at their MPS-partition die share, on
        # the same mm²-seconds axis as the FPGA regions.  The report's
        # provisioned_slot_seconds counts every dispatch slot, so the
        # tenant share is peeled off before the FPGA-area multiply.
        gpu_tenant_s = fleets.get("provisioned_gpu_tenant_seconds", 0.0)
        area_mm2 = fleets["peak"] * (
            shape.slots_per_fleet * slot_area_mm2
            + device.fixed_area_mm2
            + shape.gpu_tenants * GPU_TENANT_AREA_MM2
        )
        fabric_mm2_seconds = (
            (fleets["provisioned_slot_seconds"] - gpu_tenant_s)
            * slot_area_mm2
            + fleets["provisioned_fleet_seconds"] * device.fixed_area_mm2
            + gpu_tenant_s * GPU_TENANT_AREA_MM2
        )

        flops_per_request = _modeled_flops_per_request(
            traffic, sources, profiles
        )
        modeled_flops = flops_per_request * requests["completed"]
        swap_s = PerformanceModel(device).reconfig.solver_swap_seconds()
        energy = EnergyModel(device).fleet(
            modeled_flops=modeled_flops,
            slot_area_mm2=slot_area_mm2,
            provisioned_slot_seconds=fleets["provisioned_slot_seconds"],
            provisioned_fleet_seconds=fleets["provisioned_fleet_seconds"],
            config_loads=config_loads,
            config_load_seconds=swap_s,
        )

        metrics = {
            "p50_ms": doc["latency_ms"]["overall"]["p50"],
            "p99_ms": doc["latency_ms"]["overall"]["p99"],
            "generated": requests["generated"],
            "completed": requests["completed"],
            "failed": requests["failed"],
            "shed_rate": requests["shed_rate"],
            "unaccounted": requests["unaccounted"],
            "device_seconds": fleets["device_seconds"],
            "provisioned_slot_seconds": fleets["provisioned_slot_seconds"],
            "provisioned_fleet_seconds": fleets[
                "provisioned_fleet_seconds"
            ],
            "peak_fleets": fleets["peak"],
            "horizon_s": horizon_s,
            "config_loads": config_loads,
            "reconfig_rate_per_s": round(
                config_loads / horizon_s, 9
            ) if horizon_s > 0 else 0.0,
            "slot_area_mm2": round(slot_area_mm2, 9),
            "area_mm2": round(area_mm2, 9),
            "fabric_mm2_seconds": round(fabric_mm2_seconds, 9),
            "modeled_flops": round(modeled_flops, 3),
            "gflops_per_watt": energy.as_dict()["gflops_per_watt"],
            "energy_j": energy.as_dict(),
        }
        if shape.gpu_tenants > 0:
            metrics["gpu_batches"] = doc["batches"]["gpu_batches"]
            metrics["gpu_transfers"] = doc["batches"]["gpu_transfers"]
            metrics["provisioned_gpu_tenant_seconds"] = gpu_tenant_s
            metrics["placement_by_class"] = doc["placement"]["by_class"]
        return {
            "id": point_id(shape, traffic),
            "shape": shape.as_dict(),
            "traffic": traffic.as_dict(),
            "metrics": metrics,
        }


def evaluate_items(
    items: Sequence[WorkItem], config: AcamarConfig
) -> list[ItemResult]:
    """Worker entry point: evaluate a chunk of design points.

    Mirrors the campaign's ``solve_items`` contract so it can ride
    ``run_sharded`` unchanged: each item gets its own telemetry
    collector and any exception becomes a structured error record.
    ``item.source`` is the point payload built by :func:`run_sweep`.
    """
    results: list[ItemResult] = []
    for item in items:
        payload = item.source
        collector = Telemetry()
        with collector.activate():
            try:
                record = evaluate_point(
                    shape=FleetShape(**payload["shape"]),
                    traffic=TrafficSpec(**payload["traffic"]),
                    sources=tuple(payload["sources"]),
                    seed=item.seed,
                    base_config=config,
                )
                tm.count("dse.points_evaluated")
                results.append(
                    ItemResult(
                        index=item.index,
                        entry=record,
                        error=None,
                        label=record["id"],
                        telemetry=collector.as_dict(),
                    )
                )
            except Exception as exc:  # noqa: BLE001 — fault isolation
                tm.count("dse.points_failed")
                results.append(
                    ItemResult(
                        index=item.index,
                        entry=None,
                        error=f"{type(exc).__name__}: {exc}",
                        label=str(payload.get("id", item.index)),
                        telemetry=collector.as_dict(),
                    )
                )
    return results


def run_sweep(
    space: DesignSpace,
    seed: int = 0,
    workers: int = 1,
    base_config: AcamarConfig | None = None,
    collector: Telemetry | None = None,
) -> list[ItemResult]:
    """Evaluate every point of ``space``, optionally over a worker pool.

    Returns one :class:`ItemResult` per point in declaration order
    regardless of ``workers`` — the pool only changes wall-clock time,
    never the records, so reports stay byte-identical per seed.
    """
    base = base_config if base_config is not None else AcamarConfig()
    items = []
    for index, (shape, traffic) in enumerate(space.points()):
        payload = {
            "id": point_id(shape, traffic),
            "shape": shape.as_dict(),
            "traffic": traffic.as_dict(),
            "sources": list(space.sources),
        }
        items.append(
            WorkItem(
                index=index,
                source=payload,
                seed=seed,
                cost=traffic.rate_rps * traffic.duration_s,
            )
        )
    collector = collector if collector is not None else Telemetry()
    if workers > 1 and len(items) > 1:
        outcome = run_sharded(
            items, base, workers=workers, work_fn=evaluate_items
        )
        results = outcome.results
        collector.merge(outcome.telemetry)
    else:
        results = evaluate_items(items, base)
        for result in results:
            collector.merge(result.telemetry)
    return sorted(results, key=lambda r: r.index)
