"""Capacity planning: cheapest fleet meeting an SLO at a target rate.

The question the explorer exists to answer: *"which deployment should
I buy for SLO X at arrival rate Y?"*.  A point is **feasible** when
its simulated p99 meets the SLO, its shed rate stays under the cap,
and its accounting is airtight (no unaccounted requests, at least one
completion).  Among feasible points whose traffic regime meets the
queried arrival rate, the **cheapest** is the one with the least
fabric-time — mm²·seconds of provisioned silicon, the serving-tier
integral of the paper's underutilization metric — with the point id as
a deterministic tie-break.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError

DEFAULT_SLO_P99_MS = 50.0
"""Default p99 SLO of the capacity query (half the demo deadline)."""

DEFAULT_RATE_RPS = 400.0
"""Default arrival rate of the capacity query (between the demo
space's steady and rush regimes)."""

DEFAULT_MAX_SHED_RATE = 0.01
"""Default ceiling on the shed fraction a feasible point may show."""


@dataclass(frozen=True)
class CapacityQuery:
    """One "SLO X at rate Y" question."""

    slo_p99_ms: float = DEFAULT_SLO_P99_MS
    rate_rps: float = DEFAULT_RATE_RPS
    max_shed_rate: float = DEFAULT_MAX_SHED_RATE

    def __post_init__(self) -> None:
        if self.slo_p99_ms <= 0:
            raise ConfigurationError(
                f"SLO must be > 0 ms, got {self.slo_p99_ms}"
            )
        if self.rate_rps <= 0:
            raise ConfigurationError(
                f"rate must be > 0 rps, got {self.rate_rps}"
            )
        if not 0.0 <= self.max_shed_rate <= 1.0:
            raise ConfigurationError(
                f"max shed rate must be in [0, 1], got {self.max_shed_rate}"
            )

    def as_dict(self) -> dict[str, float]:
        return {
            "slo_p99_ms": self.slo_p99_ms,
            "rate_rps": self.rate_rps,
            "max_shed_rate": self.max_shed_rate,
        }


def is_feasible(
    record: Mapping[str, Any], query: CapacityQuery
) -> bool:
    """SLO met, shedding bounded, accounting airtight.

    ``completed > 0`` is checked first: a zero-completion point carries
    null latency statistics, and a fleet that served nothing can never
    be feasible no matter how empty its percentiles look.
    """
    metrics = record["metrics"]
    return (
        metrics["completed"] > 0
        and metrics["p99_ms"] is not None
        and metrics["p99_ms"] <= query.slo_p99_ms
        and metrics["shed_rate"] <= query.max_shed_rate
        and metrics["unaccounted"] == 0
    )


def plan_capacity(
    records: Sequence[Mapping[str, Any]], query: CapacityQuery
) -> dict[str, Any]:
    """Answer ``query`` over evaluated point records.

    Only points whose traffic regime carries at least the queried
    arrival rate count as evidence — a fleet that is fast at 200 rps
    says nothing about 400.  The answer echoes the query, names the
    winner (or ``None`` when nothing qualifies) and lists every
    feasible candidate so the margin is visible.
    """
    candidates = [
        record
        for record in records
        if record["traffic"]["rate_rps"] >= query.rate_rps
        and is_feasible(record, query)
    ]
    ranked = sorted(
        candidates,
        key=lambda record: (
            record["metrics"]["fabric_mm2_seconds"],
            record["id"],
        ),
    )
    answer: dict[str, Any] = {
        "query": query.as_dict(),
        "considered": sum(
            1
            for record in records
            if record["traffic"]["rate_rps"] >= query.rate_rps
        ),
        "feasible": [record["id"] for record in ranked],
        "cheapest": None,
    }
    if ranked:
        winner = ranked[0]
        answer["cheapest"] = {
            "id": winner["id"],
            "shape": dict(winner["shape"]),
            "traffic": dict(winner["traffic"]),
            "p99_ms": winner["metrics"]["p99_ms"],
            "shed_rate": winner["metrics"]["shed_rate"],
            "fabric_mm2_seconds": winner["metrics"]["fabric_mm2_seconds"],
            "area_mm2": winner["metrics"]["area_mm2"],
            "gflops_per_watt": winner["metrics"]["gflops_per_watt"],
        }
    return answer
