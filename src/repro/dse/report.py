"""DSE report assembly and rendering (text / JSON / CSV).

:func:`run_dse` is the one-call driver behind ``repro dse`` and the
benchmark harness: sweep, frontier, capacity answer, one report.  The
JSON form is byte-identical per (space, seed) across runs, machines
and ``--workers`` values — it contains only simulated and modeled
quantities, never wall-clock — so CI can ``cmp`` two invocations.
Wall-clock telemetry is exported separately (``--telemetry``) and is
explicitly not deterministic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.config import AcamarConfig
from repro.dse.capacity import CapacityQuery, plan_capacity
from repro.dse.evaluator import run_sweep
from repro.dse.frontier import OBJECTIVES, compute_frontier
from repro.dse.space import DesignSpace, demo_space
from repro.telemetry import Telemetry

DSE_SCHEMA_VERSION = 1

CSV_COLUMNS = (
    "id", "traffic", "mix", "rate_rps", "slots_per_fleet", "max_unroll",
    "solver_mix", "cache_capacity", "queue_capacity", "min_fleets",
    "max_fleets", "gpu_tenants", "cpu_assist", "p50_ms", "p99_ms",
    "completed", "shed_rate", "device_seconds", "area_mm2",
    "fabric_mm2_seconds", "reconfig_rate_per_s", "gflops_per_watt",
    "on_frontier",
)


def _csv_ms(value: Any) -> str:
    """Render a latency cell; idle points carry ``None`` sentinels."""
    return "n/a" if value is None else f"{float(value):.6f}"


@dataclass(frozen=True)
class DseReport:
    """One finished design-space exploration."""

    space: DesignSpace
    seed: int
    records: tuple[dict[str, Any], ...]
    failures: tuple[dict[str, Any], ...]
    frontier_ids: tuple[str, ...]
    capacity: dict[str, Any]

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema_version": DSE_SCHEMA_VERSION,
            "dse": {
                "seed": self.seed,
                "points": len(self.space),
                "evaluated": len(self.records),
                "failed": len(self.failures),
                "objectives": list(OBJECTIVES),
            },
            "space": self.space.as_dict(),
            "points": sorted(
                self.records, key=lambda record: record["id"]
            ),
            "frontier": list(self.frontier_ids),
            "capacity": self.capacity,
            "failures": sorted(
                self.failures, key=lambda failure: failure["id"]
            ),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    def to_csv(self) -> str:
        frontier = set(self.frontier_ids)
        lines = [",".join(CSV_COLUMNS)]
        for record in sorted(self.records, key=lambda r: r["id"]):
            shape = record["shape"]
            traffic = record["traffic"]
            metrics = record["metrics"]
            row = (
                record["id"],
                traffic["name"],
                traffic["mix"],
                f"{traffic['rate_rps']:g}",
                str(shape["slots_per_fleet"]),
                str(shape["max_unroll"]),
                shape["solver_mix"],
                str(shape["cache_capacity"]),
                str(shape["queue_capacity"]),
                str(shape["min_fleets"]),
                str(shape["max_fleets"]),
                str(shape.get("gpu_tenants", 0)),
                "1" if shape.get("cpu_assist") else "0",
                _csv_ms(metrics["p50_ms"]),
                _csv_ms(metrics["p99_ms"]),
                str(metrics["completed"]),
                f"{metrics['shed_rate']:.9f}",
                f"{metrics['device_seconds']:.9f}",
                f"{metrics['area_mm2']:.9f}",
                f"{metrics['fabric_mm2_seconds']:.9f}",
                f"{metrics['reconfig_rate_per_s']:.9f}",
                f"{metrics['gflops_per_watt']:.9f}",
                "1" if record["id"] in frontier else "0",
            )
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"

    def write_csv(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_csv())
        return path

    def summary_lines(self) -> list[str]:
        lines = [
            f"design points          : {len(self.space)} "
            f"({len(self.space.shapes)} shapes x "
            f"{len(self.space.traffic)} traffic specs)",
            f"evaluated / failed     : {len(self.records)} / "
            f"{len(self.failures)}",
            f"frontier               : {len(self.frontier_ids)} "
            "non-dominated points",
        ]
        by_id = {record["id"]: record for record in self.records}
        for identity in self.frontier_ids:
            metrics = by_id[identity]["metrics"]
            lines.append(
                f"  {identity}: p99 {metrics['p99_ms']:.3f} ms, "
                f"{metrics['device_seconds']:.4f} dev-s, "
                f"{metrics['area_mm2']:.3f} mm2, "
                f"{metrics['reconfig_rate_per_s']:.2f} cfg/s, "
                f"{metrics['gflops_per_watt']:.3f} GFLOPS/W"
            )
        query = self.capacity["query"]
        lines.append(
            f"capacity query         : p99 <= {query['slo_p99_ms']:g} ms "
            f"at >= {query['rate_rps']:g} rps "
            f"(shed <= {query['max_shed_rate']:.1%})"
        )
        cheapest = self.capacity["cheapest"]
        if cheapest is None:
            lines.append(
                "capacity answer        : no feasible configuration "
                f"({self.capacity['considered']} considered)"
            )
        else:
            lines.append(
                f"capacity answer        : {cheapest['id']} "
                f"(p99 {cheapest['p99_ms']:.3f} ms, "
                f"{cheapest['fabric_mm2_seconds']:.3f} mm2-s, "
                f"{len(self.capacity['feasible'])} feasible)"
            )
        return lines

    def render_text(self) -> str:
        return "\n".join(self.summary_lines()) + "\n"


def build_report(
    space: DesignSpace,
    seed: int,
    results: list[Any],
    query: CapacityQuery,
) -> DseReport:
    """Fold sweep results into frontier + capacity answer."""
    records = []
    failures = []
    for result in results:
        if result.entry is not None:
            records.append(result.entry)
        else:
            failures.append(
                {"id": result.label, "error": result.error}
            )
    frontier = compute_frontier(records)
    return DseReport(
        space=space,
        seed=seed,
        records=tuple(records),
        failures=tuple(failures),
        frontier_ids=tuple(record["id"] for record in frontier),
        capacity=plan_capacity(records, query),
    )


def run_dse(
    space: DesignSpace | None = None,
    seed: int = 0,
    workers: int = 1,
    query: CapacityQuery | None = None,
    base_config: AcamarConfig | None = None,
    collector: Telemetry | None = None,
) -> DseReport:
    """Sweep a design space end-to-end and report.

    Defaults to the committed demo space and the default capacity
    query; ``workers`` fans the sweep over the parallel engine without
    changing a byte of the report.
    """
    space = space if space is not None else demo_space()
    query = query if query is not None else CapacityQuery()
    results = run_sweep(
        space,
        seed=seed,
        workers=workers,
        base_config=base_config,
        collector=collector,
    )
    return build_report(space, seed, results, query)
