"""Declarative fleet design spaces for ``repro dse``.

A *design point* is one fleet shape crossed with one named traffic
spec.  The shape covers every deployment knob the cluster simulator
exposes — per-fleet slot count, the Dynamic-SpMV unroll budget and
solver-fallback mix each slot is built for, plan-cache and admission
sizing, and the autoscaler's fleet bounds — while the traffic spec
names an arrival-rate/mix/deadline regime.  Spaces are declared as
small axis lists (the full cross product is taken), either in code
(:func:`demo_space`, the committed space CI sweeps) or from a JSON file
(:func:`load_space`, the ``repro dse --space`` syntax documented in
``docs/dse.md``).

Everything here is pure data with strict validation: evaluation lives
in :mod:`repro.dse.evaluator`, dominance in :mod:`repro.dse.frontier`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.serve import TRAFFIC_MIXES

SOLVER_MIXES: Mapping[str, tuple[str, ...]] = {
    # The paper's Solver Modifier preference: most general method first.
    "paper-default": ("bicgstab", "cg", "jacobi"),
    # SPD-leaning fleets: CG first trades robustness for its cheaper
    # per-iteration kernel on symmetric traffic.
    "cg-first": ("cg", "bicgstab", "jacobi"),
    # Throughput-leaning fleets: try the cheapest kernel first and
    # escalate only on divergence.
    "jacobi-first": ("jacobi", "cg", "bicgstab"),
}
"""Named per-slot solver-fallback orders a fleet shape can deploy."""

#: Axis names of the fleet-shape cross product, in declaration order.
SHAPE_AXES = (
    "slots_per_fleet", "max_unroll", "solver_mix", "cache_capacity",
    "queue_capacity", "fleet_bounds",
)

#: Optional axes with their defaults: heterogeneous-placement knobs a
#: space may sweep without forcing every legacy space document to name
#: them.
OPTIONAL_SHAPE_AXES: Mapping[str, tuple[Any, ...]] = {
    "gpu_tenants": (0,),
    "cpu_assist": (False,),
}

DEMO_SOURCES = ("2C", "Wi", "Li", "Fe")
"""Registry keys of the committed demo space (small, structurally
diverse: SPD cliques, non-symmetric SDD, symmetric SDD, mixed-sign
SDD)."""


@dataclass(frozen=True)
class FleetShape:
    """One deployable cluster configuration (the hardware-side axes)."""

    slots_per_fleet: int
    max_unroll: int
    solver_mix: str
    cache_capacity: int
    queue_capacity: int
    min_fleets: int
    max_fleets: int
    gpu_tenants: int = 0
    cpu_assist: bool = False

    def __post_init__(self) -> None:
        if self.slots_per_fleet < 0:
            raise ConfigurationError(
                f"slots_per_fleet must be >= 0, got {self.slots_per_fleet}"
            )
        if self.gpu_tenants < 0:
            raise ConfigurationError(
                f"gpu_tenants must be >= 0, got {self.gpu_tenants}"
            )
        if self.slots_per_fleet + self.gpu_tenants < 1:
            raise ConfigurationError(
                "a fleet shape needs at least one dispatchable slot "
                "(slots_per_fleet + gpu_tenants >= 1)"
            )
        if self.max_unroll < 1:
            raise ConfigurationError(
                f"max_unroll must be >= 1, got {self.max_unroll}"
            )
        if self.solver_mix not in SOLVER_MIXES:
            raise ConfigurationError(
                f"unknown solver mix {self.solver_mix!r}; expected one of "
                f"{tuple(sorted(SOLVER_MIXES))}"
            )
        if self.cache_capacity < 1:
            raise ConfigurationError(
                f"cache_capacity must be >= 1, got {self.cache_capacity}"
            )
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if not 1 <= self.min_fleets <= self.max_fleets:
            raise ConfigurationError(
                "need 1 <= min_fleets <= max_fleets, got "
                f"{self.min_fleets} / {self.max_fleets}"
            )

    @property
    def shape_id(self) -> str:
        """Stable human-readable identity used in reports and CSV.

        Heterogeneous suffixes (``-g<n>``, ``-assist``) appear only
        when the axes are engaged, so every legacy shape id is
        unchanged.
        """
        base = (
            f"s{self.slots_per_fleet}-u{self.max_unroll}-"
            f"{self.solver_mix}-c{self.cache_capacity}-"
            f"q{self.queue_capacity}-f{self.min_fleets}:{self.max_fleets}"
        )
        if self.gpu_tenants > 0:
            base += f"-g{self.gpu_tenants}"
        if self.cpu_assist:
            base += "-assist"
        return base

    def as_dict(self) -> dict[str, Any]:
        document: dict[str, Any] = {
            "slots_per_fleet": self.slots_per_fleet,
            "max_unroll": self.max_unroll,
            "solver_mix": self.solver_mix,
            "cache_capacity": self.cache_capacity,
            "queue_capacity": self.queue_capacity,
            "min_fleets": self.min_fleets,
            "max_fleets": self.max_fleets,
        }
        if self.gpu_tenants > 0 or self.cpu_assist:
            document["gpu_tenants"] = self.gpu_tenants
            document["cpu_assist"] = self.cpu_assist
        return document


@dataclass(frozen=True)
class TrafficSpec:
    """One named arrival regime a shape is evaluated against."""

    name: str
    mix: str
    rate_rps: float
    duration_s: float
    deadline_ms: float = 100.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("traffic spec needs a non-empty name")
        if self.mix not in TRAFFIC_MIXES:
            raise ConfigurationError(
                f"unknown traffic mix {self.mix!r}; "
                f"expected one of {TRAFFIC_MIXES}"
            )
        if self.rate_rps <= 0:
            raise ConfigurationError(
                f"rate must be > 0 rps, got {self.rate_rps}"
            )
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration must be > 0 s, got {self.duration_s}"
            )
        if self.deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline must be > 0 ms, got {self.deadline_ms}"
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "mix": self.mix,
            "rate_rps": self.rate_rps,
            "duration_s": self.duration_s,
            "deadline_ms": self.deadline_ms,
        }


@dataclass(frozen=True)
class DesignSpace:
    """Fleet shapes x traffic specs over a fixed source population."""

    shapes: tuple[FleetShape, ...]
    traffic: tuple[TrafficSpec, ...]
    sources: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.shapes:
            raise ConfigurationError("design space needs at least one shape")
        if not self.traffic:
            raise ConfigurationError(
                "design space needs at least one traffic spec"
            )
        if not self.sources:
            raise ConfigurationError(
                "design space needs at least one problem source"
            )
        shape_ids = [shape.shape_id for shape in self.shapes]
        if len(set(shape_ids)) != len(shape_ids):
            raise ConfigurationError("duplicate fleet shapes in the space")
        names = [spec.name for spec in self.traffic]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate traffic spec names")
        if len(set(self.sources)) != len(self.sources):
            raise ConfigurationError("duplicate problem sources")

    def __len__(self) -> int:
        return len(self.shapes) * len(self.traffic)

    def points(self) -> list[tuple[FleetShape, TrafficSpec]]:
        """Every (shape, traffic) pair, in stable declaration order."""
        return [
            (shape, spec)
            for shape in self.shapes
            for spec in self.traffic
        ]

    def as_dict(self) -> dict[str, Any]:
        return {
            "shapes": [shape.as_dict() for shape in self.shapes],
            "traffic": [spec.as_dict() for spec in self.traffic],
            "sources": list(self.sources),
        }


def point_id(shape: FleetShape, traffic: TrafficSpec) -> str:
    """Stable identity of one design point."""
    return f"{shape.shape_id}@{traffic.name}"


def cross_shapes(axes: Mapping[str, Sequence[Any]]) -> tuple[FleetShape, ...]:
    """Cross the named axis lists into the full shape grid.

    ``axes`` must provide exactly the :data:`SHAPE_AXES` keys and may
    add any of :data:`OPTIONAL_SHAPE_AXES` (``gpu_tenants``,
    ``cpu_assist``); ``fleet_bounds`` entries are ``(min_fleets,
    max_fleets)`` pairs.
    """
    missing = [name for name in SHAPE_AXES if name not in axes]
    unknown = sorted(
        set(axes) - set(SHAPE_AXES) - set(OPTIONAL_SHAPE_AXES)
    )
    if missing or unknown:
        raise ConfigurationError(
            f"shape axes must be exactly {SHAPE_AXES} "
            f"(plus optional {tuple(OPTIONAL_SHAPE_AXES)}); "
            f"missing {missing}, unknown {unknown}"
        )
    for name in (*SHAPE_AXES, *OPTIONAL_SHAPE_AXES):
        if name in axes and not axes[name]:
            raise ConfigurationError(f"axis {name!r} must not be empty")
    optional = {
        name: tuple(axes.get(name, default))
        for name, default in OPTIONAL_SHAPE_AXES.items()
    }
    shapes: list[FleetShape] = []
    for slots, unroll, mix, cache, queue, bounds, tenants, assist in (
        product(
            *(axes[name] for name in SHAPE_AXES),
            optional["gpu_tenants"],
            optional["cpu_assist"],
        )
    ):
        if not isinstance(bounds, (tuple, list)) or len(bounds) != 2:
            raise ConfigurationError(
                f"fleet_bounds entries must be (min, max) pairs, "
                f"got {bounds!r}"
            )
        shapes.append(
            FleetShape(
                slots_per_fleet=int(slots),
                max_unroll=int(unroll),
                solver_mix=str(mix),
                cache_capacity=int(cache),
                queue_capacity=int(queue),
                min_fleets=int(bounds[0]),
                max_fleets=int(bounds[1]),
                gpu_tenants=int(tenants),
                cpu_assist=bool(assist),
            )
        )
    return tuple(shapes)


def demo_space() -> DesignSpace:
    """The committed demo space CI sweeps (32 shapes x 2 regimes).

    Small enough to evaluate in seconds, wide enough that every
    frontier objective moves: slot count and unroll budget trade area
    against latency, the solver mix trades robustness against compute,
    cache sizing trades reconfiguration rate, and queue sizing decides
    whether the bursty regime sheds — the axis the capacity query
    turns on.
    """
    shapes = cross_shapes({
        "slots_per_fleet": (2, 4),
        "max_unroll": (16, 64),
        "solver_mix": ("paper-default", "cg-first"),
        "cache_capacity": (8, 64),
        "queue_capacity": (512, 2048),
        "fleet_bounds": ((1, 3),),
    })
    traffic = (
        TrafficSpec(
            name="steady-200", mix="repeat-heavy", rate_rps=200.0,
            duration_s=8.0, deadline_ms=100.0,
        ),
        TrafficSpec(
            name="rush-600", mix="bursty", rate_rps=600.0,
            duration_s=8.0, deadline_ms=100.0,
        ),
    )
    return DesignSpace(
        shapes=shapes, traffic=traffic, sources=DEMO_SOURCES
    )


def space_from_dict(payload: Mapping[str, Any]) -> DesignSpace:
    """Build a space from the ``repro dse --space`` JSON document.

    Expected keys: ``axes`` (the :data:`SHAPE_AXES` lists), ``traffic``
    (a list of :class:`TrafficSpec` field dicts) and optionally
    ``sources`` (registry keys; default: the demo sources).  Unknown
    keys raise, so typos fail loudly instead of sweeping the defaults.
    """
    known = {"axes", "traffic", "sources"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ConfigurationError(f"unknown design-space keys: {unknown}")
    if "axes" not in payload or "traffic" not in payload:
        raise ConfigurationError(
            "design-space document needs 'axes' and 'traffic' sections"
        )
    axes = payload["axes"]
    if not isinstance(axes, Mapping):
        raise ConfigurationError("'axes' must be an object of axis lists")
    shapes = cross_shapes(axes)
    traffic: list[TrafficSpec] = []
    for entry in payload["traffic"]:
        if not isinstance(entry, Mapping):
            raise ConfigurationError(
                f"traffic entries must be objects, got {entry!r}"
            )
        traffic_known = {"name", "mix", "rate_rps", "duration_s",
                         "deadline_ms"}
        bad = sorted(set(entry) - traffic_known)
        if bad:
            raise ConfigurationError(f"unknown traffic keys: {bad}")
        traffic.append(TrafficSpec(**entry))
    sources = tuple(payload.get("sources", DEMO_SOURCES))
    _validate_sources(sources)
    return DesignSpace(
        shapes=shapes, traffic=tuple(traffic), sources=sources
    )


def load_space(path: str | Path) -> DesignSpace:
    """Load a design space from a JSON file (``repro dse --space``)."""
    import json

    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read design space {path}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"design space {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, Mapping):
        raise ConfigurationError(
            f"design space {path} must be a JSON object"
        )
    return space_from_dict(payload)


def _validate_sources(sources: Sequence[str]) -> None:
    from repro.datasets import dataset_keys

    known = dataset_keys()
    bad = sorted(set(sources) - set(known))
    if bad:
        raise ConfigurationError(
            f"unknown problem sources {bad}; pick from the Table II "
            "registry (repro list-datasets)"
        )
