"""Pareto frontier over evaluated fleet design points.

The five deployment objectives the issue tracker of every serving team
argues about, all minimized:

- **p99 latency** — the SLO currency,
- **device-seconds** — busy accelerator time actually billed,
- **area-mm²** — peak fabric the deployment must own,
- **reconfiguration rate** — ICAP pressure per wall-clock second,
- **-GFLOPS/W** — energy efficiency (negated: more is better).

Dominance itself lives in :func:`repro.core.design_space.pareto_front`
— the same implementation the Resource-Decision-loop sweep uses — so
there is exactly one definition of "Pareto-efficient" in the repo.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.core.design_space import pareto_front

OBJECTIVES = (
    "p99_ms",
    "device_seconds",
    "area_mm2",
    "reconfig_rate_per_s",
    "neg_gflops_per_watt",
)
"""Frontier objective names, in tuple order (all minimized)."""


def point_objectives(record: Mapping[str, Any]) -> tuple[float, ...]:
    """Minimization tuple of one evaluated point record.

    A point that completed nothing publishes null latency statistics;
    it maps to infinite p99 here so it can never dominate a point that
    actually served traffic (under the old 0.0 sentinel, an idle fleet
    looked infinitely fast and poisoned the frontier).
    """
    metrics = record["metrics"]
    p99 = metrics["p99_ms"]
    return (
        float("inf") if p99 is None else float(p99),
        float(metrics["device_seconds"]),
        float(metrics["area_mm2"]),
        float(metrics["reconfig_rate_per_s"]),
        -float(metrics["gflops_per_watt"]),
    )


def compute_frontier(
    records: Sequence[Mapping[str, Any]],
) -> list[Mapping[str, Any]]:
    """Non-dominated point records, ordered by objective tuple."""
    return pareto_front(records, key=point_objectives)
