"""Fleet design-space exploration and capacity planning (``repro dse``).

The decision tool over everything below it: declarative fleet shapes x
traffic mixes (:mod:`repro.dse.space`), each point deployed through the
virtual-clock cluster simulator and priced by the FPGA area/energy
models (:mod:`repro.dse.evaluator`), reduced to a Pareto frontier over
p99 latency, device-seconds, area, reconfiguration rate and GFLOPS/W
(:mod:`repro.dse.frontier`), and answering "cheapest fleet meeting SLO
X at rate Y" (:mod:`repro.dse.capacity`).  Reports are byte-identical
per seed for any worker count (:mod:`repro.dse.report`).
"""

from repro.dse.capacity import (
    DEFAULT_MAX_SHED_RATE,
    DEFAULT_RATE_RPS,
    DEFAULT_SLO_P99_MS,
    CapacityQuery,
    is_feasible,
    plan_capacity,
)
from repro.dse.evaluator import (
    acamar_config_for,
    cluster_config_for,
    evaluate_items,
    evaluate_point,
    run_sweep,
)
from repro.dse.frontier import OBJECTIVES, compute_frontier, point_objectives
from repro.dse.report import (
    DSE_SCHEMA_VERSION,
    DseReport,
    build_report,
    run_dse,
)
from repro.dse.space import (
    DEMO_SOURCES,
    SHAPE_AXES,
    SOLVER_MIXES,
    DesignSpace,
    FleetShape,
    TrafficSpec,
    cross_shapes,
    demo_space,
    load_space,
    point_id,
    space_from_dict,
)

__all__ = [
    "DEFAULT_MAX_SHED_RATE",
    "DEFAULT_RATE_RPS",
    "DEFAULT_SLO_P99_MS",
    "DEMO_SOURCES",
    "DSE_SCHEMA_VERSION",
    "OBJECTIVES",
    "SHAPE_AXES",
    "SOLVER_MIXES",
    "CapacityQuery",
    "DesignSpace",
    "DseReport",
    "FleetShape",
    "TrafficSpec",
    "acamar_config_for",
    "build_report",
    "cluster_config_for",
    "compute_frontier",
    "cross_shapes",
    "demo_space",
    "evaluate_items",
    "evaluate_point",
    "is_feasible",
    "load_space",
    "plan_capacity",
    "point_id",
    "point_objectives",
    "run_dse",
    "run_sweep",
    "space_from_dict",
]
