"""Deterministic fault schedules: the chaos to inject, decided up front.

Chaos testing is only trustworthy when a failing run can be replayed:
the whole point of ``repro chaos --chaos-seed N`` is that the same seed
injects the *byte-identical* fault sequence every time, so a violated
invariant reproduces on demand instead of flaking.  Every schedule here
is therefore a pure function of ``(seed, profile parameters)`` drawn
from a PCG64 generator — the same generator family the load generator
and campaign seeding already use — with one independent ``SeedSequence``
stream per fault domain, so enlarging one schedule never perturbs
another.

Four schedules cover the recovery surfaces the repo ships:

- :class:`PoolFaultSchedule` — per-item worker-death budgets and
  slow-worker stalls for :func:`repro.parallel.engine.run_sharded`
  (injected through its ``executor_factory`` seam),
- :class:`ServeFaultSchedule` — request bursts, a deadline storm
  window, queue/cache pressure and modeled device outages for
  :mod:`repro.serve` (all expressed on the virtual clock),
- :class:`SolverFaultSchedule` — forced-divergence budgets and
  reconfiguration-stall events for the :class:`~repro.core.Acamar`
  attempt loop, driving the Solver Modifier through its transitions,
- :class:`ClusterFaultSchedule` — whole-fleet outages (one timed to
  land just after a forced drain, the outage-mid-drain case) and
  flapping join/drain pairs for the :mod:`repro.serve.cluster` tier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.serve.cluster.service import FleetFaultEvent, ForcedScaleEvent
from repro.serve.scheduler import DeviceFaultEvent

CHAOS_PROFILES = ("pool", "serve", "solver", "cluster", "placement")
"""The chaos runner's profile names, one per recovery surface."""

EXHAUSTION_BUDGET = 99
"""A forced-divergence budget no real fallback chain reaches: the case
diverges on *every* configuration, exercising Solver Modifier
exhaustion regardless of which solver the structure unit selected."""

# Independent SeedSequence streams per fault domain.
_POOL_STREAM = 1
_SERVE_STREAM = 2
_SOLVER_STREAM = 3
_CLUSTER_STREAM = 4
_PLACEMENT_STREAM = 5


def _rng(seed: int, stream: int) -> np.random.Generator:
    """A PCG64 generator on the (seed, stream) SeedSequence."""
    return np.random.Generator(
        np.random.PCG64(np.random.SeedSequence((seed, stream)))
    )


@dataclass(frozen=True)
class PoolFaultSchedule:
    """Worker-pool chaos: how often each item kills its worker.

    ``item_kills[i]`` is how many times item ``i`` takes its worker
    process down before behaving (0 = innocent; ``MAX_ITEM_ATTEMPTS``
    or more = the item must surface as a ``WorkerLost`` result).
    ``item_stalls[i]`` marks a slow-worker stall on the item's chunk —
    counted for reconciliation; a stalled worker still completes, so it
    must never change results.
    """

    item_kills: tuple[int, ...]
    item_stalls: tuple[bool, ...]

    @property
    def total_kills(self) -> int:
        return sum(self.item_kills)

    def lethal_indices(self, max_item_attempts: int) -> tuple[int, ...]:
        """Items whose death budget exhausts the engine's retry budget."""
        return tuple(
            i
            for i, kills in enumerate(self.item_kills)
            if kills >= max_item_attempts
        )

    def transient_indices(self, max_item_attempts: int) -> tuple[int, ...]:
        """Items that die at least once but recover within the budget."""
        return tuple(
            i
            for i, kills in enumerate(self.item_kills)
            if 0 < kills < max_item_attempts
        )


@dataclass(frozen=True)
class ServeFaultSchedule:
    """Serving chaos: overload shape plus modeled device faults.

    The storm window ``[storm_start_s, storm_start_s + storm_duration_s)``
    rewrites every covered request's deadline to a tight relative bound,
    mass-exercising the admission/expiry paths; ``queue_capacity`` and
    ``cache_capacity`` are deliberately small so queue-full sheds,
    preemptions and plan-cache evictions all genuinely occur.
    """

    rate_rps: float
    storm_start_s: float
    storm_duration_s: float
    storm_deadline_ms: float
    queue_capacity: int
    cache_capacity: int
    device_faults: tuple[DeviceFaultEvent, ...]

    @property
    def storm_end_s(self) -> float:
        return self.storm_start_s + self.storm_duration_s


@dataclass(frozen=True)
class ClusterFaultSchedule:
    """Cluster-tier chaos: fleet outages plus membership flapping.

    ``fleet_faults`` are whole-fleet outages applied through the
    cluster simulator's fault seam; the first one is pinned to fire a
    beat after ``mid_drain_at_s`` (a forced drain in ``forced_scale``),
    so an outage lands while the membership is mid-drain — the case the
    router's rebuild path is most likely to get wrong.  The remaining
    ``forced_scale`` events are flapping join/drain pairs in quick
    succession, exercising bounded remap under churn.  ``rate_rps``
    shapes the driving trace (peak rate of a bursty mix) so queue
    pressure during an outage is real, not incidental.
    """

    rate_rps: float
    mid_drain_at_s: float
    fleet_faults: tuple[FleetFaultEvent, ...]
    forced_scale: tuple[ForcedScaleEvent, ...]


@dataclass(frozen=True)
class PlacementFaultSchedule:
    """Heterogeneous-fleet chaos: flapping GPU tenants on a mixed fleet.

    ``device_faults`` mixes GPU-tenant outages (the flapping tenants —
    repeated short outages in quick succession, the MPS-partition
    preemption case) with at least one FPGA-slot outage, so the audits
    can check that a fault in one device class never evicts the other
    class's residents or steals its slots.  ``rate_rps`` shapes the
    driving trace so both slot pools carry real batches while tenants
    flap.
    """

    rate_rps: float
    device_faults: tuple[DeviceFaultEvent, ...]

    def faults_for(self, device_class: str) -> tuple[DeviceFaultEvent, ...]:
        """The scheduled outages targeting one device class."""
        return tuple(
            e for e in self.device_faults if e.device_class == device_class
        )


@dataclass(frozen=True)
class SolverFaultSchedule:
    """Attempt-loop chaos, one entry per solver case.

    ``divergence_budgets[k]`` forces the first that-many attempts of
    case ``k`` to diverge (:data:`EXHAUSTION_BUDGET` forces *every*
    attempt, exercising exhaustion); ``stall_attempts[k]`` lists the
    attempt indices that additionally model an ICAP reconfiguration
    stall while the Solver Modifier swaps regions.
    """

    divergence_budgets: tuple[int, ...]
    stall_attempts: tuple[tuple[int, ...], ...]


@dataclass(frozen=True)
class FaultPlan:
    """One seed's complete, reproducible chaos schedule."""

    seed: int

    def pool_schedule(
        self,
        n_items: int,
        death_rate: float = 0.4,
        lethal_share: float = 0.5,
        stall_rate: float = 0.25,
        max_item_attempts: int = 2,
    ) -> PoolFaultSchedule:
        """Draw worker-death budgets and stall marks for ``n_items``.

        Two transitions are guaranteed on every seed so the chaos run
        always drives both recovery paths: at least one item recovers
        via singleton resubmission (transient death) and at least one
        exhausts the retry budget (``WorkerLost``).
        """
        if n_items < 2:
            raise ConfigurationError(
                f"pool chaos needs >= 2 items, got {n_items}"
            )
        rng = _rng(self.seed, _POOL_STREAM)
        kills = []
        for _ in range(n_items):
            if rng.random() < death_rate:
                kills.append(
                    max_item_attempts if rng.random() < lethal_share else 1
                )
            else:
                kills.append(0)
        stalls = tuple(
            bool(rng.random() < stall_rate) for _ in range(n_items)
        )
        lethal = [k >= max_item_attempts for k in kills]
        if not any(lethal):
            kills[int(rng.integers(n_items))] = max_item_attempts
        if not any(0 < k < max_item_attempts for k in kills):
            # First non-lethal slot becomes the guaranteed transient.
            for index, k in enumerate(kills):
                if k < max_item_attempts:
                    kills[index] = 1
                    break
            else:  # every item lethal: downgrade the last one
                kills[-1] = 1
        return PoolFaultSchedule(
            item_kills=tuple(kills), item_stalls=stalls
        )

    def serve_schedule(
        self,
        duration_s: float,
        slots: int,
        queue_capacity: int = 8,
        cache_capacity: int = 4,
    ) -> ServeFaultSchedule:
        """Draw the serving overload shape and device-outage events."""
        if duration_s <= 0:
            raise ConfigurationError(
                f"serve chaos duration must be > 0 s, got {duration_s}"
            )
        if slots < 1:
            raise ConfigurationError(
                f"serve chaos needs >= 1 fleet slot, got {slots}"
            )
        rng = _rng(self.seed, _SERVE_STREAM)
        rate = float(np.round(rng.uniform(140.0, 220.0), 6))
        storm_start = float(np.round(rng.uniform(0.1, 0.5) * duration_s, 9))
        storm_duration = float(
            np.round(rng.uniform(0.2, 0.4) * duration_s, 9)
        )
        storm_deadline_ms = float(np.round(rng.uniform(2.0, 6.0), 6))
        n_faults = int(rng.integers(2, 5))
        faults = tuple(
            DeviceFaultEvent(
                at_s=float(np.round(rng.uniform(0.0, duration_s), 9)),
                slot=int(rng.integers(slots)),
                outage_s=float(np.round(rng.uniform(0.02, 0.15), 9)),
            )
            for _ in range(n_faults)
        )
        return ServeFaultSchedule(
            rate_rps=rate,
            storm_start_s=storm_start,
            storm_duration_s=storm_duration,
            storm_deadline_ms=storm_deadline_ms,
            queue_capacity=queue_capacity,
            cache_capacity=cache_capacity,
            device_faults=faults,
        )

    def cluster_schedule(
        self,
        duration_s: float,
        max_ordinal: int = 8,
    ) -> ClusterFaultSchedule:
        """Draw the cluster-tier outage and membership-churn schedule.

        Two transitions are guaranteed on every seed: at least one
        flapping join/drain pair (a forced add followed by a forced
        drain a fraction of the run later) and one outage scheduled
        right after a forced drain, so a fleet fault always lands while
        the membership is still settling.  Fleet targets are drawn as
        *ordinals* over the alive set at fire time — the schedule can
        be decided up front without knowing which fleet ids will exist.
        """
        if duration_s <= 0:
            raise ConfigurationError(
                f"cluster chaos duration must be > 0 s, got {duration_s}"
            )
        rng = _rng(self.seed, _CLUSTER_STREAM)
        rate = float(np.round(rng.uniform(1400.0, 2000.0), 6))
        forced: list[ForcedScaleEvent] = []
        n_flaps = int(rng.integers(1, 3))
        for _ in range(n_flaps):
            join_at = float(np.round(rng.uniform(0.1, 0.35) * duration_s, 9))
            gap = float(np.round(rng.uniform(0.05, 0.15) * duration_s, 9))
            forced.append(ForcedScaleEvent(at_s=join_at, action="add"))
            forced.append(
                ForcedScaleEvent(
                    at_s=float(np.round(join_at + gap, 9)), action="drain"
                )
            )
        mid_drain_at = float(np.round(rng.uniform(0.5, 0.65) * duration_s, 9))
        forced.append(ForcedScaleEvent(at_s=mid_drain_at, action="drain"))
        faults = [
            # The mid-drain outage: one beat after the forced drain.
            FleetFaultEvent(
                at_s=float(np.round(mid_drain_at + 0.02 * duration_s, 9)),
                fleet_ordinal=int(rng.integers(max_ordinal)),
                outage_s=float(
                    np.round(rng.uniform(0.05, 0.12) * duration_s, 9)
                ),
            )
        ]
        for _ in range(int(rng.integers(1, 3))):
            faults.append(
                FleetFaultEvent(
                    at_s=float(
                        np.round(rng.uniform(0.05, 0.85) * duration_s, 9)
                    ),
                    fleet_ordinal=int(rng.integers(max_ordinal)),
                    outage_s=float(
                        np.round(rng.uniform(0.03, 0.1) * duration_s, 9)
                    ),
                )
            )
        return ClusterFaultSchedule(
            rate_rps=rate,
            mid_drain_at_s=mid_drain_at,
            fleet_faults=tuple(faults),
            forced_scale=tuple(forced),
        )

    def placement_schedule(
        self,
        duration_s: float,
        fpga_slots: int,
        gpu_tenants: int,
    ) -> PlacementFaultSchedule:
        """Draw the mixed-fleet outage schedule (flapping GPU tenants).

        Two transitions are guaranteed on every seed: at least one GPU
        tenant flaps (two short outages in quick succession on the same
        tenant ordinal) and at least one FPGA-slot outage lands, so the
        class-isolation audit always has both fault kinds to reconcile.
        """
        if duration_s <= 0:
            raise ConfigurationError(
                f"placement chaos duration must be > 0 s, got {duration_s}"
            )
        if fpga_slots < 1 or gpu_tenants < 1:
            raise ConfigurationError(
                "placement chaos needs a mixed fleet (>= 1 FPGA slot and "
                f">= 1 GPU tenant), got {fpga_slots} / {gpu_tenants}"
            )
        rng = _rng(self.seed, _PLACEMENT_STREAM)
        rate = float(np.round(rng.uniform(140.0, 220.0), 6))
        faults: list[DeviceFaultEvent] = []
        # The guaranteed flap: one tenant goes down twice, back to back.
        flap_tenant = int(rng.integers(gpu_tenants))
        flap_at = float(np.round(rng.uniform(0.1, 0.4) * duration_s, 9))
        flap_outage = float(np.round(rng.uniform(0.02, 0.08), 9))
        flap_gap = float(np.round(rng.uniform(0.05, 0.15) * duration_s, 9))
        for at_s in (flap_at, float(np.round(flap_at + flap_gap, 9))):
            faults.append(
                DeviceFaultEvent(
                    at_s=at_s,
                    slot=flap_tenant,
                    outage_s=flap_outage,
                    device_class="gpu",
                )
            )
        for _ in range(int(rng.integers(0, 3))):
            faults.append(
                DeviceFaultEvent(
                    at_s=float(
                        np.round(rng.uniform(0.0, duration_s), 9)
                    ),
                    slot=int(rng.integers(gpu_tenants)),
                    outage_s=float(np.round(rng.uniform(0.02, 0.1), 9)),
                    device_class="gpu",
                )
            )
        # The guaranteed cross-class fault: one FPGA slot outage.
        for _ in range(int(rng.integers(1, 3))):
            faults.append(
                DeviceFaultEvent(
                    at_s=float(
                        np.round(rng.uniform(0.0, duration_s), 9)
                    ),
                    slot=int(rng.integers(fpga_slots)),
                    outage_s=float(np.round(rng.uniform(0.02, 0.15), 9)),
                    device_class="fpga",
                )
            )
        return PlacementFaultSchedule(
            rate_rps=rate, device_faults=tuple(faults)
        )

    def solver_schedule(
        self, n_cases: int, max_recovery_budget: int = 2
    ) -> SolverFaultSchedule:
        """Draw forced-divergence budgets for ``n_cases`` solver cases.

        Case 0 always carries :data:`EXHAUSTION_BUDGET` (every
        configuration diverges → the Modifier must exhaust cleanly);
        the remaining cases draw a recovery budget in
        ``[1, max_recovery_budget]`` so the fallback chain is entered
        but a later configuration is allowed to converge.
        """
        if n_cases < 1:
            raise ConfigurationError(
                f"solver chaos needs >= 1 case, got {n_cases}"
            )
        rng = _rng(self.seed, _SOLVER_STREAM)
        budgets = [EXHAUSTION_BUDGET]
        budgets.extend(
            int(rng.integers(1, max_recovery_budget + 1))
            for _ in range(n_cases - 1)
        )
        stalls = []
        for budget in budgets:
            horizon = min(budget, max_recovery_budget + 1)
            marks = sorted(
                {
                    int(a)
                    for a in rng.integers(
                        0, horizon, size=int(rng.integers(0, horizon + 1))
                    )
                }
            )
            stalls.append(tuple(marks))
        return SolverFaultSchedule(
            divergence_budgets=tuple(budgets),
            stall_attempts=tuple(stalls),
        )
