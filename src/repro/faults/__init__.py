"""Deterministic fault injection for the repo's recovery surfaces.

The subsystem splits cleanly into plan / inject / audit:

- :mod:`~repro.faults.plan` — seeded (PCG64) fault schedules; a chaos
  seed fully determines every injected event,
- :mod:`~repro.faults.injectors` — adapters that thread a schedule into
  the existing seams: ``run_sharded``'s ``executor_factory``, the
  :class:`~repro.core.Acamar` ``fault_hook``, and the serving layer's
  traffic/configuration inputs,
- :mod:`~repro.faults.runner` — the ``repro chaos`` engine: run a
  profile per surface, reconcile injected vs. observed events, and
  report violated recovery invariants lint-style.
"""

from repro.faults.injectors import (
    ChaosExecutorFactory,
    ForcedDivergenceHook,
    chaos_cluster_config,
    chaos_placement_config,
    chaos_service_config,
    storm_requests,
)
from repro.faults.plan import (
    CHAOS_PROFILES,
    EXHAUSTION_BUDGET,
    ClusterFaultSchedule,
    FaultPlan,
    PlacementFaultSchedule,
    PoolFaultSchedule,
    ServeFaultSchedule,
    SolverFaultSchedule,
)
from repro.faults.runner import (
    ChaosFinding,
    ChaosReport,
    ProfileOutcome,
    run_chaos,
    run_cluster_profile,
    run_placement_profile,
    run_pool_profile,
    run_serve_profile,
    run_solver_profile,
)

__all__ = [
    "CHAOS_PROFILES",
    "EXHAUSTION_BUDGET",
    "ChaosExecutorFactory",
    "ChaosFinding",
    "ChaosReport",
    "ClusterFaultSchedule",
    "FaultPlan",
    "ForcedDivergenceHook",
    "PlacementFaultSchedule",
    "PoolFaultSchedule",
    "ProfileOutcome",
    "ServeFaultSchedule",
    "SolverFaultSchedule",
    "chaos_cluster_config",
    "chaos_placement_config",
    "chaos_service_config",
    "run_chaos",
    "run_cluster_profile",
    "run_placement_profile",
    "run_pool_profile",
    "run_serve_profile",
    "run_solver_profile",
    "storm_requests",
]
