"""The chaos runner: inject faults, then audit the recovery contracts.

Each profile drives one recovery surface with the plan's schedule and
then checks the surface's *stated* failure-handling invariants — the
same contracts the operations docs promise:

- ``pool`` — every lost worker yields a structured ``WorkerLost``
  :class:`~repro.parallel.ItemResult`, campaign order is preserved,
  transiently-killed items recover via singleton resubmission, and the
  failure counters agree with the result records,
- ``serve`` — zero requests dropped without a shed (or expiry/failed)
  response, no duplicate responses, every non-completed response
  carries a reason, and device faults / storm pressure are visibly
  absorbed rather than silently ignored,
- ``solver`` — forced divergence walks the Solver Modifier's fallback
  chain without repeats, terminates (exhaustion included), reports the
  full attempt chain, and the ``solver_attempts.<name>`` counters match
  that chain exactly,
- ``cluster`` — every scheduled fleet outage lands and recovers,
  membership churn (flapping joins, an outage mid-drain) never loses a
  request (zero unaccounted), retired fleets drained cleanly, the
  tiered cache ladder stays consistent, and autoscaler actions respect
  the cooldown spacing the policy promises.

Violations are :class:`ChaosFinding` records rendered like
``repro lint`` findings; the CLI maps them onto the same 0/1/2 exit
contract.  A :class:`ChaosReport` contains **no wall-clock material**
(counters and structure only), so a fixed ``--chaos-seed`` renders
byte-identically on every run — the property the ``chaos-smoke`` CI
job pins.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.config import AcamarConfig
from repro.core import Acamar
from repro.datasets import dataset_keys, load_problem, poisson_2d
from repro.errors import UnknownNameError
from repro.parallel import WorkItem, estimate_cost, run_sharded
from repro.parallel.engine import MAX_ITEM_ATTEMPTS
from repro.serve.api import Outcome
from repro.serve.cluster.autoscale import ScaleAction
from repro.serve.cluster.service import run_cluster_loadtest
from repro.serve.cluster.trace import ClusterLoadSpec
from repro.serve.loadgen import LoadSpec
from repro.serve.service import run_loadtest, run_service
from repro.telemetry import Telemetry
from repro.faults.injectors import (
    ChaosExecutorFactory,
    ForcedDivergenceHook,
    chaos_cluster_config,
    chaos_placement_config,
    chaos_service_config,
    storm_requests,
)
from repro.faults.plan import CHAOS_PROFILES, FaultPlan

CHAOS_SCHEMA_VERSION = 1

# Profile workloads: small enough for a CI smoke job, large enough that
# every scheduled fault class actually lands on real work.
POOL_ITEM_COUNT = 8
POOL_WORKERS = 2
POOL_CHUNK_SIZE = 2
SERVE_DURATION_S = 0.8
SERVE_SLOTS = 3
SERVE_SOURCE_COUNT = 10
SOLVER_RECOVERY_GRIDS = (10, 16)
CLUSTER_DURATION_S = 8.0
CLUSTER_SOURCE_COUNT = 10
PLACEMENT_DURATION_S = 2.0
PLACEMENT_FPGA_SLOTS = 2
PLACEMENT_GPU_TENANTS = 2
PLACEMENT_SOURCES = ("Wi", "Ga", "Ns", "If")


@dataclass(frozen=True)
class ChaosFinding:
    """One violated recovery invariant (rendered lint-style)."""

    profile: str
    check: str
    message: str

    def render(self) -> str:
        return f"{self.profile}: {self.check} {self.message}"

    def as_dict(self) -> dict[str, str]:
        return {
            "profile": self.profile,
            "check": self.check,
            "message": self.message,
        }


@dataclass(frozen=True)
class ProfileOutcome:
    """One profile's reconciliation: injected vs. observed vs. findings."""

    profile: str
    injected: dict[str, int]
    observed: dict[str, Any]
    findings: tuple[ChaosFinding, ...]

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict[str, Any]:
        return {
            "profile": self.profile,
            "injected": dict(sorted(self.injected.items())),
            "observed": self.observed,
            "findings": [f.as_dict() for f in self.findings],
        }


@dataclass(frozen=True)
class ChaosReport:
    """Everything one chaos run produced, with a stable JSON form."""

    chaos_seed: int
    profiles: tuple[ProfileOutcome, ...]

    @property
    def findings(self) -> tuple[ChaosFinding, ...]:
        return tuple(f for p in self.profiles for f in p.findings)

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema_version": CHAOS_SCHEMA_VERSION,
            "chaos_seed": self.chaos_seed,
            "profiles": [p.as_dict() for p in self.profiles],
            "findings": len(self.findings),
            "clean": self.clean,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        for profile in self.profiles:
            injected = sum(profile.injected.values())
            lines.append(
                f"profile {profile.profile}: {injected} fault(s) injected, "
                f"{len(profile.findings)} violation(s)"
            )
        lines.append(
            f"{len(self.findings)} violation(s) across "
            f"{len(self.profiles)} profile(s) (chaos seed {self.chaos_seed})"
        )
        return "\n".join(lines)


def _injected(collector: Telemetry) -> dict[str, int]:
    return {
        name: value
        for name, value in collector.counters.items()
        if name.startswith("faults.injected.")
    }


# -- pool profile -------------------------------------------------------


def run_pool_profile(plan: FaultPlan) -> ProfileOutcome:
    """Worker-death / stall chaos against ``run_sharded``."""
    sources = dataset_keys()[:POOL_ITEM_COUNT]
    items = [
        WorkItem(
            index=index,
            source=source,
            seed=101 + index,
            cost=estimate_cost(source),
        )
        for index, source in enumerate(sources)
    ]
    schedule = plan.pool_schedule(
        len(items), max_item_attempts=MAX_ITEM_ATTEMPTS
    )
    factory = ChaosExecutorFactory(schedule)
    collector = Telemetry()
    with collector.activate():
        outcome = run_sharded(
            items,
            AcamarConfig(),
            workers=POOL_WORKERS,
            chunk_size=POOL_CHUNK_SIZE,
            executor_factory=factory,
        )

    findings: list[ChaosFinding] = []

    def violated(check: str, message: str) -> None:
        findings.append(ChaosFinding("pool", check, message))

    indices = [result.index for result in outcome.results]
    if indices != list(range(len(items))):
        violated(
            "CHS-POOL-ORDER",
            "campaign order not preserved or items missing: "
            f"got indices {indices}",
        )
    lost = [
        result
        for result in outcome.results
        if result.error is not None and result.error.startswith("WorkerLost")
    ]
    expected_lost = list(schedule.lethal_indices(MAX_ITEM_ATTEMPTS))
    if sorted(result.index for result in lost) != expected_lost:
        violated(
            "CHS-POOL-LOST",
            f"items {expected_lost} exhausted their worker-death budget "
            "but the WorkerLost results were "
            f"{sorted(r.index for r in lost)}",
        )
    for result in outcome.results:
        if result.entry is None and result.error is None:
            violated(
                "CHS-POOL-STRUCT",
                f"item {result.index} has neither entry nor error",
            )
        if result.index not in expected_lost and result.entry is None:
            violated(
                "CHS-POOL-RECOVER",
                f"item {result.index} should have recovered "
                f"(death budget {schedule.item_kills[result.index]}) but "
                f"reported: {result.error}",
            )
    merged = outcome.telemetry.counters
    error_count = sum(1 for r in outcome.results if r.error is not None)
    if merged.get("campaign.failures", 0) != error_count:
        violated(
            "CHS-POOL-PARITY",
            f"campaign.failures={merged.get('campaign.failures', 0)} but "
            f"{error_count} result(s) carry an error",
        )
    if merged.get("campaign.workers_lost", 0) != len(lost) or (
        outcome.abandoned_items != len(lost)
    ):
        violated(
            "CHS-POOL-PARITY",
            f"workers_lost counter {merged.get('campaign.workers_lost', 0)} "
            f"/ abandoned_items {outcome.abandoned_items} disagree with "
            f"{len(lost)} WorkerLost result(s)",
        )
    injected = _injected(collector)
    if injected.get("faults.injected.worker_death", 0) != schedule.total_kills:
        violated(
            "CHS-POOL-INJECT",
            f"scheduled {schedule.total_kills} worker death(s) but "
            f"{injected.get('faults.injected.worker_death', 0)} were "
            "consumed — the pool stopped retrying early",
        )
    expected_stalls = sum(
        1
        for index, stalled in enumerate(schedule.item_stalls)
        if stalled and index not in expected_lost
    )
    if injected.get("faults.injected.worker_stall", 0) != expected_stalls:
        violated(
            "CHS-POOL-INJECT",
            f"expected {expected_stalls} surviving stalled item(s) to "
            "execute, observed "
            f"{injected.get('faults.injected.worker_stall', 0)}",
        )

    observed = {
        "items": len(items),
        "item_kills": list(schedule.item_kills),
        "item_stalls": [int(s) for s in schedule.item_stalls],
        "entries": sum(1 for r in outcome.results if r.entry is not None),
        "worker_lost": sorted(r.index for r in lost),
        "pool_restarts": outcome.pool_restarts,
        "pools_created": factory.pools_created,
        "abandoned_items": outcome.abandoned_items,
        "counters": {
            name: merged[name]
            for name in ("campaign.failures", "campaign.workers_lost")
            if name in merged
        },
    }
    return ProfileOutcome("pool", injected, observed, tuple(findings))


# -- serve profile ------------------------------------------------------


def run_serve_profile(plan: FaultPlan) -> ProfileOutcome:
    """Burst / deadline-storm / cache-pressure / device-fault chaos."""
    schedule = plan.serve_schedule(
        duration_s=SERVE_DURATION_S, slots=SERVE_SLOTS
    )
    sources = dataset_keys()[:SERVE_SOURCE_COUNT]
    collector = Telemetry()
    with collector.activate():
        requests = storm_requests(
            schedule,
            seed=plan.seed,
            duration_s=SERVE_DURATION_S,
            sources=sources,
        )
        config = chaos_service_config(schedule, slots=SERVE_SLOTS)
        report = run_service(requests, config)

    findings: list[ChaosFinding] = []

    def violated(check: str, message: str) -> None:
        findings.append(ChaosFinding("serve", check, message))

    if report.unaccounted != 0:
        violated(
            "CHS-SERVE-ACCOUNT",
            f"{report.unaccounted} request(s) dropped without a response "
            "(shed/expiry accounting hole)",
        )
    request_ids = sorted(r.request_id for r in requests)
    response_ids = sorted(r.request_id for r in report.responses)
    if request_ids != response_ids:
        duplicates = [
            rid for rid, n in Counter(response_ids).items() if n > 1
        ]
        violated(
            "CHS-SERVE-IDS",
            "response ids do not match request ids "
            f"(duplicates: {duplicates})",
        )
    for response in report.responses:
        if response.outcome is not Outcome.COMPLETED and not response.detail:
            violated(
                "CHS-SERVE-DETAIL",
                f"request {response.request_id} ended "
                f"{response.outcome.value} with no reason",
            )
    if report.counters.get("serve.requests", 0) != len(requests):
        violated(
            "CHS-SERVE-COUNT",
            f"serve.requests={report.counters.get('serve.requests', 0)} "
            f"but {len(requests)} request(s) were offered",
        )
    applied_faults = sum(slot.outages for slot in report.scheduler.slots)
    if report.counters.get("serve.device_faults", 0) != applied_faults:
        violated(
            "CHS-SERVE-FAULTS",
            f"serve.device_faults counter "
            f"{report.counters.get('serve.device_faults', 0)} disagrees "
            f"with {applied_faults} slot outage(s)",
        )
    if applied_faults > len(schedule.device_faults):
        violated(
            "CHS-SERVE-FAULTS",
            f"{applied_faults} outage(s) applied but only "
            f"{len(schedule.device_faults)} were scheduled",
        )
    injected = _injected(collector)
    storm_count = injected.get("faults.injected.deadline_storm", 0)
    if storm_count == 0:
        violated(
            "CHS-SERVE-PRESSURE",
            "the deadline storm window covered no requests — the chaos "
            "schedule exerted no pressure",
        )
    evictions = (
        report.cache.stats.evictions if report.cache is not None else 0
    )
    if evictions == 0:
        violated(
            "CHS-SERVE-PRESSURE",
            "plan-cache capacity pressure produced zero evictions",
        )
    pressure_responses = report.shed_count + report.expired_count
    if storm_count and pressure_responses == 0:
        violated(
            "CHS-SERVE-PRESSURE",
            f"{storm_count} stormed deadline(s) produced no shed or "
            "expired response",
        )

    observed = report.as_dict(include_responses=False)
    return ProfileOutcome("serve", injected, observed, tuple(findings))


# -- solver profile -----------------------------------------------------


def _expected_chain(
    selection: str, fallback_order: Sequence[str]
) -> list[str]:
    chain = [selection]
    chain.extend(s for s in fallback_order if s != selection)
    return chain


def run_solver_profile(plan: FaultPlan) -> ProfileOutcome:
    """Forced-divergence chaos against the Acamar attempt loop.

    Case 0 (a Table II registry problem) carries the exhaustion budget —
    every configuration is forced to diverge and the Solver Modifier
    must walk the *entire* chain and stop.  The remaining cases are 2-D
    Poisson systems on which every fallback solver genuinely converges,
    so a recovery budget ``k`` must yield exactly ``k + 1`` attempts
    with a converged final result.
    """
    config = AcamarConfig()
    cases: list[tuple[str, Any]] = [
        ("registry:Wa", load_problem("Wa", seed=1))
    ]
    cases.extend(
        (f"poisson_2d({n})", poisson_2d(n)) for n in SOLVER_RECOVERY_GRIDS
    )
    schedule = plan.solver_schedule(len(cases))

    findings: list[ChaosFinding] = []

    def violated(check: str, message: str) -> None:
        findings.append(ChaosFinding("solver", check, message))

    injected: dict[str, int] = {}
    observed_cases: list[dict[str, Any]] = []
    for case_index, (label, problem) in enumerate(cases):
        budget = schedule.divergence_budgets[case_index]
        stall_marks = frozenset(schedule.stall_attempts[case_index])
        hook = ForcedDivergenceHook(budget=budget, stall_attempts=stall_marks)
        accelerator = Acamar(config, fault_hook=hook)
        case_collector = Telemetry()
        with case_collector.activate():
            result = accelerator.solve(problem.matrix, problem.b)
        sequence = list(result.solver_sequence)
        chain = _expected_chain(
            result.selection.solver, config.solver_fallback_order
        )
        prefix = f"case {label} (budget {budget}):"
        if len(sequence) > len(chain):
            violated(
                "CHS-SOLVER-TERM",
                f"{prefix} {len(sequence)} attempts exceed the "
                f"{len(chain)}-configuration chain — fallback did not "
                "terminate",
            )
        if len(set(sequence)) != len(sequence):
            violated(
                "CHS-SOLVER-REPEAT",
                f"{prefix} a solver was attempted twice: {sequence}",
            )
        if sequence != chain[: len(sequence)]:
            violated(
                "CHS-SOLVER-CHAIN",
                f"{prefix} attempt chain {sequence} is not a prefix of "
                f"the Modifier's preference order {chain}",
            )
        if hook.forced != sequence[: min(budget, len(sequence))]:
            violated(
                "CHS-SOLVER-CHAIN",
                f"{prefix} forced attempts {hook.forced} do not match "
                f"the reported chain {sequence}",
            )
        attempt_counts = {
            name.removeprefix("solver_attempts."): value
            for name, value in case_collector.counters.items()
            if name.startswith("solver_attempts.")
        }
        if attempt_counts != dict(Counter(sequence)):
            violated(
                "CHS-SOLVER-COUNT",
                f"{prefix} solver_attempts counters {attempt_counts} "
                f"disagree with the attempt chain {sequence}",
            )
        if budget >= len(chain):
            if result.converged or len(sequence) != len(chain):
                violated(
                    "CHS-SOLVER-EXHAUST",
                    f"{prefix} every configuration was forced to diverge "
                    f"yet the loop reported converged={result.converged} "
                    f"after {len(sequence)}/{len(chain)} attempts",
                )
        else:
            if not result.converged or len(sequence) != budget + 1:
                violated(
                    "CHS-SOLVER-RECOVER",
                    f"{prefix} expected convergence on attempt "
                    f"{budget + 1}, got converged={result.converged} "
                    f"after {len(sequence)} attempt(s)",
                )
        for name, value in _injected(case_collector).items():
            injected[name] = injected.get(name, 0) + value
        observed_cases.append(
            {
                "case": label,
                "budget": budget,
                "stall_attempts": sorted(stall_marks),
                "attempt_chain": sequence,
                "converged": result.converged,
                "solver_attempts": dict(sorted(attempt_counts.items())),
            }
        )

    observed = {"cases": observed_cases}
    return ProfileOutcome("solver", injected, observed, tuple(findings))


# -- cluster profile ----------------------------------------------------


def run_cluster_profile(plan: FaultPlan) -> ProfileOutcome:
    """Fleet-outage / membership-churn chaos against the cluster tier.

    The plan schedules whole-fleet outages (one landing just after a
    forced drain) and flapping join/drain pairs; the simulator applies
    them on the virtual clock and counts each applied event under
    ``faults.injected.*``.  The audits reconcile scheduled vs. applied
    vs. observed, and check the membership lifecycle contracts the
    serving docs promise.
    """
    schedule = plan.cluster_schedule(duration_s=CLUSTER_DURATION_S)
    sources = dataset_keys()[:CLUSTER_SOURCE_COUNT]
    spec = ClusterLoadSpec(
        seed=plan.seed,
        duration_s=CLUSTER_DURATION_S,
        rate_rps=schedule.rate_rps,
        mix="bursty",
        sources=tuple(sources),
    )
    config = chaos_cluster_config(schedule)
    report = run_cluster_loadtest(spec, config)

    findings: list[ChaosFinding] = []

    def violated(check: str, message: str) -> None:
        findings.append(ChaosFinding("cluster", check, message))

    injected = {
        name: value
        for name, value in report.counters.items()
        if name.startswith("faults.injected.")
    }
    if report.unaccounted != 0:
        violated(
            "CHS-CLUSTER-ACCOUNT",
            f"{report.unaccounted} request(s) neither completed nor "
            "shed/expired/failed (accounting hole under churn)",
        )
    applied_outages = injected.get("faults.injected.fleet_outage", 0)
    if applied_outages != len(schedule.fleet_faults):
        violated(
            "CHS-CLUSTER-INJECT",
            f"scheduled {len(schedule.fleet_faults)} fleet outage(s) but "
            f"{applied_outages} were applied",
        )
    applied_scale = injected.get("faults.injected.forced_scale", 0)
    if not 1 <= applied_scale <= len(schedule.forced_scale):
        violated(
            "CHS-CLUSTER-INJECT",
            f"{applied_scale} forced scale event(s) applied; expected "
            f"between 1 and the {len(schedule.forced_scale)} scheduled "
            "(membership never flapped)",
        )
    observed_outages = sum(f.outages for f in report.fleets)
    if observed_outages != applied_outages:
        violated(
            "CHS-CLUSTER-RECOVER",
            f"fleets record {observed_outages} outage(s) but "
            f"{applied_outages} were applied",
        )
    stuck = [
        f.fleet_id
        for f in report.fleets
        if f.alive and f.faulted_until is not None
    ]
    if stuck:
        violated(
            "CHS-CLUSTER-RECOVER",
            f"fleet(s) {stuck} still marked faulted after the run — a "
            "recovery event was lost",
        )
    doc = report.as_dict()
    if doc["fleets"]["peak"] > config.max_fleets:
        violated(
            "CHS-CLUSTER-MEMBER",
            f"peak fleet count {doc['fleets']['peak']} exceeds "
            f"max_fleets={config.max_fleets}",
        )
    final_alive = sum(1 for f in report.fleets if f.alive)
    if final_alive < config.min_fleets:
        violated(
            "CHS-CLUSTER-MEMBER",
            f"{final_alive} fleet(s) alive at the end, below "
            f"min_fleets={config.min_fleets}",
        )
    for fleet in report.fleets:
        if fleet.retired_s is None:
            continue
        if fleet.drained_s is None or fleet.retired_s < fleet.drained_s:
            violated(
                "CHS-CLUSTER-DRAIN",
                f"fleet {fleet.fleet_id} retired at {fleet.retired_s} "
                f"without a preceding drain (drained_s="
                f"{fleet.drained_s})",
            )
        if fleet.backlog != 0 or fleet.queues:
            violated(
                "CHS-CLUSTER-DRAIN",
                f"fleet {fleet.fleet_id} retired with {fleet.backlog} "
                "queued request(s) — drain must finish the backlog "
                "first",
            )
    cache = report.cache
    if not (
        cache.stats.misses
        == cache.publishes
        == len(cache.directory)
    ):
        violated(
            "CHS-CLUSTER-CACHE",
            f"cache ladder inconsistent: {cache.stats.misses} miss(es), "
            f"{cache.publishes} publish(es), {len(cache.directory)} "
            "directory entries — each structure must miss exactly once "
            "cluster-wide",
        )
    actions = [
        index
        for index, decision in enumerate(report.autoscaler.decisions)
        if decision.action is not ScaleAction.HOLD
    ]
    min_gap = config.policy.cooldown_intervals + 1
    too_close = [
        (a, b)
        for a, b in zip(actions, actions[1:])
        if b - a < min_gap
    ]
    if too_close:
        violated(
            "CHS-CLUSTER-SCALE",
            f"autoscaler actions at evaluation indices {too_close} are "
            f"closer than the cooldown ({min_gap} intervals) allows",
        )
    pressure = (
        doc["requests"]["shed_overflow"] + doc["requests"]["expired"]
    )
    if pressure == 0:
        violated(
            "CHS-CLUSTER-PRESSURE",
            "outages and churn produced no shed or expired request — "
            "the chaos schedule exerted no pressure",
        )

    observed = {
        "rate_rps": schedule.rate_rps,
        "scheduled_outages": len(schedule.fleet_faults),
        "scheduled_forced_scale": len(schedule.forced_scale),
        "mid_drain_at_s": schedule.mid_drain_at_s,
        "requests": doc["requests"],
        "routing": doc["routing"],
        "cache_lookups": doc["cache"]["lookups"],
        "autoscaler": {
            key: value
            for key, value in doc["autoscaler"].items()
            if key != "decisions"
        },
        "fleets": {
            "peak": doc["fleets"]["peak"],
            "final": doc["fleets"]["final"],
            "outages": observed_outages,
        },
        "batches": doc["batches"]["count"],
    }
    return ProfileOutcome("cluster", injected, observed, tuple(findings))


# -- placement profile --------------------------------------------------


def run_placement_profile(plan: FaultPlan) -> ProfileOutcome:
    """Flapping-GPU-tenant chaos against a mixed FPGA+GPU fleet.

    The plan schedules class-tagged device outages — a GPU tenant that
    flaps (two short outages back to back) plus FPGA-slot outages — on
    a fleet tenanting both classes with CPU assist.  The audits pin the
    class-isolation contract: a GPU fault must never evict an FPGA
    resident (and vice versa), placement decisions must cover every
    profiled source un-forced, and both slot pools must carry real
    batches while the tenants flap.
    """
    schedule = plan.placement_schedule(
        duration_s=PLACEMENT_DURATION_S,
        fpga_slots=PLACEMENT_FPGA_SLOTS,
        gpu_tenants=PLACEMENT_GPU_TENANTS,
    )
    collector = Telemetry()
    with collector.activate():
        config = chaos_placement_config(
            schedule,
            fpga_slots=PLACEMENT_FPGA_SLOTS,
            gpu_tenants=PLACEMENT_GPU_TENANTS,
        )
        spec = LoadSpec(
            seed=plan.seed,
            duration_s=PLACEMENT_DURATION_S,
            rate_rps=schedule.rate_rps,
            mix="uniform",
            sources=PLACEMENT_SOURCES,
        )
        report = run_loadtest(spec, config)

    findings: list[ChaosFinding] = []

    def violated(check: str, message: str) -> None:
        findings.append(ChaosFinding("placement", check, message))

    if report.unaccounted != 0:
        violated(
            "CHS-PLACE-ACCOUNT",
            f"{report.unaccounted} request(s) dropped without a response "
            "on the mixed fleet",
        )
    applied_faults = report.counters.get("serve.device_faults", 0)
    if applied_faults != len(schedule.device_faults):
        violated(
            "CHS-PLACE-INJECT",
            f"scheduled {len(schedule.device_faults)} class-tagged "
            f"outage(s) but {applied_faults} were applied — both slot "
            "pools exist, so none may be skipped",
        )
    slots = report.scheduler.slots
    for name in ("fpga", "gpu"):
        observed = sum(
            s.outages for s in slots if s.device_class == name
        )
        scheduled = len(schedule.faults_for(name))
        if observed != scheduled:
            violated(
                "CHS-PLACE-ISOLATE",
                f"{scheduled} {name} outage(s) scheduled but {name} "
                f"slots record {observed} — a fault crossed device "
                "classes",
            )
    decisions = {}
    for source, profile in report.scheduler.profiles.items():
        if isinstance(profile, str):
            continue
        decision = report.scheduler.placement_for(source)
        if decision is None:
            violated(
                "CHS-PLACE-DECIDE",
                f"source {source} has a profile but no placement "
                "decision",
            )
            continue
        decisions[source] = decision
        if decision.device_class not in ("fpga", "gpu"):
            violated(
                "CHS-PLACE-DECIDE",
                f"source {source} placed on unknown class "
                f"{decision.device_class!r}",
            )
        if decision.forced:
            violated(
                "CHS-PLACE-DECIDE",
                f"source {source} placement was forced although both "
                "device classes are tenanted",
            )
    fpga_batches = report.counters.get("placement.fpga_batches", 0)
    gpu_batches = report.counters.get("placement.gpu_batches", 0)
    if fpga_batches == 0 or gpu_batches == 0:
        violated(
            "CHS-PLACE-SERVE",
            f"both slot pools must carry batches under chaos, got "
            f"{fpga_batches} fpga / {gpu_batches} gpu",
        )
    if gpu_batches and not report.counters.get("gpu.transfers", 0):
        violated(
            "CHS-PLACE-SERVE",
            f"{gpu_batches} GPU batch(es) served without a single PCIe "
            "structure transfer — flapping tenants must re-upload",
        )

    injected = _injected(collector)
    observed = {
        "rate_rps": schedule.rate_rps,
        "scheduled_outages": {
            "fpga": len(schedule.faults_for("fpga")),
            "gpu": len(schedule.faults_for("gpu")),
        },
        "placement": {
            source: decisions[source].device_class
            for source in sorted(decisions)
        },
        "batches": {"fpga": fpga_batches, "gpu": gpu_batches},
        "gpu_transfers": report.counters.get("gpu.transfers", 0),
        "cpu_assist_offloads": report.counters.get(
            "placement.cpu_assist_offloads", 0
        ),
        "requests": {
            "offered": report.counters.get("serve.requests", 0),
            "completed": len(report.completed),
            "shed": report.shed_count,
            "expired": report.expired_count,
        },
    }
    return ProfileOutcome("placement", injected, observed, tuple(findings))


PROFILE_RUNNERS: dict[str, Callable[[FaultPlan], ProfileOutcome]] = {
    "pool": run_pool_profile,
    "serve": run_serve_profile,
    "solver": run_solver_profile,
    "cluster": run_cluster_profile,
    "placement": run_placement_profile,
}


def run_chaos(
    chaos_seed: int, profiles: Sequence[str] = CHAOS_PROFILES
) -> ChaosReport:
    """Run the requested chaos profiles for one seed."""
    outcomes = []
    for profile in profiles:
        runner = PROFILE_RUNNERS.get(profile)
        if runner is None:
            raise UnknownNameError(
                f"unknown chaos profile {profile!r}; expected one of "
                f"{CHAOS_PROFILES}"
            )
        outcomes.append(runner(FaultPlan(chaos_seed)))
    return ChaosReport(chaos_seed=chaos_seed, profiles=tuple(outcomes))
