"""Adapters that thread a fault plan into the three recovery surfaces.

Each injector rides an existing seam rather than patching internals:

- :class:`ChaosExecutorFactory` plugs into ``run_sharded``'s
  ``executor_factory`` parameter and simulates worker-process deaths
  (``BrokenProcessPool``) and slow-worker stalls on the plan's
  per-item schedule,
- :class:`ForcedDivergenceHook` is an :data:`repro.core.FaultHook`
  that forces the leading attempts of an :class:`~repro.core.Acamar`
  solve to diverge, driving the Solver Modifier's fallback chain,
- :func:`storm_requests` / :func:`chaos_service_config` shape serving
  traffic and the service configuration so deadline storms, queue
  pressure, plan-cache evictions and device outages all occur on the
  virtual clock.

Every injected event bumps a ``faults.injected.*`` counter on the
active telemetry collector, so the chaos runner can reconcile what it
*injected* against what the surface *reported* — the whole basis of
its invariants.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Sequence

from repro import telemetry as tm
from repro.serve.api import SolveRequest
from repro.serve.cluster.service import ClusterConfig
from repro.serve.loadgen import LoadSpec, generate_requests
from repro.serve.service import ServiceConfig
from repro.fpga.multitenancy import FleetSpec
from repro.solvers.base import SolveResult, SolveStatus
from repro.faults.plan import (
    ClusterFaultSchedule,
    PlacementFaultSchedule,
    PoolFaultSchedule,
    ServeFaultSchedule,
)


# -- worker-pool surface ------------------------------------------------


class ChaosExecutor:
    """Inline executor that kills "workers" on the plan's schedule.

    Mirrors enough of ``ProcessPoolExecutor``'s surface for
    ``run_sharded``: chunks execute inline, deterministically, in
    submission order.  A chunk containing any item with remaining death
    budget raises :class:`BrokenProcessPool` instead of returning —
    and consumes one death from *every* marked member, so singleton
    resubmission localizes blame exactly like the real pool.  Stalled
    items complete normally (a slow worker is late, not wrong); the
    stall is only counted, and the invariant is that it changes
    nothing.
    """

    def __init__(
        self,
        kills_remaining: dict[int, int],
        stalls: frozenset[int],
    ) -> None:
        self.kills_remaining = kills_remaining
        self.stalls = stalls

    def submit(self, fn, items, config) -> Future:
        future: Future = Future()
        marked = [
            item.index
            for item in items
            if self.kills_remaining.get(item.index, 0) > 0
        ]
        if marked:
            for index in marked:
                self.kills_remaining[index] -= 1
                tm.count("faults.injected.worker_death")
            future.set_exception(
                BrokenProcessPool("chaos: injected worker death")
            )
            return future
        for item in items:
            if item.index in self.stalls:
                tm.count("faults.injected.worker_stall")
        future.set_result(fn(items, config))
        return future

    def shutdown(self, wait: bool = True, cancel_futures: bool = False):
        return None


@dataclass
class ChaosExecutorFactory:
    """``executor_factory`` seam: one pool per epoch, shared fault state.

    The death budgets persist across pool restarts (they belong to the
    *item*, not the pool), so an item with budget ``k`` breaks its first
    ``k`` pools and then behaves — which is exactly how the engine's
    retry accounting classifies transient vs. lethal items.
    """

    schedule: PoolFaultSchedule
    pools_created: int = 0

    def __post_init__(self) -> None:
        self._kills = {
            index: kills
            for index, kills in enumerate(self.schedule.item_kills)
            if kills > 0
        }
        self._stalls = frozenset(
            index
            for index, stalled in enumerate(self.schedule.item_stalls)
            if stalled
        )

    def __call__(self, workers: int) -> ChaosExecutor:
        self.pools_created += 1
        return ChaosExecutor(self._kills, self._stalls)


# -- solver attempt-loop surface ----------------------------------------


@dataclass
class ForcedDivergenceHook:
    """:data:`~repro.core.accelerator.FaultHook` forcing early attempts
    to diverge.

    The first ``budget`` attempts have their (real) results replaced by
    a ``DIVERGED`` copy, so the Solver Modifier must walk its fallback
    chain; attempt indices in ``stall_attempts`` additionally model an
    ICAP reconfiguration stall (counted — the stall delays hardware,
    it does not change the decision).  ``forced`` records the solver
    names whose results were replaced, in order, for reconciliation
    against the reported attempt chain.
    """

    budget: int
    stall_attempts: frozenset[int] = frozenset()
    forced: list[str] = field(default_factory=list)

    def __call__(
        self, solver_name: str, attempt_index: int, result: SolveResult
    ) -> SolveResult | None:
        if attempt_index >= self.budget:
            return None
        self.forced.append(solver_name)
        tm.count("faults.injected.divergence")
        if attempt_index in self.stall_attempts:
            tm.count("faults.injected.reconfig_stall")
        return dataclasses.replace(result, status=SolveStatus.DIVERGED)


# -- serving surface ----------------------------------------------------


def storm_requests(
    schedule: ServeFaultSchedule,
    seed: int,
    duration_s: float,
    sources: Sequence[str],
    deadline_ms: float = 60.0,
) -> list[SolveRequest]:
    """Bursty traffic with the plan's deadline storm overlaid.

    Generates a ``bursty``-mix request log at the schedule's rate, then
    rewrites the deadline of *every* request arriving inside the storm
    window to the storm's tight relative bound — including batch and
    best-effort traffic that normally carries none — so the admission
    and in-queue expiry paths are exercised under mass pressure.
    """
    spec = LoadSpec(
        seed=seed,
        duration_s=duration_s,
        rate_rps=schedule.rate_rps,
        mix="bursty",
        deadline_ms=deadline_ms,
        sources=tuple(sources),
    )
    requests: list[SolveRequest] = []
    for request in generate_requests(spec):
        if schedule.storm_start_s <= request.arrival_s < schedule.storm_end_s:
            tm.count("faults.injected.deadline_storm")
            request = dataclasses.replace(
                request,
                deadline_s=round(
                    request.arrival_s + schedule.storm_deadline_ms * 1e-3, 9
                ),
            )
        requests.append(request)
    return requests


def chaos_service_config(
    schedule: ServeFaultSchedule, slots: int
) -> ServiceConfig:
    """Service configuration that makes the scheduled pressure real.

    Queue and plan-cache capacities come from the schedule (small on
    purpose: queue-full sheds, preemptions and cache evictions must
    actually happen), and the plan's device outages are handed to the
    scheduler's fault seam; each outage is counted here as injected.
    """
    for _ in schedule.device_faults:
        tm.count("faults.injected.device_outage")
    return ServiceConfig(
        queue_capacity=schedule.queue_capacity,
        max_batch=4,
        cache_capacity=schedule.cache_capacity,
        fleet=FleetSpec(devices=1, slots_per_device=slots),
        device_faults=schedule.device_faults,
    )


def chaos_placement_config(
    schedule: PlacementFaultSchedule,
    fpga_slots: int,
    gpu_tenants: int,
) -> ServiceConfig:
    """Mixed-fleet configuration under the plan's flapping tenants.

    The fleet tenants both device classes (with CPU assist on, so the
    offload path is exercised too) and the plan's class-tagged outages
    ride the scheduler's fault seam; each is counted here as injected.
    """
    for _ in schedule.device_faults:
        tm.count("faults.injected.device_outage")
    return ServiceConfig(
        queue_capacity=256,
        max_batch=4,
        fleet=FleetSpec(
            devices=1,
            slots_per_device=fpga_slots,
            gpu_tenants=gpu_tenants,
            cpu_assist=True,
        ),
        device_faults=schedule.device_faults,
    )


# -- cluster surface ----------------------------------------------------


def chaos_cluster_config(
    schedule: ClusterFaultSchedule, slots_per_fleet: int = 2
) -> ClusterConfig:
    """Cluster configuration that makes the scheduled churn real.

    Capacities are deliberately tight: the per-fleet queue is small
    enough that re-routed traffic during an outage sheds visibly, and
    the 4-entry local cache tier forces evictions and remote hits so
    the whole cost ladder is exercised.  The plan's fleet outages and
    forced scale events ride the simulator's own chaos seams; the
    simulator counts each *applied* event under ``faults.injected.*``,
    so the runner reconciles scheduled vs. applied vs. observed.
    """
    return ClusterConfig(
        initial_fleets=2,
        min_fleets=1,
        max_fleets=6,
        slots_per_fleet=slots_per_fleet,
        max_batch=8,
        queue_capacity=512,
        cache_capacity=4,
        fleet_faults=schedule.fleet_faults,
        forced_scale=schedule.forced_scale,
    )
