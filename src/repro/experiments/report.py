"""Plain-text table rendering for experiment output.

The benchmark harness regenerates the paper's tables and figure series as
monospace tables; this module holds the one formatter they all share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def format_cell(value: Any) -> str:
    """Render one cell: floats get 4 significant digits, bools ✓/✗."""
    if isinstance(value, bool):
        return "Y" if value else "x"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], indent: str = ""
) -> str:
    """Monospace table with a header rule, column-width aligned."""
    rendered = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        indent + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        indent + "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append(
            indent + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


@dataclass
class ExperimentTable:
    """One regenerated table/figure: id, headers, data rows, and notes."""

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        self.rows.append(tuple(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_text(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.append(format_table(self.headers, self.rows))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def column(self, name: str) -> list:
        """Extract one column by header name."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def render_series(
        self, label_column: str, value_column: str, width: int = 40
    ) -> str:
        """ASCII bar view of one numeric column — a terminal 'figure'.

        Bars are scaled to the column maximum; non-numeric cells are
        skipped.  Complements :meth:`to_text` when a series' *shape*
        (monotone decay, flattening) is the point.
        """
        label_index = self.headers.index(label_column)
        value_index = self.headers.index(value_column)
        pairs = [
            (str(row[label_index]), float(row[value_index]))
            for row in self.rows
            if isinstance(row[value_index], (int, float))
            and not isinstance(row[value_index], bool)
        ]
        if not pairs:
            return "(no numeric values to render)"
        peak = max(abs(v) for _, v in pairs) or 1.0
        label_width = max(len(label) for label, _ in pairs)
        lines = [f"-- {value_column} --"]
        for label, value in pairs:
            bar = "#" * max(0, round(abs(value) / peak * width))
            lines.append(f"{label:>{label_width}} |{bar} {format_cell(value)}")
        return "\n".join(lines)
