"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(keys=None, ...) -> ExperimentTable`` (keys are
Table II dataset IDs; ``None`` means all 25) and a ``main()`` that prints
the regenerated table.  The mapping to the paper:

========  =====================================================
module    paper artifact
========  =====================================================
table1    Table I   — convergence criteria catalog
table2    Table II  — per-solver ✓/✗ + Acamar robust convergence
fig1      Figure 1  — SpMV share of solver latency
fig2      Figure 2  — baseline underutilization vs unroll factor
fig5      Figure 5  — reconfiguration rate vs MSID stages
fig6      Figure 6  — latency speedup over the static design
fig7      Figure 7  — underutilization improvement ratio
fig8      Figure 8  — underutilization vs the GPU
fig9      Figure 9  — achieved throughput fraction
fig10     Figure 10 — performance efficiency (GFLOPS/mm²)
fig11     Figure 11 — MSID-stage effect on R.U. and latency
fig12     Figure 12 — underutilization vs sampling rate
fig13     Figure 13 — allowed reconfiguration time budget
========  =====================================================

Figures 3/4 are architecture diagrams (implemented as :mod:`repro.core`
itself; Figure 4's worked example is a unit test).  ``ext_coverage`` is
an extension artifact: Table II re-run over the full solver registry.
"""

from repro.experiments import (  # noqa: F401
    extended_coverage,
    fig1,
    fig10,
    fig11,
    fig12,
    fig13,
    fig2,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    kernel_mix,
    precision_study,
    table1,
    table2,
)
from repro.experiments.report import ExperimentTable, format_table

ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "fig1": fig1,
    "fig2": fig2,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "ext_coverage": extended_coverage,
    "ext_kernel_mix": kernel_mix,
    "ext_precision": precision_study,
}
"""Experiment id → module, in the paper's presentation order."""

__all__ = ["ALL_EXPERIMENTS", "ExperimentTable", "format_table"]
