"""Figure 12: resource underutilization vs sampling rate.

A larger ``SamplingRate`` means smaller row sets, finer unroll matching,
lower Eq. 5 underutilization — but more reconfiguration events.  The
sweep reproduces the paper's decreasing curves and its choice of 32 as
the latency/utilization compromise.
"""

from __future__ import annotations

import numpy as np

from repro.config import AcamarConfig
from repro.core import FineGrainedReconfigurationUnit
from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.fpga import mean_underutilization

SAMPLING_SWEEP = (4, 8, 16, 32, 64, 128, 256)


def underutilization_for(key: str, rates: tuple[int, ...]) -> list[float]:
    """Post-MSID Eq. 5 underutilization per sampling rate."""
    matrix = runner.problem(key).matrix
    lengths = matrix.row_lengths()
    values = []
    for rate in rates:
        plan = FineGrainedReconfigurationUnit(
            AcamarConfig(sampling_rate=rate)
        ).plan(matrix)
        values.append(mean_underutilization(lengths, plan.unroll_for_rows))
    return values


def run(
    keys: tuple[str, ...] | None = None,
    rates: tuple[int, ...] = SAMPLING_SWEEP,
) -> ExperimentTable:
    """Underutilization per (dataset, sampling rate) plus the mean row."""
    table = ExperimentTable(
        experiment_id="Figure 12",
        title="Resource underutilization for different sampling rates",
        headers=("ID", *[f"S={r}" for r in rates]),
    )
    rows = []
    for key in runner.resolve_keys(keys):
        values = underutilization_for(key, rates)
        rows.append(values)
        table.add_row(key, *values)
    means = np.asarray(rows).mean(axis=0)
    table.add_row("MEAN", *means.tolist())
    table.add_note(
        "underutilization decreases with sampling rate "
        f"(mean {means[0]:.2f} at S={rates[0]} -> {means[-1]:.2f} at "
        f"S={rates[-1]}); the paper fixes S=32 to bound reconfiguration cost"
    )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
