"""Figure 7: improvement ratio in SpMV resource underutilization.

Ratio of the static baseline's Eq. 5 underutilization to Acamar's, per
dataset and baseline unroll factor.  Acamar's per-row unroll assignment
comes from its reconfiguration plan (Row Length Trace + MSID chain).
"""

from __future__ import annotations

from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.fpga import mean_underutilization, underutilization_improvement_ratio

URB_SWEEP = (2, 4, 8, 16, 32, 64)


def improvement_ratios(key: str, urbs: tuple[int, ...]) -> list[float]:
    """Baseline-RU / Acamar-RU for each baseline unroll factor."""
    prob = runner.problem(key)
    plan = runner.acamar_result(key).plan
    lengths = prob.matrix.row_lengths()
    acamar_ru = mean_underutilization(lengths, plan.unroll_for_rows)
    return [
        underutilization_improvement_ratio(
            mean_underutilization(lengths, urb), acamar_ru
        )
        for urb in urbs
    ]


def run(
    keys: tuple[str, ...] | None = None,
    urbs: tuple[int, ...] = URB_SWEEP,
) -> ExperimentTable:
    """Improvement ratio per (dataset, baseline URB)."""
    table = ExperimentTable(
        experiment_id="Figure 7",
        title="Resource-underutilization improvement ratio (higher is better)",
        headers=("ID", *[f"URB={u}" for u in urbs]),
    )
    maxima = []
    for key in runner.resolve_keys(keys):
        values = improvement_ratios(key, urbs)
        maxima.append(max(values))
        table.add_row(key, *values)
    table.add_note(
        "improvement grows with the baseline's allocation (paper: up to 3x); "
        f"best observed ratio {max(maxima):.2f}x"
    )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
