"""Figure 5: reconfiguration rate vs number of MSID chain stages.

Sweeps ``rOpt`` and reports the Dynamic-SpMV reconfiguration rate
(events per set boundary) per dataset plus the cross-dataset mean.  The
paper's observation — the rate is monotone non-increasing and nearly
constant after ``rOpt = 8`` — follows from each stage extending runs of
equal unroll factors by at most one entry.
"""

from __future__ import annotations

import numpy as np

from repro.config import AcamarConfig
from repro.core import FineGrainedReconfigurationUnit, plan_reconfiguration_rate
from repro.experiments import runner
from repro.experiments.report import ExperimentTable

ROPT_SWEEP = (0, 1, 2, 4, 6, 8, 10, 12)


def reconfiguration_rates(
    key: str, ropts: tuple[int, ...], tolerance: float = 0.15
) -> list[float]:
    """Reconfiguration rate of one dataset's plan for each ``rOpt``."""
    matrix = runner.problem(key).matrix
    rates = []
    for r_opt in ropts:
        config = AcamarConfig(r_opt=r_opt, msid_tolerance=tolerance)
        plan = FineGrainedReconfigurationUnit(config).plan(matrix)
        rates.append(plan_reconfiguration_rate(plan))
    return rates


def run(
    keys: tuple[str, ...] | None = None,
    ropts: tuple[int, ...] = ROPT_SWEEP,
) -> ExperimentTable:
    """Reconfiguration rate per (dataset, rOpt)."""
    table = ExperimentTable(
        experiment_id="Figure 5",
        title="Reconfiguration rate for different MSID chain stages",
        headers=("ID", *[f"rOpt={r}" for r in ropts]),
    )
    all_rates = []
    for key in runner.resolve_keys(keys):
        rates = reconfiguration_rates(key, ropts)
        all_rates.append(rates)
        table.add_row(key, *rates)
    means = np.asarray(all_rates).mean(axis=0)
    table.add_row("MEAN", *means.tolist())
    tail_change = abs(means[-1] - means[ropts.index(8)]) if 8 in ropts else None
    if tail_change is not None:
        table.add_note(
            f"mean rate changes by {tail_change:.4f} beyond rOpt=8 — "
            "effectively constant, matching the paper's choice of rOpt=8"
        )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
