"""Shared execution layer for the per-figure experiment modules.

The expensive step every evaluation figure shares is the *numerical solve*
of each Table II stand-in.  Because the static baseline runs the exact
same solver with the exact same arithmetic as Acamar's converging attempt
(Section V-E: "for the baseline, we assume the same solver that is being
used in Acamar"), one Acamar solve per dataset supplies the operation
counts for both designs — only the cost model differs.  This module
caches those solves (and the full three-solver portfolio needed by
Table II / Figure 1) per dataset key.
"""

from __future__ import annotations

from functools import lru_cache

from repro import telemetry as tm
from repro.baselines import run_solver_portfolio
from repro.config import AcamarConfig
from repro.core import Acamar, AcamarResult
from repro.datasets import Problem, load_problem
from repro.fpga import PerformanceModel
from repro.gpu import CuSparseSpMVModel
from repro.solvers.base import SolveResult

DEFAULT_KEYS: tuple[str, ...] | None = None
"""``None`` means "all Table II datasets"."""


@lru_cache(maxsize=None)
def problem(key: str) -> Problem:
    """The (cached) stand-in problem for a dataset key."""
    with tm.span("runner.load_problem"):
        return load_problem(key)


@lru_cache(maxsize=None)
def acamar_result(key: str) -> AcamarResult:
    """Acamar's solve of the dataset, under paper-default configuration."""
    prob = problem(key)
    with tm.span("runner.acamar_solve"):
        return Acamar(AcamarConfig()).solve(prob.matrix, prob.b)


@lru_cache(maxsize=None)
def portfolio(key: str) -> dict[str, SolveResult]:
    """Independent Jacobi / CG / BiCG-STAB runs (Table II's ✓/✗ columns)."""
    prob = problem(key)
    with tm.span("runner.portfolio_solve"):
        return run_solver_portfolio(prob.matrix, prob.b)


@lru_cache(maxsize=1)
def performance_model() -> PerformanceModel:
    return PerformanceModel()


@lru_cache(maxsize=1)
def gpu_model() -> CuSparseSpMVModel:
    return CuSparseSpMVModel()


def clear_caches() -> None:
    """Drop all cached solves (tests that tweak configs call this)."""
    problem.cache_clear()
    acamar_result.cache_clear()
    portfolio.cache_clear()


def resolve_keys(keys: tuple[str, ...] | None) -> tuple[str, ...]:
    """``None`` → every Table II key, else the given subset (validated)."""
    from repro.datasets import dataset_keys, dataset_spec

    if keys is None:
        return dataset_keys()
    for key in keys:
        dataset_spec(key)  # raises DatasetError on typos
    return tuple(keys)
