"""Golden-band regression guard for the reproduction's own numbers.

``summary`` checks the *paper's* claims; this module pins *this
repository's* measured headline values inside tolerance bands, so a
refactor that quietly shifts a modeled number — while still technically
satisfying the looser paper claims — fails loudly.  The reference bands
live in ``benchmarks/reference_bands.json`` and were recorded from the
full 25-dataset run; regenerate them deliberately with
``python -m repro.experiments.regression --update`` after an intentional
model change (and say why in the commit).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.experiments import fig1, fig10, fig5, fig6, fig8, fig9, table2

DEFAULT_BANDS_PATH = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "reference_bands.json"
)

RELATIVE_TOLERANCE = 0.10
"""Allowed drift of each metric from its recorded reference (10 %)."""

BENCH_GUARDED_PREFIXES = (
    "hotpath_",
    "serving_",
    "cluster_",
    "batched_",
    "dse_",
    "lint_",
    "placement_",
)
"""Band-name prefixes owned by dedicated benchmark guards
(``bench_hot_path.py``, ``bench_serving.py``, ``bench_cluster.py``,
``bench_batched.py``, ``bench_dse.py``), not derivable from the
modeled headline metrics this module measures."""


@dataclass(frozen=True)
class MetricCheck:
    """One pinned metric's verdict."""

    name: str
    reference: float
    measured: float
    within_band: bool


def measure_headlines(keys: tuple[str, ...] | None = None) -> dict[str, float]:
    """Compute the pinned headline metrics from live experiment runs."""
    t2 = table2.run(keys)
    f1 = fig1.run(keys)
    f5 = fig5.run(keys)
    f6 = fig6.run(keys)
    f8 = fig8.run(keys)
    f9 = fig9.run(keys)
    f10 = fig10.run(keys)
    gmean = list(f6.rows[-1][1:])
    return {
        "table2_matches": float(sum(1 for m in t2.column("matches paper") if m)),
        "fig1_mean_spmv_share": float(np.mean(f1.column("spmv_share"))),
        "fig5_rate_at_ropt8": float(f5.rows[-1][
            f5.headers.index("rOpt=8")
        ]),
        "fig6_gmean_urb1": float(gmean[0]),
        "fig6_gmean_urb64": float(gmean[-1]),
        "fig8_acamar_ru": float(f8.rows[-1][1]),
        "fig8_gpu_ru": float(f8.rows[-1][2]),
        "fig9_acamar_throughput": float(f9.rows[-1][1]),
        "fig10_area_saving": float(f10.rows[-1][5]),
    }


def load_bands(path: str | Path = DEFAULT_BANDS_PATH) -> dict[str, float]:
    """Read the pinned reference values."""
    with open(path) as fh:
        return {k: float(v) for k, v in json.load(fh).items()}


def save_bands(
    values: dict[str, float], path: str | Path = DEFAULT_BANDS_PATH
) -> Path:
    """Write new reference values (deliberate update only)."""
    path = Path(path)
    with open(path, "w") as fh:
        json.dump(values, fh, indent=2, sort_keys=True)
    return path


def check_regression(
    keys: tuple[str, ...] | None = None,
    path: str | Path = DEFAULT_BANDS_PATH,
    rtol: float = RELATIVE_TOLERANCE,
) -> list[MetricCheck]:
    """Compare live headline metrics against the pinned bands."""
    reference = load_bands(path)
    measured = measure_headlines(keys)
    checks = []
    for name, ref_value in sorted(reference.items()):
        if name.startswith(BENCH_GUARDED_PREFIXES):
            # Guarded by their own benchmarks (bench_hot_path.py,
            # bench_serving.py), not derivable from the modeled headline
            # metrics.
            continue
        value = measured[name]
        scale = max(abs(ref_value), 1e-12)
        checks.append(
            MetricCheck(
                name=name,
                reference=ref_value,
                measured=value,
                within_band=abs(value - ref_value) / scale <= rtol,
            )
        )
    return checks


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true",
        help="re-record the reference bands from a live run",
    )
    args = parser.parse_args(argv)
    if args.update:
        path = save_bands(measure_headlines())
        print(f"reference bands updated: {path}")
        return 0
    failures = [c for c in check_regression() if not c.within_band]
    for check in check_regression():
        mark = "OK " if check.within_band else "DRIFT"
        print(f"{mark} {check.name}: ref={check.reference:.4g} "
              f"measured={check.measured:.4g}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
