"""Precision study — how much of Table II is a 32-bit phenomenon?

The paper fixes the fabric to 32-bit floats (Section V-B).  Some Table II
failures are *structural* (Jacobi's spectral radius exceeds 1 regardless
of precision); others are *numerical* (Krylov stagnation and breakdown
amplified by fp32 rounding).  This extension re-runs the per-solver
convergence sweep in fp64 and diffs the ✓/✗ patterns, separating the two
failure sources — the analysis a designer weighing fp64 DSP cost against
convergence coverage would want.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import run_solver_portfolio
from repro.config import AcamarConfig
from repro.datasets import dataset_spec
from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.experiments.table2 import SOLVER_ORDER


def run(keys: tuple[str, ...] | None = None) -> ExperimentTable:
    """fp32 vs fp64 convergence marks per (dataset, solver)."""
    table = ExperimentTable(
        experiment_id="Extension E3",
        title="Convergence pattern sensitivity to precision (fp32 -> fp64)",
        headers=(
            "ID",
            *[f"{s}32" for s in ("JB", "CG", "BiCG")],
            *[f"{s}64" for s in ("JB", "CG", "BiCG")],
            "changed",
        ),
    )
    config64 = AcamarConfig(dtype=np.float64)
    flips = 0
    cells = 0
    for key in runner.resolve_keys(keys):
        problem = runner.problem(key)
        fp32 = runner.portfolio(key)
        fp64 = run_solver_portfolio(problem.matrix, problem.b, config=config64)
        marks32 = [fp32[name].converged for name in SOLVER_ORDER]
        marks64 = [fp64[name].converged for name in SOLVER_ORDER]
        changed = sum(a != b for a, b in zip(marks32, marks64))
        flips += changed
        cells += len(SOLVER_ORDER)
        table.add_row(dataset_spec(key).key, *marks32, *marks64, changed)
    table.add_note(
        f"{flips}/{cells} (dataset, solver) outcomes change under fp64 — "
        "the remainder of Table II's failures are structural (spectral "
        "radius / indefiniteness), which no precision fixes; runtime "
        "solver switching stays necessary even on an fp64 fabric"
    )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
