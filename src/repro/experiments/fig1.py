"""Figure 1: SpMV's share of solver latency.

For each dataset and each of its *converging* solvers, costs the recorded
kernel schedule on the FPGA model and reports the fraction of compute
latency spent in the SpMV kernel.  The paper's point: SpMV dominates all
three solvers, so it is the kernel worth reconfiguring.
"""

from __future__ import annotations

from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.experiments.table2 import SOLVER_ORDER

REFERENCE_URB = 8
"""Unroll factor of the fixed SpMV unit used for this figure's costing."""


def run(keys: tuple[str, ...] | None = None) -> ExperimentTable:
    """SpMV latency share per (dataset, solver)."""
    model = runner.performance_model()
    table = ExperimentTable(
        experiment_id="Figure 1",
        title="SpMV share of solver compute latency (converging solvers)",
        headers=("ID", "solver", "iterations", "spmv_ms", "total_ms", "spmv_share"),
    )
    shares = []
    for key in runner.resolve_keys(keys):
        prob = runner.problem(key)
        solo = runner.portfolio(key)
        for name in SOLVER_ORDER:
            result = solo[name]
            if not result.converged:
                continue
            latency = model.solver_latency(prob.matrix, result, urb=REFERENCE_URB)
            shares.append(latency.spmv_fraction)
            table.add_row(
                key,
                name,
                result.iterations,
                latency.spmv_seconds * 1e3,
                latency.compute_seconds * 1e3,
                latency.spmv_fraction,
            )
    if shares:
        table.add_note(
            f"mean SpMV share {sum(shares) / len(shares):.1%} — SpMV is the "
            "dominant kernel, as in the paper"
        )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
