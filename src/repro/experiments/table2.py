"""Table II: per-solver convergence (✓/✗) and Acamar's robust convergence.

For every stand-in dataset, runs Jacobi, CG and BiCG-STAB independently
(the static columns) and the full Acamar accelerator (last column), and
compares the observed pattern against the paper's.
"""

from __future__ import annotations

from repro.datasets import dataset_spec
from repro.experiments import runner
from repro.experiments.report import ExperimentTable

SOLVER_ORDER = ("jacobi", "cg", "bicgstab")


def run(keys: tuple[str, ...] | None = None) -> ExperimentTable:
    """Regenerate Table II over ``keys`` (default: all 25 datasets)."""
    table = ExperimentTable(
        experiment_id="Table II",
        title="Solvers diverging (x) and converging (Y) per dataset",
        headers=(
            "ID", "dataset", "DIM", "sparsity%", "JB", "CG", "BiCG-STAB",
            "Acamar", "Acamar sequence", "matches paper",
        ),
    )
    mismatches = 0
    for key in runner.resolve_keys(keys):
        spec = dataset_spec(key)
        solo = runner.portfolio(key)
        acamar = runner.acamar_result(key)
        observed = {name: solo[name].converged for name in SOLVER_ORDER}
        matches = observed == spec.expected and acamar.converged
        mismatches += 0 if matches else 1
        table.add_row(
            spec.key,
            spec.name,
            spec.paper_dim,
            spec.paper_sparsity,
            observed["jacobi"],
            observed["cg"],
            observed["bicgstab"],
            acamar.converged,
            "->".join(acamar.solver_sequence),
            matches,
        )
    table.add_note(
        f"{len(table.rows) - mismatches}/{len(table.rows)} rows match the "
        "paper's pattern (paper: Acamar column all Y)"
    )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
