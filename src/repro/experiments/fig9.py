"""Figure 9: achieved compute throughput as a percentage of peak.

Top panel: Acamar vs the static design (fixed ``SpMV_URB``).  Bottom
panel: Acamar vs the GPU.  Peak is what the provisioned compute units
could retire; achieved counts useful MAC work.  The paper reports Acamar
averaging ~70 % (up to 83 %) while the GPU achieves a few percent of its
4.4 TFLOPS peak on SpMV.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.metrics import achieved_throughput_fraction

STATIC_URB = 16
"""Fixed unroll of the static design in the top panel's comparison."""


def run(keys: tuple[str, ...] | None = None) -> ExperimentTable:
    """Achieved-throughput fraction per dataset for all three designs."""
    model = runner.performance_model()
    gpu = runner.gpu_model()
    table = ExperimentTable(
        experiment_id="Figure 9",
        title="Achieved throughput as fraction of peak (higher is better)",
        headers=("ID", "acamar", f"static URB={STATIC_URB}", "gpu"),
    )
    acamar_vals, static_vals, gpu_vals = [], [], []
    for key in runner.resolve_keys(keys):
        prob = runner.problem(key)
        acamar = runner.acamar_result(key)
        acamar_lat = model.solver_latency(prob.matrix, acamar.final, plan=acamar.plan)
        static_lat = model.solver_latency(prob.matrix, acamar.final, urb=STATIC_URB)
        acamar_frac = achieved_throughput_fraction(
            acamar_lat.spmv_report, acamar_lat.loop_sweeps, model.device
        )
        static_frac = achieved_throughput_fraction(
            static_lat.spmv_report, static_lat.loop_sweeps, model.device
        )
        gpu_frac = gpu.sweep(prob.matrix).achieved_fraction
        acamar_vals.append(acamar_frac)
        static_vals.append(static_frac)
        gpu_vals.append(gpu_frac)
        table.add_row(key, acamar_frac, static_frac, gpu_frac)
    table.add_row(
        "MEAN",
        float(np.mean(acamar_vals)),
        float(np.mean(static_vals)),
        float(np.mean(gpu_vals)),
    )
    table.add_note(
        f"Acamar mean {np.mean(acamar_vals):.0%}, max {max(acamar_vals):.0%} "
        "(paper: ~70% mean, up to 83%); GPU mean "
        f"{np.mean(gpu_vals):.2%} of its fp32 peak (memory-bound)"
    )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
