"""Figure 2: baseline SpMV resource underutilization vs unroll factor.

Evaluates Eq. 5 over every dataset's NNZ/row profile for a sweep of fixed
unroll factors.  The paper's takeaway reproduced here: no single unroll
factor is optimal for all datasets — the argmin column moves.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.fpga import mean_underutilization

URB_SWEEP = (2, 4, 8, 16, 32, 64)


def run(
    keys: tuple[str, ...] | None = None,
    urbs: tuple[int, ...] = URB_SWEEP,
) -> ExperimentTable:
    """Mean Eq. 5 underutilization per (dataset, unroll factor)."""
    table = ExperimentTable(
        experiment_id="Figure 2",
        title="Baseline SpMV resource underutilization vs unroll factor",
        headers=("ID", *[f"URB={u}" for u in urbs], "best URB"),
    )
    best_urbs = []
    for key in runner.resolve_keys(keys):
        lengths = runner.problem(key).matrix.row_lengths()
        values = [mean_underutilization(lengths, u) for u in urbs]
        best = urbs[int(np.argmin(values))]
        best_urbs.append(best)
        table.add_row(key, *values, best)
    if len(set(best_urbs)) > 1:
        table.add_note(
            "the optimal fixed unroll factor differs across datasets "
            f"({sorted(set(best_urbs))}) — no static choice fits all, "
            "motivating dynamic reconfiguration"
        )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
