"""Export experiment tables to CSV / JSON for downstream plotting.

The benchmark harness prints monospace tables; anyone regenerating the
paper's *figures* wants machine-readable series.  ``export_table`` writes
one table, ``export_all`` regenerates and writes every experiment into a
directory (one ``.csv`` + one ``.json`` per artifact), and the module is
reachable as ``python -m repro.experiments.export <dir>``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.experiments.report import ExperimentTable


def export_table_csv(table: ExperimentTable, path: str | Path) -> Path:
    """Write one experiment table as CSV (headers + rows)."""
    path = Path(path)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.headers)
        for row in table.rows:
            writer.writerow(row)
    return path


def export_table_json(table: ExperimentTable, path: str | Path) -> Path:
    """Write one experiment table as JSON with metadata and notes."""
    path = Path(path)
    payload = {
        "experiment_id": table.experiment_id,
        "title": table.title,
        "headers": list(table.headers),
        "rows": [list(row) for row in table.rows],
        "notes": list(table.notes),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)
    return path


def export_all(
    directory: str | Path, keys: tuple[str, ...] | None = None
) -> list[Path]:
    """Regenerate every experiment and write CSV + JSON files.

    Returns the list of files written.  File names follow the experiment
    ids (``table2.csv``, ``fig6.json``, …) plus ``summary.*``.
    """
    from repro.experiments import ALL_EXPERIMENTS
    from repro.experiments.summary import run as run_summary

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for name, module in ALL_EXPERIMENTS.items():
        table = module.run(keys) if name != "table1" else module.run()
        written.append(export_table_csv(table, directory / f"{name}.csv"))
        written.append(export_table_json(table, directory / f"{name}.json"))
    summary = run_summary(keys)
    written.append(export_table_csv(summary, directory / "summary.csv"))
    written.append(export_table_json(summary, directory / "summary.json"))
    return written


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(
        description="export every experiment table as CSV + JSON"
    )
    parser.add_argument("directory", help="output directory")
    parser.add_argument("--keys", help="comma-separated dataset subset")
    args = parser.parse_args(argv)
    keys = (
        tuple(k.strip() for k in args.keys.split(",") if k.strip())
        if args.keys
        else None
    )
    files = export_all(args.directory, keys)
    print(f"wrote {len(files)} files to {args.directory}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
