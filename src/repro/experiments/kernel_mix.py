"""Kernel-mix breakdown — Figure 1 at full resolution (extension).

Figure 1 shows SpMV's share of solver time; this extension splits the
remainder by kernel kind (dot / axpy / scale / vadd / norm) for every
converging (dataset, solver) pair, exposing *which* dense kernels each
algorithm spends its non-SpMV time in — the data a floorplanner would
use to size the static dense units.
"""

from __future__ import annotations

from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.experiments.table2 import SOLVER_ORDER
from repro.solvers.base import OpCounter

REFERENCE_URB = 8


def run(keys: tuple[str, ...] | None = None) -> ExperimentTable:
    """Compute-time share per kernel kind per (dataset, solver)."""
    model = runner.performance_model()
    table = ExperimentTable(
        experiment_id="Extension E2",
        title="Per-kernel share of solver compute time",
        headers=("ID", "solver", "spmv", *OpCounter.DENSE_KINDS, "init"),
    )
    for key in runner.resolve_keys(keys):
        problem = runner.problem(key)
        solo = runner.portfolio(key)
        for name in SOLVER_ORDER:
            result = solo[name]
            if not result.converged:
                continue
            latency = model.solver_latency(
                problem.matrix, result, urb=REFERENCE_URB
            )
            total = latency.compute_seconds
            breakdown = model.dense_breakdown(result.ops)
            dense_shares = [
                model.device.cycles_to_seconds(
                    breakdown[kind].cycles
                ) / total if kind in breakdown else 0.0
                for kind in OpCounter.DENSE_KINDS
            ]
            table.add_row(
                key,
                name,
                latency.spmv_seconds / total,
                *dense_shares,
                latency.init_seconds / total,
            )
    table.add_note(
        "rows sum to ~1; SpMV dominates everywhere, with dot/axpy the "
        "largest dense consumers for the Krylov methods and scale/vadd "
        "for Jacobi — matching each algorithm's kernel schedule"
    )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
