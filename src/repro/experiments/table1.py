"""Table I: convergence criteria per solver, with executable verification.

Regenerates the paper's criteria catalog and — beyond the paper — checks
each executable criterion against representative stand-ins to show the
predicates agree with observed solver behaviour.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentTable
from repro.solvers.criteria import criteria_table


def run() -> ExperimentTable:
    """Render Table I."""
    table = ExperimentTable(
        experiment_id="Table I",
        title="Structural requirements on coefficient matrix A for convergence",
        headers=("solver", "convergence criteria", "executable check"),
    )
    for criterion in criteria_table():
        table.add_row(
            criterion.solver,
            criterion.description,
            "yes" if criterion.predicate is not None else "documented only",
        )
    table.add_note(
        "executable checks are exercised against the Table II stand-ins in "
        "benchmarks/bench_table1_criteria.py"
    )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
