"""Reproduction summary: every paper claim checked in one run.

Programmatic version of EXPERIMENTS.md — executes the full experiment
suite, extracts each figure's headline number, compares it to the paper's
value, and reports whether the *shape claim* (ordering / factor /
flattening) holds.  ``python -m repro summary`` prints it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments import (
    fig1,
    fig10,
    fig11,
    fig12,
    fig13,
    fig2,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    table2,
)
from repro.experiments.report import ExperimentTable


@dataclass(frozen=True)
class ClaimCheck:
    """One verified shape claim."""

    experiment: str
    claim: str
    paper: str
    measured: str
    holds: bool


def collect_claims(keys: tuple[str, ...] | None = None) -> list[ClaimCheck]:
    """Run every experiment and evaluate the paper's headline claims."""
    checks: list[ClaimCheck] = []

    t2 = table2.run(keys)
    matches = sum(1 for m in t2.column("matches paper") if m)
    acamar_all = "all" if all(t2.column("Acamar")) else "NOT all"
    checks.append(ClaimCheck(
        "Table II", "per-solver convergence patterns match; Acamar all-converge",
        "25 rows, Acamar all ✓",
        f"{matches}/{len(t2.rows)} match, Acamar {acamar_all} ✓",
        matches == len(t2.rows) and all(t2.column("Acamar")),
    ))

    f1 = fig1.run(keys)
    share = float(np.mean(f1.column("spmv_share")))
    checks.append(ClaimCheck(
        "Figure 1", "SpMV dominates solver latency",
        "most of the time", f"mean share {share:.0%}", share > 0.5,
    ))

    f2 = fig2.run(keys)
    best = set(f2.column("best URB"))
    checks.append(ClaimCheck(
        "Figure 2", "no single static unroll factor is optimal",
        "varies per dataset", f"best URB spans {sorted(best)}", len(best) > 1,
    ))

    f5 = fig5.run(keys)
    rates = list(f5.rows[-1][1:])
    tail = rates[-3] - rates[-1]
    head = rates[0] - rates[-3]
    checks.append(ClaimCheck(
        "Figure 5", "reconfiguration rate flattens after rOpt=8",
        "almost constant past 8",
        f"drop {head:.2f} before rOpt=8 vs {tail:.3f} after",
        tail < head / 2,
    ))

    f6 = fig6.run(keys)
    gmean = list(f6.rows[-1][1:])
    best_speedup = max(max(row[1:]) for row in f6.rows[:-1])
    checks.append(ClaimCheck(
        "Figure 6", "large speedup at URB=1, diminishing, flat past 16",
        "up to 11.61x",
        f"up to {best_speedup:.1f}x, GMEAN {gmean[0]:.1f}x at URB=1, "
        f"{gmean[-1]:.2f}x at URB=64",
        best_speedup > 6.0 and gmean[0] > gmean[2] > gmean[3]
        and abs(gmean[-1] - gmean[-2]) < 0.15,
    ))

    f7 = fig7.run(keys)
    best_ratio = max(max(row[1:]) for row in f7.rows)
    checks.append(ClaimCheck(
        "Figure 7", "R.U. improvement grows with baseline allocation",
        "up to 3x", f"up to {best_ratio:.1f}x", best_ratio > 2.0,
    ))

    f8 = fig8.run(keys)
    acamar_ru, gpu_ru = f8.rows[-1][1], f8.rows[-1][2]
    checks.append(ClaimCheck(
        "Figure 8", "Acamar wastes far fewer compute units than the GPU",
        "50% vs 81%", f"{acamar_ru:.0%} vs {gpu_ru:.0%}",
        acamar_ru < gpu_ru - 0.15,
    ))

    f9 = fig9.run(keys)
    acamar_tp, gpu_tp = f9.rows[-1][1], f9.rows[-1][3]
    checks.append(ClaimCheck(
        "Figure 9", "Acamar near-peak throughput, GPU a few percent",
        "~70% vs <<1%", f"{acamar_tp:.0%} vs {gpu_tp:.2%}",
        0.55 < acamar_tp < 0.95 and gpu_tp < 0.02,
    ))

    f10 = fig10.run(keys)
    saving = f10.rows[-1][5]
    acamar_eff = f10.rows[-1][1]
    checks.append(ClaimCheck(
        "Figure 10", "higher GFLOPS/mm², positive area saving",
        "~720 GFLOPS/mm², ~2x area",
        f"{acamar_eff:.0f} GFLOPS/mm², {saving:.2f}x area",
        saving > 1.0,
    ))

    f11 = fig11.run(keys)
    lat_cols = [i for i, h in enumerate(f11.headers) if h.startswith("lat@")]
    drift = max(
        abs(row[i] - 1.0) for row in f11.rows for i in lat_cols
    )
    checks.append(ClaimCheck(
        "Figure 11", "MSID stages leave latency/R.U. nearly unchanged",
        "almost constant", f"max latency drift {drift:.1%}", drift < 0.25,
    ))

    f12 = fig12.run(keys)
    first, last = f12.rows[-1][1], f12.rows[-1][-1]
    checks.append(ClaimCheck(
        "Figure 12", "R.U. decreases with sampling rate",
        "decreasing", f"{first:.2f} -> {last:.2f}", last < first,
    ))

    f13 = fig13.run(keys)
    budgets = f13.column("budget_ms")
    positive = sum(1 for b in budgets if b > 0)
    checks.append(ClaimCheck(
        "Figure 13", "positive reconfiguration-time budget vs URB=8 baseline",
        "bounded budgets", f"{positive}/{len(budgets)} datasets positive",
        positive >= 0.7 * len(budgets),
    ))
    return checks


def run(keys: tuple[str, ...] | None = None) -> ExperimentTable:
    """Render the claim checklist as a table."""
    table = ExperimentTable(
        experiment_id="Summary",
        title="Paper-vs-measured claim checklist",
        headers=("experiment", "claim", "paper", "measured", "holds"),
    )
    checks = collect_claims(keys)
    for check in checks:
        table.add_row(
            check.experiment, check.claim, check.paper, check.measured,
            check.holds,
        )
    holding = sum(1 for c in checks if c.holds)
    table.add_note(f"{holding}/{len(checks)} claims hold")
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
