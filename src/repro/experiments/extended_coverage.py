"""Extended solver coverage — Table II beyond the paper's three solvers.

The paper's Table II shows no *single* solver among Jacobi / CG /
BiCG-STAB covers all 25 datasets.  This extension experiment asks the
natural follow-up: would a larger solver menu change the conclusion?
It runs the six additional (vectorized) methods in the registry over the
stand-ins and tabulates convergence next to the paper's three.

The result sharpens the paper's motivation: even GMRES — the most robust
general-purpose method — fails on some structural classes at practical
restart lengths, so *runtime switching* (the Solver Modifier), not a
bigger static menu, is what guarantees coverage.
"""

from __future__ import annotations

from repro.datasets import dataset_spec
from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.solvers import make_solver

EXTENSION_SOLVERS = ("bicg", "conjugate_residual", "pcg", "gmres", "srj",
                     "chebyshev")
"""Vectorized extension methods (Gauss-Seidel/SOR sweep in Python row
loops and are too slow for the full suite)."""

DEFAULT_SUBSET = ("2C", "Wi", "If", "Wa", "Fe", "Eb", "Bc", "Li", "Ct",
                  "Fi", "Ci", "Tf")
"""A 12-dataset subset covering every Table II structural class."""

EXTENSION_MAX_ITERATIONS = 1200
"""Cap for the extension runs (failures would otherwise burn the full
4000-iteration budget six extra times per dataset)."""


def run(keys: tuple[str, ...] | None = None) -> ExperimentTable:
    """Convergence marks for all nine vectorized solvers per dataset."""
    keys = DEFAULT_SUBSET if keys is None else runner.resolve_keys(keys)
    table = ExperimentTable(
        experiment_id="Extension E1",
        title="Solver coverage beyond the paper's three (capped at "
        f"{EXTENSION_MAX_ITERATIONS} iterations)",
        headers=("ID", "JB", "CG", "BiCG-STAB", *EXTENSION_SOLVERS),
    )
    coverage = {name: 0 for name in
                ("jacobi", "cg", "bicgstab", *EXTENSION_SOLVERS)}
    for key in keys:
        spec = dataset_spec(key)
        problem = runner.problem(key)
        solo = runner.portfolio(key)
        marks = [
            solo["jacobi"].converged,
            solo["cg"].converged,
            solo["bicgstab"].converged,
        ]
        for name, converged in zip(("jacobi", "cg", "bicgstab"), marks):
            coverage[name] += converged
        for name in EXTENSION_SOLVERS:
            solver = make_solver(
                name,
                max_iterations=EXTENSION_MAX_ITERATIONS,
                setup_iterations=100,
            )
            result = solver.solve(problem.matrix, problem.b)
            marks.append(result.converged)
            coverage[name] += result.converged
        table.add_row(spec.key, *marks)
    best = max(coverage.values())
    universal = [name for name, count in coverage.items() if count == len(keys)]
    table.add_note(
        "datasets covered per solver: "
        + ", ".join(f"{k}={v}" for k, v in coverage.items())
    )
    if universal:
        table.add_note(f"solvers covering everything: {universal}")
    else:
        table.add_note(
            f"no single solver covers all {len(keys)} datasets (best: "
            f"{best}) — a bigger static menu does not replace runtime "
            "switching"
        )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
