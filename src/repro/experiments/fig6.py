"""Figure 6: latency speedup of Acamar over the static design.

For each dataset, the static baseline runs the same solver that Acamar
converged with (the paper's optimistic-baseline rule) at a sweep of fixed
``SpMV_URB`` values; speedup is compute latency (baseline / Acamar).
Reconfiguration overhead is reported separately by Figure 13, mirroring
the paper's treatment of latency as a compute-bound comparison with a
reconfiguration-time budget.
"""

from __future__ import annotations

from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.metrics import geometric_mean, latency_speedup

URB_SWEEP = (1, 2, 4, 8, 16, 32, 64)


def speedups_for(key: str, urbs: tuple[int, ...]) -> list[float]:
    """Acamar-over-baseline speedup for each baseline URB on one dataset."""
    model = runner.performance_model()
    prob = runner.problem(key)
    acamar = runner.acamar_result(key)
    acamar_latency = model.acamar_latency(prob.matrix, acamar)
    # The baseline runs the same converging solver with identical numerics,
    # so Acamar's final SolveResult supplies its op counts too.
    final = acamar.final
    values = []
    for urb in urbs:
        static = model.solver_latency(prob.matrix, final, urb=urb)
        values.append(
            latency_speedup(static.compute_seconds, acamar_latency.compute_seconds)
        )
    return values


def run(
    keys: tuple[str, ...] | None = None,
    urbs: tuple[int, ...] = URB_SWEEP,
) -> ExperimentTable:
    """Speedup per (dataset, SpMV_URB) plus the GMEAN row."""
    table = ExperimentTable(
        experiment_id="Figure 6",
        title="Latency speedup of Acamar over static design",
        headers=("ID", *[f"URB={u}" for u in urbs]),
    )
    resolved = runner.resolve_keys(keys)
    per_urb: list[list[float]] = [[] for _ in urbs]
    for key in resolved:
        values = speedups_for(key, urbs)
        for column, value in zip(per_urb, values):
            column.append(value)
        table.add_row(key, *values)
    gmeans = [geometric_mean(column) for column in per_urb]
    table.add_row("GMEAN", *gmeans)
    table.add_note(
        f"max speedup {max(max(column) for column in per_urb):.2f}x at URB=1 "
        "(paper: up to 11.61x); gains diminish and flatten for URB > 16"
    )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
