"""Figure 13: allowed reconfiguration time per dataset.

For Acamar's total latency to stay at or below the static baseline's, all
of its fine-grained reconfiguration must fit in the compute-latency gap
``baseline_compute - acamar_compute``.  This experiment reports that
budget, the number of reconfiguration events that must share it, the
resulting per-event bound, and how the modeled ICAP compares — making
explicit the paper's point that reconfiguration speed is the binding
constraint on latency parity.
"""

from __future__ import annotations

from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.fpga import plan_event_unrolls

BASELINE_URB = 8
"""The static design this figure's budget is measured against."""


def run(keys: tuple[str, ...] | None = None) -> ExperimentTable:
    """Reconfiguration-time budget per dataset."""
    model = runner.performance_model()
    table = ExperimentTable(
        experiment_id="Figure 13",
        title="Allowed reconfiguration time vs static design "
        f"(URB={BASELINE_URB})",
        headers=(
            "ID", "budget_ms", "events", "per_event_us",
            "icap_event_us", "icap_fits",
        ),
    )
    for key in runner.resolve_keys(keys):
        prob = runner.problem(key)
        acamar = runner.acamar_result(key)
        acamar_lat = model.acamar_latency(prob.matrix, acamar)
        static_lat = model.solver_latency(
            prob.matrix, acamar.final, urb=BASELINE_URB
        )
        budget = static_lat.compute_seconds - acamar_lat.compute_seconds
        events = acamar_lat.final.reconfig_events
        per_event = budget / events if events else float("inf")
        event_unrolls = plan_event_unrolls(acamar.plan)
        icap_event = (
            sum(model.reconfig.spmv_event_seconds(u) for u in event_unrolls)
            / len(event_unrolls)
            if event_unrolls
            else 0.0
        )
        table.add_row(
            key,
            budget * 1e3,
            events,
            per_event * 1e6,
            icap_event * 1e6,
            icap_event <= per_event,
        )
    table.add_note(
        "per-event budget = compute-latency gap / reconfiguration events; "
        "events where the modeled ICAP (6.4 Gb/s) exceeds the budget "
        "quantify why the paper treats latency parity as reconfiguration-"
        "bandwidth-bound (Section VIII-A)"
    )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
