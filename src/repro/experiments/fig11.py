"""Figure 11: effect of MSID chain stages on R.U. and SpMV latency.

Sweeps ``rOpt`` and reports, per dataset, the post-optimization Eq. 5
underutilization and the change in one SpMV sweep's latency relative to
the unoptimized (``rOpt = 0``) plan.  The paper's finding: both stay
nearly constant — the MSID chain trades reconfiguration *events* away
without tilting the latency/utilization balance.
"""

from __future__ import annotations

from repro.config import AcamarConfig
from repro.core import FineGrainedReconfigurationUnit
from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.fpga import mean_underutilization

ROPT_SWEEP = (0, 2, 4, 8, 12)


def msid_effect(key: str, ropts: tuple[int, ...]) -> list[tuple[float, float]]:
    """(R.U., latency-vs-rOpt0 ratio) of one SpMV sweep per rOpt value."""
    model = runner.performance_model()
    matrix = runner.problem(key).matrix
    lengths = matrix.row_lengths()
    results = []
    base_cycles: float | None = None
    for r_opt in ropts:
        plan = FineGrainedReconfigurationUnit(AcamarConfig(r_opt=r_opt)).plan(matrix)
        sweep = model.spmv_unit_sweep(lengths, plan.unroll_for_rows)
        if base_cycles is None:
            base_cycles = sweep.cycles
        ru = mean_underutilization(lengths, plan.unroll_for_rows)
        results.append((ru, sweep.cycles / base_cycles))
    return results


def run(
    keys: tuple[str, ...] | None = None,
    ropts: tuple[int, ...] = ROPT_SWEEP,
) -> ExperimentTable:
    """R.U. and relative SpMV latency per (dataset, rOpt)."""
    headers: list[str] = ["ID"]
    for r_opt in ropts:
        headers += [f"RU@r{r_opt}", f"lat@r{r_opt}"]
    table = ExperimentTable(
        experiment_id="Figure 11",
        title="Resource underutilization and SpMV latency vs MSID stages",
        headers=tuple(headers),
    )
    max_lat_drift = 0.0
    for key in runner.resolve_keys(keys):
        cells: list[float] = []
        for ru, lat in msid_effect(key, ropts):
            cells += [ru, lat]
            max_lat_drift = max(max_lat_drift, abs(lat - 1.0))
        table.add_row(key, *cells)
    table.add_note(
        f"largest SpMV-latency drift across the rOpt sweep: "
        f"{max_lat_drift:.1%} — the MSID chain leaves the "
        "latency/utilization balance essentially unchanged (paper Fig. 11)"
    )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
