"""Figure 8: resource underutilization — Acamar vs the GPU (lower is better).

Acamar's underutilization uses Eq. 5 under its reconfiguration plan; the
GPU's is the warp-per-row idle-lane fraction of the cuSPARSE CSR kernel.
The paper's averages: Acamar ~50 %, GPU ~81 %.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.fpga import mean_underutilization


def run(keys: tuple[str, ...] | None = None) -> ExperimentTable:
    """Underutilization per dataset for both architectures."""
    gpu = runner.gpu_model()
    table = ExperimentTable(
        experiment_id="Figure 8",
        title="Resource underutilization: Acamar vs Nvidia GTX 1650 Super",
        headers=("ID", "acamar_ru", "gpu_ru"),
    )
    acamar_values, gpu_values = [], []
    for key in runner.resolve_keys(keys):
        prob = runner.problem(key)
        plan = runner.acamar_result(key).plan
        lengths = prob.matrix.row_lengths()
        acamar_ru = mean_underutilization(lengths, plan.unroll_for_rows)
        gpu_ru = gpu.sweep_from_row_lengths(lengths).underutilization
        acamar_values.append(acamar_ru)
        gpu_values.append(gpu_ru)
        table.add_row(key, acamar_ru, gpu_ru)
    table.add_row("MEAN", float(np.mean(acamar_values)), float(np.mean(gpu_values)))
    table.add_note(
        f"averages: Acamar {np.mean(acamar_values):.0%} vs GPU "
        f"{np.mean(gpu_values):.0%} (paper: 50% vs 81%)"
    )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
