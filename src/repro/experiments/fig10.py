"""Figure 10: performance efficiency (GFLOPS per mm² of SpMV fabric).

The static design permanently occupies a region sized for its fixed
unroll; Acamar's dynamically reconfigured region only occupies what the
current configuration needs (time-weighted), freeing fabric for a
co-running kernel.  The paper reports Acamar averaging ~720 GFLOPS/mm²
and ~2× the static design's area efficiency.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.metrics import area_saving_ratio, gflops_per_mm2

STATIC_URB = 16
"""Fixed unroll of the static design in this figure's comparison."""


def run(keys: tuple[str, ...] | None = None) -> ExperimentTable:
    """Performance efficiency per dataset for both designs."""
    model = runner.performance_model()
    table = ExperimentTable(
        experiment_id="Figure 10",
        title="Performance efficiency, GFLOPS/mm^2 (higher is better)",
        headers=(
            "ID", "acamar", f"static URB={STATIC_URB}",
            "acamar_area_mm2", "static_area_mm2", "area_saving",
        ),
    )
    acamar_eff, static_eff, savings = [], [], []
    for key in runner.resolve_keys(keys):
        prob = runner.problem(key)
        acamar = runner.acamar_result(key)
        acamar_lat = model.solver_latency(prob.matrix, acamar.final, plan=acamar.plan)
        static_lat = model.solver_latency(prob.matrix, acamar.final, urb=STATIC_URB)
        acamar_area = model.acamar_spmv_area_mm2(prob.matrix, acamar.plan)
        static_area = model.static_spmv_area_mm2(STATIC_URB)
        a_eff = gflops_per_mm2(acamar_lat.spmv_report, acamar_area, model.device)
        s_eff = gflops_per_mm2(static_lat.spmv_report, static_area, model.device)
        saving = area_saving_ratio(static_area, acamar_area)
        acamar_eff.append(a_eff)
        static_eff.append(s_eff)
        savings.append(saving)
        table.add_row(key, a_eff, s_eff, acamar_area, static_area, saving)
    table.add_row(
        "MEAN",
        float(np.mean(acamar_eff)),
        float(np.mean(static_eff)),
        "",
        "",
        float(np.mean(savings)),
    )
    table.add_note(
        f"Acamar mean {np.mean(acamar_eff):.0f} GFLOPS/mm^2 (paper: ~720); "
        f"mean area saving {np.mean(savings):.2f}x (paper: ~2x)"
    )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
