"""Performance model: solver runs → latency / utilization / efficiency.

This is the "cycle-level simulator that takes the performance numbers from
the HLS co-simulation" of Section V-A.  It replays the kernel tally an
actual numerical solve recorded (:class:`~repro.solvers.base.OpCounter`)
through the device's cycle models:

- loop SpMV sweeps are costed with the Dynamic SpMV kernel model under the
  reconfiguration plan (Acamar) or a fixed ``SpMV_URB`` (static baseline),
- the Initialize unit's one-off SpMV runs at the static default unroll,
- dense kernels run on the shared static units,
- fine-grained reconfiguration events are timed by the ICAP model and kept
  as a separate component, so experiments can report compute-only speedup
  (Figure 6) and the allowed-reconfiguration-time budget (Figure 13)
  independently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry as tm
from repro.core.accelerator import AcamarResult
from repro.core.finegrained import ReconfigurationPlan
from repro.core.initialize import STATIC_INITIALIZE_UNROLL, initialize_spmv_count
from repro.errors import ConfigurationError
from repro.fpga.device import ALVEO_U55C, FPGADevice
from repro.fpga.kernels import EMPTY_SWEEP, SweepReport, dense_kernel, spmv_sweep
from repro.fpga.reconfiguration import ReconfigurationModel
from repro.solvers.base import OpCounter, SolveResult
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class LatencyReport:
    """Timing breakdown of one solver run on the modeled fabric.

    All times in seconds.  ``spmv`` covers the solver-loop SpMV sweeps;
    ``init`` the Initialize unit (including its static-unroll SpMV);
    ``dense`` the static dense kernels; ``reconfig`` the fine-grained
    Dynamic-SpMV reconfiguration events across all sweeps (zero for the
    static baseline).
    """

    solver: str
    iterations: int
    init_seconds: float
    spmv_seconds: float
    dense_seconds: float
    reconfig_seconds: float
    spmv_report: SweepReport
    dense_report: SweepReport
    loop_sweeps: int
    reconfig_events: int

    @property
    def compute_seconds(self) -> float:
        """Latency excluding reconfiguration (Figure 6's quantity)."""
        return self.init_seconds + self.spmv_seconds + self.dense_seconds

    @property
    def total_seconds(self) -> float:
        """Latency including fine-grained reconfiguration overhead."""
        return self.compute_seconds + self.reconfig_seconds

    @property
    def spmv_fraction(self) -> float:
        """SpMV share of compute latency (Figure 1's quantity)."""
        if self.compute_seconds == 0:
            return 0.0
        return self.spmv_seconds / self.compute_seconds


@dataclass(frozen=True)
class AcamarLatencyReport:
    """Timing of a full Acamar solve (all attempts + solver swaps)."""

    attempts: tuple[LatencyReport, ...]
    solver_swap_seconds: float

    @property
    def final(self) -> LatencyReport:
        return self.attempts[-1]

    @property
    def compute_seconds(self) -> float:
        return sum(a.compute_seconds for a in self.attempts)

    @property
    def total_seconds(self) -> float:
        return (
            sum(a.total_seconds for a in self.attempts) + self.solver_swap_seconds
        )


def operator_row_lengths(matrix: CSRMatrix, solver: str) -> np.ndarray:
    """NNZ/row of the operator the solver's loop SpMV actually sweeps.

    Jacobi's matrix form multiplies by ``T = D^-1 (L + U)``, which drops
    the stored diagonal; all other solvers sweep ``A`` itself.
    """
    lengths = matrix.row_lengths()
    if solver != "jacobi":
        return lengths
    n = min(matrix.shape)
    row_of = matrix.row_ids()
    on_diag = (row_of == matrix.indices) & (matrix.indices < n)
    has_diag = np.bincount(row_of[on_diag], minlength=matrix.n_rows)
    return lengths - has_diag


def expand_plan_to_rows(plan: ReconfigurationPlan, n_rows: int) -> np.ndarray:
    """Per-row unroll factors implied by a plan, checked against ``n_rows``."""
    unrolls = plan.unroll_for_rows
    if len(unrolls) != n_rows:
        raise ConfigurationError(
            f"plan covers {len(unrolls)} rows but the matrix has {n_rows}"
        )
    return unrolls


def plan_event_unrolls(plan: ReconfigurationPlan) -> list[int]:
    """Target unroll factor of each per-sweep reconfiguration event.

    Includes the wrap-around event (re-loading the first set's
    configuration at the start of the next sweep) when the last set's
    unroll differs from the first's.
    """
    events = [s.unroll for s in plan.sets if s.reconfigure]
    if plan.sets and plan.sets[-1].unroll != plan.sets[0].unroll:
        events.append(plan.sets[0].unroll)
    return events


class PerformanceModel:
    """Cost model binding a device to the solver/accelerator abstractions."""

    def __init__(self, device: FPGADevice = ALVEO_U55C) -> None:
        self.device = device
        self.reconfig = ReconfigurationModel(device)

    # ------------------------------------------------------------------
    # Kernel-level reports
    # ------------------------------------------------------------------

    def spmv_unit_sweep(
        self, row_lengths: np.ndarray, unroll_per_row: np.ndarray | int
    ) -> SweepReport:
        """One SpMV pass with the given per-row unroll assignment."""
        return spmv_sweep(row_lengths, unroll_per_row, self.device)

    def dense_breakdown(self, ops: OpCounter) -> dict[str, SweepReport]:
        """Per-kind cycle reports of the dense-kernel invocations."""
        breakdown: dict[str, SweepReport] = {}
        for kind in OpCounter.DENSE_KINDS:
            count = ops.counts.get(kind, 0)
            if count == 0:
                continue
            total = ops.sizes.get(kind, 0)
            average_length = max(1, total // count)
            breakdown[kind] = dense_kernel(
                kind, average_length, self.device
            ).scaled(count)
        return breakdown

    def dense_report(self, ops: OpCounter) -> SweepReport:
        """Aggregate cycle report of all dense-kernel invocations."""
        reports = list(self.dense_breakdown(ops).values())
        return SweepReport.combine(reports) if reports else EMPTY_SWEEP

    # ------------------------------------------------------------------
    # Solver-level latency
    # ------------------------------------------------------------------

    def solver_latency(
        self,
        matrix: CSRMatrix,
        result: SolveResult,
        *,
        plan: ReconfigurationPlan | None = None,
        urb: int | None = None,
    ) -> LatencyReport:
        """Latency of one solver run.

        Exactly one of ``plan`` (Acamar, per-set unrolls + reconfiguration
        events) or ``urb`` (static baseline, fixed unroll, no events) must
        be given.
        """
        if (plan is None) == (urb is None):
            raise ConfigurationError("pass exactly one of plan= or urb=")
        lengths = operator_row_lengths(matrix, result.solver)
        if plan is not None:
            unroll_per_row: np.ndarray | int = expand_plan_to_rows(
                plan, matrix.n_rows
            )
            event_unrolls = plan_event_unrolls(plan)
        else:
            if urb < 1:
                raise ConfigurationError(f"urb must be >= 1, got {urb}")
            unroll_per_row = int(urb)
            event_unrolls = []

        init_spmvs = min(initialize_spmv_count(result.solver), result.ops.spmv_count())
        loop_spmvs = result.ops.spmv_count() - init_spmvs

        one_sweep = self.spmv_unit_sweep(lengths, unroll_per_row)
        loop_report = one_sweep.scaled(loop_spmvs)
        init_report = self.spmv_unit_sweep(
            matrix.row_lengths(), STATIC_INITIALIZE_UNROLL
        ).scaled(init_spmvs)
        dense = self.dense_report(result.ops)

        reconfig_events = len(event_unrolls) * loop_spmvs
        reconfig_seconds = (
            self.reconfig.plan_overhead_seconds(event_unrolls) * loop_spmvs
        )
        return LatencyReport(
            solver=result.solver,
            iterations=result.iterations,
            init_seconds=self.device.cycles_to_seconds(init_report.cycles),
            spmv_seconds=self.device.cycles_to_seconds(loop_report.cycles),
            dense_seconds=self.device.cycles_to_seconds(dense.cycles),
            reconfig_seconds=reconfig_seconds,
            spmv_report=loop_report,
            dense_report=dense,
            loop_sweeps=loop_spmvs,
            reconfig_events=reconfig_events,
        )

    def acamar_latency(
        self, matrix: CSRMatrix, acamar_result: AcamarResult
    ) -> AcamarLatencyReport:
        """Latency of a full Acamar solve, including Solver Modifier swaps."""
        with tm.span("cost_model.acamar_latency"):
            attempts = tuple(
                self.solver_latency(
                    matrix, attempt.result, plan=acamar_result.plan
                )
                for attempt in acamar_result.attempts
            )
        swaps = acamar_result.solver_reconfigurations
        return AcamarLatencyReport(
            attempts=attempts,
            solver_swap_seconds=swaps * self.reconfig.solver_swap_seconds(),
        )

    # ------------------------------------------------------------------
    # Area / efficiency
    # ------------------------------------------------------------------

    def static_spmv_area_mm2(self, urb: int) -> float:
        """SpMV-region area of a static design with fixed unroll ``urb``."""
        return self.device.spmv_region_area_mm2(urb)

    def acamar_spmv_area_mm2(
        self, matrix: CSRMatrix, plan: ReconfigurationPlan
    ) -> float:
        """Time-weighted SpMV-region area under a reconfiguration plan.

        The dynamically reconfigured region only occupies the fabric its
        *current* configuration needs, so the effective area is each set's
        region area weighted by the cycles spent in that set; the freed
        fabric can host a co-running application (Section VI-D).
        """
        lengths = matrix.row_lengths().astype(np.int64)
        total_cycles = 0.0
        weighted = 0.0
        for row_set in plan.sets:
            set_lengths = lengths[row_set.start_row : row_set.stop_row]
            slots = np.maximum(1, -(-set_lengths // row_set.unroll))
            cycles = float(slots.sum())
            total_cycles += cycles
            weighted += cycles * self.device.spmv_region_area_mm2(row_set.unroll)
        if total_cycles == 0:
            return 0.0
        return weighted / total_cycles

    def performance_efficiency(
        self, report: SweepReport, area_mm2: float
    ) -> float:
        """FLOPS per mm² of SpMV-region fabric (Figure 10's metric)."""
        if report.cycles == 0 or area_mm2 == 0:
            return 0.0
        seconds = self.device.cycles_to_seconds(report.cycles)
        return report.flops / seconds / area_mm2
