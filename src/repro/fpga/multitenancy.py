"""Co-tenancy: what the freed fabric can actually host.

Figure 10's closing argument is that Acamar's smaller (time-weighted)
SpMV region "gives more area for the deployment and production of a
co-running application on the same FPGA".  This module turns that from a
remark into a number: given a device, a reconfiguration plan and a
co-tenant's resource footprint, how many tenant instances fit in the
fabric the static design would have wasted — and what compute throughput
that capacity represents.

It also models the *fleet* view the serving subsystem schedules against
(:class:`FleetSpec`): a deployment runs several devices, each hosting a
bounded number of co-resident Reconfigurable Solver instances.  The
serving scheduler (:mod:`repro.serve`) charges simulated device time
against these slots, so tenancy limits bound in-flight batches exactly
the way fabric area bounds co-running kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.finegrained import ReconfigurationPlan
from repro.errors import ConfigurationError
from repro.fpga.cost_model import PerformanceModel
from repro.fpga.device import ALVEO_U55C, FPGADevice
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class TenantSpec:
    """Resource footprint of one co-tenant kernel instance."""

    name: str
    area_mm2: float
    macs: int

    def __post_init__(self) -> None:
        if self.area_mm2 <= 0 or self.macs < 0:
            raise ConfigurationError(
                f"tenant {self.name!r} needs positive area and >= 0 MACs"
            )


DENSE_GEMM_TILE = TenantSpec("dense-gemm-tile", area_mm2=0.0048, macs=8)
"""A small dense-GEMM tile (8 MACs) — the co-running kernel archetype."""


@dataclass(frozen=True)
class CoTenancyReport:
    """How much co-tenant capacity each design leaves free."""

    tenant: TenantSpec
    budget_area_mm2: float
    acamar_free_mm2: float
    static_free_mm2: float
    acamar_instances: int
    static_instances: int
    extra_instances: int
    extra_peak_flops: float


@dataclass(frozen=True)
class FleetSpec:
    """A serving deployment: ``devices`` FPGAs × solver slots per device.

    A *slot* is one co-resident Reconfigurable Solver instance — an SpMV
    region provisioned up to the configured maximum unroll plus its
    dense-unit complement.  Slots are the unit of concurrency the
    serving scheduler dispatches micro-batches onto; each slot remembers
    the reconfiguration-plan signature it was last configured with, so
    routing a compatible batch to it skips the ICAP configuration load.

    A fleet may additionally declare **GPU tenants** (``gpu_tenants``
    MPS partitions running the cuSPARSE SpMV backend) and a **CPU-assist
    tier** (``cpu_assist``: cold-batch structure analysis offloaded to
    the host).  GPU tenants are dispatch slots of their own device
    class; the scheduler places each micro-batch on the cheaper backend
    per the placement cost models.  ``slots_per_device`` may be 0 to
    model a GPU-only fleet, but the fleet must keep at least one
    dispatchable slot overall.
    """

    devices: int = 1
    slots_per_device: int = 4
    device: FPGADevice = ALVEO_U55C
    gpu_tenants: int = 0
    cpu_assist: bool = False

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ConfigurationError(
                f"fleet needs >= 1 device, got {self.devices}"
            )
        if self.slots_per_device < 0:
            raise ConfigurationError(
                f"fleet needs >= 0 slots per device, got {self.slots_per_device}"
            )
        if self.gpu_tenants < 0:
            raise ConfigurationError(
                f"fleet needs >= 0 GPU tenants, got {self.gpu_tenants}"
            )
        if self.devices * self.slots_per_device + self.gpu_tenants < 1:
            raise ConfigurationError(
                "fleet needs at least one dispatchable slot "
                "(FPGA slots + GPU tenants)"
            )

    @property
    def total_slots(self) -> int:
        """Concurrent FPGA solver instances across the fleet.

        GPU tenants are counted separately (:attr:`dispatch_slots`), so
        fleets with ``gpu_tenants=0`` keep byte-identical accounting
        with pre-placement reports.
        """
        return self.devices * self.slots_per_device

    @property
    def dispatch_slots(self) -> int:
        """All dispatchable slots: FPGA instances plus GPU tenants."""
        return self.total_slots + self.gpu_tenants

    @classmethod
    def sized_for(
        cls,
        max_unroll: int,
        devices: int = 1,
        device: FPGADevice = ALVEO_U55C,
        max_slots_per_device: int = 16,
    ) -> "FleetSpec":
        """Derive slots per device from the DSP budget.

        Each solver instance reserves ``max_unroll`` MACs for its SpMV
        region plus an equal budget for its static dense units, so a
        device fits ``max_macs // (2 * max_unroll)`` instances (capped at
        ``max_slots_per_device`` to keep control overheads plausible).
        """
        if max_unroll < 1:
            raise ConfigurationError(
                f"max_unroll must be >= 1, got {max_unroll}"
            )
        budget = device.max_macs // (2 * max_unroll)
        slots = max(1, min(int(budget), int(max_slots_per_device)))
        return cls(devices=devices, slots_per_device=slots, device=device)


def co_tenancy(
    matrix: CSRMatrix,
    plan: ReconfigurationPlan,
    static_urb: int,
    tenant: TenantSpec = DENSE_GEMM_TILE,
    budget_area_mm2: float | None = None,
    device: FPGADevice = ALVEO_U55C,
) -> CoTenancyReport:
    """Compare co-tenant capacity under Acamar vs a static design.

    ``budget_area_mm2`` is the fabric partition reserved for the SpMV
    region plus co-tenants (defaults to the static design's region —
    i.e. "keep the same floorplan, fill the slack").  Acamar's occupied
    area is the plan's time-weighted region.
    """
    model = PerformanceModel(device)
    static_area = model.static_spmv_area_mm2(static_urb)
    if budget_area_mm2 is None:
        budget_area_mm2 = static_area
    if budget_area_mm2 <= 0:
        raise ConfigurationError("budget area must be positive")
    acamar_area = model.acamar_spmv_area_mm2(matrix, plan)
    acamar_free = max(0.0, budget_area_mm2 - acamar_area)
    static_free = max(0.0, budget_area_mm2 - static_area)
    acamar_instances = int(acamar_free // tenant.area_mm2)
    static_instances = int(static_free // tenant.area_mm2)
    extra = acamar_instances - static_instances
    return CoTenancyReport(
        tenant=tenant,
        budget_area_mm2=budget_area_mm2,
        acamar_free_mm2=acamar_free,
        static_free_mm2=static_free,
        acamar_instances=acamar_instances,
        static_instances=static_instances,
        extra_instances=extra,
        extra_peak_flops=device.mac_peak_flops(max(0, extra) * tenant.macs),
    )
