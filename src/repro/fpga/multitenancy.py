"""Co-tenancy: what the freed fabric can actually host.

Figure 10's closing argument is that Acamar's smaller (time-weighted)
SpMV region "gives more area for the deployment and production of a
co-running application on the same FPGA".  This module turns that from a
remark into a number: given a device, a reconfiguration plan and a
co-tenant's resource footprint, how many tenant instances fit in the
fabric the static design would have wasted — and what compute throughput
that capacity represents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.finegrained import ReconfigurationPlan
from repro.errors import ConfigurationError
from repro.fpga.cost_model import PerformanceModel
from repro.fpga.device import ALVEO_U55C, FPGADevice
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class TenantSpec:
    """Resource footprint of one co-tenant kernel instance."""

    name: str
    area_mm2: float
    macs: int

    def __post_init__(self) -> None:
        if self.area_mm2 <= 0 or self.macs < 0:
            raise ConfigurationError(
                f"tenant {self.name!r} needs positive area and >= 0 MACs"
            )


DENSE_GEMM_TILE = TenantSpec("dense-gemm-tile", area_mm2=0.0048, macs=8)
"""A small dense-GEMM tile (8 MACs) — the co-running kernel archetype."""


@dataclass(frozen=True)
class CoTenancyReport:
    """How much co-tenant capacity each design leaves free."""

    tenant: TenantSpec
    budget_area_mm2: float
    acamar_free_mm2: float
    static_free_mm2: float
    acamar_instances: int
    static_instances: int
    extra_instances: int
    extra_peak_flops: float


def co_tenancy(
    matrix: CSRMatrix,
    plan: ReconfigurationPlan,
    static_urb: int,
    tenant: TenantSpec = DENSE_GEMM_TILE,
    budget_area_mm2: float | None = None,
    device: FPGADevice = ALVEO_U55C,
) -> CoTenancyReport:
    """Compare co-tenant capacity under Acamar vs a static design.

    ``budget_area_mm2`` is the fabric partition reserved for the SpMV
    region plus co-tenants (defaults to the static design's region —
    i.e. "keep the same floorplan, fill the slack").  Acamar's occupied
    area is the plan's time-weighted region.
    """
    model = PerformanceModel(device)
    static_area = model.static_spmv_area_mm2(static_urb)
    if budget_area_mm2 is None:
        budget_area_mm2 = static_area
    if budget_area_mm2 <= 0:
        raise ConfigurationError("budget area must be positive")
    acamar_area = model.acamar_spmv_area_mm2(matrix, plan)
    acamar_free = max(0.0, budget_area_mm2 - acamar_area)
    static_free = max(0.0, budget_area_mm2 - static_area)
    acamar_instances = int(acamar_free // tenant.area_mm2)
    static_instances = int(static_free // tenant.area_mm2)
    extra = acamar_instances - static_instances
    return CoTenancyReport(
        tenant=tenant,
        budget_area_mm2=budget_area_mm2,
        acamar_free_mm2=acamar_free,
        static_free_mm2=static_free,
        acamar_instances=acamar_instances,
        static_instances=static_instances,
        extra_instances=extra,
        extra_peak_flops=device.mac_peak_flops(max(0, extra) * tenant.macs),
    )
