"""Cycle-level FPGA cost model (Alveo u55c class).

Replaces the paper's HLS co-simulation + cycle-level simulator pair with a
single analytic model: kernel cycle accounting (:mod:`~repro.fpga.kernels`),
Eq. 5 resource-underutilization metrics (:mod:`~repro.fpga.utilization`),
ICAP partial-reconfiguration timing (:mod:`~repro.fpga.reconfiguration`),
and the solver-level :class:`~repro.fpga.cost_model.PerformanceModel`.
"""

from repro.fpga.cost_model import (
    AcamarLatencyReport,
    LatencyReport,
    PerformanceModel,
    expand_plan_to_rows,
    operator_row_lengths,
    plan_event_unrolls,
)
from repro.fpga.counters import PerfCounters, collect_counters
from repro.fpga.device import ALVEO_U55C, FPGADevice
from repro.fpga.energy import EnergyModel, EnergyReport
from repro.fpga.host import (
    EndToEndReport,
    batched_transfer_seconds,
    end_to_end,
    matrix_transfer_bytes,
    transfer_seconds,
    vector_transfer_bytes,
)
from repro.fpga.kernels import SweepReport, dense_kernel, spmv_sweep
from repro.fpga.memory import (
    HBM_BANDWIDTH_BPS,
    StreamBuffer,
    max_streaming_unroll,
    prbuffer_for,
    streaming_bytes_per_second,
    tbuffer_for,
    validate_plan_bandwidth,
)
from repro.fpga.multitenancy import (
    DENSE_GEMM_TILE,
    CoTenancyReport,
    FleetSpec,
    TenantSpec,
    co_tenancy,
)
from repro.fpga.pipeline import (
    PipelineTrace,
    SetTrace,
    SpMVPipelineSimulator,
)
from repro.fpga.reconfiguration import (
    ReconfigurationModel,
    spmv_bitstream_bytes,
)
from repro.fpga.roofline import (
    RooflinePoint,
    fpga_roofline,
    gpu_roofline,
    spmv_arithmetic_intensity,
)
from repro.fpga.utilization import (
    mean_underutilization,
    occupancy_underutilization,
    row_underutilization,
    underutilization_improvement_ratio,
)

__all__ = [
    "ALVEO_U55C",
    "EndToEndReport",
    "EnergyModel",
    "EnergyReport",
    "PerfCounters",
    "RooflinePoint",
    "CoTenancyReport",
    "DENSE_GEMM_TILE",
    "FleetSpec",
    "TenantSpec",
    "co_tenancy",
    "collect_counters",
    "fpga_roofline",
    "gpu_roofline",
    "spmv_arithmetic_intensity",
    "HBM_BANDWIDTH_BPS",
    "batched_transfer_seconds",
    "end_to_end",
    "matrix_transfer_bytes",
    "transfer_seconds",
    "vector_transfer_bytes",
    "PipelineTrace",
    "SetTrace",
    "SpMVPipelineSimulator",
    "StreamBuffer",
    "max_streaming_unroll",
    "prbuffer_for",
    "streaming_bytes_per_second",
    "tbuffer_for",
    "validate_plan_bandwidth",
    "AcamarLatencyReport",
    "FPGADevice",
    "LatencyReport",
    "PerformanceModel",
    "ReconfigurationModel",
    "SweepReport",
    "dense_kernel",
    "expand_plan_to_rows",
    "mean_underutilization",
    "occupancy_underutilization",
    "operator_row_lengths",
    "plan_event_unrolls",
    "row_underutilization",
    "spmv_bitstream_bytes",
    "spmv_sweep",
    "underutilization_improvement_ratio",
]
