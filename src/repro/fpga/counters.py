"""Hardware-style performance counters for one accelerated solve.

Real accelerator deployments expose a small set of counters (busy cycles,
stall cycles, event counts) that operators read instead of re-running a
simulator.  This module condenses everything the cost models know about a
solve into one :class:`PerfCounters` snapshot — the view `python -m repro
solve --counters` prints and the view a monitoring integration would
export.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.accelerator import AcamarResult
from repro.fpga.cost_model import AcamarLatencyReport, PerformanceModel
from repro.fpga.utilization import mean_underutilization
from repro.metrics import achieved_throughput_fraction
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class PerfCounters:
    """Counter snapshot of one Acamar solve."""

    solver_sequence: tuple[str, ...]
    iterations: int
    spmv_sweeps: int
    spmv_busy_mac_cycles: int
    spmv_provisioned_mac_cycles: int
    dense_cycles: int
    compute_seconds: float
    reconfig_events: int
    reconfig_seconds: float
    solver_swaps: int
    solver_swap_seconds: float
    eq5_underutilization: float
    achieved_throughput: float
    gflops: float

    @property
    def spmv_occupancy(self) -> float:
        if self.spmv_provisioned_mac_cycles == 0:
            return 1.0
        return self.spmv_busy_mac_cycles / self.spmv_provisioned_mac_cycles

    def to_lines(self) -> list[str]:
        """Render as the counter dump the CLI prints."""
        return [
            f"solver sequence        : {' -> '.join(self.solver_sequence)}",
            f"iterations (final)     : {self.iterations}",
            f"spmv sweeps            : {self.spmv_sweeps}",
            f"spmv busy MAC-cycles   : {self.spmv_busy_mac_cycles}",
            f"spmv provisioned       : {self.spmv_provisioned_mac_cycles}"
            f"  (occupancy {self.spmv_occupancy:.1%})",
            f"dense-unit cycles      : {self.dense_cycles}",
            f"compute time           : {self.compute_seconds * 1e3:.3f} ms"
            f"  ({self.gflops:.2f} GFLOP/s achieved)",
            f"Eq.5 underutilization  : {self.eq5_underutilization:.1%}",
            f"achieved throughput    : {self.achieved_throughput:.1%} of peak",
            f"fine-grained reconfigs : {self.reconfig_events}"
            f"  ({self.reconfig_seconds * 1e3:.3f} ms ICAP)",
            f"solver swaps           : {self.solver_swaps}"
            f"  ({self.solver_swap_seconds * 1e3:.3f} ms)",
        ]


def collect_counters(
    matrix: CSRMatrix,
    result: AcamarResult,
    model: PerformanceModel | None = None,
) -> PerfCounters:
    """Assemble the counter snapshot for a finished Acamar solve."""
    model = model if model is not None else PerformanceModel()
    latency: AcamarLatencyReport = model.acamar_latency(matrix, result)
    final = latency.final
    lengths = matrix.row_lengths()
    eq5 = mean_underutilization(lengths, result.plan.unroll_for_rows)
    throughput = achieved_throughput_fraction(
        final.spmv_report, final.loop_sweeps, model.device
    )
    total_flops = sum(
        a.spmv_report.flops + a.dense_report.flops for a in latency.attempts
    )
    compute = latency.compute_seconds
    return PerfCounters(
        solver_sequence=result.solver_sequence,
        iterations=result.final.iterations,
        spmv_sweeps=sum(a.loop_sweeps for a in latency.attempts),
        spmv_busy_mac_cycles=int(
            sum(a.spmv_report.busy_mac_cycles for a in latency.attempts)
        ),
        spmv_provisioned_mac_cycles=int(
            sum(a.spmv_report.provisioned_mac_cycles for a in latency.attempts)
        ),
        dense_cycles=int(
            sum(a.dense_report.cycles for a in latency.attempts)
        ),
        compute_seconds=compute,
        reconfig_events=sum(a.reconfig_events for a in latency.attempts),
        reconfig_seconds=sum(a.reconfig_seconds for a in latency.attempts),
        solver_swaps=result.solver_reconfigurations,
        solver_swap_seconds=latency.solver_swap_seconds,
        eq5_underutilization=eq5,
        achieved_throughput=throughput,
        gflops=(total_flops / compute / 1e9) if compute > 0 else 0.0,
    )
