"""Cycle models of the accelerator's compute kernels.

Two kernel families exist in the design:

- the **Dynamic SpMV kernel** — a gather/multiply/reduce pipeline whose
  MAC count (unroll factor) is set by partial reconfiguration.  A row of
  ``nnz`` stored values is processed in ``ceil(nnz/U)`` initiation slots;
  the whole sweep then drains through the adder tree once.
- the **static dense kernels** (dot, AXPY, scale, element-wise add, norm) —
  fully pipelined at II=1 over the vector length with a fixed unroll, never
  reconfigured (they are not the source of underutilization).

Both models return cycles plus busy/provisioned MAC-cycle tallies so the
throughput and utilization metrics derive from one consistent accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import UnknownNameError
from repro.fpga.device import FPGADevice


@dataclass(frozen=True)
class SweepReport:
    """Cycle accounting for one pass of a kernel over its data."""

    cycles: float
    busy_mac_cycles: float
    provisioned_mac_cycles: float
    flops: float

    @property
    def occupancy(self) -> float:
        """Busy fraction of provisioned MAC-cycles (1 = perfect)."""
        if self.provisioned_mac_cycles == 0:
            return 1.0
        return self.busy_mac_cycles / self.provisioned_mac_cycles

    def scaled(self, repeats: float) -> "SweepReport":
        """The same sweep executed ``repeats`` times."""
        return SweepReport(
            cycles=self.cycles * repeats,
            busy_mac_cycles=self.busy_mac_cycles * repeats,
            provisioned_mac_cycles=self.provisioned_mac_cycles * repeats,
            flops=self.flops * repeats,
        )

    @staticmethod
    def combine(reports: list["SweepReport"]) -> "SweepReport":
        """Sum cycle accounting across sequential kernel executions."""
        return SweepReport(
            cycles=sum(r.cycles for r in reports),
            busy_mac_cycles=sum(r.busy_mac_cycles for r in reports),
            provisioned_mac_cycles=sum(r.provisioned_mac_cycles for r in reports),
            flops=sum(r.flops for r in reports),
        )


EMPTY_SWEEP = SweepReport(0.0, 0.0, 0.0, 0.0)


def spmv_sweep(
    row_lengths: np.ndarray,
    unroll_per_row: np.ndarray | int,
    device: FPGADevice,
) -> SweepReport:
    """One SpMV pass over a matrix with a (possibly per-row) unroll factor.

    ``unroll_per_row`` is a scalar for the static baseline and the per-row
    expansion of the reconfiguration plan for Acamar.  Reconfiguration time
    is *not* included here — it is accounted separately so experiments can
    study compute latency and reconfiguration budget independently
    (paper Figures 6 and 13).
    """
    nnz = np.asarray(row_lengths, dtype=np.int64)
    unroll = np.broadcast_to(np.asarray(unroll_per_row, dtype=np.int64), nnz.shape)
    slots = np.maximum(1, -(-nnz // unroll))  # ceil(nnz/U), min 1 per row
    cycles = float(slots.sum()) + device.pipeline_fill_cycles
    busy = float(nnz.sum())
    provisioned = float(np.sum(slots * unroll))
    return SweepReport(
        cycles=cycles,
        busy_mac_cycles=busy,
        provisioned_mac_cycles=provisioned,
        flops=2.0 * busy,
    )


_DENSE_FLOPS_PER_ELEMENT: dict[str, float] = {
    "dot": 2.0,
    "axpy": 2.0,
    "norm": 2.0,
    "vadd": 1.0,
    "scale": 1.0,
}

_DENSE_TAIL_CYCLES: dict[str, int] = {
    # Reduction kernels drain an adder tree after the streaming phase.
    "dot": 8,
    "norm": 10,  # adder tree + square root
    "axpy": 0,
    "vadd": 0,
    "scale": 0,
}


def dense_kernel(kind: str, length: int, device: FPGADevice) -> SweepReport:
    """One execution of a static dense kernel over a length-``length`` vector."""
    if kind not in _DENSE_FLOPS_PER_ELEMENT:
        raise UnknownNameError(f"unknown dense kernel {kind!r}")
    unroll = device.dense_unroll
    slots = max(1, -(-length // unroll))
    cycles = float(slots + device.pipeline_fill_cycles + _DENSE_TAIL_CYCLES[kind])
    busy = float(length)
    return SweepReport(
        cycles=cycles,
        busy_mac_cycles=busy,
        provisioned_mac_cycles=float(slots * unroll),
        flops=_DENSE_FLOPS_PER_ELEMENT[kind] * length,
    )
