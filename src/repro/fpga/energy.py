"""Energy model (extension — the paper evaluates area, not energy).

The dynamic-area argument of Figure 10 has an energy corollary the paper
leaves implicit: a region sized to the workload leaks less.  This module
prices a solve's energy from the same cycle/area accounting the latency
model uses:

- **dynamic compute** — per-MAC-operation switching energy,
- **static leakage** — per-mm² leakage of the *configured* region over
  the solve's duration (the dynamic region leaks only what is currently
  configured; the static design leaks its worst-case region always),
- **memory traffic** — per-byte HBM access energy for the CSR streams,
- **reconfiguration** — ICAP controller power over the transfer time.

Constants are calibrated to contemporary FPGA-class figures (tens of
pJ/op, tens of mW/mm² leakage); as with the area model, the meaningful
outputs are Acamar-vs-baseline *ratios*, not absolute joules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.cost_model import AcamarLatencyReport, LatencyReport
from repro.fpga.device import ALVEO_U55C, FPGADevice

MAC_ENERGY_J = 8e-12
"""Dynamic energy of one fp32 multiply-accumulate (8 pJ)."""

DENSE_ELEMENT_ENERGY_J = 4e-12
"""Dynamic energy per dense-kernel element (simpler datapath)."""

LEAKAGE_W_PER_MM2 = 0.05
"""Static leakage per mm² of configured fabric (50 mW/mm²)."""

HBM_ENERGY_PER_BYTE_J = 5e-12
"""HBM2 access energy (~5 pJ/byte)."""

ICAP_POWER_W = 1.0
"""ICAP controller power while a partial bitstream streams."""

CSR_BYTES_PER_NNZ = 8.0
"""Value + column-index bytes fetched per stored non-zero per sweep."""


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one solve, in joules."""

    dynamic_compute_j: float
    static_leakage_j: float
    memory_j: float
    reconfig_j: float

    @property
    def total_j(self) -> float:
        return (
            self.dynamic_compute_j
            + self.static_leakage_j
            + self.memory_j
            + self.reconfig_j
        )

    def energy_delay_product(self, seconds: float) -> float:
        """EDP in joule-seconds against the given latency."""
        return self.total_j * seconds


@dataclass(frozen=True)
class FleetEnergyReport:
    """Energy breakdown of one serving-fleet run, in joules.

    The fleet-level corollary of :class:`EnergyReport`: leakage is
    charged on *provisioned* fabric (slots exist and leak whether or not
    they are busy — the serving-tier face of the paper's
    underutilization argument), compute and memory on the modeled FLOP
    volume actually served, and reconfiguration on every per-slot
    config load the cluster simulator recorded.
    """

    modeled_flops: float
    dynamic_compute_j: float
    static_leakage_j: float
    memory_j: float
    reconfig_j: float

    @property
    def total_j(self) -> float:
        return (
            self.dynamic_compute_j
            + self.static_leakage_j
            + self.memory_j
            + self.reconfig_j
        )

    @property
    def gflops_per_watt(self) -> float:
        """Modeled efficiency of the deployment.

        Average-power form: GFLOPS/W = (flops/s) / (J/s) = flops/J/1e9,
        so the run duration cancels and the ratio is exact for any
        horizon.
        """
        if self.total_j <= 0.0:
            return 0.0
        return self.modeled_flops / self.total_j / 1e9

    def as_dict(self) -> dict[str, float]:
        return {
            "modeled_flops": round(self.modeled_flops, 3),
            "dynamic_compute_j": round(self.dynamic_compute_j, 9),
            "static_leakage_j": round(self.static_leakage_j, 9),
            "memory_j": round(self.memory_j, 9),
            "reconfig_j": round(self.reconfig_j, 9),
            "total_j": round(self.total_j, 9),
            "gflops_per_watt": round(self.gflops_per_watt, 9),
        }


class EnergyModel:
    """Prices solves on a device, given the latency model's reports."""

    def __init__(self, device: FPGADevice = ALVEO_U55C) -> None:
        self.device = device

    def _report(
        self,
        latency: LatencyReport,
        spmv_area_mm2: float,
    ) -> EnergyReport:
        spmv = latency.spmv_report
        dense = latency.dense_report
        dynamic = (
            spmv.busy_mac_cycles * MAC_ENERGY_J
            + dense.busy_mac_cycles * DENSE_ELEMENT_ENERGY_J
        )
        area = spmv_area_mm2 + self.device.fixed_area_mm2
        static = LEAKAGE_W_PER_MM2 * area * latency.compute_seconds
        memory = spmv.busy_mac_cycles * CSR_BYTES_PER_NNZ * HBM_ENERGY_PER_BYTE_J
        reconfig = ICAP_POWER_W * latency.reconfig_seconds
        return EnergyReport(
            dynamic_compute_j=dynamic,
            static_leakage_j=static,
            memory_j=memory,
            reconfig_j=reconfig,
        )

    def static_design(
        self, latency: LatencyReport, urb: int
    ) -> EnergyReport:
        """Energy of a solve on the fixed-unroll baseline."""
        return self._report(latency, self.device.spmv_region_area_mm2(urb))

    def acamar(
        self,
        latency: LatencyReport | AcamarLatencyReport,
        time_weighted_area_mm2: float,
    ) -> EnergyReport:
        """Energy of an Acamar solve (time-weighted configured area)."""
        if isinstance(latency, AcamarLatencyReport):
            reports = [
                self._report(attempt, time_weighted_area_mm2)
                for attempt in latency.attempts
            ]
            return EnergyReport(
                dynamic_compute_j=sum(r.dynamic_compute_j for r in reports),
                static_leakage_j=sum(r.static_leakage_j for r in reports),
                memory_j=sum(r.memory_j for r in reports),
                reconfig_j=sum(r.reconfig_j for r in reports)
                + ICAP_POWER_W * latency.solver_swap_seconds,
            )
        return self._report(latency, time_weighted_area_mm2)

    def fleet(
        self,
        *,
        modeled_flops: float,
        slot_area_mm2: float,
        provisioned_slot_seconds: float,
        provisioned_fleet_seconds: float,
        config_loads: int,
        config_load_seconds: float,
    ) -> FleetEnergyReport:
        """Price a whole serving-fleet run (the ``repro dse`` objective).

        - dynamic/memory: ``modeled_flops`` at 2 FLOPs per MAC-op, each
          stored non-zero streamed once per sweep,
        - leakage: every provisioned slot-second leaks its slot's area,
          every provisioned fleet-second leaks the device's static
          region — idle capacity is not free,
        - reconfig: ICAP power over every config load's transfer time.
        """
        mac_ops = modeled_flops / 2.0
        return FleetEnergyReport(
            modeled_flops=modeled_flops,
            dynamic_compute_j=mac_ops * MAC_ENERGY_J,
            static_leakage_j=LEAKAGE_W_PER_MM2 * (
                provisioned_slot_seconds * slot_area_mm2
                + provisioned_fleet_seconds * self.device.fixed_area_mm2
            ),
            memory_j=mac_ops * CSR_BYTES_PER_NNZ * HBM_ENERGY_PER_BYTE_J,
            reconfig_j=ICAP_POWER_W * config_loads * config_load_seconds,
        )
