"""Host-side model: data movement and end-to-end solve latency.

Figure 3's control flow runs partly on the host: it receives the Matrix
Structure unit's decision, loads partial bitstreams through the ICAP, and
feeds the coefficient matrix to the fabric chunk by chunk.  This module
prices the host-visible parts — PCIe transfer of the CSR streams and the
vectors, plus the reconfiguration commands — so experiments can report
*end-to-end* latency, not just on-fabric compute.

The transfer model is deliberately coarse (sustained PCIe bandwidth with
a fixed per-transfer setup cost); its role is to show where data movement
sits relative to compute and reconfiguration, not to model a DMA engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.cost_model import AcamarLatencyReport, LatencyReport
from repro.sparse.csr import CSRMatrix

PCIE_BANDWIDTH_BYTES_PER_S = 16e9
"""Host↔card sustained bandwidth (PCIe 4.0 x16, ~16 GB/s)."""

TRANSFER_SETUP_SECONDS = 10e-6
"""Fixed cost per DMA transfer (descriptor setup, doorbell, completion)."""

CSR_BYTES_PER_VALUE = 4  # fp32
CSR_BYTES_PER_INDEX = 4  # int32 column index
CSR_BYTES_PER_OFFSET = 8  # int64 row offset


def matrix_transfer_bytes(matrix: CSRMatrix) -> int:
    """Bytes to ship one CSR matrix to the card."""
    return (
        matrix.nnz * (CSR_BYTES_PER_VALUE + CSR_BYTES_PER_INDEX)
        + (matrix.n_rows + 1) * CSR_BYTES_PER_OFFSET
    )


def vector_transfer_bytes(n: int) -> int:
    """Bytes for one fp32 vector of length ``n``."""
    return 4 * n


def transfer_seconds(n_bytes: int, n_transfers: int = 1) -> float:
    """DMA time for ``n_bytes`` split over ``n_transfers`` descriptors."""
    return (
        n_bytes / PCIE_BANDWIDTH_BYTES_PER_S
        + n_transfers * TRANSFER_SETUP_SECONDS
    )


BATCHED_TRANSFER_SETUP_SECONDS = 2e-6
"""Per-member descriptor cost inside a batched (scatter-gather) DMA.

A fingerprint-sharing batch ships K right-hand sides in one
scatter-gather transfer: one full :data:`TRANSFER_SETUP_SECONDS` for the
head descriptor, then a chained descriptor per additional member — no
extra doorbell or completion round-trip."""


def batched_transfer_seconds(n_bytes_each: int, k: int) -> float:
    """DMA time for ``k`` equal payloads chained into one transfer.

    Equals ``transfer_seconds(n_bytes_each)`` for ``k == 1`` and beats
    ``k`` separate transfers for every ``k > 1`` (the bandwidth term is
    unchanged; only the setup overhead amortizes).
    """
    if k < 1:
        return 0.0
    return (
        k * n_bytes_each / PCIE_BANDWIDTH_BYTES_PER_S
        + TRANSFER_SETUP_SECONDS
        + (k - 1) * BATCHED_TRANSFER_SETUP_SECONDS
    )


@dataclass(frozen=True)
class EndToEndReport:
    """Complete host-visible latency of one accelerated solve."""

    upload_seconds: float
    compute_seconds: float
    reconfig_seconds: float
    download_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.upload_seconds
            + self.compute_seconds
            + self.reconfig_seconds
            + self.download_seconds
        )

    @property
    def data_movement_fraction(self) -> float:
        """Share of the total spent moving data over PCIe."""
        total = self.total_seconds
        if total == 0:
            return 0.0
        return (self.upload_seconds + self.download_seconds) / total


def end_to_end(
    matrix: CSRMatrix,
    latency: LatencyReport | AcamarLatencyReport,
    chunk_size: int = 4096,
) -> EndToEndReport:
    """Assemble the full host-visible latency of one solve.

    The matrix and the right-hand side upload once (chunked DMA); the
    solution vector downloads once.  Compute and reconfiguration come
    from the FPGA cost model's report.
    """
    from repro.core.chunking import chunk_count

    n_chunks = max(1, chunk_count(matrix.n_rows, chunk_size))
    upload = transfer_seconds(
        matrix_transfer_bytes(matrix) + vector_transfer_bytes(matrix.n_rows),
        n_transfers=n_chunks + 1,
    )
    download = transfer_seconds(vector_transfer_bytes(matrix.n_rows))
    if isinstance(latency, AcamarLatencyReport):
        compute = latency.compute_seconds
        reconfig = (
            sum(a.reconfig_seconds for a in latency.attempts)
            + latency.solver_swap_seconds
        )
    else:
        compute = latency.compute_seconds
        reconfig = latency.reconfig_seconds
    return EndToEndReport(
        upload_seconds=upload,
        compute_seconds=compute,
        reconfig_seconds=reconfig,
        download_seconds=download,
    )
