"""Partial-reconfiguration timing model (Xilinx DFX over ICAP).

Section VIII-A: the Alveo u55c's ICAP core transfers partial bitstreams at
6.4 Gb/s (200 MHz), and reconfiguration time is directly proportional to
bitstream size.  Acamar performs two kinds of reconfiguration:

- **solver-level** (Solver Decision loop): the whole Reconfigurable Solver
  region is swapped — a large bitstream;
- **fine-grained** (Resource Decision loop, Nested DFX): only the Dynamic
  SpMV kernel region is swapped — a small bitstream whose size grows with
  the provisioned unroll factor.

Bitstream sizes are modeled affinely in the region's MAC count; the
constants put fine-grained events in the hundreds-of-microseconds range
and solver swaps in the milliseconds, consistent with UltraScale+ partial
bitstream sizes for regions of this scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.fpga.device import FPGADevice

SPMV_REGION_BASE_BYTES = 65536
"""Fixed partial-bitstream overhead of the Dynamic SpMV region (frames for
control logic, stream interfaces)."""

SPMV_REGION_BYTES_PER_MAC = 24576
"""Additional bitstream bytes per provisioned MAC unit."""

SOLVER_REGION_BYTES = 4 * 1024 * 1024
"""Partial bitstream of the full Reconfigurable Solver region."""


def spmv_bitstream_bytes(unroll: int) -> int:
    """Partial-bitstream size for an unroll-``unroll`` SpMV configuration."""
    if unroll < 1:
        raise ConfigurationError(f"unroll must be >= 1, got {unroll}")
    return SPMV_REGION_BASE_BYTES + SPMV_REGION_BYTES_PER_MAC * unroll


@dataclass(frozen=True)
class ReconfigurationModel:
    """Times DFX events against a device's ICAP bandwidth."""

    device: FPGADevice

    def transfer_seconds(self, bitstream_bytes: int) -> float:
        """Bitstream-load time at the ICAP's sustained bandwidth."""
        return 8.0 * bitstream_bytes / self.device.icap_bandwidth_bps

    def spmv_event_seconds(self, unroll: int) -> float:
        """One fine-grained (Nested DFX) Dynamic-SpMV reconfiguration."""
        return self.transfer_seconds(spmv_bitstream_bytes(unroll))

    def solver_swap_seconds(self) -> float:
        """One full Reconfigurable Solver swap (Solver Modifier event)."""
        return self.transfer_seconds(SOLVER_REGION_BYTES)

    def plan_overhead_seconds(self, unrolls_at_events: list[int]) -> float:
        """Total fine-grained overhead of one sweep's reconfiguration events.

        ``unrolls_at_events`` lists the *target* unroll factor of each
        event (the configuration being loaded).
        """
        return sum(self.spmv_event_seconds(u) for u in unrolls_at_events)
