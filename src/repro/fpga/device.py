"""FPGA device description (Xilinx Alveo u55c class).

The paper implements Acamar in Vitis HLS on an Alveo u55c (Virtex
UltraScale+ fabric) and extends its design-space exploration with a
cycle-level simulator fed by HLS co-simulation numbers.  This module is the
device side of that simulator: clock, MAC resource budget, per-MAC fabric
area, ICAP bandwidth.  The constants are calibrated to land the derived
metrics in the paper's reported ranges (e.g. ~720 GFLOPS/mm² performance
efficiency) rather than to match any proprietary die measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FPGADevice:
    """Parameters of the modeled FPGA fabric.

    Attributes
    ----------
    name:
        Human-readable device name.
    clock_hz:
        Kernel clock of the HLS design.
    dsp_total:
        DSP slices available on the fabric.
    dsp_per_mac:
        DSP slices consumed by one fp32 multiply-accumulate unit.
    mac_area_mm2:
        Fabric area occupied by one MAC unit plus its share of routing.
    fixed_area_mm2:
        Area of the static region (control, dense units, memory interface)
        present in both Acamar and the static baseline.
    icap_bandwidth_bps:
        Partial-bitstream transfer rate of the ICAP core (paper: 6.4 Gb/s
        at 200 MHz).
    pipeline_fill_cycles:
        Pipeline fill/drain overhead charged once per kernel sweep.
    dense_unroll:
        Fixed unroll factor of the optimized static dense kernels.
    """

    name: str = "alveo-u55c"
    clock_hz: float = 300e6
    dsp_total: int = 9024
    dsp_per_mac: int = 5
    mac_area_mm2: float = 6.0e-4
    fixed_area_mm2: float = 0.05
    icap_bandwidth_bps: float = 6.4e9
    pipeline_fill_cycles: int = 12
    dense_unroll: int = 16

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigurationError(f"clock_hz must be > 0, got {self.clock_hz}")
        if self.dsp_per_mac < 1 or self.dsp_total < self.dsp_per_mac:
            raise ConfigurationError("inconsistent DSP budget")
        if self.icap_bandwidth_bps <= 0:
            raise ConfigurationError("icap_bandwidth_bps must be > 0")
        if self.dense_unroll < 1:
            raise ConfigurationError("dense_unroll must be >= 1")

    @property
    def max_macs(self) -> int:
        """Largest MAC count the DSP budget can provision."""
        return self.dsp_total // self.dsp_per_mac

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert kernel cycles to wall-clock seconds."""
        return float(cycles) / self.clock_hz

    def mac_peak_flops(self, n_macs: int) -> float:
        """Peak FLOP/s of ``n_macs`` fully-pipelined MACs (2 FLOPs/cycle)."""
        return 2.0 * n_macs * self.clock_hz

    def spmv_region_area_mm2(self, unroll: int) -> float:
        """Fabric area of a Dynamic-SpMV region provisioned for ``unroll``."""
        return unroll * self.mac_area_mm2


ALVEO_U55C = FPGADevice()
"""Default device instance used throughout the experiments."""
