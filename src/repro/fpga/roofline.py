"""Roofline analysis: where SpMV sits on each device's roofline.

The roofline model explains *why* the GPU achieves a fraction of a
percent of peak (Figure 9 bottom) while the FPGA's dynamically-sized unit
reaches ~70 %: SpMV's arithmetic intensity (~0.17 FLOP/byte) pins it deep
in the memory-bound region of a 4.4 TFLOPS GPU, whereas an unroll-matched
FPGA configuration provisions only as much compute as the memory system
can feed.  This module computes the roofline coordinates for both
devices so the comparison is quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.device import ALVEO_U55C, FPGADevice
from repro.fpga.memory import CSR_STREAM_BYTES_PER_LANE, HBM_BANDWIDTH_BPS
from repro.gpu.cusparse_model import CSR_BYTES_PER_NNZ, CSR_BYTES_PER_ROW
from repro.gpu.device import GTX_1650_SUPER, GPUDevice
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position against one device's roofline."""

    device: str
    arithmetic_intensity: float  # FLOP / byte
    peak_flops: float
    memory_bandwidth_bps: float
    attainable_flops: float
    memory_bound: bool

    @property
    def ridge_point(self) -> float:
        """Intensity at which the device turns compute-bound."""
        return self.peak_flops / self.memory_bandwidth_bps

    @property
    def attainable_fraction(self) -> float:
        """Attainable / peak — the roofline ceiling Figure 9 bumps into."""
        if self.peak_flops == 0:
            return 0.0
        return self.attainable_flops / self.peak_flops


def spmv_arithmetic_intensity(
    matrix: CSRMatrix, bytes_per_nnz: float, bytes_per_row: float
) -> float:
    """FLOPs per byte of one SpMV pass under a device's traffic model."""
    flops = 2.0 * matrix.nnz
    traffic = bytes_per_nnz * matrix.nnz + bytes_per_row * matrix.n_rows
    return flops / traffic if traffic else 0.0


def gpu_roofline(
    matrix: CSRMatrix, device: GPUDevice = GTX_1650_SUPER
) -> RooflinePoint:
    """SpMV's roofline position on the GPU (Figure 9 bottom's ceiling)."""
    intensity = spmv_arithmetic_intensity(
        matrix, CSR_BYTES_PER_NNZ, CSR_BYTES_PER_ROW
    )
    bandwidth = device.memory_bandwidth_bps * device.memory_efficiency
    attainable = min(device.peak_flops, intensity * bandwidth)
    return RooflinePoint(
        device=device.name,
        arithmetic_intensity=intensity,
        peak_flops=device.peak_flops,
        memory_bandwidth_bps=bandwidth,
        attainable_flops=attainable,
        memory_bound=attainable < device.peak_flops,
    )


def fpga_roofline(
    matrix: CSRMatrix,
    provisioned_macs: int,
    device: FPGADevice = ALVEO_U55C,
    bandwidth_bps: float = HBM_BANDWIDTH_BPS,
) -> RooflinePoint:
    """SpMV's roofline position for a given provisioned MAC count.

    The FPGA's "peak" is the configured unit's peak, not the fabric's —
    the whole point of dynamic sizing is choosing a configuration whose
    ridge point sits below SpMV's intensity, keeping the unit
    compute-(i.e. usefully-)bound rather than starving.
    """
    intensity = spmv_arithmetic_intensity(
        matrix, CSR_STREAM_BYTES_PER_LANE, 8.0
    )
    peak = device.mac_peak_flops(provisioned_macs)
    attainable = min(peak, intensity * bandwidth_bps)
    return RooflinePoint(
        device=f"{device.name}/U={provisioned_macs}",
        arithmetic_intensity=intensity,
        peak_flops=peak,
        memory_bandwidth_bps=bandwidth_bps,
        attainable_flops=attainable,
        memory_bound=attainable < peak,
    )
