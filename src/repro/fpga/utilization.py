"""Resource-underutilization accounting — paper Equation 5.

The paper quantifies SpMV resource underutilization per row as

- ``(unroll - nnz) / unroll``                when ``nnz <  unroll``
  (idle MACs in the single chunk), and
- ``1 - (unroll - mod(nnz, unroll)) / unroll = mod(nnz, unroll) / unroll``
  when ``nnz >= unroll`` (Eq. 5 as printed; zero when the row divides the
  unroll factor evenly, Eq. 6).

Both Section VII-A worked examples (Eq. 10 and 11) follow from this
definition, so we implement it literally.  A second, cycle-weighted measure
(`occupancy_underutilization`) accounts wasted MAC-cycles exactly and is
used by the throughput model; the two agree at the extremes and differ only
in how partially-filled final chunks are charged.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def row_underutilization(nnz: np.ndarray, unroll: np.ndarray | int) -> np.ndarray:
    """Eq. 5 per row, vectorized.

    Parameters
    ----------
    nnz:
        NNZ per row.
    unroll:
        Scalar unroll factor (static baseline) or per-row array (Acamar).
    """
    nnz = np.asarray(nnz, dtype=np.int64)
    unroll = np.broadcast_to(np.asarray(unroll, dtype=np.int64), nnz.shape)
    if np.any(unroll < 1):
        raise ConfigurationError("unroll factors must be >= 1")
    under = np.where(
        nnz < unroll,
        (unroll - nnz) / unroll,
        np.mod(nnz, unroll) / unroll,
    )
    return under.astype(np.float64)


def mean_underutilization(nnz: np.ndarray, unroll: np.ndarray | int) -> float:
    """Dataset-level R.U.: the mean of Eq. 5 over all rows."""
    values = row_underutilization(nnz, unroll)
    return float(values.mean()) if len(values) else 0.0


def occupancy_underutilization(
    nnz: np.ndarray, unroll: np.ndarray | int
) -> float:
    """Cycle-exact wasted-MAC fraction: ``1 - busy / provisioned``.

    A row of ``nnz`` non-zeros on an unroll-``U`` kernel occupies
    ``ceil(nnz/U)`` initiation slots of ``U`` MACs each; ``nnz`` of those
    MAC-cycles do useful work.  Empty rows provision one slot (row
    bookkeeping) with zero useful work.
    """
    nnz = np.asarray(nnz, dtype=np.int64)
    unroll = np.broadcast_to(np.asarray(unroll, dtype=np.int64), nnz.shape)
    if np.any(unroll < 1):
        raise ConfigurationError("unroll factors must be >= 1")
    slots = np.maximum(1, -(-nnz // unroll))  # ceil division, min one slot
    provisioned = float(np.sum(slots * unroll))
    busy = float(nnz.sum())
    if provisioned == 0.0:
        return 0.0
    return 1.0 - busy / provisioned


def underutilization_improvement_ratio(
    baseline_ru: float, acamar_ru: float, floor: float = 1e-6
) -> float:
    """Figure 7's y-axis: baseline R.U. divided by Acamar R.U.

    Values above 1 mean Acamar wastes fewer resources.  ``floor`` guards
    the ratio when Acamar achieves (near-)perfect utilization.
    """
    return baseline_ru / max(acamar_ru, floor)
