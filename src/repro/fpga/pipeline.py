"""Event-driven simulation of the Dynamic SpMV kernel pipeline.

The analytic model in :mod:`repro.fpga.kernels` prices a sweep as
``sum(ceil(nnz/U))`` initiation slots plus a fill constant.  This module
simulates the same hardware at chunk granularity with explicit pipeline
structure, so the analytic shortcut can be *validated* rather than
assumed, and so reconfiguration drains — which the analytic model books
as pure ICAP transfer time — show their pipeline-level cost:

- a **row fetcher** emits row descriptors from the CSR offsets,
- an **issue stage** streams each row in chunks of the current unroll
  factor at II=1,
- a **MAC array + adder tree** with latency ``mac_latency +
  ceil(log2(U)) + 1`` produces one partial sum per chunk; a row's value
  is complete one tree latency after its last chunk issues,
- a **writeback port** retires at most one row result per cycle into the
  ``prBuffer``,
- a **reconfiguration event** (set boundary with a different unroll
  factor) must wait for the pipeline to drain, stall for the bitstream
  load, then refill.

The simulator is deterministic and runs in O(total chunks), so whole
Table II sweeps simulate in milliseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.finegrained import ReconfigurationPlan
from repro.errors import ConfigurationError
from repro.fpga.device import FPGADevice
from repro.fpga.reconfiguration import ReconfigurationModel

MAC_LATENCY_CYCLES = 4
"""Pipeline depth of one fp32 multiply-accumulate stage."""


def _tree_latency(unroll: int) -> int:
    """Adder-tree + accumulator latency for an unroll-``unroll`` array."""
    return MAC_LATENCY_CYCLES + max(1, math.ceil(math.log2(max(unroll, 2)))) + 1


@dataclass
class SetTrace:
    """Per-row-set results of a pipeline simulation."""

    start_row: int
    stop_row: int
    unroll: int
    issue_cycles: int
    stall_cycles: int


@dataclass
class PipelineTrace:
    """Cycle-accurate account of one SpMV sweep.

    ``total_cycles`` covers issue, drain and reconfiguration stalls;
    ``busy_mac_cycles`` counts useful MAC work; ``reconfig_stall_cycles``
    is the part of the total spent waiting on DFX loads (including the
    drain that precedes them).
    """

    total_cycles: int
    busy_mac_cycles: int
    provisioned_mac_cycles: int
    reconfig_stall_cycles: int
    writeback_conflict_cycles: int
    sets: list[SetTrace] = field(default_factory=list)

    @property
    def occupancy(self) -> float:
        if self.provisioned_mac_cycles == 0:
            return 1.0
        return self.busy_mac_cycles / self.provisioned_mac_cycles


class SpMVPipelineSimulator:
    """Simulates the Dynamic SpMV kernel executing one reconfiguration plan."""

    def __init__(
        self,
        device: FPGADevice,
        include_reconfiguration: bool = True,
    ) -> None:
        self.device = device
        self.include_reconfiguration = bool(include_reconfiguration)
        self._reconfig = ReconfigurationModel(device)

    def _reconfig_cycles(self, unroll: int) -> int:
        seconds = self._reconfig.spmv_event_seconds(unroll)
        return int(math.ceil(seconds * self.device.clock_hz))

    def simulate(
        self, row_lengths: np.ndarray, plan: ReconfigurationPlan
    ) -> PipelineTrace:
        """Run one sweep of the matrix under ``plan``.

        ``row_lengths`` is the NNZ/row profile of the operator actually
        swept (for Jacobi, the matrix without its diagonal).
        """
        lengths = np.asarray(row_lengths, dtype=np.int64)
        if plan.sets and plan.sets[-1].stop_row != len(lengths):
            raise ConfigurationError(
                f"plan covers {plan.sets[-1].stop_row} rows, operator has "
                f"{len(lengths)}"
            )
        cycle = 0  # next free issue cycle
        last_completion = 0  # when the last in-flight row result lands
        next_writeback_free = 0
        busy = 0
        provisioned = 0
        reconfig_stall = 0
        writeback_conflicts = 0
        sets: list[SetTrace] = []

        for row_set in plan.sets:
            if row_set.reconfigure and self.include_reconfiguration:
                # Drain: wait for in-flight rows, then load the bitstream.
                drain_target = max(cycle, last_completion)
                load = self._reconfig_cycles(row_set.unroll)
                reconfig_stall += (drain_target - cycle) + load
                cycle = drain_target + load
            unroll = row_set.unroll
            tree = _tree_latency(unroll)
            set_start_cycle = cycle
            set_stall = 0
            for row in range(row_set.start_row, row_set.stop_row):
                nnz = int(lengths[row])
                chunks = max(1, -(-nnz // unroll))
                # Issue the row's chunks back-to-back at II=1.
                first_issue = cycle
                last_issue = first_issue + chunks - 1
                completion = last_issue + tree
                # Writeback port: one result per cycle.
                writeback = max(completion, next_writeback_free)
                writeback_conflicts += writeback - completion
                next_writeback_free = writeback + 1
                last_completion = max(last_completion, writeback)
                cycle = last_issue + 1
                busy += nnz
                provisioned += chunks * unroll
            sets.append(
                SetTrace(
                    start_row=row_set.start_row,
                    stop_row=row_set.stop_row,
                    unroll=unroll,
                    issue_cycles=cycle - set_start_cycle,
                    stall_cycles=set_stall,
                )
            )
        # A result completing at cycle index c means c+1 cycles elapsed.
        total = max(cycle, last_completion + 1)
        return PipelineTrace(
            total_cycles=int(total),
            busy_mac_cycles=int(busy),
            provisioned_mac_cycles=int(provisioned),
            reconfig_stall_cycles=int(reconfig_stall),
            writeback_conflict_cycles=int(writeback_conflicts),
            sets=sets,
        )

    def validate_against_analytic(
        self, row_lengths: np.ndarray, plan: ReconfigurationPlan
    ) -> tuple[float, float]:
        """Compare pipeline and analytic cycle counts for one sweep.

        Returns ``(pipeline_cycles, analytic_cycles)`` with
        reconfiguration disabled on both sides; they must agree up to the
        pipeline's drain tail (a few tens of cycles), which tests assert.
        """
        from repro.fpga.kernels import spmv_sweep

        simulator = SpMVPipelineSimulator(
            self.device, include_reconfiguration=False
        )
        trace = simulator.simulate(row_lengths, plan)
        analytic = spmv_sweep(row_lengths, plan.unroll_for_rows, self.device)
        return float(trace.total_cycles), float(analytic.cycles)
