"""On-chip buffers and memory-bandwidth feasibility.

Figure 3 of the paper names two on-chip buffers:

- ``tBuffer`` — holds the Row Length Trace's per-set unroll factors (one
  entry per row set, i.e. ``SamplingRate`` entries per chunk); the MSID
  chain reads and rewrites it stage by stage.
- ``prBuffer`` — holds the Dynamic SpMV kernel's output vector for the
  current chunk until the dense kernels consume it (one fp32 word per
  row of the chunk).

This module models both as capacity-checked stream buffers, and adds the
HBM feasibility check that bounds the largest *streamable* unroll factor:
an unroll-``U`` SpMV consumes ``U`` values + ``U`` column indices per
cycle, which must fit in the device's sustained memory bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import AcamarConfig
from repro.errors import ConfigurationError
from repro.fpga.device import FPGADevice

HBM_BANDWIDTH_BPS = 460e9
"""Sustained HBM2 bandwidth of the Alveo u55c (16 GB stack, ~460 GB/s)."""

CSR_STREAM_BYTES_PER_LANE = 8
"""Per-lane per-cycle traffic of the SpMV gather: 4 B value + 4 B index."""


@dataclass
class StreamBuffer:
    """A bounded on-chip buffer with occupancy tracking.

    The model is deliberately simple — write raises on overflow, read
    raises on underflow, peak occupancy is recorded — because what the
    accelerator needs from it is a *sizing check*: does the configured
    buffer hold what the decision loops produce?
    """

    name: str
    capacity: int

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(
                f"{self.name}: capacity must be >= 1, got {self.capacity}"
            )
        self._occupancy = 0
        self._peak = 0

    @property
    def occupancy(self) -> int:
        return self._occupancy

    @property
    def peak_occupancy(self) -> int:
        return self._peak

    @property
    def free(self) -> int:
        return self.capacity - self._occupancy

    def write(self, count: int = 1) -> None:
        """Push ``count`` entries; raises if the buffer would overflow."""
        if count < 0:
            raise ConfigurationError(f"{self.name}: negative write of {count}")
        if self._occupancy + count > self.capacity:
            raise ConfigurationError(
                f"{self.name}: overflow — writing {count} into "
                f"{self.free} free of {self.capacity}"
            )
        self._occupancy += count
        self._peak = max(self._peak, self._occupancy)

    def read(self, count: int = 1) -> None:
        """Pop ``count`` entries; raises if the buffer would underflow."""
        if count < 0:
            raise ConfigurationError(f"{self.name}: negative read of {count}")
        if count > self._occupancy:
            raise ConfigurationError(
                f"{self.name}: underflow — reading {count} of "
                f"{self._occupancy} held"
            )
        self._occupancy -= count

    def drain(self) -> None:
        """Empty the buffer (chunk boundary)."""
        self._occupancy = 0


def tbuffer_for(config: AcamarConfig) -> StreamBuffer:
    """The trace buffer sized for one chunk's row sets."""
    return StreamBuffer("tBuffer", capacity=config.sampling_rate)


def prbuffer_for(config: AcamarConfig) -> StreamBuffer:
    """The partial-result buffer sized for one chunk of output rows."""
    return StreamBuffer("prBuffer", capacity=config.chunk_size)


def streaming_bytes_per_second(unroll: int, device: FPGADevice) -> float:
    """Sustained DRAM traffic of an unroll-``unroll`` SpMV at full rate."""
    if unroll < 1:
        raise ConfigurationError(f"unroll must be >= 1, got {unroll}")
    return unroll * CSR_STREAM_BYTES_PER_LANE * device.clock_hz


def max_streaming_unroll(
    device: FPGADevice, bandwidth_bps: float = HBM_BANDWIDTH_BPS
) -> int:
    """Largest unroll factor the memory system can feed every cycle."""
    per_lane = CSR_STREAM_BYTES_PER_LANE * device.clock_hz
    return max(1, int(bandwidth_bps // per_lane))


def validate_plan_bandwidth(
    plan_unrolls, device: FPGADevice, bandwidth_bps: float = HBM_BANDWIDTH_BPS
) -> bool:
    """True when every configured unroll factor is memory-feasible."""
    limit = max_streaming_unroll(device, bandwidth_bps)
    return all(int(u) <= limit for u in plan_unrolls)
