"""Span/counter telemetry for the accelerator's decision loops.

Production campaigns need to know *where* wall-time goes — structure
inspection, unroll planning, solver attempts, cost modeling — without a
profiler attached.  This module provides a deliberately small telemetry
layer:

- :class:`Telemetry` collects **spans** (named wall-time intervals with
  count / total / max statistics) and **counters** (monotonic integers),
- instrumented code calls the module-level :func:`span` and :func:`count`
  helpers, which are no-ops unless a collector is *activated* on the
  current context (a ``contextvars.ContextVar``, so parallel campaign
  workers and threads each aggregate into their own collector),
- collectors merge associatively (:meth:`Telemetry.merge`), which is how
  the campaign engine folds per-worker telemetry into one report,
- **distributions** (:func:`observe`) collect individual observations —
  e.g. per-request serving latencies — and summarize them as percentile
  statistics; the ``distributions`` key only appears in ``as_dict``
  output when at least one observation was recorded, so the schema stays
  backward compatible,
- :meth:`Telemetry.as_dict` emits the stable JSON schema documented in
  ``docs/operations.md`` (``TELEMETRY_SCHEMA_VERSION`` guards it).

The instrumented sites are the Solver Decision loop and Fine-Grained
Reconfiguration unit (:mod:`repro.core`) and the FPGA cost model
(:mod:`repro.fpga.cost_model`); the campaign runner adds per-problem
resolve/solve spans on top.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

TELEMETRY_SCHEMA_VERSION = 1

# -- the telemetry name registry ----------------------------------------
#
# Every span/counter/distribution name recorded anywhere in repro MUST
# be listed here; the REP005 lint rule (repro.analysis) enforces that
# call sites pass registered string literals.  The registry is the
# single source of truth the operations docs and dashboards key on —
# adding a name here is a schema decision, not a formality.

KNOWN_SPANS = frozenset({
    # campaign runner
    "campaign.resolve",
    "campaign.solve",
    "campaign.cost_model",
    # experiment runner
    "runner.load_problem",
    "runner.acamar_solve",
    "runner.portfolio_solve",
    # decision loops (repro.core)
    "matrix_structure.select",
    "reconfigurable_solver.attempt",
    "fine_grained.plan",
    # kernels and cost model
    "kernel.spmv",
    "kernel.spmv_batched",
    "kernel.rmatvec",
    "cost_model.acamar_latency",
    # serving profiler (wall-clock side only; the serving report itself
    # is virtual-clock and never records spans)
    "serve.profile.resolve",
    "serve.profile.solve",
    "serve.profile.cost_model",
    # design-space explorer (repro.dse): wall-clock cost of evaluating
    # one fleet design point end-to-end (the report itself carries only
    # virtual-clock and modeled quantities)
    "dse.point_eval",
})
"""Sanctioned span names (wall-time intervals)."""

KNOWN_COUNTERS = frozenset({
    # decision-loop events
    "solver_swaps",
    "spmv_reconfig_events",
    "msid_events_removed",
    # campaign engine
    "campaign.failures",
    "campaign.workers_lost",
    # batched execution (fingerprint-grouped lockstep solves)
    "batch.groups",
    "batch.items",
    "batch.fallback_sequential",
    # serving pipeline
    "serve.requests",
    "serve.admitted",
    "serve.preemptions",
    "serve.expired",
    "serve.batches",
    "serve.failed",
    "serve.config_loads",
    "serve.cache_hits",
    "serve.cache_misses",
    "serve.shed.deadline",
    "serve.shed.queue_full",
    "serve.shed.drain_limit",
    "serve.profile_failures",
    "serve.device_faults",
    # cluster tier (repro.serve.cluster): request accounting
    "cluster.requests",
    "cluster.completed",
    "cluster.failed",
    "cluster.expired",
    "cluster.batches",
    "cluster.config_loads",
    "cluster.shed.overflow",
    "cluster.shed.drain_limit",
    # cluster front-tier router (consistent-hash placement)
    "router.routed",
    "router.remapped",
    "router.ring_rebuilds",
    # cluster autoscaler decisions
    "autoscale.evaluations",
    "autoscale.scale_ups",
    "autoscale.drains",
    "autoscale.holds",
    "autoscale.retired",
    # tiered plan cache ladder
    "cache.tier.local_hits",
    "cache.tier.remote_hits",
    "cache.tier.misses",
    "cache.tier.evictions",
    "cache.tier.publishes",
    # fault-injection harness (repro.faults): every injected event is
    # counted, so a chaos report can reconcile injected vs. observed
    "faults.injected.worker_death",
    "faults.injected.worker_stall",
    "faults.injected.divergence",
    "faults.injected.reconfig_stall",
    "faults.injected.deadline_storm",
    "faults.injected.device_outage",
    "faults.injected.fleet_outage",
    "faults.injected.forced_scale",
    # design-space explorer (repro.dse): sweep progress accounting
    "dse.points_evaluated",
    "dse.points_failed",
    # whole-program linter (repro.analysis.project): incremental-cache
    # effectiveness per run, so CI can watch warm-cache hit rates
    "lint.files_parsed",
    "lint.cache_hits",
    "lint.cache_misses",
    # heterogeneous placement (repro.placement consumers): micro-batches
    # dispatched per device class, GPU structure uploads (the PCIe
    # analogue of serve.config_loads) and cold analyses offloaded to the
    # CPU-assist tier
    "placement.fpga_batches",
    "placement.gpu_batches",
    "placement.cpu_assist_offloads",
    "gpu.transfers",
})
"""Sanctioned monotonic counter names."""

KNOWN_DISTRIBUTIONS = frozenset({
    "serve.latency_ms",
})
"""Sanctioned distribution names (per-event observations)."""

KNOWN_COUNTER_PREFIXES = frozenset({
    "solver_attempts.",
})
"""Sanctioned *dynamic counter families*: a counter name may be built at
runtime only when it starts with one of these prefixes (e.g. the
per-solver ``solver_attempts.<name>`` family the campaign report
aggregates).  Everything else must be a registered literal."""


def telemetry_registry() -> dict[str, frozenset[str]]:
    """The full name registry, keyed by instrument kind."""
    return {
        "spans": KNOWN_SPANS,
        "counters": KNOWN_COUNTERS,
        "counter_prefixes": KNOWN_COUNTER_PREFIXES,
        "distributions": KNOWN_DISTRIBUTIONS,
    }


_ACTIVE: ContextVar["Telemetry | None"] = ContextVar(
    "repro_telemetry", default=None
)


@dataclass
class SpanStats:
    """Aggregate statistics of one named span."""

    count: int = 0
    total_ms: float = 0.0
    max_ms: float = 0.0

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def record(self, elapsed_ms: float) -> None:
        self.count += 1
        self.total_ms += elapsed_ms
        self.max_ms = max(self.max_ms, elapsed_ms)

    def merged_with(self, other: "SpanStats") -> "SpanStats":
        return SpanStats(
            count=self.count + other.count,
            total_ms=self.total_ms + other.total_ms,
            max_ms=max(self.max_ms, other.max_ms),
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_ms": round(self.total_ms, 6),
            "mean_ms": round(self.mean_ms, 6),
            "max_ms": round(self.max_ms, 6),
        }


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile of ``values`` (``q`` in [0, 100]).

    Matches ``numpy.percentile``'s default method but works on plain
    lists, keeping telemetry serialization free of array round-trips.
    Returns 0.0 for an empty list — callers that must distinguish "no
    data" from "zero" (summaries, reports) check emptiness themselves
    and publish ``None``; see :meth:`Telemetry._distribution_summary`
    and :func:`repro.serve.stats.latency_summary_ms`.
    """
    if not values:
        return 0.0
    data = sorted(values)
    if len(data) == 1:
        return float(data[0])
    rank = (len(data) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    frac = rank - low
    return float(data[low] * (1.0 - frac) + data[high] * frac)


class Telemetry:
    """One collector of spans, counters and distributions.

    Instances are cheap; the campaign engine creates one per worker task
    and merges them.  Activation installs the instance on the current
    execution context so library code can record without plumbing.
    """

    def __init__(self) -> None:
        self.spans: dict[str, SpanStats] = {}
        self.counters: dict[str, int] = {}
        self.distributions: dict[str, list[float]] = {}

    # -- recording -----------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_span(name, (time.perf_counter() - start) * 1e3)

    def record_span(self, name: str, elapsed_ms: float) -> None:
        self.spans.setdefault(name, SpanStats()).record(elapsed_ms)

    def count(self, name: str, increment: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(increment)

    def observe(self, name: str, value: float) -> None:
        """Record one observation of distribution ``name``."""
        self.distributions.setdefault(name, []).append(float(value))

    # -- activation ----------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["Telemetry"]:
        """Install this collector on the current context."""
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    # -- aggregation ---------------------------------------------------

    def merge(self, other: "Telemetry | Mapping[str, Any]") -> None:
        """Fold another collector (or its ``as_dict`` form) into this one."""
        if isinstance(other, Telemetry):
            span_items = [(k, v) for k, v in other.spans.items()]
            counter_items = other.counters.items()
            for name, values in other.distributions.items():
                self.distributions.setdefault(name, []).extend(values)
        else:
            span_items = [
                (name, SpanStats(
                    count=int(stats["count"]),
                    total_ms=float(stats["total_ms"]),
                    max_ms=float(stats["max_ms"]),
                ))
                for name, stats in other.get("spans", {}).items()
            ]
            counter_items = other.get("counters", {}).items()
            for name, stats in other.get("distributions", {}).items():
                values = [float(v) for v in stats.get("values", [])]
                # Merging an empty summary must not materialize an empty
                # distribution entry (it would surface as a null-stats
                # row the source collector never actually recorded).
                if values:
                    self.distributions.setdefault(name, []).extend(values)
        for name, stats in span_items:
            mine = self.spans.setdefault(name, SpanStats())
            self.spans[name] = mine.merged_with(stats)
        for name, value in counter_items:
            self.count(name, value)

    def _distribution_summary(self, values: list[float]) -> dict[str, Any]:
        # An empty population's statistics are null, not 0.0: an idle
        # fleet's p50/p95/p99 must be distinguishable from genuinely
        # zero latency (the 0.0 sentinel misled autoscaler/capacity
        # consumers into reading "no data" as "instant").
        if not values:
            return {
                "count": 0,
                "mean": None,
                "p50": None,
                "p95": None,
                "p99": None,
                "max": None,
                "values": [],
            }
        return {
            "count": len(values),
            "mean": round(sum(values) / len(values), 9),
            "p50": round(percentile(values, 50.0), 9),
            "p95": round(percentile(values, 95.0), 9),
            "p99": round(percentile(values, 99.0), 9),
            "max": round(max(values), 9),
            # Raw observations ride along so dict-form merges stay
            # associative (summary percentiles alone are not mergeable).
            "values": [round(v, 9) for v in values],
        }

    def as_dict(self) -> dict[str, Any]:
        document: dict[str, Any] = {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "spans": {
                name: stats.as_dict()
                for name, stats in sorted(self.spans.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }
        if self.distributions:
            document["distributions"] = {
                name: self._distribution_summary(values)
                for name, values in sorted(self.distributions.items())
            }
        return document

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path


# -- module-level recording API (no-ops without an active collector) ----


def active() -> Telemetry | None:
    """The collector installed on the current context, if any."""
    return _ACTIVE.get()


@contextmanager
def span(name: str) -> Iterator[None]:
    """Time a block under ``name`` on the active collector (no-op if none)."""
    collector = _ACTIVE.get()
    if collector is None:
        yield
        return
    with collector.span(name):
        yield


def count(name: str, increment: int = 1) -> None:
    """Bump counter ``name`` on the active collector (no-op if none)."""
    collector = _ACTIVE.get()
    if collector is not None:
        collector.count(name, increment)


def observe(name: str, value: float) -> None:
    """Record one observation on the active collector (no-op if none)."""
    collector = _ACTIVE.get()
    if collector is not None:
        collector.observe(name, value)
