"""Evaluation metrics shared by the experiment harness.

Latency speedup and geometric means (Figure 6), achieved-throughput
fractions (Figure 9), performance efficiency and area saving (Figure 10).
Resource-underutilization math lives next to the hardware model in
:mod:`repro.fpga.utilization`.
"""

from repro.metrics.efficiency import area_saving_ratio, gflops_per_mm2
from repro.metrics.speedup import geometric_mean, latency_speedup
from repro.metrics.throughput import (
    achieved_throughput_fraction,
    spmv_achieved_fraction,
)

__all__ = [
    "achieved_throughput_fraction",
    "area_saving_ratio",
    "geometric_mean",
    "gflops_per_mm2",
    "latency_speedup",
    "spmv_achieved_fraction",
]
