"""Achieved-throughput metrics (Figure 9).

The paper reports "achieved compute throughput as a percentage of peak
throughput" for the SpMV unit.  Peak is what the *currently provisioned*
MACs could retire if never idle; achieved counts the MAC-cycles that did
useful work.  Idle provisioned cycles come from two places in the cycle
model: partially-filled row chunks (the Eq. 5 waste) and the pipeline
fill/drain charged once per sweep.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.fpga.device import FPGADevice
from repro.fpga.kernels import SweepReport


def achieved_throughput_fraction(
    report: SweepReport, sweeps: int, device: FPGADevice
) -> float:
    """Achieved / peak throughput of the SpMV unit over ``sweeps`` passes.

    ``report`` must be the aggregate of exactly ``sweeps`` sweeps (cycles
    include one pipeline fill per sweep).  During slot cycles the unit
    provisions ``provisioned/slots`` MACs on average; during fill cycles
    the same MACs are provisioned but idle, so peak MAC-cycles scale by
    ``cycles / slots``.
    """
    if sweeps < 0:
        raise ConfigurationError(f"sweeps must be >= 0, got {sweeps}")
    if report.cycles <= 0 or report.provisioned_mac_cycles <= 0:
        return 0.0
    slot_cycles = report.cycles - sweeps * device.pipeline_fill_cycles
    if slot_cycles <= 0:
        return 0.0
    peak_mac_cycles = report.provisioned_mac_cycles * (report.cycles / slot_cycles)
    return report.busy_mac_cycles / peak_mac_cycles


def spmv_achieved_fraction(report: SweepReport) -> float:
    """Fill-agnostic achieved fraction: busy / provisioned MAC-cycles.

    Equals :func:`achieved_throughput_fraction` with zero fill overhead;
    convenient when only a single sweep's report is available.
    """
    if report.provisioned_mac_cycles <= 0:
        return 0.0
    return report.busy_mac_cycles / report.provisioned_mac_cycles
