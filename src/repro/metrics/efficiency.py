"""Performance-efficiency metrics (Figure 10).

The paper defines performance efficiency as FLOPS per square millimeter
of FPGA fabric: a dynamically-sized SpMV region that achieves the same
FLOP rate in less fabric frees area for a co-running application.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.fpga.device import FPGADevice
from repro.fpga.kernels import SweepReport


def gflops_per_mm2(
    report: SweepReport, area_mm2: float, device: FPGADevice
) -> float:
    """Figure 10's y-axis: achieved GFLOPS per mm² of SpMV-region fabric."""
    if area_mm2 <= 0:
        raise ConfigurationError(f"area must be > 0, got {area_mm2}")
    if report.cycles <= 0:
        return 0.0
    seconds = device.cycles_to_seconds(report.cycles)
    return report.flops / seconds / area_mm2 / 1e9


def area_saving_ratio(baseline_area_mm2: float, acamar_area_mm2: float) -> float:
    """How much less fabric Acamar occupies than the static design.

    The paper summarizes this as "2× more area efficient"; a ratio of 2
    means the static design's SpMV region is twice the (time-weighted)
    Acamar region.
    """
    if acamar_area_mm2 <= 0:
        raise ConfigurationError(
            f"acamar area must be > 0, got {acamar_area_mm2}"
        )
    return baseline_area_mm2 / acamar_area_mm2
