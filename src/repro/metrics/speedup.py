"""Latency speedup and aggregation (Figure 6's metrics)."""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import ConfigurationError


def latency_speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """Speedup of the candidate over the baseline (>1 means faster)."""
    if candidate_seconds <= 0:
        raise ConfigurationError(
            f"candidate latency must be > 0, got {candidate_seconds}"
        )
    return baseline_seconds / candidate_seconds


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the paper's cross-dataset aggregate (GMEAN).

    Raises on empty input or non-positive entries — a speedup of zero or
    below indicates a broken measurement, not a summarizable value.
    """
    logs = []
    for value in values:
        if value <= 0:
            raise ConfigurationError(
                f"geometric mean requires positive values, got {value}"
            )
        logs.append(math.log(value))
    if not logs:
        raise ConfigurationError("geometric mean of an empty sequence")
    return math.exp(sum(logs) / len(logs))
