"""The per-source placement decision and the Table-II-style matrix.

A placement decision compares the amortized cost of one *full micro-
batch* on each backend:

- **FPGA**: ``max_batch`` warm final-attempt computes plus the ICAP
  solver-region load amortized over the expected residency run,
- **GPU**: ``max_batch`` warm iterative solves at roofline-plus-launch
  cost plus the PCIe structure upload amortized the same way.

Irregular matrices with short rows waste GPU lanes (Fig 8) and lean
FPGA; large regular structures amortize the warp-wide reduction and
lean GPU — exactly the division of labor the paper's underutilization
argument predicts.  Ties go to the FPGA (the reconfigurable fabric is
the deployment's home team, and a deterministic tie-break is part of
the byte-identity contract).

Decisions are pure functions of profile scalars, so every scheduler —
single-fleet, cluster, DSE sweep — reaches the identical placement for
a source regardless of run, machine or worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.placement.device import FPGA, GPU

SYMMETRIC = "symmetric"
DIAGONALLY_DOMINANT = "diagonally-dominant"
GENERAL = "general"

STRUCTURAL_CLASSES = (SYMMETRIC, DIAGONALLY_DOMINANT, GENERAL)
"""Structural classes of the scenario matrix, in Table-II order."""

RESIDENCY_AMORTIZATION_BATCHES = 32
"""Expected consecutive batches a source's configuration stays resident
on its slot (plan-signature affinity keeps recurring traffic on the
slot it configured).  The one-time residency-miss charges — the FPGA's
ICAP solver-region load, the GPU's PCIe structure upload — are
amortized over this run length in the placement comparison, so the
decision weighs steady-state service cost rather than assuming every
batch pays a worst-case miss."""

_SOLVER_TO_CLASS = {
    "cg": SYMMETRIC,
    "jacobi": DIAGONALLY_DOMINANT,
}


def structural_class_of(solver_sequence: tuple[str, ...]) -> str:
    """Structural class implied by the Matrix Structure unit's pick.

    The decision loop selects CG for symmetric matrices and Jacobi for
    strictly diagonally dominant ones; everything else falls to the
    general (BiCGStab-first) class.  The first solver of the sequence is
    the selection, later entries are Solver Modifier fallbacks.
    """
    if not solver_sequence:
        return GENERAL
    return _SOLVER_TO_CLASS.get(solver_sequence[0], GENERAL)


@dataclass(frozen=True)
class PlacementDecision:
    """Where one source's micro-batches run, and why."""

    source: str
    device_class: str
    structural_class: str
    fpga_batch_s: float
    gpu_batch_s: float
    forced: bool

    def as_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "device_class": self.device_class,
            "structural_class": self.structural_class,
            "fpga_batch_s": round(self.fpga_batch_s, 12),
            "gpu_batch_s": round(self.gpu_batch_s, 12),
            "forced": self.forced,
        }


def decide_placement(
    profile: Any,
    *,
    fpga_slots: int,
    gpu_tenants: int,
    max_batch: int,
) -> PlacementDecision:
    """Place one source given the fleet's tenancy mix.

    ``profile`` is a :class:`repro.serve.profile.SolveProfile` (typed as
    ``Any`` to keep the layering acyclic — serve builds on placement,
    not the reverse).  A fleet with only one dispatchable class forces
    that class regardless of cost.
    """
    structural = structural_class_of(tuple(profile.solver_sequence))
    batch = max(1, int(max_batch))
    fpga_batch = (
        profile.solver_swap_s / RESIDENCY_AMORTIZATION_BATCHES
        + batch * profile.warm_service_s
    )
    gpu_batch = (
        profile.gpu_transfer_s / RESIDENCY_AMORTIZATION_BATCHES
        + batch * profile.gpu_warm_service_s
    )
    if gpu_tenants < 1:
        chosen, forced = FPGA, True
    elif fpga_slots < 1:
        chosen, forced = GPU, True
    else:
        chosen, forced = (GPU, False) if gpu_batch < fpga_batch else (
            FPGA, False
        )
    return PlacementDecision(
        source=profile.label,
        device_class=chosen,
        structural_class=structural,
        fpga_batch_s=fpga_batch,
        gpu_batch_s=gpu_batch,
        forced=forced,
    )


def placement_counts(
    decisions: Iterable[PlacementDecision],
) -> dict[str, int]:
    """Sources per chosen device class (stable key order)."""
    counts = {FPGA: 0, GPU: 0}
    for decision in decisions:
        counts[decision.device_class] = (
            counts.get(decision.device_class, 0) + 1
        )
    return counts


def scenario_matrix(
    decisions: Iterable[PlacementDecision],
) -> dict[str, dict[str, int]]:
    """Structural class × backend winner, Table-II style.

    Rows are structural classes, columns the chosen device class; every
    row appears even when empty so the committed matrix shape is stable
    across traffic mixes.
    """
    matrix = {
        structural: {FPGA: 0, GPU: 0}
        for structural in STRUCTURAL_CLASSES
    }
    for decision in decisions:
        row = matrix[decision.structural_class]
        row[decision.device_class] = row.get(decision.device_class, 0) + 1
    return matrix


def placement_section(
    decisions: Mapping[str, PlacementDecision],
) -> dict[str, Any]:
    """Report fragment: per-source decisions plus the scenario matrix."""
    ordered = [decisions[key] for key in sorted(decisions)]
    return {
        "sources": {d.source: d.as_dict() for d in ordered},
        "by_class": placement_counts(ordered),
        "scenario_matrix": scenario_matrix(ordered),
    }
