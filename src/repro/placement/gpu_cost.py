"""GPU serving cost model: cuSPARSE roofline plus launch and transfer.

The Fig 8/9 analysis model (:mod:`repro.gpu.cusparse_model`) prices one
SpMV *pass*; a schedulable backend needs whole-service terms.  This
module composes them:

- **warm service** — ``iterations × (spmv_pass + kernel launch)``: the
  structure is resident in device memory, each solver iteration launches
  one SpMV kernel and rides its roofline time,
- **transfer** — the PCIe upload of the CSR structure plus the dense
  vectors, charged when a batch lands on a GPU tenant whose resident
  structure differs (the GPU analogue of the FPGA's ICAP configuration
  load — bandwidth-bound instead of configuration-port-bound),
- **cold service** — host analysis plus the full fallback-attempt chain
  re-priced at GPU iteration cost (attempt seconds scale from the FPGA
  profile's attempt/final compute ratio, which is iteration-count
  driven and device-independent).

All terms are pure functions of the row-length profile and the solve
profile scalars, so they are computed once per source at profiling time
and the schedulers compare precomputed floats — byte-deterministic by
construction.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.gpu.cusparse_model import (
    CSR_BYTES_PER_NNZ,
    CSR_BYTES_PER_ROW,
    CuSparseSpMVModel,
)
from repro.gpu.device import GTX_1650_SUPER, GPUDevice
from repro.placement.device import (
    GPU_KERNEL_LAUNCH_SECONDS,
    GPU_TENANT_FRACTION,
    PCIE_BANDWIDTH_BPS,
)

VECTOR_BYTES_PER_ROW = 8.0
"""Dense payload per row of the transfer: the fp32 ``b`` upload and the
``x`` download."""


@dataclass(frozen=True)
class GPUServiceEstimate:
    """Precomputed GPU serving terms for one problem source."""

    warm_service_s: float
    transfer_s: float
    spmv_seconds: float
    lane_underutilization: float
    memory_bound: bool


def transfer_seconds(n_rows: int, nnz: int) -> float:
    """PCIe seconds to make a CSR structure resident on the GPU."""
    traffic = (
        CSR_BYTES_PER_NNZ * nnz
        + (CSR_BYTES_PER_ROW + VECTOR_BYTES_PER_ROW) * n_rows
    )
    return traffic / PCIE_BANDWIDTH_BPS


def tenant_partition(
    device: GPUDevice = GTX_1650_SUPER,
    fraction: float = GPU_TENANT_FRACTION,
) -> GPUDevice:
    """The slice of ``device`` one MPS tenant owns.

    A fractional partition keeps its share of SMs/lanes and — because
    SpMV is bandwidth-bound — the same share of sustained DRAM
    bandwidth.  Clock, warp size and efficiency are per-SM properties
    and carry over unchanged.
    """
    return dataclasses.replace(
        device,
        name=f"{device.name}-tenant",
        cuda_cores=max(1, int(device.cuda_cores * fraction)),
        n_sms=max(1, int(device.n_sms * fraction)),
        memory_bandwidth_bps=device.memory_bandwidth_bps * fraction,
    )


def estimate_gpu_service(
    row_lengths: np.ndarray,
    iterations: int,
    device: GPUDevice = GTX_1650_SUPER,
) -> GPUServiceEstimate:
    """Price one warm solve of ``iterations`` on a GPU tenant.

    The sweep runs on :func:`tenant_partition` of ``device`` — one MPS
    quarter partition, matching the area the DSE pricing charges — with
    the adaptive kernel policy (vector for long rows, scalar for short
    ones) the way cuSPARSE's internal heuristics do, so irregular
    scientific matrices see the divergence penalty Figures 8/9 measure.
    """
    nnz_per_row = np.asarray(row_lengths, dtype=np.int64)
    model = CuSparseSpMVModel(tenant_partition(device), kernel="adaptive")
    report = model.sweep_from_row_lengths(nnz_per_row)
    per_iteration = report.seconds + GPU_KERNEL_LAUNCH_SECONDS
    n_rows = int(len(nnz_per_row))
    nnz = int(nnz_per_row.sum())
    return GPUServiceEstimate(
        warm_service_s=max(0, int(iterations)) * per_iteration,
        transfer_s=transfer_seconds(n_rows, nnz),
        spmv_seconds=report.seconds,
        lane_underutilization=report.lane_underutilization,
        memory_bound=report.memory_bound,
    )
