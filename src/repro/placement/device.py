"""Device classes a serving fleet can tenant, and their cost terms.

A :class:`DeviceClass` names one kind of schedulable tenancy and the
charge its scheduler pays when a batch lands on a slot whose resident
structure differs:

- ``fpga`` — a Reconfigurable Solver instance; residency misses pay an
  ICAP configuration load (:mod:`repro.fpga.cost_model`),
- ``gpu`` — a fixed-function cuSPARSE tenant (an MPS-style partition of
  the modeled GTX 1650 Super); residency misses pay a PCIe structure
  upload, never a reconfiguration,
- ``cpu-assist`` — not a dispatch target: a host-side helper tier that
  absorbs the cold-batch structure analysis so the accelerator slot
  only pays a round-trip handoff.

The constants below are the GPU/CPU cost-model terms the FPGA side has
no analogue for; the FPGA terms live with the FPGA cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownNameError

FPGA = "fpga"
GPU = "gpu"
CPU_ASSIST = "cpu-assist"

DEVICE_CLASS_NAMES = (FPGA, GPU, CPU_ASSIST)
"""Sanctioned device-class names, in scheduling-preference order."""

GPU_KERNEL_LAUNCH_SECONDS = 5e-6
"""Host-side launch latency charged per solver iteration on the GPU
tenant (one SpMV kernel launch per iteration; the vector-op kernels of
an iteration are fused into the same stream and hide behind it)."""

PCIE_BANDWIDTH_BPS = 12e9
"""Sustained host→device PCIe 3.0 x16 bandwidth for the CSR structure
upload a GPU residency miss pays (~12 GB/s of the 15.75 GB/s raw)."""

GPU_TENANT_AREA_MM2 = 71.0
"""Silicon area one GPU tenant occupies for the DSE pricing model: a
quarter-GPU MPS partition of the TU116 die (284 mm² / 4).  Comparable
currency to the FPGA's per-slot region area, so ``fabric_mm2_seconds``
prices mixed fleets on one axis."""

GPU_TENANT_FRACTION = 0.25
"""Fraction of the modeled GPU one tenant owns (an MPS quarter
partition: a quarter of the SMs and, for the bandwidth-bound SpMV, a
quarter of the sustained DRAM bandwidth).  Matches
:data:`GPU_TENANT_AREA_MM2`'s quarter-die pricing so the DSE cost and
the performance model describe the same partition."""

CPU_ASSIST_ROUNDTRIP_SECONDS = 20e-6
"""Host round-trip charged per cold batch when the CPU-assist tier
absorbs the structure analysis: the slot hands the matrix off, the host
runs the Eq. 1 sums concurrently with the transfer, and the slot pays
only this fixed handoff instead of the NNZ-proportional analysis."""


@dataclass(frozen=True)
class DeviceClass:
    """One schedulable tenancy kind and its residency-miss behavior."""

    name: str
    dispatchable: bool
    reconfigurable: bool
    description: str


FPGA_CLASS = DeviceClass(
    name=FPGA,
    dispatchable=True,
    reconfigurable=True,
    description=(
        "Reconfigurable Solver instance; residency miss pays an ICAP "
        "configuration load"
    ),
)

GPU_CLASS = DeviceClass(
    name=GPU,
    dispatchable=True,
    reconfigurable=False,
    description=(
        "cuSPARSE SpMV tenant; residency miss pays a PCIe structure "
        "upload, no reconfiguration"
    ),
)

CPU_ASSIST_CLASS = DeviceClass(
    name=CPU_ASSIST,
    dispatchable=False,
    reconfigurable=False,
    description=(
        "host analysis-offload tier; absorbs cold-batch structure "
        "analysis for a fixed round-trip charge"
    ),
)

_BY_NAME = {c.name: c for c in (FPGA_CLASS, GPU_CLASS, CPU_ASSIST_CLASS)}


def device_class(name: str) -> DeviceClass:
    """Look up a :class:`DeviceClass` by its sanctioned name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown device class {name!r}; expected one of "
            f"{DEVICE_CLASS_NAMES}"
        ) from None
