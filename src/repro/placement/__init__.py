"""Heterogeneous placement: FPGA slots, GPU tenants, CPU assist.

The paper's Solver Decision loop picks a *solver* per structural class;
this package widens that into a *placement* decision: a serving fleet
may mix reconfigurable FPGA slots with fixed-function GPU tenants (and
an optional CPU-assist tier for host-side analysis offload), and the
scheduler chooses a device class per micro-batch from two cost models —

- the FPGA side prices warm batches at the cost model's final-attempt
  compute plus an ICAP configuration load on residency misses
  (:mod:`repro.fpga.cost_model`),
- the GPU side prices warm batches from the cuSPARSE SpMV roofline
  (:mod:`repro.gpu.cusparse_model`) plus kernel-launch latency, with a
  PCIe structure upload instead of a reconfiguration charge.

Everything here is a pure function of the solve profile, so placement
decisions are computed once per source and are byte-deterministic
across runs, machines and ``--workers`` counts.
"""

from repro.placement.decision import (
    RESIDENCY_AMORTIZATION_BATCHES,
    STRUCTURAL_CLASSES,
    PlacementDecision,
    decide_placement,
    placement_counts,
    placement_section,
    scenario_matrix,
    structural_class_of,
)
from repro.placement.device import (
    CPU_ASSIST,
    CPU_ASSIST_CLASS,
    CPU_ASSIST_ROUNDTRIP_SECONDS,
    DEVICE_CLASS_NAMES,
    FPGA,
    FPGA_CLASS,
    GPU,
    GPU_CLASS,
    GPU_KERNEL_LAUNCH_SECONDS,
    GPU_TENANT_AREA_MM2,
    GPU_TENANT_FRACTION,
    PCIE_BANDWIDTH_BPS,
    DeviceClass,
    device_class,
)
from repro.placement.gpu_cost import (
    GPUServiceEstimate,
    estimate_gpu_service,
    tenant_partition,
)

__all__ = [
    "CPU_ASSIST",
    "CPU_ASSIST_CLASS",
    "CPU_ASSIST_ROUNDTRIP_SECONDS",
    "DEVICE_CLASS_NAMES",
    "DeviceClass",
    "FPGA",
    "FPGA_CLASS",
    "GPU",
    "GPU_CLASS",
    "GPU_KERNEL_LAUNCH_SECONDS",
    "GPU_TENANT_AREA_MM2",
    "GPU_TENANT_FRACTION",
    "GPUServiceEstimate",
    "PCIE_BANDWIDTH_BPS",
    "PlacementDecision",
    "RESIDENCY_AMORTIZATION_BATCHES",
    "STRUCTURAL_CLASSES",
    "decide_placement",
    "device_class",
    "estimate_gpu_service",
    "placement_counts",
    "placement_section",
    "scenario_matrix",
    "structural_class_of",
    "tenant_partition",
]
