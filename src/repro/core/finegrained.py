"""Fine-Grained Reconfiguration unit: Row Length Trace + unroll planning.

This unit reads only the CSR *offsets* (``indptr``) of the coefficient
matrix — no values — and decides, per set of rows, the unroll factor the
Dynamic SpMV kernel should be reconfigured to:

1. partition each 4096-row chunk into ``SamplingRate`` sets (Eq. 8/9),
2. average NNZ/row within each set — the optimal unroll factor (Eq. 7),
3. quantize to an integer in ``[1, max_unroll]``,
4. smooth the resulting ``tBuffer`` with the MSID chain to cut the
   reconfiguration rate (Algorithm 4).

The output is a :class:`ReconfigurationPlan`: an ordered list of row sets,
each with its final unroll factor and whether entering it triggers a
partial reconfiguration.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro import telemetry as tm
from repro.config import AcamarConfig
from repro.core.msid import MSIDChain, MSIDResult, reconfiguration_events
from repro.errors import ConfigurationError
from repro.sparse.csr import CSRMatrix
from repro.sparse.stats import partition_row_sets


@dataclass(frozen=True)
class RowSetPlan:
    """One row set of the reconfiguration plan.

    ``reconfigure`` is True when the Dynamic SpMV kernel must be partially
    reconfigured before processing this set (the unroll factor changed).
    The first set always loads a configuration but is counted separately as
    the initial load.
    """

    start_row: int
    stop_row: int
    unroll: int
    reconfigure: bool

    @property
    def n_rows(self) -> int:
        return self.stop_row - self.start_row


@dataclass(frozen=True)
class ReconfigurationPlan:
    """Complete per-set unroll schedule for one matrix."""

    sets: tuple[RowSetPlan, ...]
    msid: MSIDResult
    raw_unrolls: np.ndarray
    final_unrolls: np.ndarray

    @property
    def reconfiguration_count(self) -> int:
        """Partial-reconfiguration events (excludes the initial load)."""
        return sum(1 for s in self.sets if s.reconfigure)

    @cached_property
    def unroll_for_rows(self) -> np.ndarray:
        """Per-row unroll factor implied by the plan.

        Sets tile ``[0, n_rows)`` contiguously, so the expansion is one
        ``np.repeat``.  Computed once per plan and cached (plans are
        frozen); the returned array is read-only.
        """
        if not self.sets:
            return np.array([], dtype=np.int64)
        unrolls = np.array([s.unroll for s in self.sets], dtype=np.int64)
        counts = np.array([s.n_rows for s in self.sets], dtype=np.int64)
        out = np.repeat(unrolls, counts)
        out.flags.writeable = False
        return out


def quantize_unroll(
    average_nnz: float | np.ndarray, max_unroll: int, mode: str = "nearest"
) -> int | np.ndarray:
    """Quantize Eq. 7's average to an implementable unroll factor.

    Accepts a scalar (returns ``int``) or an array (returns an int64
    array), so the Resource Decision loop quantizes a whole ``tBuffer``
    in one vectorized call.  ``np.rint`` rounds half-to-even exactly like
    Python's ``round``, keeping the array path bit-identical to the old
    per-element loop.

    ``mode`` selects the rounding policy — a design choice the ablation
    benchmarks sweep:

    - ``"nearest"`` (default, used throughout the paper reproduction),
    - ``"ceil"`` — biases toward parallelism (latency) at the cost of
      idle MACs,
    - ``"floor"`` — biases toward utilization at the cost of extra
      initiation slots.

    The result is clamped to ``[1, max_unroll]`` — the Dynamic SpMV
    region cannot hold more MAC units than its partition provides.
    """
    values = np.asarray(average_nnz, dtype=np.float64)
    if mode == "nearest":
        quantized = np.rint(values)
    elif mode == "ceil":
        quantized = np.ceil(values)
    elif mode == "floor":
        quantized = np.floor(values)
    else:
        raise ConfigurationError(
            f"unknown quantization mode {mode!r}; "
            "expected 'nearest', 'ceil' or 'floor'"
        )
    quantized = np.clip(quantized, 1, max_unroll).astype(np.int64)
    if np.ndim(average_nnz) == 0:
        return int(quantized)
    return quantized


class RowLengthTrace:
    """The Row Length Trace sub-unit: per-set average NNZ/row.

    Operates on chunk-local row partitions so a matrix larger than the
    4096-row chunk size gets ``SamplingRate`` sets *per chunk*, matching
    the hardware's chunked streaming.
    """

    def __init__(self, sampling_rate: int, chunk_size: int) -> None:
        self.sampling_rate = int(sampling_rate)
        self.chunk_size = int(chunk_size)

    def set_bounds(self, n_rows: int) -> list[tuple[int, int]]:
        """Row-set boundaries across all chunks."""
        bounds: list[tuple[int, int]] = []
        chunk_start = 0
        while chunk_start < n_rows:
            chunk_stop = min(chunk_start + self.chunk_size, n_rows)
            for lo, hi in partition_row_sets(
                chunk_stop - chunk_start, self.sampling_rate
            ):
                bounds.append((chunk_start + lo, chunk_start + hi))
            chunk_start = chunk_stop
        return bounds

    def trace(self, matrix: CSRMatrix) -> tuple[np.ndarray, list[tuple[int, int]]]:
        """Average NNZ/row per set, plus the set boundaries.

        The per-set mean is read straight off the CSR offsets:
        ``(indptr[hi] - indptr[lo]) / (hi - lo)``.  Integer NNZ totals are
        exact in float64, so this is bit-identical to averaging the
        row-length array per set — and identical by construction to the
        single-pass :meth:`stream` formulation.
        """
        bounds = self.set_bounds(matrix.n_rows)
        if not bounds:
            return np.array([], dtype=np.float64), bounds
        edges = np.asarray(bounds, dtype=np.int64)
        los, his = edges[:, 0], edges[:, 1]
        averages = (matrix.indptr[his] - matrix.indptr[los]) / (his - los)
        return averages, bounds

    def stream(self, indptr: np.ndarray):
        """Hardware-faithful single-pass trace over a CSR offset stream.

        The Row Length Trace unit sees ``indptr`` one word per cycle and
        holds O(1) state per open set — no row-length array ever exists
        on chip.  This generator consumes the offsets incrementally and
        yields ``(start_row, stop_row, average_nnz)`` per completed set,
        bit-identical to :meth:`trace` (asserted in tests); it exists to
        show the unit really is implementable as described.
        """
        indptr = np.asarray(indptr, dtype=np.int64)
        n_rows = len(indptr) - 1
        bounds = self.set_bounds(n_rows)
        if not bounds:
            return
        set_index = 0
        set_start_offset = int(indptr[0])
        for row in range(n_rows):
            stop = bounds[set_index][1]
            if row + 1 == stop:
                lo, hi = bounds[set_index]
                nnz_in_set = int(indptr[stop]) - set_start_offset
                yield lo, hi, nnz_in_set / (hi - lo)
                set_start_offset = int(indptr[stop])
                set_index += 1


class FineGrainedReconfigurationUnit:
    """Combines the Row Length Trace and the MSID chain into a plan."""

    def __init__(self, config: AcamarConfig) -> None:
        self.config = config
        self.trace_unit = RowLengthTrace(config.sampling_rate, config.chunk_size)
        self.msid_chain = MSIDChain(config.r_opt, config.msid_tolerance)

    def plan(self, matrix: CSRMatrix) -> ReconfigurationPlan:
        """Build the unroll schedule for ``matrix``."""
        with tm.span("fine_grained.plan"):
            return self._plan(matrix)

    def _plan(self, matrix: CSRMatrix) -> ReconfigurationPlan:
        averages, bounds = self.trace_unit.trace(matrix)
        mode = self.config.unroll_rounding
        raw_unrolls = quantize_unroll(averages, self.config.max_unroll, mode)
        msid = self.msid_chain.optimize(raw_unrolls)
        tm.count("msid_events_removed", msid.events_removed)
        final_unrolls = quantize_unroll(
            np.asarray(msid.final), self.config.max_unroll, mode
        )
        # A set reconfigures when its unroll differs from its predecessor;
        # the first set is the initial load, never a reconfiguration.
        reconfigure = np.zeros(len(final_unrolls), dtype=bool)
        reconfigure[1:] = final_unrolls[1:] != final_unrolls[:-1]
        sets = [
            RowSetPlan(
                start_row=lo,
                stop_row=hi,
                unroll=int(unroll),
                reconfigure=bool(flag),
            )
            for (lo, hi), unroll, flag in zip(bounds, final_unrolls, reconfigure)
        ]
        return ReconfigurationPlan(
            sets=tuple(sets),
            msid=msid,
            raw_unrolls=raw_unrolls,
            final_unrolls=final_unrolls,
        )


def plan_reconfiguration_rate(plan: ReconfigurationPlan) -> float:
    """Reconfigurations per set boundary for a built plan (Figure 5)."""
    boundaries = len(plan.sets) - 1
    if boundaries <= 0:
        return 0.0
    return plan.reconfiguration_count / boundaries


def unsmoothed_event_count(plan: ReconfigurationPlan) -> int:
    """Events the raw (pre-MSID) trace would have caused."""
    return reconfiguration_events(plan.raw_unrolls)
