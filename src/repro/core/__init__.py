"""Acamar's core: the paper's primary contribution.

Maps Figure 3's blocks to modules:

- :mod:`~repro.core.matrix_structure` — Matrix Structure unit (Solver
  Decision loop's analysis stage),
- :mod:`~repro.core.finegrained` — Fine-Grained Reconfiguration unit with
  the Row Length Trace (Resource Decision loop),
- :mod:`~repro.core.msid` — Multi-Stage Iterative Decision chain
  (Algorithm 4),
- :mod:`~repro.core.initialize` — Initialize unit kernel composition,
- :mod:`~repro.core.solver_modifier` — Solver Modifier unit,
- :mod:`~repro.core.accelerator` — the :class:`~repro.core.accelerator.Acamar`
  orchestration tying both decision loops together.
"""

from repro.core.accelerator import (
    Acamar,
    AcamarResult,
    BatchContext,
    SolverAttempt,
)
from repro.core.chunking import (
    ChunkStream,
    MatrixChunk,
    chunk_count,
    chunked_matvec,
)
from repro.core.design_space import (
    DesignPoint,
    evaluate_point,
    explore,
    pareto_front,
    recommend,
)
from repro.core.finegrained import (
    FineGrainedReconfigurationUnit,
    ReconfigurationPlan,
    RowLengthTrace,
    RowSetPlan,
    plan_reconfiguration_rate,
    quantize_unroll,
    unsmoothed_event_count,
)
from repro.core.matrix_structure import MatrixStructureUnit, SolverSelection
from repro.core.msid import (
    MSIDChain,
    MSIDResult,
    msid_stage,
    reconfiguration_events,
    reconfiguration_rate,
    run_msid_chain,
)
from repro.core.solver_modifier import SolverModifierUnit

__all__ = [
    "Acamar",
    "AcamarResult",
    "BatchContext",
    "ChunkStream",
    "MatrixChunk",
    "chunk_count",
    "chunked_matvec",
    "DesignPoint",
    "evaluate_point",
    "explore",
    "pareto_front",
    "recommend",
    "FineGrainedReconfigurationUnit",
    "MSIDChain",
    "MSIDResult",
    "MatrixStructureUnit",
    "ReconfigurationPlan",
    "RowLengthTrace",
    "RowSetPlan",
    "SolverAttempt",
    "SolverModifierUnit",
    "SolverSelection",
    "msid_stage",
    "plan_reconfiguration_rate",
    "quantize_unroll",
    "reconfiguration_events",
    "reconfiguration_rate",
    "run_msid_chain",
    "unsmoothed_event_count",
]
