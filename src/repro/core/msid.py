"""Multi-Stage Iterative Decision (MSID) chain — paper Algorithm 4.

The Row Length Trace produces one optimal unroll factor per set of rows
(the ``tBuffer``).  Reconfiguring the Dynamic SpMV kernel at *every* set
boundary where the factor changes would be prohibitively slow, so the MSID
chain smooths the trace: at each stage, an entry whose normalized
difference from its predecessor is within ``tolerance`` adopts the
predecessor's value, extending runs of equal factors and thereby removing
reconfiguration events.  Each additional stage lets runs propagate one
entry further, which is why the reconfiguration rate is monotone
non-increasing in the stage count and saturates (paper Figure 5, flat after
``rOpt = 8``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


def msid_stage(buffer: np.ndarray, tolerance: float, stable_prefix: int) -> np.ndarray:
    """One stage of Algorithm 4 (lines 5–16).

    Entries below ``stable_prefix`` are copied verbatim (lines 5–7); every
    later entry ``k`` compares against its predecessor in the *previous*
    stage's buffer (line 10) and adopts the predecessor's value when the
    normalized difference ``|buf[k]/buf[k-1] - 1|`` is within ``tolerance``
    (lines 11–14).
    """
    if tolerance < 0:
        raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
    previous = np.asarray(buffer, dtype=np.float64)
    result = previous.copy()
    start = max(1, stable_prefix)
    for k in range(start, len(previous)):
        predecessor = previous[k - 1]
        if predecessor == 0:
            continue
        diff = abs(previous[k] / predecessor - 1.0)
        if diff <= tolerance:
            result[k] = predecessor
    return result


def run_msid_chain(
    buffer: np.ndarray, stages: int, tolerance: float
) -> list[np.ndarray]:
    """Run the full MSID chain and return every stage's tBuffer.

    ``stages == 0`` disables the optimization (the result is the input
    trace).  The returned list has ``stages + 1`` entries: index 0 is the
    raw trace, index ``t`` the buffer after stage ``t``.
    """
    if stages < 0:
        raise ConfigurationError(f"stages must be >= 0, got {stages}")
    history = [np.asarray(buffer, dtype=np.float64).copy()]
    for t in range(1, stages + 1):
        history.append(msid_stage(history[-1], tolerance, stable_prefix=t))
    return history


def reconfiguration_events(buffer: np.ndarray) -> int:
    """Number of SpMV-kernel reconfigurations a tBuffer demands.

    The first set loads the initial configuration; every subsequent value
    change is one partial-reconfiguration event.
    """
    buffer = np.asarray(buffer)
    if len(buffer) < 2:
        return 0
    return int(np.count_nonzero(buffer[1:] != buffer[:-1]))


def reconfiguration_rate(buffer: np.ndarray) -> float:
    """Reconfiguration events per set boundary (0..1), Figure 5's y-axis."""
    buffer = np.asarray(buffer)
    boundaries = len(buffer) - 1
    if boundaries <= 0:
        return 0.0
    return reconfiguration_events(buffer) / boundaries


@dataclass(frozen=True)
class MSIDResult:
    """Outcome of an MSID-chain run."""

    initial: np.ndarray
    final: np.ndarray
    stages: int
    tolerance: float
    initial_events: int
    final_events: int

    @property
    def events_removed(self) -> int:
        """Reconfigurations eliminated by the chain."""
        return self.initial_events - self.final_events


class MSIDChain:
    """The MSID Chain unit: wraps Algorithm 4 with event accounting."""

    def __init__(self, stages: int, tolerance: float) -> None:
        if stages < 0:
            raise ConfigurationError(f"stages must be >= 0, got {stages}")
        if tolerance < 0:
            raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
        self.stages = int(stages)
        self.tolerance = float(tolerance)

    def optimize(self, buffer: np.ndarray) -> MSIDResult:
        """Smooth ``buffer`` and report the reconfiguration-event change."""
        history = run_msid_chain(buffer, self.stages, self.tolerance)
        initial, final = history[0], history[-1]
        return MSIDResult(
            initial=initial,
            final=final,
            stages=self.stages,
            tolerance=self.tolerance,
            initial_events=reconfiguration_events(initial),
            final_events=reconfiguration_events(final),
        )
