"""Design-space exploration of the Resource Decision loop.

Section VII of the paper sweeps ``SamplingRate`` and ``rOpt`` one at a
time; this module runs the full cross product (plus the MSID tolerance)
for a given matrix, evaluates each configuration on the three competing
objectives —

- **SpMV sweep cycles** (compute latency),
- **Eq. 5 resource underutilization** (fabric waste),
- **per-sweep reconfiguration time** (ICAP overhead),

— and extracts the Pareto-efficient set.  It is the tool a deployment
engineer would use to pick per-workload parameters instead of the
paper's one-size defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.config import AcamarConfig
from repro.core.finegrained import FineGrainedReconfigurationUnit
from repro.fpga.cost_model import PerformanceModel, plan_event_unrolls
from repro.fpga.device import ALVEO_U55C, FPGADevice
from repro.fpga.utilization import mean_underutilization
from repro.sparse.csr import CSRMatrix

DEFAULT_SAMPLING_RATES = (4, 8, 16, 32, 64, 128)
DEFAULT_ROPTS = (0, 2, 4, 8)
DEFAULT_TOLERANCES = (0.05, 0.15, 0.3, 0.6)


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated Resource-Decision-loop configuration."""

    sampling_rate: int
    r_opt: int
    msid_tolerance: float
    spmv_cycles: float
    underutilization: float
    reconfig_events: int
    reconfig_seconds: float

    @property
    def objectives(self) -> tuple[float, float, float]:
        """Minimization tuple used for Pareto comparison."""
        return (self.spmv_cycles, self.underutilization, self.reconfig_seconds)

    def dominates(self, other: "DesignPoint") -> bool:
        """Weakly better in every objective, strictly better in one."""
        mine, theirs = self.objectives, other.objectives
        return all(a <= b for a, b in zip(mine, theirs)) and any(
            a < b for a, b in zip(mine, theirs)
        )


def evaluate_point(
    matrix: CSRMatrix,
    sampling_rate: int,
    r_opt: int,
    msid_tolerance: float,
    device: FPGADevice = ALVEO_U55C,
) -> DesignPoint:
    """Cost one configuration of the Resource Decision loop."""
    config = AcamarConfig(
        sampling_rate=sampling_rate,
        r_opt=r_opt,
        msid_tolerance=msid_tolerance,
    )
    plan = FineGrainedReconfigurationUnit(config).plan(matrix)
    model = PerformanceModel(device)
    lengths = matrix.row_lengths()
    sweep = model.spmv_unit_sweep(lengths, plan.unroll_for_rows)
    events = plan_event_unrolls(plan)
    return DesignPoint(
        sampling_rate=sampling_rate,
        r_opt=r_opt,
        msid_tolerance=msid_tolerance,
        spmv_cycles=sweep.cycles,
        underutilization=mean_underutilization(lengths, plan.unroll_for_rows),
        reconfig_events=len(events),
        reconfig_seconds=model.reconfig.plan_overhead_seconds(events),
    )


def explore(
    matrix: CSRMatrix,
    sampling_rates: Sequence[int] = DEFAULT_SAMPLING_RATES,
    ropts: Sequence[int] = DEFAULT_ROPTS,
    tolerances: Sequence[float] = DEFAULT_TOLERANCES,
    device: FPGADevice = ALVEO_U55C,
) -> list[DesignPoint]:
    """Evaluate the full configuration grid for one matrix."""
    points = []
    for sampling_rate in sampling_rates:
        for r_opt in ropts:
            for tolerance in tolerances:
                points.append(
                    evaluate_point(matrix, sampling_rate, r_opt, tolerance, device)
                )
    return points


def pareto_front(points: Iterable[DesignPoint]) -> list[DesignPoint]:
    """Non-dominated subset, ordered by SpMV cycles."""
    points = list(points)
    front = [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    # Deduplicate identical objective tuples (grid points often tie).
    seen: set[tuple[float, float, float]] = set()
    unique = []
    for p in sorted(front, key=lambda p: p.objectives):
        if p.objectives not in seen:
            seen.add(p.objectives)
            unique.append(p)
    return unique


def recommend(
    matrix: CSRMatrix,
    reconfig_budget_seconds: float,
    device: FPGADevice = ALVEO_U55C,
    **grid,
) -> DesignPoint:
    """Pick the lowest-latency Pareto point within a reconfiguration budget.

    Falls back to the globally cheapest-to-reconfigure point when nothing
    fits the budget.
    """
    front = pareto_front(explore(matrix, device=device, **grid))
    feasible = [p for p in front if p.reconfig_seconds <= reconfig_budget_seconds]
    if feasible:
        return min(feasible, key=lambda p: p.spmv_cycles)
    return min(front, key=lambda p: p.reconfig_seconds)
