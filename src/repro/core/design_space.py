"""Design-space exploration of the Resource Decision loop.

Section VII of the paper sweeps ``SamplingRate`` and ``rOpt`` one at a
time; this module runs the full cross product (plus the MSID tolerance)
for a given matrix, evaluates each configuration on the three competing
objectives —

- **SpMV sweep cycles** (compute latency),
- **Eq. 5 resource underutilization** (fabric waste),
- **per-sweep reconfiguration time** (ICAP overhead),

— and extracts the Pareto-efficient set.  It is the tool a deployment
engineer would use to pick per-workload parameters instead of the
paper's one-size defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.config import AcamarConfig
from repro.core.finegrained import FineGrainedReconfigurationUnit
from repro.fpga.cost_model import PerformanceModel, plan_event_unrolls
from repro.fpga.device import ALVEO_U55C, FPGADevice
from repro.fpga.utilization import mean_underutilization
from repro.sparse.csr import CSRMatrix

DEFAULT_SAMPLING_RATES = (4, 8, 16, 32, 64, 128)
DEFAULT_ROPTS = (0, 2, 4, 8)
DEFAULT_TOLERANCES = (0.05, 0.15, 0.3, 0.6)


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated Resource-Decision-loop configuration."""

    sampling_rate: int
    r_opt: int
    msid_tolerance: float
    spmv_cycles: float
    underutilization: float
    reconfig_events: int
    reconfig_seconds: float

    @property
    def objectives(self) -> tuple[float, float, float]:
        """Minimization tuple used for Pareto comparison."""
        return (self.spmv_cycles, self.underutilization, self.reconfig_seconds)

    def dominates(self, other: "DesignPoint") -> bool:
        """Weakly better in every objective, strictly better in one."""
        return dominates(self.objectives, other.objectives)


def dominates(mine: Sequence[float], theirs: Sequence[float]) -> bool:
    """Minimization dominance on equal-length objective tuples.

    ``mine`` dominates ``theirs`` when it is weakly better (<=) in every
    objective and strictly better (<) in at least one.  This is the one
    dominance predicate in the repo — the Resource-Decision-loop sweep
    below and the fleet-level explorer (:mod:`repro.dse`) both route
    their Pareto extraction through it.
    """
    return all(a <= b for a, b in zip(mine, theirs)) and any(
        a < b for a, b in zip(mine, theirs)
    )


def evaluate_point(
    matrix: CSRMatrix,
    sampling_rate: int,
    r_opt: int,
    msid_tolerance: float,
    device: FPGADevice = ALVEO_U55C,
) -> DesignPoint:
    """Cost one configuration of the Resource Decision loop."""
    config = AcamarConfig(
        sampling_rate=sampling_rate,
        r_opt=r_opt,
        msid_tolerance=msid_tolerance,
    )
    plan = FineGrainedReconfigurationUnit(config).plan(matrix)
    model = PerformanceModel(device)
    lengths = matrix.row_lengths()
    sweep = model.spmv_unit_sweep(lengths, plan.unroll_for_rows)
    events = plan_event_unrolls(plan)
    return DesignPoint(
        sampling_rate=sampling_rate,
        r_opt=r_opt,
        msid_tolerance=msid_tolerance,
        spmv_cycles=sweep.cycles,
        underutilization=mean_underutilization(lengths, plan.unroll_for_rows),
        reconfig_events=len(events),
        reconfig_seconds=model.reconfig.plan_overhead_seconds(events),
    )


def explore(
    matrix: CSRMatrix,
    sampling_rates: Sequence[int] = DEFAULT_SAMPLING_RATES,
    ropts: Sequence[int] = DEFAULT_ROPTS,
    tolerances: Sequence[float] = DEFAULT_TOLERANCES,
    device: FPGADevice = ALVEO_U55C,
) -> list[DesignPoint]:
    """Evaluate the full configuration grid for one matrix."""
    points = []
    for sampling_rate in sampling_rates:
        for r_opt in ropts:
            for tolerance in tolerances:
                points.append(
                    evaluate_point(matrix, sampling_rate, r_opt, tolerance, device)
                )
    return points


def pareto_front(
    points: Iterable[Any],
    key: Callable[[Any], Sequence[float]] | None = None,
) -> list[Any]:
    """Non-dominated subset, ordered by objective tuple.

    ``key`` maps a point to its minimization tuple; by default the
    point's ``objectives`` attribute is used (the :class:`DesignPoint`
    convention).  The tuples may have any arity as long as it is uniform
    across ``points``.  Identical objective tuples are deduplicated —
    grid sweeps often tie — keeping the first point in input order.
    """
    points = list(points)
    if key is None:
        objectives = [tuple(p.objectives) for p in points]
    else:
        objectives = [tuple(key(p)) for p in points]
    front = [
        (mine, index)
        for index, mine in enumerate(objectives)
        if not any(
            dominates(other, mine)
            for j, other in enumerate(objectives)
            if j != index
        )
    ]
    seen: set[tuple[float, ...]] = set()
    unique = []
    for mine, index in sorted(front, key=lambda pair: (pair[0], pair[1])):
        if mine not in seen:
            seen.add(mine)
            unique.append(points[index])
    return unique


def recommend(
    matrix: CSRMatrix,
    reconfig_budget_seconds: float,
    device: FPGADevice = ALVEO_U55C,
    **grid,
) -> DesignPoint:
    """Pick the lowest-latency Pareto point within a reconfiguration budget.

    Falls back to the globally cheapest-to-reconfigure point when nothing
    fits the budget.
    """
    front = pareto_front(explore(matrix, device=device, **grid))
    feasible = [p for p in front if p.reconfig_seconds <= reconfig_budget_seconds]
    if feasible:
        return min(feasible, key=lambda p: p.spmv_cycles)
    return min(front, key=lambda p: p.reconfig_seconds)
