"""Solver Modifier unit: runtime solver switching on divergence.

The paper's hardware keeps a temporary register with one bit per solver;
when the Reconfigurable Solver diverges, the unit selects "the solver whose
corresponding bit is low" — i.e. the next configuration that has not yet
been attempted — and triggers the Initialize unit to reset the solve.  This
class reproduces that mechanism: a tried-set plus a fixed preference order
over the untried solvers.
"""

from __future__ import annotations

from repro.config import DEFAULT_SOLVER_FALLBACK_ORDER


class SolverModifierUnit:
    """Tracks attempted solvers and yields the next fallback."""

    def __init__(
        self, fallback_order: tuple[str, ...] = DEFAULT_SOLVER_FALLBACK_ORDER
    ) -> None:
        self.fallback_order = tuple(fallback_order)
        self._tried: set[str] = set()

    @property
    def tried(self) -> frozenset[str]:
        """Solvers whose register bit is already high."""
        return frozenset(self._tried)

    def mark_tried(self, solver: str) -> None:
        """Raise the register bit for ``solver``."""
        self._tried.add(solver)

    @property
    def remaining(self) -> tuple[str, ...]:
        """Untried solvers, in preference order (low register bits)."""
        return tuple(
            s for s in self.fallback_order if s not in self._tried
        )

    @property
    def exhausted(self) -> bool:
        """Every register bit is high — no fallback configuration left."""
        return not self.remaining

    def next_solver(self) -> str | None:
        """The next untried solver in preference order, or ``None``.

        ``None`` means every configuration has been attempted — the
        accelerator reports failure for this input (does not occur for the
        paper's Table II datasets, whose Acamar column is all ✓).
        """
        for solver in self.fallback_order:
            if solver not in self._tried:
                return solver
        return None

    def reset(self) -> None:
        """Clear the register (new input matrix)."""
        self._tried.clear()
