"""The Acamar accelerator: both decision loops wired together.

:class:`Acamar` reproduces Figure 3's control flow in software:

1. the **Matrix Structure unit** inspects the CSR input and selects the
   initial Reconfigurable Solver configuration (Solver Decision loop),
2. the **Fine-Grained Reconfiguration unit** traces row lengths, runs the
   MSID chain and emits the Dynamic SpMV kernel's unroll schedule
   (Resource Decision loop),
3. the **Reconfigurable Solver** runs until convergence or divergence,
4. on divergence the **Solver Modifier unit** picks the next untried
   solver and the **Initialize unit** resets the iterate; the loop repeats
   until convergence or until every configuration has been attempted.

The numerical outcome plus the full decision trace (attempts, plan,
selection) is returned as an :class:`AcamarResult`, which the FPGA cost
model consumes to produce latency / utilization numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import telemetry as tm
from repro.config import AcamarConfig
from repro.errors import ConfigurationError
from repro.core.finegrained import FineGrainedReconfigurationUnit, ReconfigurationPlan
from repro.core.matrix_structure import MatrixStructureUnit, SolverSelection
from repro.core.solver_modifier import SolverModifierUnit
from repro.solvers import make_solver
from repro.solvers.base import OpCounter, SolveResult
from repro.solvers.monitor import scaled_setup_iterations
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class SolverAttempt:
    """One Reconfigurable Solver run, with what selected it."""

    solver: str
    selected_by: str  # "matrix_structure" | "solver_modifier"
    result: SolveResult


@dataclass
class AcamarResult:
    """Full outcome of an Acamar solve.

    Attributes
    ----------
    selection:
        The Matrix Structure unit's initial decision.
    plan:
        The Dynamic SpMV kernel's unroll schedule.
    attempts:
        Every solver run in order; the last one is the final result.
    """

    selection: SolverSelection
    plan: ReconfigurationPlan
    attempts: tuple[SolverAttempt, ...]

    @property
    def final(self) -> SolveResult:
        return self.attempts[-1].result

    @property
    def converged(self) -> bool:
        return self.final.converged

    @property
    def x(self) -> np.ndarray:
        return self.final.x

    @property
    def solver_sequence(self) -> tuple[str, ...]:
        """Solvers in attempt order (length > 1 means the Modifier fired)."""
        return tuple(a.solver for a in self.attempts)

    @property
    def solver_reconfigurations(self) -> int:
        """Full solver-level fabric reconfigurations (attempts - 1)."""
        return max(0, len(self.attempts) - 1)

    @property
    def spmv_reconfigurations(self) -> int:
        """Fine-grained Dynamic-SpMV reconfiguration events per sweep."""
        return self.plan.reconfiguration_count

    def total_ops(self) -> OpCounter:
        """Kernel tally across all attempts (for the cost models)."""
        merged = OpCounter()
        for attempt in self.attempts:
            merged = merged.merged_with(attempt.result.ops)
        return merged


@dataclass(frozen=True)
class BatchContext:
    """Pre-computed host work shared across a fingerprint-sharing batch.

    The Matrix Structure verdict and the Fine-Grained unit's unroll plan
    are pure functions of the operator, so a batch of solves against the
    same operator can run them once and amortize the host-analysis cost
    across every member.  The batched campaign driver additionally runs
    the *first* solver attempt for all members in lockstep
    (:func:`repro.solvers.batched.solve_batched`) and injects each
    member's bit-identical result here, so :meth:`Acamar.solve` only
    re-enters the numerics when the Solver Modifier has to fall back.

    Correctness contract: the context must have been computed for *this
    operator* (same values, not merely the same pattern — the symmetry
    check reads values), and ``first_attempt`` must be bit-identical to
    what the selected solver would produce.  The decision trace and
    telemetry counters then come out exactly as an unbatched solve.
    """

    selection: SolverSelection
    plan: ReconfigurationPlan
    first_attempt: SolveResult | None = None


FaultHook = Callable[[str, int, SolveResult], "SolveResult | None"]
"""Fault-injection seam of the attempt loop.

Called after every Reconfigurable Solver run with ``(solver_name,
attempt_index, result)``; returning a :class:`SolveResult` replaces the
attempt's outcome (e.g. a forced-divergence copy that drives the Solver
Modifier through its fallback transitions), returning ``None`` leaves it
untouched.  The hook sees real results and may only *substitute* them,
so the decision trace stays structurally well formed; the chaos harness
(:mod:`repro.faults`) is the intended caller.
"""


class Acamar:
    """Dynamically reconfigurable accelerator front-end.

    Parameters
    ----------
    config:
        Accelerator parameters; defaults to the paper's Section V values.
    fault_hook:
        Optional :data:`FaultHook` for deterministic fault injection
        into the attempt loop; ``None`` (production) never perturbs.

    Examples
    --------
    >>> from repro import Acamar, AcamarConfig
    >>> from repro.datasets import poisson_2d
    >>> problem = poisson_2d(32)
    >>> result = Acamar().solve(problem.matrix, problem.b)
    >>> result.converged
    True
    """

    def __init__(
        self,
        config: AcamarConfig | None = None,
        structure_policy: str = "symmetry_first",
        fault_hook: FaultHook | None = None,
    ) -> None:
        self.config = config if config is not None else AcamarConfig()
        self.matrix_structure = MatrixStructureUnit(policy=structure_policy)
        self.fine_grained = FineGrainedReconfigurationUnit(self.config)
        self.fault_hook = fault_hook

    def _make_solver(self, name: str, n_rows: int):
        extra = dict(self.config.solver_options.get(name, {}))
        return make_solver(
            name,
            tolerance=self.config.tolerance,
            max_iterations=self.config.max_iterations,
            setup_iterations=scaled_setup_iterations(
                n_rows, self.config.setup_iterations
            ),
            dtype=self.config.dtype,
            **extra,
        )

    def plan(self, matrix: CSRMatrix) -> ReconfigurationPlan:
        """Run only the Resource Decision loop (no numerics)."""
        return self.fine_grained.plan(matrix)

    def solve(
        self,
        matrix: CSRMatrix,
        b: np.ndarray,
        x0: np.ndarray | None = None,
        *,
        batch_context: BatchContext | None = None,
    ) -> AcamarResult:
        """Solve ``Ax = b`` with robust convergence.

        Runs the structure-selected solver first and falls back through the
        Solver Modifier's preference order until one converges (Table II's
        Acamar column) or all configurations are exhausted.

        ``batch_context`` supplies pre-computed host analysis (and
        optionally the first attempt's result) for fingerprint-batched
        execution; see :class:`BatchContext` for the contract.
        """
        if batch_context is not None:
            selection = batch_context.selection
            plan = batch_context.plan
            first_attempt = batch_context.first_attempt
            if (
                first_attempt is not None
                and first_attempt.solver != selection.solver
            ):
                raise ConfigurationError(
                    f"batch context carries a first attempt from "
                    f"{first_attempt.solver!r} but the selection chose "
                    f"{selection.solver!r}"
                )
        else:
            with tm.span("matrix_structure.select"):
                selection = self.matrix_structure.select_solver(matrix)
            plan = self.fine_grained.plan(matrix)
            first_attempt = None
        modifier = SolverModifierUnit(self.config.solver_fallback_order)
        attempts: list[SolverAttempt] = []
        solver_name: str | None = selection.solver
        selected_by = "matrix_structure"
        # Every configuration runs at the same solver precision, so cast
        # the operator once up front instead of once per fallback attempt
        # (each solver's ``_prepare`` then sees a matching dtype and the
        # cast matrix's structure cache is shared across attempts).
        solver_dtype = np.dtype(self.config.dtype)
        if matrix.data.dtype != solver_dtype:
            compute_matrix = matrix.astype(solver_dtype)
        else:
            compute_matrix = matrix
        while solver_name is not None:
            if not attempts and first_attempt is not None:
                # The lockstep batch already ran this attempt; reuse its
                # bit-identical result instead of re-entering the solver.
                result = first_attempt
            else:
                with tm.span("reconfigurable_solver.attempt"):
                    solver = self._make_solver(solver_name, matrix.shape[0])
                    result = solver.solve(compute_matrix, b, x0)
            if self.fault_hook is not None:
                injected = self.fault_hook(solver_name, len(attempts), result)
                if injected is not None:
                    result = injected
            tm.count(f"solver_attempts.{solver_name}")
            attempts.append(
                SolverAttempt(
                    solver=solver_name, selected_by=selected_by, result=result
                )
            )
            modifier.mark_tried(solver_name)
            if result.converged:
                break
            solver_name = modifier.next_solver()
            selected_by = "solver_modifier"
        tm.count("solver_swaps", max(0, len(attempts) - 1))
        tm.count("spmv_reconfig_events", plan.reconfiguration_count)
        return AcamarResult(
            selection=selection, plan=plan, attempts=tuple(attempts)
        )
