"""Initialize unit: the pre-loop operations of each solver.

Algorithms 1–3 all perform work before their iteration loop — Jacobi builds
``T = D^-1 (L+U)`` and ``c = D^-1 b``; CG and BiCG-STAB compute the initial
residual ``r_0 = b - A x_0``, which contains one SpMV.  The paper maps this
to a *static* unit: because it runs exactly once, Acamar does not pay a
reconfiguration to optimize it and instead executes an unoptimized SpMV
variant at a fixed default unroll factor.

The numerical work happens inside the solver implementations; this module
describes the *kernel composition* of the Initialize unit so the FPGA cost
model can price it at the static (non-reconfigured) unroll factor.
"""

from __future__ import annotations

INITIALIZE_SPMV_COUNT: dict[str, int] = {
    "jacobi": 0,  # T and c are diagonal scalings, no SpMV
    "cg": 1,  # r_0 = b - A x_0
    "bicgstab": 1,  # r_0 = b - A x_0
    "gauss_seidel": 0,
    "sor": 0,
    "gmres": 1,  # initial residual of the first restart cycle
    "bicg": 1,
    "conjugate_residual": 2,  # r_0 and the first A r
    "pcg": 1,
    "srj": 0,
    "chebyshev": 1,
    "multicolor_gs": 0,
}
"""SpMV passes the Initialize unit executes, per solver."""

INITIALIZE_DENSE_PASSES: dict[str, int] = {
    "jacobi": 3,  # 1/D, row-scale of (L+U), c = D^-1 b
    "cg": 2,  # vector subtract + copy p_0 = r_0
    "bicgstab": 3,  # subtract + r0* copy + p_0 copy
    "gauss_seidel": 1,
    "sor": 1,
    "gmres": 2,
    "bicg": 3,
    "conjugate_residual": 3,
    "pcg": 4,  # includes 1/D and the first preconditioner apply
    "srj": 2,
    "chebyshev": 3,  # interval estimate + r_0 + first direction
    "multicolor_gs": 2,  # coloring pass + 1/D
}
"""Dense vector passes (length-n streams) in the Initialize unit."""

STATIC_INITIALIZE_UNROLL = 8
"""Default unroll factor of the Initialize unit's unoptimized SpMV."""


def initialize_spmv_count(solver: str) -> int:
    """SpMV passes run by the Initialize unit for ``solver``."""
    return INITIALIZE_SPMV_COUNT.get(solver, 1)


def initialize_dense_passes(solver: str) -> int:
    """Dense passes run by the Initialize unit for ``solver``."""
    return INITIALIZE_DENSE_PASSES.get(solver, 2)
