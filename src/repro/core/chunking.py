"""Chunked matrix processing (paper Section V-B: 4096×4096 chunks).

The hardware cannot hold an arbitrarily large matrix: Acamar streams the
coefficient matrix through the fabric in fixed-size row chunks (the paper
fixes the problem size per pass to 4096×4096).  The Fine-Grained
Reconfiguration unit already partitions row sets per chunk
(:class:`~repro.core.finegrained.RowLengthTrace`); this module provides
the streaming view itself — iterating a large CSR matrix chunk by chunk —
plus a chunked SpMV that demonstrates the numerical equivalence the
hardware relies on (each output row depends only on its own chunk's rows,
so row-chunked accumulation is exact).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.sparse.csr import CSRMatrix


def chunk_count(n_rows: int, chunk_size: int) -> int:
    """Number of row chunks a matrix streams through."""
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    return max(1, math.ceil(n_rows / chunk_size)) if n_rows else 0


@dataclass(frozen=True)
class MatrixChunk:
    """One streamed slice of the coefficient matrix."""

    index: int
    start_row: int
    stop_row: int
    matrix: CSRMatrix

    @property
    def n_rows(self) -> int:
        return self.stop_row - self.start_row


class ChunkStream:
    """Iterates a CSR matrix in fixed-size row chunks.

    The slices are real sub-matrices (``chunk.matrix`` has ``chunk_size``
    rows and the full column width), matching what the DMA engine would
    deliver to the fabric per pass.
    """

    def __init__(self, matrix: CSRMatrix, chunk_size: int) -> None:
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.matrix = matrix
        self.chunk_size = int(chunk_size)

    def __len__(self) -> int:
        return chunk_count(self.matrix.n_rows, self.chunk_size)

    def __iter__(self) -> Iterator[MatrixChunk]:
        for index in range(len(self)):
            start = index * self.chunk_size
            stop = min(start + self.chunk_size, self.matrix.n_rows)
            yield MatrixChunk(
                index=index,
                start_row=start,
                stop_row=stop,
                matrix=self.matrix.row_slice(start, stop),
            )


def chunked_matvec(
    matrix: CSRMatrix, x: np.ndarray, chunk_size: int
) -> np.ndarray:
    """SpMV computed chunk by chunk — bit-identical to the monolithic one.

    Each chunk's rows produce a disjoint slice of the output, so the
    result is assembled without any cross-chunk reduction; this is the
    property that lets the hardware process one chunk at a time.
    """
    out = np.empty(matrix.n_rows, dtype=np.result_type(matrix.data, x))
    for chunk in ChunkStream(matrix, chunk_size):
        out[chunk.start_row : chunk.stop_row] = chunk.matrix.matvec(x)
    return out
