"""Matrix Structure unit: solver selection from cheap structural checks.

The unit examines only two properties of the CSR input — strict diagonal
dominance (trivial per-row arithmetic, Eq. 1) and symmetry (CSR→CSC
conversion and array comparison, Eq. 2) — because verifying positive
definiteness (eigenvalues) is too expensive for hardware.  The decision it
signals to the host:

- symmetric            → configure the Reconfigurable Solver as **CG**
  (symmetry alone is used as the CG proxy; the paper accepts occasional
  mispredictions and lets the Solver Modifier recover),
- else strictly diagonally dominant → **Jacobi**,
- else (non-symmetric, not SDD)     → **BiCG-STAB**.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sparse.csr import CSRMatrix
from repro.sparse.properties import MatrixProperties, analyze_properties


@dataclass(frozen=True)
class SolverSelection:
    """Decision of the Matrix Structure unit."""

    solver: str
    properties: MatrixProperties
    reason: str


SELECTION_POLICIES = ("symmetry_first", "dominance_first", "always_bicgstab")
"""Available decision orders; ``symmetry_first`` is the default used in the
reproduction, the others exist for the selection-policy ablation."""


class MatrixStructureUnit:
    """Implements the Solver Decision loop's structural analysis stage.

    ``policy`` orders the checks: ``symmetry_first`` prefers CG whenever
    the CSR/CSC comparison passes (symmetric SDD matrices with a positive
    diagonal are SPD, and CG converges much faster than Jacobi);
    ``dominance_first`` prefers Jacobi's unconditional Eq. 1 guarantee;
    ``always_bicgstab`` skips the analysis and models a naive static
    choice of the most general solver.
    """

    def __init__(
        self, symmetry_rtol: float = 1e-6, policy: str = "symmetry_first"
    ) -> None:
        if policy not in SELECTION_POLICIES:
            raise ConfigurationError(
                f"unknown selection policy {policy!r}; "
                f"expected one of {SELECTION_POLICIES}"
            )
        self.symmetry_rtol = float(symmetry_rtol)
        self.policy = policy

    def analyze(self, matrix: CSRMatrix) -> MatrixProperties:
        """Run the two hardware checks (diag dominance, CSR-vs-CSC).

        The CSC view comes from the matrix's cached transpose, so a
        solve that later needs ``rmatvec`` (BiCG's shadow sweep) reuses
        the same transposition instead of re-sorting the entries.
        """
        return analyze_properties(matrix, rtol=self.symmetry_rtol)

    def _cg_selection(self, props: MatrixProperties) -> SolverSelection:
        return SolverSelection(
            solver="cg",
            properties=props,
            reason=(
                "CSC encoding matches CSR encoding (symmetric); CG chosen "
                "with symmetry as the positive-definiteness proxy"
            ),
        )

    def _jacobi_selection(self, props: MatrixProperties) -> SolverSelection:
        return SolverSelection(
            solver="jacobi",
            properties=props,
            reason="strictly diagonally dominant (Eq. 1); Jacobi guaranteed",
        )

    def _bicgstab_selection(
        self, props: MatrixProperties, reason: str
    ) -> SolverSelection:
        return SolverSelection(solver="bicgstab", properties=props, reason=reason)

    def select_solver(self, matrix: CSRMatrix) -> SolverSelection:
        """Pick the initial Reconfigurable Solver configuration."""
        props = self.analyze(matrix)
        if self.policy == "always_bicgstab":
            return self._bicgstab_selection(
                props, "ablation policy: BiCG-STAB unconditionally"
            )
        if self.policy == "dominance_first":
            if props.strictly_diagonally_dominant:
                return self._jacobi_selection(props)
            if props.symmetric:
                return self._cg_selection(props)
        else:  # symmetry_first
            if props.symmetric:
                return self._cg_selection(props)
            if props.strictly_diagonally_dominant:
                return self._jacobi_selection(props)
        return self._bicgstab_selection(
            props,
            "non-symmetric and not diagonally dominant; BiCG-STAB chosen",
        )
