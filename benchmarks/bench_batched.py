"""Batched-backend acceptance benchmark: amortized host time must pay.

The batched solver backend exists to amortize *host-side* work — the
Matrix Structure unit's property checks and the Fine-Grained unit's
unroll planning — across a fingerprint-sharing batch.  This benchmark
measures exactly that on the acceptance workload: a K=8 batch of
BiCG-STAB solves over the 65,536-row 2-D Poisson operator (one matrix,
eight seeded right-hand sides).

Two quantities are recorded:

- ``host_per_solve_speedup`` — host analysis seconds per solve,
  sequential (every member re-analyzes a cold matrix, as separate
  requests would) vs batched (one analysis plus the group's
  value-verification overhead, shared by all eight).  This is the
  guarded acceptance metric (floor 2x; it lands near 8x because the
  batch is eight-way).
- ``lockstep`` — end-to-end solver wall time of eight sequential
  ``solve()`` calls vs one lockstep ``solve_batched`` call, reported
  honestly but not guarded: lockstep bookkeeping (per-member monitors,
  finalize-and-compact, the straggler tail) costs a modest constant
  factor at this problem size, and the point of the backend is the
  amortized host column, not raw kernel wall time.

Bit-identity is asserted inside ``measure()``: the benchmark refuses to
report a speedup for results that differ from the sequential solves.

Run directly to (re)generate the committed record::

    PYTHONPATH=src python benchmarks/bench_batched.py

which writes ``benchmarks/BENCH_batched.json``.  Under pytest the module
guards the ``batched_*`` entries in ``reference_bands.json`` at the
usual 30 % tolerance and re-checks the committed record against the 2x
acceptance floor.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.config import AcamarConfig
from repro.core import Acamar
from repro.datasets.pde import poisson_2d
from repro.solvers import BiCGStabSolver, solve_batched
from repro.sparse.csr import CSRMatrix

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_batched.json"
BANDS_PATH = Path(__file__).resolve().parent / "reference_bands.json"

GRID = 256
BATCH_K = 8
ROUNDS = 3
GUARD_RELATIVE_TOLERANCE = 0.30
"""Allowed regression of a pinned batched speedup ratio (30 %)."""

ACCEPTANCE_RATIO = 2.0
"""Acceptance floor: batched host seconds per solve must beat the
sequential path by at least 2x on the K=8 acceptance workload."""


def _fresh_copy(matrix: CSRMatrix) -> CSRMatrix:
    """A cold matrix (empty structure caches), as a new request carries."""
    return CSRMatrix(
        matrix.shape,
        matrix.indptr.copy(),
        matrix.indices.copy(),
        matrix.data.copy(),
    )


def _host_analysis(acamar: Acamar, matrix: CSRMatrix) -> None:
    """The per-operator host work the batch amortizes."""
    acamar.matrix_structure.select_solver(matrix)
    acamar.fine_grained.plan(matrix)


def _measure_host(matrix: CSRMatrix, rounds: int) -> dict[str, float]:
    """Best-of-``rounds`` host-analysis seconds, sequential vs batched."""
    config = AcamarConfig()
    best_seq = np.inf
    best_batched = np.inf
    for _ in range(rounds):
        acamar = Acamar(config)
        members = [_fresh_copy(matrix) for _ in range(BATCH_K)]
        start = time.perf_counter()
        for member in members:
            _host_analysis(acamar, member)
        best_seq = min(best_seq, time.perf_counter() - start)

        acamar = Acamar(config)
        members = [_fresh_copy(matrix) for _ in range(BATCH_K)]
        start = time.perf_counter()
        lead = members[0]
        # The group solver's value-verification overhead is part of the
        # batched cost: analysis may only be shared once values match.
        for member in members[1:]:
            assert lead.structurally_equal(member)
            assert np.array_equal(lead.data, member.data)
        _host_analysis(acamar, lead)
        best_batched = min(best_batched, time.perf_counter() - start)
    return {
        "sequential_s": round(best_seq, 6),
        "batched_s": round(best_batched, 6),
        "sequential_per_solve_s": round(best_seq / BATCH_K, 6),
        "batched_per_solve_s": round(best_batched / BATCH_K, 6),
        "host_per_solve_speedup": round(best_seq / best_batched, 4),
    }


def _measure_lockstep(
    matrix: CSRMatrix, bs: list[np.ndarray], rounds: int
) -> dict[str, float]:
    """Solver wall time: K sequential solves vs one lockstep batch.

    Also asserts bit-identity — status, iteration count, iterate and
    residual history of every member must equal its sequential solve.
    """
    solver = BiCGStabSolver()
    best_seq = np.inf
    best_batched = np.inf
    sequential = None
    batched = None
    for _ in range(rounds):
        warm = _fresh_copy(matrix)
        start = time.perf_counter()
        sequential = [solver.solve(warm, b) for b in bs]
        best_seq = min(best_seq, time.perf_counter() - start)

        warm = _fresh_copy(matrix)
        start = time.perf_counter()
        batched = solve_batched(solver, [warm] * len(bs), bs)
        best_batched = min(best_batched, time.perf_counter() - start)
    for seq, bat in zip(sequential, batched):
        assert bat.status == seq.status
        assert bat.iterations == seq.iterations
        assert np.array_equal(bat.x, seq.x)
        assert np.array_equal(bat.residual_history, seq.residual_history)
    return {
        "sequential_s": round(best_seq, 6),
        "batched_s": round(best_batched, 6),
        "wall_ratio": round(best_seq / best_batched, 4),
        "iterations": [int(r.iterations) for r in batched],
        "all_converged": bool(all(r.converged for r in batched)),
    }


def measure(rounds: int = ROUNDS) -> dict:
    problem = poisson_2d(GRID)
    matrix = problem.matrix
    rng = np.random.default_rng(2024)
    base = problem.b.astype(np.float32)
    # A fingerprint-sharing batch in the wild: the same operator under a
    # swept load amplitude.  Each member is a distinct bit pattern and
    # converges on its own schedule (the float32 recurrences diverge
    # immediately), but all stay in the well-conditioned forcing family.
    bs = [
        np.float32(1.0 + 0.2 * rng.standard_normal()) * base
        for _ in range(BATCH_K)
    ]
    host = _measure_host(matrix, rounds)
    lockstep = _measure_lockstep(matrix, bs, rounds)
    return {
        "schema_version": 1,
        "problem": {
            "name": f"poisson_2d({GRID})",
            "n_rows": int(matrix.n_rows),
            "nnz": int(matrix.nnz),
        },
        "batch_k": BATCH_K,
        "solver": "bicgstab",
        "rounds": rounds,
        "host": host,
        "lockstep": lockstep,
    }


def guarded_speedups(report: dict) -> dict[str, float]:
    """The ratios pinned by ``reference_bands.json``."""
    return {
        "batched_host_per_solve_speedup": report["host"][
            "host_per_solve_speedup"
        ],
    }


# ----------------------------------------------------------------------
# CI guard (pytest entry points)
# ----------------------------------------------------------------------


def test_batched_host_speedup_guard():
    """Measured batched speedups may not regress >30% below the bands."""
    with open(BANDS_PATH) as fh:
        bands = json.load(fh)
    report = measure()
    measured = guarded_speedups(report)
    failures = []
    for name, reference in sorted(bands.items()):
        if not name.startswith("batched_"):
            continue
        value = measured[name]
        floor = (1.0 - GUARD_RELATIVE_TOLERANCE) * float(reference)
        if value < floor:
            failures.append(f"{name}: measured {value:.3f} < floor {floor:.3f}")
    assert not failures, "; ".join(failures)


def test_batched_meets_acceptance_speedup():
    """The committed record shows the >=2x host-per-solve acceptance win."""
    with open(BENCH_PATH) as fh:
        committed = json.load(fh)
    assert committed["host"]["host_per_solve_speedup"] >= ACCEPTANCE_RATIO
    assert committed["batch_k"] >= 8
    assert committed["lockstep"]["all_converged"]


def main() -> int:  # pragma: no cover - CLI
    report = measure()
    with open(BENCH_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    host = report["host"]
    lockstep = report["lockstep"]
    print(
        f"host analysis  seq {host['sequential_s']:.4f}s "
        f"batched {host['batched_s']:.4f}s "
        f"per-solve speedup {host['host_per_solve_speedup']:.2f}x"
    )
    print(
        f"lockstep solve seq {lockstep['sequential_s']:.4f}s "
        f"batched {lockstep['batched_s']:.4f}s "
        f"ratio {lockstep['wall_ratio']:.2f}x"
    )
    print(f"written: {BENCH_PATH}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
