"""Lint-layer acceptance benchmark: the incremental cache must pay.

Runs the whole-program lint (``repro lint``: REP001–REP010 over the
real ``src/repro`` tree) twice against a throwaway cache — cold, then
warm — and records wall-clock for both plus the invariants that make
the cache *safe* to trust in ``benchmarks/BENCH_lint.json``:

- **warm speedup**: a warm run re-hashes every file but re-parses
  nothing; the acceptance floor is >= 3x over the cold run (measured
  headroom is an order of magnitude beyond that),
- **byte-identity**: cold and warm runs must render identically in
  every output format — a cache that changes findings is worse than no
  cache,
- **hit accounting**: the cold run misses everything, the warm run
  hits everything.

Wall-clock ratios vary by machine, so only the deterministic headline
values (hit rates, findings count) are pinned in
``reference_bands.json``; the speedup is guarded as an acceptance
floor, like the serving cache's >2x p50 win.

Regenerate the committed record with ``python benchmarks/bench_lint.py``
after an intentional analysis change (and say why in the commit).
"""

import json
import tempfile
import time
from pathlib import Path

from repro.analysis import format_findings, run_project_lint
from repro.experiments.report import ExperimentTable

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_lint.json"
BANDS_PATH = Path(__file__).resolve().parent / "reference_bands.json"

GUARD_RELATIVE_TOLERANCE = 0.10
ACCEPTANCE_RATIO = 3.0
"""Acceptance floor: the warm-cache lint must beat cold by >= 3x."""

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_TARGET = REPO_ROOT / "src" / "repro"

FORMATS = ("text", "json", "github", "sarif")


def _timed_lint(cache_path: Path) -> tuple[float, object]:
    started = time.perf_counter()
    report = run_project_lint(
        [LINT_TARGET], root=REPO_ROOT, cache_path=cache_path
    )
    return time.perf_counter() - started, report


def measure() -> dict:
    with tempfile.TemporaryDirectory() as scratch:
        cache_path = Path(scratch) / "lint-cache.json"
        cold_s, cold = _timed_lint(cache_path)
        warm_s, warm = _timed_lint(cache_path)
    identical = all(
        format_findings(cold, fmt) == format_findings(warm, fmt)
        for fmt in FORMATS
    )
    return {
        "files_checked": cold.files_checked,
        "findings": len(cold.findings),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 2),
        "cold_hit_rate": round(
            cold.cache_hits / max(1, cold.files_checked), 4
        ),
        "warm_hit_rate": round(
            warm.cache_hits / max(1, warm.files_checked), 4
        ),
        "output_identical": identical,
    }


def run() -> tuple[ExperimentTable, dict]:
    report = measure()
    table = ExperimentTable(
        experiment_id="Lint",
        title=(
            "Incremental whole-program lint over src/repro "
            f"({report['files_checked']} files, REP001-REP010)"
        ),
        headers=("mode", "wall s", "cache hit rate", "findings"),
    )
    table.add_row(
        "cold cache", report["cold_s"], report["cold_hit_rate"],
        report["findings"],
    )
    table.add_row(
        "warm cache", report["warm_s"], report["warm_hit_rate"],
        report["findings"],
    )
    table.add_note(
        f"warm speedup: {report['warm_speedup']:.1f}x "
        f"(acceptance floor {ACCEPTANCE_RATIO:.0f}x); outputs "
        + ("byte-identical" if report["output_identical"]
           else "DIVERGED")
    )
    return table, report


def test_bench_lint(benchmark, print_table):
    table, report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(table)
    # Cache-safety invariants: identical output, full hit accounting.
    assert report["output_identical"], (
        "warm-cache lint output diverged from the cold run"
    )
    assert report["cold_hit_rate"] == 0.0
    assert report["warm_hit_rate"] == 1.0
    # The acceptance criterion: the cache pays for itself >= 3x.
    assert report["warm_speedup"] >= ACCEPTANCE_RATIO, (
        f"warm lint speedup {report['warm_speedup']:.2f}x below the "
        f"{ACCEPTANCE_RATIO:.0f}x acceptance floor"
    )
    # Band guard: the deterministic lint headline values must not
    # drift (the repo tree itself must stay finding-free).
    with open(BANDS_PATH) as fh:
        bands = json.load(fh)
    measured = {
        "lint_findings": float(report["findings"]),
        "lint_warm_hit_rate": report["warm_hit_rate"],
    }
    failures = []
    for name, value in measured.items():
        reference = float(bands[name])
        low = (1.0 - GUARD_RELATIVE_TOLERANCE) * reference
        high = (1.0 + GUARD_RELATIVE_TOLERANCE) * reference
        if not low <= value <= high:
            failures.append(
                f"{name}: measured {value:.4f} outside "
                f"[{low:.4f}, {high:.4f}]"
            )
    assert not failures, "; ".join(failures)


def test_committed_record_meets_acceptance():
    """The committed record shows the >=3x cache acceptance result."""
    with open(BENCH_PATH) as fh:
        committed = json.load(fh)
    assert committed["warm_speedup"] >= ACCEPTANCE_RATIO
    assert committed["output_identical"] is True
    assert committed["findings"] == 0


def main() -> int:  # pragma: no cover - CLI
    table, report = run()
    with open(BENCH_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(table.to_text())
    print(f"written: {BENCH_PATH}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
