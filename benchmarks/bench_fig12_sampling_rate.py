"""Figure 12: resource underutilization vs sampling rate (decreasing)."""

from repro.experiments import fig12


def test_bench_fig12_sampling_rate(benchmark, print_table, print_text):
    table = benchmark.pedantic(fig12.run, rounds=1, iterations=1)
    print_table(table)
    print_text(table.render_series("ID", "S=32"))

    mean = table.rows[-1]
    values = list(mean[1:])
    # Finer sampling tracks the row-length profile better on average.
    assert values[-1] < values[0]
    assert values[-1] < values[len(values) // 2]
