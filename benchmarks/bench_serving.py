"""Serving-layer acceptance benchmark: the fingerprint cache must pay.

Runs the canonical loadtest (``seed=0, duration=5s``, repeat-heavy mix)
twice — fingerprint cache on and off — and records the p50 latency win,
cache hit rate and shed accounting in ``benchmarks/BENCH_serving.json``.
The serving simulator runs on a virtual clock, so every number here is
deterministic: the band guard can therefore pin the headline values to
the recorded references in ``reference_bands.json`` at the usual 10%
tolerance (drift means the cost model or scheduler changed, not noise).

Regenerate the committed record with ``python benchmarks/bench_serving.py``
after an intentional serving-model change (and say why in the commit).
"""

import json
from pathlib import Path

from repro.experiments.report import ExperimentTable
from repro.serve import LoadSpec, ServiceConfig, run_loadtest

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_serving.json"
BANDS_PATH = Path(__file__).resolve().parent / "reference_bands.json"

GUARD_RELATIVE_TOLERANCE = 0.10
ACCEPTANCE_RATIO = 2.0
"""Acceptance floor: warm-cache p50 must beat --no-cache p50 by >2x."""

CANONICAL_SPEC = LoadSpec(seed=0, duration_s=5.0, mix="repeat-heavy")


def _mode_record(report) -> dict:
    doc = report.as_dict(include_responses=False)
    return {
        "p50_ms": doc["latency_ms"]["overall"]["p50"],
        "p99_ms": doc["latency_ms"]["overall"]["p99"],
        "completed": doc["requests"]["completed"],
        "shed": doc["requests"]["shed"],
        "expired": doc["requests"]["expired"],
        "unaccounted": doc["requests"]["unaccounted"],
        "cache_hit_rate": doc["cache"]["hit_rate"],
        "config_loads": doc["batches"]["config_loads"],
        "batches": doc["batches"]["count"],
        "device_seconds": doc["fleet"]["device_seconds"],
    }


def measure() -> dict:
    warm = run_loadtest(CANONICAL_SPEC)
    cold = run_loadtest(
        CANONICAL_SPEC, ServiceConfig(cache_enabled=False)
    )
    warm_record = _mode_record(warm)
    cold_record = _mode_record(cold)
    return {
        "spec": {
            "seed": CANONICAL_SPEC.seed,
            "duration_s": CANONICAL_SPEC.duration_s,
            "rate_rps": CANONICAL_SPEC.rate_rps,
            "mix": CANONICAL_SPEC.mix,
        },
        "warm_cache": warm_record,
        "no_cache": cold_record,
        "p50_speedup": round(
            cold_record["p50_ms"] / warm_record["p50_ms"], 4
        ),
    }


def run() -> tuple[ExperimentTable, dict]:
    report = measure()
    table = ExperimentTable(
        experiment_id="Serving S2",
        title=(
            "Plan-cache effect on serving latency "
            f"(seed={report['spec']['seed']}, "
            f"{report['spec']['duration_s']:.0f}s @ "
            f"{report['spec']['rate_rps']:.0f} rps, "
            f"{report['spec']['mix']})"
        ),
        headers=(
            "mode", "p50 ms", "p99 ms", "hit rate",
            "config loads", "unaccounted",
        ),
    )
    for mode, record in (
        ("warm cache", report["warm_cache"]),
        ("no cache", report["no_cache"]),
    ):
        table.add_row(
            mode,
            round(record["p50_ms"], 3),
            round(record["p99_ms"], 3),
            round(record["cache_hit_rate"], 3),
            record["config_loads"],
            record["unaccounted"],
        )
    table.add_note(
        f"p50 speedup warm vs no-cache: {report['p50_speedup']:.2f}x "
        f"(acceptance floor {ACCEPTANCE_RATIO:.0f}x)"
    )
    return table, report


def test_bench_serving(benchmark, print_table):
    table, report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(table)
    # Accounting invariant: nothing dropped without an explicit response.
    assert report["warm_cache"]["unaccounted"] == 0
    assert report["no_cache"]["unaccounted"] == 0
    # The acceptance criterion: >2x p50 win on repeat-heavy traffic.
    assert report["p50_speedup"] > ACCEPTANCE_RATIO, (
        f"warm cache p50 win {report['p50_speedup']:.2f}x "
        f"below the {ACCEPTANCE_RATIO:.0f}x acceptance floor"
    )
    # Band guard: serving headline values must not drift.
    with open(BANDS_PATH) as fh:
        bands = json.load(fh)
    measured = {
        "serving_warm_p50_ms": report["warm_cache"]["p50_ms"],
        "serving_nocache_p50_ms": report["no_cache"]["p50_ms"],
        "serving_cache_speedup": report["p50_speedup"],
        "serving_cache_hit_rate": report["warm_cache"]["cache_hit_rate"],
    }
    failures = []
    for name, value in measured.items():
        reference = float(bands[name])
        low = (1.0 - GUARD_RELATIVE_TOLERANCE) * reference
        high = (1.0 + GUARD_RELATIVE_TOLERANCE) * reference
        if not low <= value <= high:
            failures.append(
                f"{name}: measured {value:.4f} outside "
                f"[{low:.4f}, {high:.4f}]"
            )
    assert not failures, "; ".join(failures)


def test_committed_record_meets_acceptance():
    """The committed record shows the >2x serving acceptance result."""
    with open(BENCH_PATH) as fh:
        committed = json.load(fh)
    assert committed["p50_speedup"] > ACCEPTANCE_RATIO
    assert committed["warm_cache"]["unaccounted"] == 0
    assert committed["no_cache"]["unaccounted"] == 0


def main() -> int:  # pragma: no cover - CLI
    table, report = run()
    with open(BENCH_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(table.to_text())
    print(f"written: {BENCH_PATH}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
