"""Table I: regenerate the convergence-criteria catalog and verify the
executable criteria against the Table II stand-ins."""

from repro.datasets import load_matrix
from repro.experiments import table1
from repro.solvers.criteria import criterion_for


def test_bench_table1_criteria(benchmark, print_table):
    table = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    print_table(table)
    assert len(table.rows) == 11
    # Spot-check the executable criteria against known stand-ins.
    assert criterion_for("jacobi").satisfied_by(load_matrix("Wa"))
    assert not criterion_for("jacobi").satisfied_by(load_matrix("2C"))
    assert criterion_for("cg").satisfied_by(load_matrix("2C"))
    assert criterion_for("bicgstab").satisfied_by(load_matrix("If"))
