"""Cluster-tier acceptance benchmark: affinity and autoscaling must pay.

Three runs of the canonical cluster loadtest (``seed=0, 60s @ 2000 rps``,
repeat-heavy mix) feed ``benchmarks/BENCH_cluster.json``:

- **warm affinity** — fingerprint-routed placement with autoscaling
  (the default configuration),
- **no affinity** — identical load, round-robin routing; every migrated
  fingerprint re-pays remote fetches and reconfigurations,
- **static fleet** — affinity routing but a fixed fully-provisioned
  fleet; the autoscaler's value shows up as provisioned slot-seconds.

The simulator runs on a virtual clock, so latency percentiles and
slot-second totals are byte-deterministic per seed and can be pinned by
the band guard at the usual 10% tolerance.  The event-loop throughput
(``events_per_s``: trace rows processed per wall second) is the only
wall-clock number — recorded for the ROADMAP's >60x real-time claim but
deliberately excluded from the band guard.

Regenerate the committed record with ``python benchmarks/bench_cluster.py``
after an intentional cluster-model change (and say why in the commit).
"""

import json
import time
from pathlib import Path

from repro.experiments.report import ExperimentTable
from repro.serve.cluster import (
    ClusterConfig,
    ClusterLoadSpec,
    run_cluster_loadtest,
)

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_cluster.json"
BANDS_PATH = Path(__file__).resolve().parent / "reference_bands.json"

GUARD_RELATIVE_TOLERANCE = 0.10

CANONICAL_SPEC = ClusterLoadSpec(
    seed=0, duration_s=60.0, rate_rps=2000.0, mix="repeat-heavy"
)

MAX_FLEETS = 6


def _config(**overrides) -> ClusterConfig:
    base = dict(
        initial_fleets=2, min_fleets=1, max_fleets=MAX_FLEETS,
        slots_per_fleet=4,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def _mode_record(report, elapsed_s: float) -> dict:
    doc = report.as_dict()
    overall = doc["latency_ms"]["overall"]
    return {
        "p50_ms": overall["p50"],
        "p99_ms": overall["p99"],
        "completed": doc["requests"]["completed"],
        "shed_rate": doc["requests"]["shed_rate"],
        "unaccounted": doc["requests"]["unaccounted"],
        "local_hit_rate": doc["cache"]["lookups"]["local_hit_rate"],
        "remote_hits": doc["cache"]["lookups"]["remote_hits"],
        "config_loads": doc["batches"]["config_loads"],
        "fleets_peak": doc["fleets"]["peak"],
        "provisioned_slot_seconds": doc["fleets"][
            "provisioned_slot_seconds"
        ],
        "device_seconds": doc["fleets"]["device_seconds"],
        "events_per_s": round(doc["requests"]["generated"] / elapsed_s, 1),
    }


def _run_mode(config: ClusterConfig) -> dict:
    started = time.perf_counter()
    report = run_cluster_loadtest(CANONICAL_SPEC, config)
    return _mode_record(report, time.perf_counter() - started)


def measure() -> dict:
    warm = _run_mode(_config())
    scatter = _run_mode(_config(affinity_routing=False))
    static = _run_mode(
        _config(
            initial_fleets=MAX_FLEETS, min_fleets=MAX_FLEETS,
            autoscale=False,
        )
    )
    return {
        "spec": {
            "seed": CANONICAL_SPEC.seed,
            "duration_s": CANONICAL_SPEC.duration_s,
            "rate_rps": CANONICAL_SPEC.rate_rps,
            "mix": CANONICAL_SPEC.mix,
        },
        "warm_affinity": warm,
        "no_affinity": scatter,
        "static_fleet": static,
        "slot_seconds_saving": round(
            1.0
            - warm["provisioned_slot_seconds"]
            / static["provisioned_slot_seconds"],
            4,
        ),
    }


def run() -> tuple[ExperimentTable, dict]:
    report = measure()
    table = ExperimentTable(
        experiment_id="Serving S3",
        title=(
            "Cluster tier: affinity routing and autoscaling "
            f"(seed={report['spec']['seed']}, "
            f"{report['spec']['duration_s']:.0f}s @ "
            f"{report['spec']['rate_rps']:.0f} rps, "
            f"{report['spec']['mix']})"
        ),
        headers=(
            "mode", "p50 ms", "p99 ms", "local hit", "remote",
            "slot-s", "events/s",
        ),
    )
    for mode, record in (
        ("warm affinity", report["warm_affinity"]),
        ("no affinity", report["no_affinity"]),
        ("static fleet", report["static_fleet"]),
    ):
        table.add_row(
            mode,
            round(record["p50_ms"], 3),
            round(record["p99_ms"], 3),
            round(record["local_hit_rate"], 4),
            record["remote_hits"],
            round(record["provisioned_slot_seconds"], 1),
            record["events_per_s"],
        )
    table.add_note(
        "autoscaler provisions "
        f"{report['slot_seconds_saving']:.0%} fewer slot-seconds than "
        "the static fully-provisioned fleet at matched load"
    )
    return table, report


def test_bench_cluster(benchmark, print_table):
    table, report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(table)
    warm = report["warm_affinity"]
    scatter = report["no_affinity"]
    static = report["static_fleet"]
    # Accounting invariant: every request lands in exactly one bucket.
    for record in (warm, scatter, static):
        assert record["unaccounted"] == 0
    # Affinity acceptance: fingerprint routing keeps plans resident —
    # fewer remote installs and a better local hit rate than spraying.
    assert warm["local_hit_rate"] >= scatter["local_hit_rate"]
    assert warm["remote_hits"] <= scatter["remote_hits"]
    # Autoscaler acceptance: meaningfully fewer provisioned
    # slot-seconds than static full provisioning, without collapsing
    # into mass shedding.
    assert report["slot_seconds_saving"] > 0.15
    assert warm["shed_rate"] < 0.05
    # Band guard: cluster headline values must not drift.
    with open(BANDS_PATH) as fh:
        bands = json.load(fh)
    measured = {
        "cluster_warm_p50_ms": warm["p50_ms"],
        "cluster_warm_p99_ms": warm["p99_ms"],
        "cluster_warm_local_hit_rate": warm["local_hit_rate"],
        "cluster_slot_seconds_saving": report["slot_seconds_saving"],
    }
    failures = []
    for name, value in measured.items():
        reference = float(bands[name])
        low = (1.0 - GUARD_RELATIVE_TOLERANCE) * reference
        high = (1.0 + GUARD_RELATIVE_TOLERANCE) * reference
        if not low <= value <= high:
            failures.append(
                f"{name}: measured {value:.4f} outside "
                f"[{low:.4f}, {high:.4f}]"
            )
    assert not failures, "; ".join(failures)


def test_committed_record_meets_acceptance():
    """The committed record shows affinity and autoscaling paying off."""
    with open(BENCH_PATH) as fh:
        committed = json.load(fh)
    assert committed["warm_affinity"]["unaccounted"] == 0
    assert committed["slot_seconds_saving"] > 0.15
    assert (
        committed["warm_affinity"]["local_hit_rate"]
        >= committed["no_affinity"]["local_hit_rate"]
    )


def main() -> int:  # pragma: no cover - CLI
    table, report = run()
    with open(BENCH_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(table.to_text())
    print(f"written: {BENCH_PATH}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
