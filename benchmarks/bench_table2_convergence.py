"""Table II: per-solver convergence pattern and Acamar's robust convergence
over all 25 SuiteSparse stand-ins."""

from repro.experiments import table2


def test_bench_table2_convergence(benchmark, print_table):
    table = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    print_table(table)
    assert len(table.rows) == 25
    # The paper's headline claims: every row matches, Acamar is all-Y.
    assert all(table.column("matches paper"))
    assert all(table.column("Acamar"))
