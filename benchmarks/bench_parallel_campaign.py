"""Worker-pool scaling of the campaign engine on the Table II suite.

The parallel engine exists to convert independent solves into wall-clock
throughput (the campaign analogue of the paper's resource-utilization
argument).  This bench runs the full 25-dataset suite — repeated
``REPEAT`` times so pool startup is amortized the way a production
campaign would amortize it — serially and at 2/4 workers, asserts the
parallel reports are entry-for-entry identical to the serial one, and
reports the speedup.  The ≥2× scaling assertion engages when the host
actually has ≥4 CPUs (CI runners do; single-core sandboxes skip it).
"""

import os

from repro.campaign import run_campaign
from repro.datasets import dataset_keys
from repro.experiments.report import ExperimentTable

REPEAT = 3
WORKER_COUNTS = (2, 4)
SPEEDUP_TARGET = 2.0


def signature(report):
    return [
        (e.name, e.converged, e.iterations, e.solver_sequence)
        for e in report.entries
    ]


def run() -> ExperimentTable:
    sources = list(dataset_keys()) * REPEAT
    table = ExperimentTable(
        experiment_id="Scaling S1",
        title=(
            f"Parallel campaign scaling ({len(sources)} solves, "
            f"host cpus={os.cpu_count()})"
        ),
        headers=("workers", "wall s", "speedup", "identical to serial"),
    )
    serial = run_campaign(sources)
    serial_wall = serial.telemetry["campaign"]["wall_seconds"]
    serial_signature = signature(serial)
    table.add_row(1, round(serial_wall, 3), 1.0, True)
    for workers in WORKER_COUNTS:
        report = run_campaign(sources, workers=workers)
        wall = report.telemetry["campaign"]["wall_seconds"]
        table.add_row(
            workers,
            round(wall, 3),
            round(serial_wall / wall, 2),
            signature(report) == serial_signature,
        )
    return table


def test_bench_parallel_campaign(benchmark, print_table):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(table)
    assert all(table.column("identical to serial")), (
        "parallel campaign diverged from the serial reference"
    )
    speedups = dict(zip(table.column("workers"), table.column("speedup")))
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert speedups[4] >= SPEEDUP_TARGET, (
            f"expected ≥{SPEEDUP_TARGET}× at 4 workers, got {speedups[4]}×"
        )
