"""Ablation (extension): the energy corollary of dynamic region sizing.

The paper argues Figure 10's area saving frees fabric for co-running
kernels; the same saving also cuts static leakage.  This bench prices
every dataset's solve on the energy model and compares Acamar's
time-weighted configured region against a static URB=16 design.
"""

import numpy as np

from repro.experiments import runner
from repro.experiments.report import ExperimentTable
from repro.fpga.energy import EnergyModel

STATIC_URB = 16


def run(keys=None) -> ExperimentTable:
    model = runner.performance_model()
    energy_model = EnergyModel(model.device)
    table = ExperimentTable(
        experiment_id="Ablation A4 (extension)",
        title="Energy per solve: Acamar vs static design (microjoules)",
        headers=(
            "ID", "acamar_uJ", "static_uJ", "acamar_leak_uJ",
            "static_leak_uJ", "energy_ratio",
        ),
    )
    ratios = []
    for key in runner.resolve_keys(keys):
        problem = runner.problem(key)
        result = runner.acamar_result(key)
        acamar_latency = model.solver_latency(
            problem.matrix, result.final, plan=result.plan
        )
        static_latency = model.solver_latency(
            problem.matrix, result.final, urb=STATIC_URB
        )
        area = model.acamar_spmv_area_mm2(problem.matrix, result.plan)
        acamar_energy = energy_model.acamar(acamar_latency, area)
        static_energy = energy_model.static_design(static_latency, STATIC_URB)
        # Compare compute-side energy (leakage + switching + memory);
        # reconfiguration energy is reported via Figure 13's budget story.
        acamar_compute_j = acamar_energy.total_j - acamar_energy.reconfig_j
        static_compute_j = static_energy.total_j
        ratio = static_compute_j / acamar_compute_j
        ratios.append(ratio)
        table.add_row(
            key,
            acamar_compute_j * 1e6,
            static_compute_j * 1e6,
            acamar_energy.static_leakage_j * 1e6,
            static_energy.static_leakage_j * 1e6,
            ratio,
        )
    table.add_note(
        f"geomean compute-energy ratio (static/acamar): "
        f"{float(np.exp(np.mean(np.log(ratios)))):.2f}x — compute energy "
        "is parity (switching + memory dominate and are work-determined); "
        "the win of dynamic sizing is Figure 10's freed fabric, while the "
        "smaller region's lower leakage power offsets its longer runtime"
    )
    return table


def test_bench_ablation_energy(benchmark, print_table):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(table)
    ratios = table.column("energy_ratio")
    assert float(np.exp(np.mean(np.log(ratios)))) > 0.9
    assert all(r > 0 for r in ratios)
