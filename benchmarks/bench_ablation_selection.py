"""Ablation: the Matrix Structure unit's decision order.

Runs Acamar over all Table II stand-ins under three selection policies
and counts wasted solver attempts (full Reconfigurable Solver swaps).
The shipped symmetry-first order needs the fewest swaps because symmetric
matrices are the most common class and CG is the fastest safe choice for
them; always-BiCG-STAB (no analysis at all) pays a swap on every
CG-only/Jacobi-only dataset.
"""

from repro.config import AcamarConfig
from repro.core import Acamar
from repro.experiments import runner
from repro.experiments.report import ExperimentTable

POLICIES = ("symmetry_first", "dominance_first", "always_bicgstab")


def run(keys=None) -> ExperimentTable:
    table = ExperimentTable(
        experiment_id="Ablation A2",
        title="Solver-selection policy: solver swaps until convergence",
        headers=("ID", *[f"swaps[{p}]" for p in POLICIES], "all converge"),
    )
    totals = {p: 0 for p in POLICIES}
    for key in runner.resolve_keys(keys):
        problem = runner.problem(key)
        swaps = []
        all_ok = True
        for policy in POLICIES:
            acamar = Acamar(AcamarConfig(), structure_policy=policy)
            result = acamar.solve(problem.matrix, problem.b)
            swaps.append(result.solver_reconfigurations)
            totals[policy] += result.solver_reconfigurations
            all_ok &= result.converged
        table.add_row(key, *swaps, all_ok)
    table.add_note(
        "total swaps: "
        + ", ".join(f"{p}={totals[p]}" for p in POLICIES)
        + " — structural analysis earns its silicon"
    )
    return table


def test_bench_ablation_selection(benchmark, print_table):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(table)
    assert all(table.column("all converge"))
    swaps = {
        p: sum(table.column(f"swaps[{p}]")) for p in POLICIES
    }
    # The shipped policy must beat the no-analysis strawman outright.
    assert swaps["symmetry_first"] < swaps["always_bicgstab"]
    assert swaps["symmetry_first"] <= swaps["dominance_first"]
