"""Figure 13: allowed reconfiguration-time budget per dataset."""

from repro.experiments import fig13


def test_bench_fig13_reconfig_bounds(benchmark, print_table):
    table = benchmark.pedantic(fig13.run, rounds=1, iterations=1)
    print_table(table)
    budgets = table.column("budget_ms")
    # Against the URB=8 baseline most datasets leave a positive compute
    # gap for reconfiguration to spend; datasets whose average row is
    # shorter than the baseline's unroll have (near-)zero budget, which
    # is exactly the reconfiguration-bandwidth constraint the paper's
    # Section VIII-A discusses.
    positive = sum(1 for b in budgets if b > 0)
    assert positive >= 0.7 * len(budgets)
    events = table.column("events")
    assert all(e >= 0 for e in events)
