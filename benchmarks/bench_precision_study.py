"""Extension: Table II's failures are structural, not a 32-bit artifact."""

from repro.experiments import precision_study


def test_bench_precision_study(benchmark, print_table):
    table = benchmark.pedantic(precision_study.run, rounds=1, iterations=1)
    print_table(table)
    flips = sum(table.column("changed"))
    # Precision flips at most a couple of marginal Krylov outcomes; the
    # overwhelming majority of Table II's pattern is precision-invariant.
    assert flips <= 3
    # And fp64 never breaks a previously-converging solver.
    for row in table.rows:
        for i in range(1, 4):
            if row[i]:          # converged in fp32 ...
                assert row[i + 3], row  # ... must converge in fp64
