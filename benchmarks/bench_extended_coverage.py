"""Extension: solver coverage beyond the paper's three configurations.

Re-runs Table II with the full vectorized solver registry to test whether
a larger static menu would make runtime switching unnecessary.  (It does
not — which is the strongest form of the paper's motivation.)
"""

from repro.experiments import extended_coverage


def test_bench_extended_coverage(benchmark, print_table):
    table = benchmark.pedantic(extended_coverage.run, rounds=1, iterations=1)
    print_table(table)
    n_datasets = len(table.rows)
    solver_columns = table.headers[1:]
    coverage = {
        name: sum(1 for row in table.rows if row[1 + i])
        for i, name in enumerate(solver_columns)
    }
    # No single solver may cover every dataset.
    assert max(coverage.values()) < n_datasets
    # But every dataset is covered by SOME solver (Acamar's guarantee).
    for row in table.rows:
        assert any(row[1:]), row
