"""Figure 11: MSID stages leave R.U. and SpMV latency nearly unchanged."""

from repro.experiments import fig11


def test_bench_fig11_msid_effect(benchmark, print_table):
    table = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    print_table(table)
    lat_columns = [i for i, h in enumerate(table.headers) if h.startswith("lat@")]
    ru_columns = [i for i, h in enumerate(table.headers) if h.startswith("RU@")]
    for row in table.rows:
        for i in lat_columns:
            assert abs(row[i] - 1.0) < 0.25, row
        spread = max(row[i] for i in ru_columns) - min(row[i] for i in ru_columns)
        assert spread < 0.15, row
